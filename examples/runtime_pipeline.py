"""Deploy a set of TransPimLib functions into a PIM runtime.

Shows the install-and-call workflow a downstream application would use: a
:class:`~repro.pim.host.PIMRuntime` owns the simulated system, functions are
installed into every core's memory (with capacity checking), and calls give
both values and simulated whole-system timings.

Run:  python examples/runtime_pipeline.py
"""

import numpy as np

from repro import make_method
from repro.pim.host import PIMRuntime


def main() -> None:
    rt = PIMRuntime()

    # Install a small math library: activation functions in fast D-LUTs,
    # exp/log with full range extension, sine in WRAM for the tightest loop.
    installed = [
        rt.install(make_method("sin", "llut_i", density_log2=11,
                               placement="wram", assume_in_range=False)),
        rt.install(make_method("exp", "llut_i", density_log2=14,
                               assume_in_range=False)),
        rt.install(make_method("log", "llut_i", density_log2=14,
                               assume_in_range=False)),
        rt.install(make_method("tanh", "dlut_i", mant_bits=8,
                               assume_in_range=False)),
        rt.install(make_method("gelu", "dllut_i", mant_bits=8,
                               assume_in_range=False)),
    ]

    print(f"installed {len(rt.functions)} functions "
          f"(total setup {rt.total_setup_seconds * 1e3:.2f} ms):")
    for fn in installed:
        print(f"  {fn.name:14s} {fn.table_bytes:>8d} B tables")
    print()
    print(rt.memory_report())
    print()

    # Call them like functions; time a whole-system run.
    rng = np.random.default_rng(3)
    # Stay inside the activation tables' covered range [-8, 8).
    x = rng.normal(0, 1.5, 1 << 16).astype(np.float32)

    gelu = rt["dllut_i:gelu"]
    y = gelu(x)
    err = np.abs(y - (x * 0.5 * (1 + np.vectorize(__import__("math").erf)(
        x / np.sqrt(2))))).max()
    res = gelu.run(x, virtual_n=30_000_000)
    print(f"gelu over 30M elements: {res.total_seconds * 1e3:.1f} ms "
          f"simulated, max error {err:.2e}")

    sin = rt["llut_i:sin"]
    res = sin.run(x, virtual_n=30_000_000)
    print(f"sin  over 30M elements: {res.total_seconds * 1e3:.1f} ms "
          f"simulated (WRAM-resident table)")


if __name__ == "__main__":
    main()
