"""Black-Scholes option pricing on the simulated UPMEM-like PIM system.

Prices a synthetic option portfolio with every PIM variant the paper
evaluates (polynomial baseline, interpolated M-LUT/L-LUT, fixed-point
L-LUT) plus the fully fixed-point extension, and compares modeled execution
times against the 1- and 32-thread CPU baselines — a miniature Figure 9.

Run:  python examples/option_pricing.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.pim import PIMSystem
from repro.workloads import (
    CPU_BLACKSCHOLES,
    Blackscholes,
    generate_options,
    reference_call_prices,
)

N_OPTIONS = 10_000_000  # the paper's portfolio size (timing is sampled)
TRACE = 5_000           # options materialized for tracing/accuracy


def main() -> None:
    system = PIMSystem()
    batch = generate_options(TRACE)
    reference = reference_call_prices(batch)

    rows = [
        ("cpu 1 thread", CPU_BLACKSCHOLES.seconds(N_OPTIONS, 1), "-", "-"),
        ("cpu 32 threads", CPU_BLACKSCHOLES.seconds(N_OPTIONS, 32), "-", "-"),
    ]
    for variant in ("poly", "mlut_i", "llut_i", "llut_i_fx", "fixed_full"):
        bs = Blackscholes(variant).setup()
        res = bs.run(batch, system, virtual_n=N_OPTIONS)
        err = np.abs(bs.prices(batch).astype(np.float64) - reference)
        rows.append((
            f"pim {variant}",
            res.total_seconds,
            f"{err.max():.2e}",
            f"{bs.table_bytes() / 1024:.0f} KiB",
        ))

    cpu32 = rows[1][1]
    table = format_table(
        ["configuration", "time (10M options)", "vs cpu_32t",
         "max $ error", "tables"],
        [(name, f"{t * 1e3:.1f} ms", f"{cpu32 / t:.2f}x", e, mem)
         for name, t, e, mem in rows],
    )
    print("Black-Scholes on 2545 simulated PIM cores x 16 tasklets")
    print(table)
    print()
    print("(A ratio > 1 means the configuration beats the 32-thread CPU;")
    print(" the paper reports the fixed-point version 62% faster.)")


if __name__ == "__main__":
    main()
