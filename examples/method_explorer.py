"""Method explorer: the accuracy/cycles/memory/setup tradeoff for a function.

A miniature of the paper's Figures 5-7 for any supported function: sweeps
every supporting method over its precision knob and prints the tradeoff
surface, plus the recommendation logic of the paper's key takeaways.

Run:  python examples/method_explorer.py [function]
"""

import sys

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep_method, default_inputs
from repro.core.functions.support import supported_methods

#: Per-method sweep knobs (coarser than the benchmark harness, for speed).
KNOBS = {
    "cordic": ("iterations", (12, 20, 28)),
    "cordic_fx": ("iterations", (12, 20, 28)),
    "poly": ("degree", (6, 10, 14)),
    "slut_i": ("seg_bits", (3, 4, 5), {"target_rmse": 1e-6}),
    "cordic_lut": ("iterations", (12, 20, 28), {"lut_bits": 6}),
    "mlut": ("size", (1 << 12, 1 << 16, 1 << 20)),
    "mlut_i": ("size", (257, 4097, 65537)),
    "llut": ("density_log2", (10, 14, 18)),
    "llut_i": ("density_log2", (6, 10, 14)),
    "llut_fx": ("density_log2", (10, 14, 18)),
    "llut_i_fx": ("density_log2", (6, 10, 14)),
    "dlut": ("mant_bits", (6, 9, 12)),
    "dlut_i": ("mant_bits", (4, 8, 12)),
    "dllut": ("mant_bits", (6, 9, 12)),
    "dllut_i": ("mant_bits", (4, 8, 12)),
}


def main(function: str = "tanh") -> None:
    inputs = default_inputs(function, n=8192)
    points = []
    for method in supported_methods(function):
        knob = KNOBS[method]
        name, values = knob[0], knob[1]
        extra = knob[2] if len(knob) > 2 else None
        points += sweep_method(function, method, name, values,
                               inputs=inputs, sample_size=16,
                               extra_params=extra)

    rows = [
        (p.method, p.param, f"{p.rmse:.2e}", f"{p.cycles_per_element:.0f}",
         f"{p.table_bytes}", f"{p.setup_seconds * 1e6:.0f} us")
        for p in sorted(points, key=lambda p: (p.method, p.rmse))
    ]
    print(f"method tradeoffs for {function!r} "
          "(inputs in the natural range, MRAM tables, 16 tasklets)")
    print(format_table(
        ["method", "param", "rmse", "cycles/elem", "bytes", "setup"], rows
    ))

    # The paper's recommendation logic, applied to the measured points.
    accurate = [p for p in points if p.rmse < 1e-6]
    if accurate:
        fastest = min(accurate, key=lambda p: p.cycles_per_element)
        smallest = min(accurate, key=lambda p: p.table_bytes)
        cheapest_setup = min(accurate, key=lambda p: p.setup_seconds)
        print()
        print(f"at RMSE < 1e-6:")
        print(f"  fastest:        {fastest.method} ({fastest.param}), "
              f"{fastest.cycles_per_element:.0f} cycles/elem")
        print(f"  least memory:   {smallest.method} ({smallest.param}), "
              f"{smallest.table_bytes} bytes")
        print(f"  fastest setup:  {cheapest_setup.method} "
              f"({cheapest_setup.param}), "
              f"{cheapest_setup.setup_seconds * 1e6:.0f} us")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tanh")
