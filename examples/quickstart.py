"""Quickstart: evaluate a transcendental function on a simulated PIM core.

Builds the paper's best-tradeoff method (interpolated L-LUT) for the sine
function, runs it over random inputs, and reports accuracy, per-element PIM
cycles, memory, and modeled host setup time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_method, measure, get_function
from repro.core.setup_model import setup_seconds
from repro.pim import DPU

def main() -> None:
    spec = get_function("sin")

    # 1. Configure and set up the method (host side: builds the table).
    sin = make_method("sin", "llut_i", density_log2=12,
                      assume_in_range=False)  # handle any input angle
    sin.setup()
    print(f"method: {sin.describe()}")
    print(f"host setup time (modeled): {setup_seconds(sin) * 1e3:.3f} ms")

    # 2. Accuracy: bit-exact float32 evaluation vs the float64 reference.
    rng = np.random.default_rng(42)
    x = rng.uniform(-100.0, 100.0, 1 << 16).astype(np.float32)
    report = measure(sin.evaluate_vec, spec.reference, x)
    print(f"accuracy over 2^16 random angles in [-100, 100]: {report}")

    # 3. Performance: simulate the microbenchmark loop on one PIM core.
    dpu = DPU()
    result = dpu.run_kernel(sin.evaluate, x[:4096], tasklets=16)
    print(f"PIM cycles/element (16 tasklets): "
          f"{result.cycles_per_element:.1f}")
    print(f"  of which range reduction applies (inputs outside [0, 2pi))")

    # 4. Compare against CORDIC at the same accuracy point.
    cordic = make_method("sin", "cordic", iterations=28,
                         assume_in_range=False).setup()
    cres = dpu.run_kernel(cordic.evaluate, x[:4096], tasklets=16)
    crep = measure(cordic.evaluate_vec, spec.reference, x)
    print(f"CORDIC(28): {crep.rmse:.2e} RMSE at "
          f"{cres.cycles_per_element:.1f} cycles/element "
          f"({cres.cycles_per_element / result.cycles_per_element:.1f}x the "
          f"L-LUT cost)")


if __name__ == "__main__":
    main()
