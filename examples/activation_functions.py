"""Neural-network activation functions on PIM (the paper's motivation).

Runs the forward pass of a small MLP classifier layer stack entirely with
TransPimLib activation methods — GELU in the hidden layer (via D-LUT, Key
Takeaway 4), softmax at the output — and checks the simulated PIM results
against a float64 NumPy forward pass.  Also prints the per-activation cost
comparison across methods.

Run:  python examples/activation_functions.py
"""

import numpy as np

from repro import make_method, get_function
from repro.analysis.report import format_table
from repro.core.accuracy import measure
from repro.pim import DPU


def forward_pass(x, w1, w2, gelu_fn, softmax_fn):
    """Two-layer MLP: gelu(x @ w1) @ w2 -> softmax."""
    hidden = gelu_fn((x @ w1).astype(np.float32))
    logits = (hidden @ w2).astype(np.float32)
    return softmax_fn(logits)


def softmax_rows(logits, exp_fn):
    shifted = (logits - logits.max(axis=1, keepdims=True)).astype(np.float32)
    e = exp_fn(shifted.ravel()).reshape(shifted.shape)
    return e / e.sum(axis=1, keepdims=True)


def main() -> None:
    rng = np.random.default_rng(7)
    batch, d_in, d_hidden, d_out = 256, 32, 64, 10
    x = rng.normal(0, 1, (batch, d_in)).astype(np.float32)
    w1 = rng.normal(0, d_in ** -0.5, (d_in, d_hidden)).astype(np.float32)
    w2 = rng.normal(0, d_hidden ** -0.5, (d_hidden, d_out)).astype(np.float32)

    # TransPimLib methods: D-LUT suits GELU (approximately linear tails,
    # no range extension needed); a direct-interval L-LUT serves softmax's
    # exp (arguments are <= 0 after the max subtraction).
    gelu = make_method("gelu", "dlut_i", mant_bits=8,
                       assume_in_range=False).setup()
    exp = make_method("exp", "llut_i", density_log2=12,
                      interval=(-16.0, 1e-4), assume_in_range=True).setup()

    pim_probs = forward_pass(
        x, w1, w2,
        gelu_fn=lambda v: gelu.evaluate_vec(v.ravel()).reshape(v.shape),
        softmax_fn=lambda lg: softmax_rows(lg, exp.evaluate_vec),
    )

    # Reference forward pass in float64.
    ref_probs = forward_pass(
        x.astype(np.float64), w1.astype(np.float64), w2.astype(np.float64),
        gelu_fn=lambda v: get_function("gelu").reference(v),
        softmax_fn=lambda lg: np.exp(lg - lg.max(axis=1, keepdims=True))
        / np.exp(lg - lg.max(axis=1, keepdims=True)).sum(axis=1, keepdims=True),
    )

    err = np.abs(pim_probs - ref_probs).max()
    agree = (pim_probs.argmax(axis=1) == ref_probs.argmax(axis=1)).mean()
    print(f"MLP forward pass on PIM activations: max |prob error| = {err:.2e}")
    print(f"argmax agreement with float64 reference: {agree * 100:.1f}%")
    print()

    # Per-activation cost table (cycles per element on one PIM core).
    dpu = DPU()
    rows = []
    for fn, method, params in [
        ("gelu", "dlut_i", {"mant_bits": 8}),
        ("gelu", "dllut_i", {"mant_bits": 8}),
        ("gelu", "llut_i", {"density_log2": 11}),
        ("tanh", "dlut_i", {"mant_bits": 8}),
        ("tanh", "cordic", {"iterations": 24}),
        ("sigmoid", "llut_i", {"density_log2": 11}),
    ]:
        spec = get_function(fn)
        m = make_method(fn, method, assume_in_range=False, **params).setup()
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, 2048).astype(np.float32)
        rep = measure(m.evaluate_vec, spec.reference, xs)
        res = dpu.run_kernel(m.evaluate, xs, tasklets=16, sample_size=24)
        rows.append((fn, method, f"{res.cycles_per_element:.0f}",
                     f"{rep.rmse:.2e}"))
    print("activation function cost on one PIM core (16 tasklets):")
    print(format_table(["function", "method", "cycles/elem", "rmse"], rows))


if __name__ == "__main__":
    main()
