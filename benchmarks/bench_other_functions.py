"""Section 4.2.4: the other supported functions.

Regenerates the observations the paper makes beyond sine:

* tangent costs 2-3x a sine (sine + cosine + a float divide);
* D-LUT / DL-LUT are ~2x faster than the interpolated L-LUT sine pipeline
  for activation functions (tanh, GELU), at similar accuracy, because they
  need neither range extension nor an address add (Key Takeaway 4).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function


def _microbench(function, method, **params):
    rng = np.random.default_rng(5)
    spec = get_function(function)
    lo, hi = spec.bench_domain
    xs = rng.uniform(lo, hi, 2048).astype(np.float32)
    m = make_method(function, method, assume_in_range=False, **params).setup()
    rep = measure(m.evaluate_vec, spec.reference, xs)
    slots = m.mean_slots(xs[:24])
    return {"function": function, "method": method,
            "cycles": slots, "rmse": rep.rmse}


def _collect():
    rows = []
    rows.append(_microbench("sin", "llut_i", density_log2=12))
    rows.append(_microbench("cos", "llut_i", density_log2=12))
    rows.append(_microbench("tan", "llut_i", density_log2=12))
    rows.append(_microbench("tanh", "llut_i", density_log2=12))
    rows.append(_microbench("tanh", "dlut_i", mant_bits=8))
    rows.append(_microbench("tanh", "dllut_i", mant_bits=8))
    rows.append(_microbench("gelu", "dlut_i", mant_bits=8))
    rows.append(_microbench("gelu", "dllut_i", mant_bits=8))
    rows.append(_microbench("sigmoid", "dllut_i", mant_bits=8))
    rows.append(_microbench("cndf", "dllut_i", mant_bits=8))
    rows.append(_microbench("exp", "llut_i", density_log2=14))
    rows.append(_microbench("log", "llut_i", density_log2=14))
    rows.append(_microbench("sqrt", "llut_i", density_log2=14))
    return rows


def test_other_functions(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = format_table(
        ["function", "method", "cycles/elem", "rmse"],
        [(r["function"], r["method"], f"{r['cycles']:.1f}",
          f"{r['rmse']:.3e}") for r in rows],
    )
    report = "Section 4.2.4: other supported functions\n" + table
    print()
    print(report)
    write_report("other_functions.txt", report)

    by = {(r["function"], r["method"]): r for r in rows}
    sin = by[("sin", "llut_i")]["cycles"]
    tan = by[("tan", "llut_i")]["cycles"]
    assert 1.5 < tan / sin < 3.5  # paper: 2-3x

    # Key Takeaway 4: D-LUT family beats the sine L-LUT pipeline.
    for fn in ("tanh", "gelu"):
        fast = by[(fn, "dlut_i")]["cycles"]
        assert fast < 0.8 * sin, fn
        assert by[(fn, "dlut_i")]["rmse"] < 1e-5
