"""Topology bench: rank-parallel unbalanced transfers vs the flat model.

The flat pre-topology model serializes an *unbalanced* scatter/gather for
the whole system at the single-bank bandwidth (Section 2.1) — one stream
of bytes, no matter how many ranks the transfer actually touches.  The
hierarchical topology model fans the serialization across the touched
ranks ("UPMEM Unleashed", PAPERS.md): each rank's burst is independent,
so an unbalanced transfer over the full 2545-DPU paper system completes
``n_ranks``-fold faster.

Committed floors (simulated time — deterministic, asserted on any host):

* the transfer components speed up *exactly* by the touched-rank count
  (40 on the full paper system);
* end-to-end, an unbalanced transfer-heavy launch is >= 4x faster with
  rank-parallel transfers than under the flat serial model;
* a rank-aligned sharded dispatch preserves the win: its unbalanced
  transfer time also beats the flat serial model by >= 4x in aggregate.
"""

import math

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.pim.topology import PAPER_TOPOLOGY
from repro.plan.dispatch import execute_sharded
from repro.plan.plan import TransferSchedule, compile_plan

#: Transfer-heavy sweep points: cheap kernels, so the unbalanced
#: scatter/gather dominates the flat serial launch.
POINTS = [
    ("sin", "llut_i", {"density_log2": 10}),
    ("sin", "mlut", {}),
    ("tanh", "dlut_i", {}),
]
_N = 1_000_000
_SHARDS = 8
#: End-to-end floor: the full system spans 40 ranks, so the transfer
#: terms shrink 40x; >= 4x total holds with huge margin whenever
#: transfers are a material part of the launch.
_FLOOR = 4.0


def _execute(system, method, rank_parallel, xs):
    plan = compile_plan(
        system, method, sample_size=64,
        transfers=TransferSchedule(balanced=False,
                                   rank_parallel=rank_parallel))
    return plan.execute(xs, virtual_n=_N)


def test_rank_parallel_transfer_floor(bench_seeds, write_report):
    """Unbalanced transfers: rank fan-out exact, end-to-end >= 4x."""
    system = PIMSystem(SystemConfig())
    ranks = PAPER_TOPOLOGY.ranks_in_range(0, system.config.n_dpus)
    rows = [f"paper topology: {PAPER_TOPOLOGY.signature()} "
            f"({ranks} ranks, {system.config.n_dpus} usable DPUs)",
            "",
            "point              flat_s      ranked_s    speedup  fanout"]
    speedups = []
    for fn, meth, knobs in POINTS:
        m = make_method(fn, meth, assume_in_range=False, **knobs)
        xs = default_inputs(fn, n=8192, seed=bench_seeds["topology"])
        flat = _execute(system, m, False, xs)
        ranked = _execute(system, m, True, xs)
        # The fan-out is exact arithmetic (up to one float divide), not a
        # tuning outcome.
        assert math.isclose(ranked.host_to_pim_seconds * ranks,
                            flat.host_to_pim_seconds, rel_tol=1e-12)
        assert math.isclose(ranked.pim_to_host_seconds * ranks,
                            flat.pim_to_host_seconds, rel_tol=1e-12)
        assert ranked.kernel_seconds == flat.kernel_seconds
        speedup = flat.total_seconds / ranked.total_seconds
        speedups.append(speedup)
        rows.append(f"{fn + ':' + meth:<16} {flat.total_seconds:>10.6f}  "
                    f"{ranked.total_seconds:>10.6f}  {speedup:>6.2f}x  "
                    f"{ranks:>5}x")
    floor = min(speedups)
    rows.append("")
    rows.append(f"worst end-to-end speedup: {floor:.2f}x "
                f"(committed floor {_FLOOR:.1f}x)")
    report = "\n".join(rows)
    print("\n" + report)
    write_report("topology_transfers.txt", report)
    assert floor >= _FLOOR


def test_rank_aligned_sharded_floor(bench_seeds, write_report):
    """Rank-aligned sharding keeps the rank-parallel transfer win."""
    system = PIMSystem(SystemConfig())
    m = make_method("sin", "llut_i", density_log2=10,
                    assume_in_range=False)
    xs = default_inputs("sin", n=65536, seed=bench_seeds["topology"])

    def dispatch(rank_parallel):
        plan = compile_plan(
            system, m, sample_size=64,
            transfers=TransferSchedule(balanced=False,
                                       rank_parallel=rank_parallel))
        return execute_sharded(plan, xs, n_shards=_SHARDS, overlap=True,
                               rank_aligned=True)

    flat = dispatch(False)
    ranked = dispatch(True)
    # Every shard is a whole-rank span, so each shard's fan-out equals
    # its own rank count and no shard straddles a rank boundary.
    spans = PAPER_TOPOLOGY.split_ranks(_SHARDS)
    for s, (lo, hi) in zip(ranked.shards, spans):
        shard_ranks = PAPER_TOPOLOGY.ranks_in_range(lo, hi)
        assert shard_ranks >= 1
    transfer_flat = sum(s.result.host_to_pim_seconds
                        + s.result.pim_to_host_seconds
                        for s in flat.shards)
    transfer_ranked = sum(s.result.host_to_pim_seconds
                          + s.result.pim_to_host_seconds
                          for s in ranked.shards)
    speedup = transfer_flat / transfer_ranked
    report = (f"rank-aligned {_SHARDS}-shard dispatch over "
              f"{PAPER_TOPOLOGY.signature()}\n"
              f"unbalanced transfer seconds: flat {transfer_flat:.6f}  "
              f"ranked {transfer_ranked:.6f}  speedup {speedup:.2f}x "
              f"(committed floor {_FLOOR:.1f}x)\n"
              f"end-to-end: flat {flat.total_seconds:.6f}  "
              f"ranked {ranked.total_seconds:.6f}")
    print("\n" + report)
    write_report("topology_sharded.txt", report)
    assert speedup >= _FLOOR
    assert ranked.total_seconds < flat.total_seconds
