"""Ablation: fully fixed-point CORDIC (extension beyond the paper).

The paper's Figure 5 CORDIC keeps the rotation vector in emulated float32.
On an FP-less core the vector can live in s1.30 fixed point — shifts and
adds only.  This ablation quantifies the gap: the fixed rotation reaches the
same (or better) accuracy at a fraction of the cycles, repositioning CORDIC
on the Figure 5 tradeoff map.
"""


from repro.analysis.report import format_table
from repro.analysis.sweep import default_inputs, sweep_method


def _collect(seed):
    inputs = default_inputs("sin", n=8192, seed=seed)
    rows = []
    for method in ("cordic", "cordic_fx"):
        rows += sweep_method("sin", method, "iterations",
                             (12, 20, 28), inputs=inputs, sample_size=12)
    rows += sweep_method("sin", "llut_i", "density_log2", (12,),
                         inputs=inputs, sample_size=12)
    return rows


def test_fixed_cordic_ablation(benchmark, write_report, bench_seeds):
    points = benchmark.pedantic(
        _collect, args=(bench_seeds["ablation_fixed_cordic"],),
        rounds=1, iterations=1)
    report = ("Ablation: float vs fixed-point CORDIC (sine)\n"
              + format_table(
                  ["method", "param", "rmse", "cycles/elem"],
                  [(p.method, p.param, f"{p.rmse:.2e}",
                    f"{p.cycles_per_element:.0f}") for p in points]))
    print()
    print(report)
    write_report("ablation_fixed_cordic.txt", report)

    by = {(p.method, p.param): p for p in points}
    for it in ("iterations=12", "iterations=20", "iterations=28"):
        fl = by[("cordic", it)]
        fx = by[("cordic_fx", it)]
        # Same rotation, far fewer cycles, no accuracy loss.
        assert fx.cycles_per_element < 0.35 * fl.cycles_per_element
        assert fx.rmse < fl.rmse * 1.5

    # At 28 iterations the fixed CORDIC becomes competitive with the
    # interpolated L-LUT — a design point the paper's float CORDIC never
    # reaches.
    fx28 = by[("cordic_fx", "iterations=28")]
    llut = by[("llut_i", "density_log2=12")]
    assert fx28.cycles_per_element < 3 * llut.cycles_per_element
