"""Ablation: is Figure 5's method ordering robust to cost-model error?

Our DPU instruction costs are calibrated, not measured on hardware (see
DESIGN.md).  This ablation rescales all softfloat costs by 0.5x and 2x and
verifies that every ordering the paper's takeaways rest on survives, and
also reports the idealized-FP comparison (a hypothetical PIM core with a
single-cycle FPU).
"""

from repro.analysis.ablation import (
    EXPECTED_ORDERINGS,
    cost_sensitivity,
    idealized_comparison,
)
from repro.analysis.report import format_table


def test_cost_model_sensitivity(benchmark, write_report):
    results = benchmark.pedantic(
        lambda: cost_sensitivity(scales=(0.5, 1.0, 2.0)),
        rounds=1, iterations=1,
    )
    rows = []
    for r in results:
        for (fast, slow) in EXPECTED_ORDERINGS:
            rows.append((
                f"{r['scale']}x", f"{fast} < {slow}",
                f"{r['cycles'][fast]:.0f} vs {r['cycles'][slow]:.0f}",
                "holds" if r["orderings"][f"{fast}<{slow}"] else "BROKEN",
            ))
    report = ("Ablation: softfloat cost scaling vs method ordering\n"
              + format_table(["fp-cost scale", "ordering", "cycles", "status"],
                             rows))
    print()
    print(report)
    write_report("ablation_costmodel.txt", report)
    for r in results:
        assert all(r["orderings"].values()), r["scale"]


def test_idealized_fp_hardware(benchmark, write_report):
    res = benchmark.pedantic(idealized_comparison, rounds=1, iterations=1)
    rows = [
        (m, f"{res['upmem'][m]:.0f}", f"{res['idealized_fp'][m]:.0f}")
        for m in res["upmem"]
    ]
    report = ("Ablation: UPMEM-like vs idealized single-cycle-FP core "
              "(cycles/elem, sine @ ~1e-7)\n"
              + format_table(["method", "upmem", "idealized"], rows))
    print()
    print(report)
    write_report("ablation_idealized.txt", report)
    # With an FPU, the M-LUT/L-LUT gap collapses: TransPimLib's advantage
    # is specific to FP-emulating PIM cores.
    gap_upmem = res["upmem"]["mlut_i"] / res["upmem"]["llut"]
    gap_ideal = res["idealized_fp"]["mlut_i"] / res["idealized_fp"]["llut"]
    assert gap_ideal < gap_upmem
