"""Table 2: implementation methods and supported functions.

Regenerates the support matrix and *executes* it: every supported pair is
instantiated, set up, and evaluated for sanity.
"""

import numpy as np

from repro.analysis.figures import table2_report
from repro.api import make_method
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT

_PARAMS = {
    "cordic": {"iterations": 20},
    "cordic_fx": {"iterations": 20},
    "poly": {"degree": 12},
    "slut_i": {"target_rmse": 1e-5, "seg_bits": 4},
    "cordic_lut": {"iterations": 20, "lut_bits": 5},
    "mlut": {"size": 4096},
    "mlut_i": {"size": 1025},
    "llut": {"density_log2": 12},
    "llut_i": {"density_log2": 10},
    "llut_fx": {"density_log2": 12},
    "llut_i_fx": {"density_log2": 10},
    "dlut": {"mant_bits": 8},
    "dlut_i": {"mant_bits": 8},
    "dllut": {"mant_bits": 8},
    "dllut_i": {"mant_bits": 8},
}


def _exercise_matrix():
    rng = np.random.default_rng(1)
    count = 0
    for method, funcs in METHOD_SUPPORT.items():
        for fn in funcs:
            spec = get_function(fn)
            lo, hi = spec.bench_domain
            xs = rng.uniform(lo, hi, 64).astype(np.float32)
            m = make_method(fn, method, assume_in_range=False,
                            **_PARAMS[method]).setup()
            out = m.evaluate_vec(xs)
            assert np.all(np.isfinite(out)), (method, fn)
            count += 1
    return count


def test_table2_support_matrix(benchmark, write_report):
    pairs = benchmark.pedantic(_exercise_matrix, rounds=1, iterations=1)
    report = table2_report() + f"\n\nexecuted pairs: {pairs}"
    print()
    print(report)
    write_report("table2_support.txt", report)
    assert pairs == sum(len(v) for v in METHOD_SUPPORT.values())
