"""Figure 5: PIM execution cycles per element vs RMSE, all sine methods.

Regenerates the paper's central figure: LUT methods flat in cycles, CORDIC
growing linearly with accuracy, L-LUT dominating M-LUT, fixed-point
interpolated L-LUT doubling the float version, and WRAM/MRAM curves
coinciding.
"""

from repro.analysis.sweep import default_inputs, sweep_method
from repro.obs.bench import fig5_artifact_texts


def test_fig5_cycles_vs_rmse(benchmark, sine_points, write_report,
                             bench_seeds):
    inputs = default_inputs("sin", n=4096, seed=bench_seeds["fig5_cycles"])

    def measure_one():
        return sweep_method("sin", "llut_i", "density_log2", (11,),
                            inputs=inputs, sample_size=16)[0]

    point = benchmark(measure_one)
    # The artifact texts come from the same renderer the staleness guard
    # (repro bench --check-fig5) re-derives, so they cannot drift apart.
    artifacts = fig5_artifact_texts(sine_points)
    print()
    print(artifacts["fig5_cycles.txt"])
    for name, text in artifacts.items():
        write_report(name, text)

    # The figure's headline orderings must hold in the regenerated data.
    best = {}
    for p in sine_points:
        if p.placement != "mram":
            continue
        best.setdefault(p.method, []).append(p.cycles_per_element)
    assert min(best["llut"]) < min(best["mlut"]) * 0.4
    assert min(best["llut_i_fx"]) < min(best["llut_i"]) * 0.5
    assert max(best["cordic"]) > 4 * min(best["llut_i"])
    assert point.cycles_per_element > 0
