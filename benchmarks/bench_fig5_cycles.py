"""Figure 5: PIM execution cycles per element vs RMSE, all sine methods.

Regenerates the paper's central figure: LUT methods flat in cycles, CORDIC
growing linearly with accuracy, L-LUT dominating M-LUT, fixed-point
interpolated L-LUT doubling the float version, and WRAM/MRAM curves
coinciding.
"""

from repro.analysis.chart import scatter_chart
from repro.analysis.export import sweep_to_csv, sweep_to_json
from repro.analysis.figures import fig5_report
from repro.analysis.sweep import default_inputs, sweep_method


def test_fig5_cycles_vs_rmse(benchmark, sine_points, write_report,
                             bench_seeds):
    inputs = default_inputs("sin", n=4096, seed=bench_seeds["fig5_cycles"])

    def measure_one():
        return sweep_method("sin", "llut_i", "density_log2", (11,),
                            inputs=inputs, sample_size=16)[0]

    point = benchmark(measure_one)
    report = fig5_report(sine_points)
    series = {}
    for p in sine_points:
        if p.placement == "mram":
            series.setdefault(p.method, []).append(
                (p.rmse, p.cycles_per_element))
    chart = scatter_chart(series, x_label="rmse", y_label="cycles/elem")
    report = report + "\n\n" + chart
    print()
    print(report)
    write_report("fig5_cycles.txt", report)
    write_report("fig5_cycles.json", sweep_to_json(sine_points))
    write_report("fig5_cycles.csv", sweep_to_csv(sine_points))

    # The figure's headline orderings must hold in the regenerated data.
    best = {}
    for p in sine_points:
        if p.placement != "mram":
            continue
        best.setdefault(p.method, []).append(p.cycles_per_element)
    assert min(best["llut"]) < min(best["mlut"]) * 0.4
    assert min(best["llut_i_fx"]) < min(best["llut_i"]) * 0.5
    assert max(best["cordic"]) > 4 * min(best["llut_i"])
    assert point.cycles_per_element > 0
