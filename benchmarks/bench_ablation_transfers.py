"""Ablation: balanced vs unbalanced host<->PIM transfers (Section 2.1).

The UPMEM runtime scatters/gathers in parallel across all MRAM banks only
when every bank's buffer has the same size; otherwise transfers serialize
at single-bank bandwidth.  This ablation quantifies how severe that cliff
is for Figure 9's Blackscholes — and why even data distribution is part of
the workload design.
"""

from repro.analysis.report import format_table
from repro.pim.system import PIMSystem
from repro.workloads.blackscholes import Blackscholes, generate_options

N = 10_000_000


def _collect():
    system = PIMSystem()
    batch = generate_options(2000)
    bs = Blackscholes("llut_i").setup()
    rows = []
    for balanced in (True, False):
        res = system.run(
            bs.kernel, batch.records(), tasklets=16, sample_size=24,
            bytes_in_per_element=20, bytes_out_per_element=4,
            balanced_transfers=balanced, virtual_n=N,
        )
        rows.append({
            "mode": "balanced (parallel)" if balanced else
                    "unbalanced (serial)",
            "h2p": res.host_to_pim_seconds,
            "p2h": res.pim_to_host_seconds,
            "total": res.total_seconds,
        })
    return rows


def test_transfer_balance_ablation(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Ablation: transfer balance (Blackscholes, 10M options)\n"
              + format_table(
                  ["transfer mode", "scatter", "gather", "total"],
                  [(r["mode"], f"{r['h2p'] * 1e3:.1f} ms",
                    f"{r['p2h'] * 1e3:.1f} ms",
                    f"{r['total'] * 1e3:.1f} ms") for r in rows]))
    print()
    print(report)
    write_report("ablation_transfers.txt", report)

    balanced, serial = rows
    # Serial transfers are an order of magnitude slower and flip the
    # workload from compute-bound to transfer-bound.
    assert serial["h2p"] > 10 * balanced["h2p"]
    assert serial["total"] > 2 * balanced["total"]
