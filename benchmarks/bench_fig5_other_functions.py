"""Figure-5-style sweeps for exp and tanh (Section 4.2.4: "general trends
for other functions are similar to those of the sine").

Verifies the sine conclusions transfer: LUT methods flat and ordered
L-LUT < M-LUT, CORDIC growing, and — specific to tanh — the D-LUT family
entering below everything else.
"""

from repro.analysis.report import format_table
from repro.analysis.sweep import default_inputs, sweep_method

_GRIDS = {
    "exp": [
        ("cordic", "iterations", (12, 20, 28), None),
        ("mlut", "size", (1 << 14, 1 << 18), None),
        ("mlut_i", "size", (257, 4097), None),
        ("llut", "density_log2", (14, 18), None),
        ("llut_i", "density_log2", (8, 12), None),
    ],
    "tanh": [
        ("cordic", "iterations", (12, 20, 28), None),
        ("mlut_i", "size", (1025, 16385), None),
        ("llut_i", "density_log2", (8, 12), None),
        ("dlut_i", "mant_bits", (6, 10), None),
        ("dllut_i", "mant_bits", (6, 10), None),
    ],
}


def _collect(function, seed):
    inputs = default_inputs(function, n=8192, seed=seed)
    points = []
    for method, knob, values, extra in _GRIDS[function]:
        points += sweep_method(function, method, knob, values,
                               inputs=inputs, sample_size=12,
                               extra_params=extra)
    return points


def test_fig5_exp(benchmark, write_report, bench_seeds):
    seed = bench_seeds["fig5_other_functions"]
    points = benchmark.pedantic(lambda: _collect("exp", seed), rounds=1,
                                iterations=1)
    report = ("Figure 5 analogue: exp methods (natural range [0, ln2))\n"
              + format_table(
                  ["method", "param", "rmse", "cycles/elem"],
                  [(p.method, p.param, f"{p.rmse:.2e}",
                    f"{p.cycles_per_element:.0f}") for p in points]))
    print()
    print(report)
    write_report("fig5_exp.txt", report)

    by = {}
    for p in points:
        by.setdefault(p.method, []).append(p.cycles_per_element)
    assert min(by["llut"]) < 0.5 * min(by["mlut"])
    assert min(by["llut_i"]) < min(by["mlut_i"])
    assert min(by["cordic"]) > max(by["llut_i"])


def test_fig5_tanh(benchmark, write_report, bench_seeds):
    seed = bench_seeds["fig5_other_functions"]
    points = benchmark.pedantic(lambda: _collect("tanh", seed), rounds=1,
                                iterations=1)
    report = ("Figure 5 analogue: tanh methods (natural range [0, 8))\n"
              + format_table(
                  ["method", "param", "rmse", "cycles/elem"],
                  [(p.method, p.param, f"{p.rmse:.2e}",
                    f"{p.cycles_per_element:.0f}") for p in points]))
    print()
    print(report)
    write_report("fig5_tanh.txt", report)

    by = {}
    for p in points:
        by.setdefault(p.method, []).append(p)
    # Key Takeaway 4: D-LUT family cheapest for tanh at good accuracy.
    best_dlut = min(by["dlut_i"], key=lambda p: p.cycles_per_element)
    assert best_dlut.cycles_per_element < min(
        p.cycles_per_element for p in by["llut_i"])
    dense_dlut = min(by["dlut_i"], key=lambda p: p.rmse)
    assert dense_dlut.rmse < 1e-5
