"""Ablation: does a minimax-grade polynomial baseline close the LUT gap?

Figure 9's PIM baseline uses polynomial approximation; ours uses Taylor
terms.  Minimax polynomials (Remez-fitted) need 2-3 fewer terms at equal
accuracy — the strongest possible polynomial baseline.  This ablation
rebuilds the exp kernel with the *minimal-degree* minimax polynomial
reaching float32-grade accuracy and shows the LUT advantage persists:
every polynomial term is a softfloat multiply-add, and even six of them
cost more than an entire interpolated lookup.
"""

import math

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.core.minimax import horner, horner_vec, remez
from repro.core.range_reduction import ExpSplitReducer
from repro.isa.counter import CycleCounter
from repro.workloads.polynomial import poly_exp_vec

_F32 = np.float32


def _minimax_exp_method(target=2e-7):
    """Smallest-degree minimax exp on [0, ln2) reaching ``target``."""
    for degree in range(3, 14):
        fit = remez(np.exp, degree, (0.0, math.log(2)))
        if fit.max_error < target:
            return degree, fit
    raise AssertionError("minimax did not converge to target")


def _collect():
    degree, fit = _minimax_exp_method()
    coeffs = fit.coefficients_f32_desc()
    reducer = ExpSplitReducer()
    spec = get_function("exp")
    rng = np.random.default_rng(31)
    xs = rng.uniform(-10, 10, 4096).astype(_F32)

    def minimax_exp_scalar(ctx, x):
        f, k = reducer.reduce(ctx, _F32(x))
        return reducer.reconstruct(ctx, horner(ctx, coeffs, f), k)

    def minimax_exp_vec(v):
        f, k = reducer.reduce_vec(np.asarray(v, dtype=_F32))
        return reducer.reconstruct_vec(horner_vec(coeffs, f), k)

    rows = []

    ctx = CycleCounter()
    minimax_exp_scalar(ctx, _F32(1.7))
    rep = measure(minimax_exp_vec, spec.reference, xs)
    rows.append((f"minimax poly (degree {degree})", ctx.reset().slots,
                 rep.mean_ulp_error))

    from repro.workloads.polynomial import poly_exp
    ctx = CycleCounter()
    poly_exp(ctx, _F32(1.7))
    rep = measure(poly_exp_vec, spec.reference, xs)
    rows.append(("taylor poly (10 terms)", ctx.reset().slots,
                 rep.mean_ulp_error))

    lut = make_method("exp", "llut_i", density_log2=14,
                      assume_in_range=False).setup()
    rep = measure(lut.evaluate_vec, spec.reference, xs)
    rows.append(("interp L-LUT", lut.element_tally(1.7).slots,
                 rep.mean_ulp_error))
    return rows


def test_minimax_baseline_ablation(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Ablation: strongest polynomial baseline vs LUT (exp, full "
              "domain)\n"
              + format_table(
                  ["implementation", "slots/elem", "mean ULP error"],
                  [(name, s, f"{u:.1f}") for name, s, u in rows]))
    print()
    print(report)
    write_report("ablation_minimax.txt", report)

    by = {name.split(" (")[0]: s for name, s, _ in rows}
    # Minimax saves terms over Taylor...
    assert by["minimax poly"] < by["taylor poly"]
    # ...but the LUT still wins clearly (Key Takeaway 1 is robust to the
    # strongest polynomial baseline).  The shared range-extension cost
    # (~1150 slots) dilutes the ratio; the core computation itself is ~2.5x
    # cheaper for the lookup.
    assert by["interp L-LUT"] < 0.7 * by["minimax poly"]
    # All three are accurate (ULP-grade) — this is an equal-accuracy fight.
    assert all(u < 16 for _, _, u in rows)
