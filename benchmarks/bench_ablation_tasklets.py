"""Ablation: tasklet scaling and LUT placement (Observation 4).

Cycles per element as the tasklet count grows: the fine-grained
multithreaded pipeline saturates at 11 tasklets, and once saturated,
MRAM-resident LUTs perform like WRAM-resident ones because DMA latency hides
behind the other tasklets' instructions.
"""

import pytest

from repro.analysis.ablation import tasklet_scaling
from repro.analysis.report import format_table


def test_tasklet_scaling(benchmark, write_report):
    rows = benchmark.pedantic(
        lambda: tasklet_scaling(tasklet_counts=(1, 2, 4, 8, 11, 16, 24)),
        rounds=1, iterations=1,
    )
    report = ("Ablation: interpolated L-LUT cycles/element vs tasklets\n"
              + format_table(
                  ["placement", "tasklets", "cycles/elem"],
                  [(r["placement"], r["tasklets"],
                    f"{r['cycles_per_element']:.1f}") for r in rows]))
    print()
    print(report)
    write_report("ablation_tasklets.txt", report)

    mram = {r["tasklets"]: r["cycles_per_element"]
            for r in rows if r["placement"] == "mram"}
    wram = {r["tasklets"]: r["cycles_per_element"]
            for r in rows if r["placement"] == "wram"}
    # Saturation at the issue spacing.
    assert mram[16] == pytest.approx(mram[11], rel=0.02)
    assert mram[1] > 5 * mram[16]
    # Observation 4: no significant MRAM/WRAM difference when saturated.
    assert mram[16] < 1.1 * wram[16]
