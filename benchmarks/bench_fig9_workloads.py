"""Figure 9: full-workload execution times.

Blackscholes (10M options), Sigmoid and Softmax (30M elements) on 2545
simulated PIM cores with 16 tasklets each, against 1- and 32-thread CPU
baseline models and the polynomial-approximation PIM baseline.
"""

import pytest

from repro.analysis.figures import fig9_data, fig9_report


@pytest.fixture(scope="module")
def rows():
    return fig9_data(trace_elements=4000)


def _time(rows, workload, config):
    return next(r.seconds for r in rows
                if r.workload == workload and r.config == config)


def test_fig9_workloads(benchmark, rows, write_report):
    benchmark.pedantic(
        lambda: fig9_data(trace_elements=500), rounds=1, iterations=1
    )
    report = fig9_report(rows)
    print()
    print(report)
    write_report("fig9_workloads.txt", report)


def test_fig9_blackscholes_shape(benchmark, rows, write_report):
    """Paper: LUT versions 5-10x over poly; fixed L-LUT beats the 32T CPU."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    poly = _time(rows, "blackscholes", "pim_poly")
    llut = _time(rows, "blackscholes", "pim_llut_i")
    fixed = _time(rows, "blackscholes", "pim_llut_i_fx")
    cpu32 = _time(rows, "blackscholes", "cpu_32t")
    assert 2.5 < poly / llut < 12
    assert fixed < cpu32          # the paper's 62%-faster headline
    assert llut < 2.0 * cpu32     # "within 75-82% of the CPU"


def test_fig9_activation_shape(benchmark, rows):
    """Paper: CPU ~2x faster than PIM for sigmoid/softmax; poly 50-75%
    slower than the TransPimLib versions."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for wl in ("sigmoid", "softmax"):
        cpu32 = _time(rows, wl, "cpu_32t")
        llut = _time(rows, wl, "pim_llut_i")
        poly = _time(rows, wl, "pim_poly")
        assert 1.0 < llut / cpu32 < 5.0, wl
        assert 1.5 < poly / llut < 5.0, wl


def test_fig9_data_movement_saving(benchmark, rows):
    """Section 4.3: executing the function in the PIM cores avoids the
    PIM->host->PIM round trip of Figure 1(b).  Compute-only PIM time must
    beat the transfer-inclusive path by a wide margin."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.pim.system import PIMSystem
    from repro.workloads.sigmoid import Sigmoid, generate_inputs

    system = PIMSystem()
    xs = generate_inputs(2000)
    sg = Sigmoid("llut_i").setup()
    res = sg.run(xs, system, virtual_n=30_000_000)
    # Round trip (Fig 1(b)): results out + back in, twice the transfers.
    round_trip = 2 * (res.host_to_pim_seconds + res.pim_to_host_seconds)
    assert res.compute_only_seconds < 20 * round_trip  # same order
    assert round_trip > 0
