"""Plan-cache throughput: warm execute() stream vs repeated cold run().

The point of the plan/execute split is that a Figure-5-style sweep — the
same handful of method configurations launched over and over — stops paying
table generation, path classification, and tracing on every launch.  This
bench pins that with a wall-clock floor: a PlanCache-warm ``execute()``
stream must be at least 5x faster than rebuilding each method and calling
``PIMSystem.run`` per launch, while producing bit-identical timings.
"""

import time

from repro.api import make_method
from repro.analysis.sweep import default_inputs
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.cache import PlanCache

#: Fig5-style points: one method family swept over table densities.
POINTS = [("llut_i", {"density_log2": d}) for d in (6, 9, 12)]
_REPEAT = 8


def _make(method, params):
    return make_method("sin", method, assume_in_range=False, **params)


def test_plan_cache_speedup_floor(bench_seeds, write_report):
    """Warm plans must beat per-launch rebuilds by >= 5x wall-clock.

    Measured margin is ~7-10x (the warm stream still pays method
    construction and signature hashing for the cache lookup), so the 5x
    floor leaves headroom for a loaded CI core.
    """
    system = PIMSystem(SystemConfig(n_dpus=64))
    xs = default_inputs("sin", n=4096, seed=bench_seeds["plan_cache"])

    # Warm both code paths (imports, numpy dispatch) outside the timers.
    cache = PlanCache()
    for method, params in POINTS:
        cache.plan(system, _make(method, params)).execute(xs)

    t0 = time.perf_counter()
    cold = []
    for _ in range(_REPEAT):
        for method, params in POINTS:
            m = _make(method, params).setup()
            cold.append(system.run(m.evaluate, xs))
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = []
    for _ in range(_REPEAT):
        for method, params in POINTS:
            plan = cache.plan(system, _make(method, params))
            warm.append(plan.execute(xs))
    t_warm = time.perf_counter() - t0

    # Same simulated numbers, bit for bit — speed must not change physics.
    for a, b in zip(cold, warm):
        assert a.total_seconds == b.total_seconds
        assert a.per_dpu.cycles == b.per_dpu.cycles

    speedup = t_cold / t_warm
    stats = cache.stats()
    launches = _REPEAT * len(POINTS)
    report = "\n".join([
        "plan-cache throughput (fig5-style sweep, "
        f"{launches} launches x {xs.size} elements)",
        f"  cold run() stream : {t_cold * 1e3:9.1f} ms",
        f"  warm execute()    : {t_warm * 1e3:9.1f} ms",
        f"  speedup           : {speedup:9.1f}x (floor: 5x)",
        f"  plan cache        : {stats['hits']} hits, "
        f"{stats['misses']} misses, {stats['plans']} plans",
    ])
    print("\n" + report)
    write_report("plan_cache.txt", report)

    assert speedup >= 5.0, (
        f"warm plans only {speedup:.1f}x faster than cold runs"
    )
