"""Library-level throughput benchmarks (pytest-benchmark proper).

These time the *Python library itself* — vectorized accuracy evaluation and
traced-cost measurement — so regressions in the reproduction's own code show
up as benchmark regressions.
"""

import pytest

from repro.api import make_method
from repro.analysis.sweep import default_inputs

_N = 1 << 16


@pytest.fixture(scope="module")
def inputs(bench_seeds):
    return default_inputs("sin", n=_N, seed=bench_seeds["library_throughput"])


@pytest.mark.parametrize("method,params", [
    ("llut", {"density_log2": 12}),
    ("llut_i", {"density_log2": 12}),
    ("llut_i_fx", {"density_log2": 12}),
    ("mlut_i", {"size": 4097}),
    ("cordic", {"iterations": 24}),
])
def test_vectorized_eval_throughput(benchmark, inputs, method, params):
    m = make_method("sin", method, assume_in_range=True, **params).setup()
    out = benchmark(m.evaluate_vec, inputs)
    assert out.shape == inputs.shape


def test_traced_element_throughput(benchmark, inputs):
    m = make_method("sin", "llut_i", density_log2=12).setup()
    slots = benchmark(m.mean_slots, inputs[:32])
    assert slots > 0


def test_batched_tally_throughput(benchmark, inputs):
    """The batched path engine over the full 2^16-element array."""
    from repro.batch import batch_tally
    m = make_method("sin", "llut_i", density_log2=12).setup()
    res = benchmark(batch_tally, m, inputs)
    assert res.batched and res.n == inputs.size


def test_batch_vs_scalar_tally_speedup(inputs):
    """The batched engine must beat per-element tracing by >= 10x.

    Both sides produce bit-identical tallies (the differential suite pins
    that); this pins the point of the engine — wall-clock.  The scalar
    baseline runs on a subset to keep the bench fast; rates are compared
    per element.  Measured margin is ~200-800x, so the 10x floor has
    plenty of headroom even on a loaded CI core.
    """
    import time

    from repro.batch import batch_tally, scalar_tally

    m = make_method("sin", "llut_i", density_log2=12).setup()
    batch_tally(m, inputs[:64])  # warm both code paths
    scalar_tally(m, inputs[:64])

    t0 = time.perf_counter()
    res = batch_tally(m, inputs)
    t1 = time.perf_counter()
    subset = inputs[:2048]
    t2 = time.perf_counter()
    scalar_tally(m, subset)
    t3 = time.perf_counter()

    assert res.batched
    batch_rate = inputs.size / (t1 - t0)
    scalar_rate = subset.size / (t3 - t2)
    assert batch_rate >= 10 * scalar_rate, (
        f"batched engine only {batch_rate / scalar_rate:.1f}x faster"
    )


def test_setup_throughput(benchmark):
    def build():
        return make_method("sin", "llut_i", density_log2=14).setup()

    m = benchmark(build)
    assert m.entries > 0
