"""Library-level throughput benchmarks (pytest-benchmark proper).

These time the *Python library itself* — vectorized accuracy evaluation and
traced-cost measurement — so regressions in the reproduction's own code show
up as benchmark regressions.
"""

import pytest

from repro.api import make_method
from repro.analysis.sweep import default_inputs

_N = 1 << 16


@pytest.fixture(scope="module")
def inputs():
    return default_inputs("sin", n=_N)


@pytest.mark.parametrize("method,params", [
    ("llut", {"density_log2": 12}),
    ("llut_i", {"density_log2": 12}),
    ("llut_i_fx", {"density_log2": 12}),
    ("mlut_i", {"size": 4097}),
    ("cordic", {"iterations": 24}),
])
def test_vectorized_eval_throughput(benchmark, inputs, method, params):
    m = make_method("sin", method, assume_in_range=True, **params).setup()
    out = benchmark(m.evaluate_vec, inputs)
    assert out.shape == inputs.shape


def test_traced_element_throughput(benchmark, inputs):
    m = make_method("sin", "llut_i", density_log2=12).setup()
    slots = benchmark(m.mean_slots, inputs[:32])
    assert slots > 0


def test_setup_throughput(benchmark):
    def build():
        return make_method("sin", "llut_i", density_log2=14).setup()

    m = benchmark(build)
    assert m.entries > 0
