"""Key Takeaway 2: the CORDIC-vs-L-LUT setup amortization crossover.

The paper estimates ~40 sine operations before the L-LUT's longer host setup
pays for itself against CORDIC's faster setup but slower per-element cost.
"""

from repro.analysis.crossover import amortization_crossover
from repro.analysis.report import format_table


def test_amortization_crossover(benchmark, sine_points, write_report):
    result = benchmark.pedantic(
        lambda: amortization_crossover(sine_points, rmse_target=1e-7),
        rounds=1, iterations=1,
    )
    assert result is not None
    report = "Key Takeaway 2: setup amortization crossover\n" + format_table(
        ["quantity", "value"],
        [
            ("accuracy level (RMSE)", f"{result.rmse_level:.1e}"),
            ("CORDIC cycles/elem", f"{result.cycles_flat:.0f}"),
            ("L-LUT-interp cycles/elem", f"{result.cycles_fast:.0f}"),
            ("CORDIC setup (s)", f"{result.setup_flat_s:.3e}"),
            ("L-LUT-interp setup (s)", f"{result.setup_fast_s:.3e}"),
            ("ops to amortize (paper: ~40)",
             f"{result.elements_to_amortize:.0f}"),
        ],
    )
    print()
    print(report)
    write_report("crossover.txt", report)
    assert 3 <= result.elements_to_amortize <= 400
