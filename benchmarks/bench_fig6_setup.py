"""Figure 6: host setup time vs RMSE for every sine method.

CORDIC setup is flat (a tiny angle table), LUT setup grows with table size,
and CORDIC+LUT sits slightly above CORDIC but stays flat — the structure
behind Key Takeaway 2 (CORDIC preferable for kernels computing only a few
transcendental operations).
"""

from repro.analysis.figures import fig6_report
from repro.api import make_method
from repro.core.setup_model import setup_seconds


def test_fig6_setup_vs_rmse(benchmark, sine_points, write_report):
    def setup_one():
        m = make_method("sin", "llut_i", density_log2=12).setup()
        return setup_seconds(m)

    benchmark(setup_one)
    report = fig6_report(sine_points)
    print()
    print(report)
    write_report("fig6_setup.txt", report)

    by_method = {}
    for p in sine_points:
        if p.placement != "mram":
            continue
        by_method.setdefault(p.method, []).append(p.setup_seconds)
    # CORDIC flat, LUTs growing, hybrid above CORDIC but flat.
    assert max(by_method["cordic"]) < 1.1 * min(by_method["cordic"])
    assert max(by_method["llut"]) > 10 * min(by_method["llut"])
    assert min(by_method["cordic_lut"]) > max(by_method["cordic"])
    assert max(by_method["cordic_lut"]) < 1.2 * min(by_method["cordic_lut"])
