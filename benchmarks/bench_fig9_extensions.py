"""Figure 9 extended: the best-achievable PIM configurations.

The paper's Figure 9 uses general-purpose method configurations (full range
extension, sigmoid via exp).  This bench adds the configurations a tuned
deployment would pick — direct function tabulation for sigmoid, the
bounded-argument exp table for softmax, the fully fixed Blackscholes kernel,
row-local attention softmax — and reports how far each moves the PIM bars.
"""

from repro.analysis.report import format_table
from repro.pim.system import PIMSystem
from repro.workloads.attention import AttentionSoftmax, generate_scores
from repro.workloads.blackscholes import Blackscholes, generate_options
from repro.workloads.cpu_model import CPU_BLACKSCHOLES, CPU_SIGMOID, CPU_SOFTMAX
from repro.workloads.sigmoid import Sigmoid
from repro.workloads.sigmoid import generate_inputs as sig_inputs
from repro.workloads.softmax import Softmax
from repro.workloads.softmax import generate_inputs as sm_inputs

N_BS = 10_000_000
N_VEC = 30_000_000


def _collect():
    system = PIMSystem()
    rows = []

    batch = generate_options(2000)
    rows.append(("blackscholes", "cpu_32t",
                 CPU_BLACKSCHOLES.seconds(N_BS, 32)))
    for variant in ("llut_i", "llut_i_fx", "fixed_full"):
        bs = Blackscholes(variant).setup()
        rows.append(("blackscholes", f"pim_{variant}",
                     bs.run(batch, system, virtual_n=N_BS).total_seconds))

    xs = sig_inputs(2000)
    rows.append(("sigmoid", "cpu_32t", CPU_SIGMOID.seconds(N_VEC, 32)))
    for variant in ("llut_i", "direct_llut_i"):
        sg = Sigmoid(variant).setup()
        rows.append(("sigmoid", f"pim_{variant}",
                     sg.run(xs, system, virtual_n=N_VEC).total_seconds))

    xm = sm_inputs(2000)
    rows.append(("softmax", "cpu_32t", CPU_SOFTMAX.seconds(N_VEC, 32)))
    for variant in ("llut_i", "direct_llut_i"):
        sm = Softmax(variant).setup()
        rows.append(("softmax", f"pim_{variant}",
                     sm.run(xm, system, virtual_n=N_VEC).total_seconds))

    scores = generate_scores(500, row_len=64)
    att = AttentionSoftmax("direct_llut_i", row_len=64).setup()
    rows.append(("softmax (row-local)", "pim_attention",
                 att.run(scores, system,
                         virtual_rows=N_VEC // 64).total_seconds))
    return rows


def test_fig9_extensions(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Figure 9 extended: tuned PIM configurations "
              "(10M options / 30M elements)\n"
              + format_table(["workload", "configuration", "time"],
                             [(w, c, f"{t * 1e3:.1f} ms")
                              for w, c, t in rows]))
    print()
    print(report)
    write_report("fig9_extensions.txt", report)

    t = {(w, c): v for w, c, v in rows}
    # Direct tabulation narrows sigmoid's CPU gap substantially.
    assert t[("sigmoid", "pim_direct_llut_i")] < \
        0.7 * t[("sigmoid", "pim_llut_i")]
    # Tuned softmax beats the general configuration too.
    assert t[("softmax", "pim_direct_llut_i")] < \
        t[("softmax", "pim_llut_i")]
    # The fully fixed Blackscholes is the fastest configuration of all.
    assert t[("blackscholes", "pim_fixed_full")] < \
        t[("blackscholes", "pim_llut_i_fx")]
