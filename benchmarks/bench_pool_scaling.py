"""Pool scaling: pooled sharded dispatch vs inline on a full-rank sweep.

The point of ``repro.plan.pool`` is that a Figure-5-style sweep over the
full 2545-DPU system stops being bound by one host core: shards run as
real processes, the plan and its table images ship once per pool, and the
returned numbers stay bit-identical to the inline path.  This bench pins
both halves:

* wall clock — at 4 workers the pooled dispatch must be >= 2.5x faster
  than inline on the same sweep, with the p99 per-shard worker latency
  bounded (no straggler process hiding inside the average);
* simulated time — the fused launch-stream pipeline must beat serial
  launches (``saving_seconds > 0``), which holds on any host and is
  asserted unconditionally.

The wall-clock half needs real parallel hardware and is skipped below
4 CPUs; CI runs it on the 4-core tier.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.obs.tracer import Tracer, tracing
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.dispatch import execute_sharded
from repro.plan.plan import compile_plan
from repro.plan.pool import ShardPool
from repro.plan.session import PlanSession

#: Fig5-style points: one method family swept over table densities.
POINTS = [("llut_i", {"density_log2": d}) for d in (6, 10, 14)]
_FULL_RANK = 2545   # the paper's full-system DPU count
_N = 1_000_000
_SHARDS = 8
_WORKERS = 4


def _plans(system):
    for method, params in POINTS:
        m = make_method("sin", method, assume_in_range=False, **params)
        yield f"{method}:d{params['density_log2']}", compile_plan(system, m)


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < _WORKERS,
                    reason=f"needs >= {_WORKERS} CPUs for wall-clock scaling")
def test_pool_wall_clock_speedup(bench_seeds, write_report):
    """Pooled dispatch >= 2.5x inline at 4 workers, p99 shard bounded.

    Per-element mode keeps each shard CPU-bound (~1 us/element of host
    simulation work), so 8 shards of 125k elements give every worker two
    ~150 ms tasks — far above the few-ms shipping cost per task.
    """
    system = PIMSystem(SystemConfig(n_dpus=_FULL_RANK))
    xs = default_inputs("sin", n=_N, seed=bench_seeds["pool_scaling"])
    rows = ["point            inline_s  pooled_s  speedup  p99/med"]
    speedups, worst_skew = [], 0.0
    with ShardPool(_WORKERS, timeout=600.0) as pool:
        for name, plan in _plans(system):
            plan.execute(xs[:64], batch=False)  # warm tally cache
            pool.ship(plan)                     # warm shipment + workers

            t0 = time.perf_counter()
            r_inline = execute_sharded(plan, xs, n_shards=_SHARDS,
                                       overlap=True, batch=False)
            t_inline = time.perf_counter() - t0

            tracer = Tracer()
            t0 = time.perf_counter()
            with tracing(tracer):
                r_pool = execute_sharded(plan, xs, n_shards=_SHARDS,
                                         overlap=True, batch=False,
                                         pool=pool)
            t_pool = time.perf_counter() - t0

            # Speed must not change physics: bit-identical simulated time.
            assert r_pool.total_seconds == r_inline.total_seconds
            assert r_pool.serial_seconds == r_inline.serial_seconds

            # Worker-side wall time per shard, from the grafted spans.
            lat = sorted(
                sp.find("shard.execute").duration_ns / 1e9
                for sp in tracer.find("dispatch.run").children
                if sp.name == "shard")
            assert len(lat) == _SHARDS
            p99 = lat[min(_SHARDS - 1, int(0.99 * _SHARDS))]
            median = lat[_SHARDS // 2]
            skew = p99 / median if median > 0 else 1.0
            worst_skew = max(worst_skew, skew)
            speedups.append(t_inline / t_pool)
            rows.append(f"{name:<16} {t_inline:8.3f}  {t_pool:8.3f}  "
                        f"{t_inline / t_pool:6.2f}x  {skew:6.2f}")

    report = "\n".join(rows)
    print("\n" + report)
    write_report("pool_scaling.txt", report)
    # The sweep as a whole must scale; a single cold point may not.
    assert max(speedups) >= 2.5, f"best pooled speedup {max(speedups):.2f}x"
    # Even shards on warm workers: the slowest must stay near the median.
    assert worst_skew <= 4.0, f"p99/median shard latency {worst_skew:.2f}"


def test_stream_pipelining_beats_serial(bench_seeds, write_report):
    """Fused launch-stream saving > 0 in simulated time (any host).

    A Figure-5 sweep issued as one pipelined stream hides scatters and
    gathers behind other points' kernels; the scheduler's makespan must
    come in under the back-to-back sum.
    """
    from repro.pim.host import PIMRuntime

    system = PIMSystem(SystemConfig(n_dpus=_FULL_RANK))
    xs = default_inputs("sin", n=32_768, seed=bench_seeds["pool_scaling"])
    session = PlanSession(PIMRuntime(system))
    requests = []
    # Distinct method families: installed names are "<method>:sin".
    for method, params in (("llut_i", {"density_log2": 10}),
                           ("mlut_i", {}), ("cordic_lut", {})):
        m = make_method("sin", method, assume_in_range=False, **params)
        session.install(m)
        requests.append((f"{method}:sin", xs))

    stream = session.launch_stream(requests, shards=4)
    assert stream.pipelined_seconds < stream.serial_seconds
    assert stream.saving_seconds > 0.0

    rows = ["launches  shards  serial_s        pipelined_s     saving_s"]
    rows.append(f"{len(requests):>8}  {4:>6}  {stream.serial_seconds:.6e}  "
                f"{stream.pipelined_seconds:.6e}  "
                f"{stream.saving_seconds:.6e}")
    report = "\n".join(rows)
    print("\n" + report)
    write_report("pool_stream.txt", report)
