"""Figure 7: PIM memory consumption vs RMSE for every sine method.

Non-interpolated LUT accuracy is limited by available memory; CORDIC grows
only linearly (iterations x 4 bytes); interpolation buys accuracy without
memory — Key Takeaway 3.
"""

from repro.analysis.figures import fig7_report
from repro.api import make_method


def test_fig7_memory_vs_rmse(benchmark, sine_points, write_report):
    def table_bytes_one():
        return make_method("sin", "llut_i", density_log2=12).setup().table_bytes()

    benchmark(table_bytes_one)
    report = fig7_report(sine_points)
    print()
    print(report)
    write_report("fig7_memory.txt", report)

    mram = [p for p in sine_points if p.placement == "mram"]
    by_method = {}
    for p in mram:
        by_method.setdefault(p.method, []).append(p)

    # CORDIC memory is tiny at every accuracy.
    assert max(p.table_bytes for p in by_method["cordic"]) < 1024
    # Non-interpolated LUTs pay exponentially growing tables for accuracy.
    llut = sorted(by_method["llut"], key=lambda p: p.rmse)
    assert llut[0].table_bytes > 1000 * llut[-1].table_bytes

    # Interpolation: at matched accuracy, the interpolated table is far
    # smaller than the non-interpolated one.
    best_llut_i = min(by_method["llut_i"], key=lambda p: p.rmse)
    accurate_llut = [p for p in by_method["llut"]
                     if p.rmse <= 10 * best_llut_i.rmse]
    if accurate_llut:
        assert best_llut_i.table_bytes < min(
            p.table_bytes for p in accurate_llut
        )
