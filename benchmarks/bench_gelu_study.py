"""Study: direct GELU tabulation vs the tanh approximation on PIM.

On CPUs/GPUs the tanh approximation of GELU is the standard implementation.
On an FP-emulating PIM core the five softfloat multiplies wrapped around the
tanh cost more than an entire direct lookup — and the approximation's own
~1e-3 peak error caps accuracy no matter how good the tanh is.  Direct
tabulation wins on both axes, reinforcing the paper's Key Takeaway 4.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.composite import GeluViaTanh
from repro.core.functions.registry import get_function


def _collect():
    rng = np.random.default_rng(21)
    xs = rng.uniform(-8, 8, 4096).astype(np.float32)
    ref = get_function("gelu").reference

    candidates = [
        ("direct dlut_i", make_method("gelu", "dlut_i", mant_bits=8,
                                      assume_in_range=False)),
        ("direct dllut_i", make_method("gelu", "dllut_i", mant_bits=8,
                                       assume_in_range=False)),
        ("direct llut_i", make_method("gelu", "llut_i", density_log2=11,
                                      assume_in_range=False)),
        ("tanh-approx (dlut_i tanh)", GeluViaTanh(
            make_method("tanh", "dlut_i", mant_bits=8,
                        assume_in_range=True),
            assume_in_range=False)),
        ("tanh-approx (llut_i tanh)", GeluViaTanh(
            make_method("tanh", "llut_i", density_log2=12,
                        assume_in_range=True),
            assume_in_range=False)),
    ]
    rows = []
    for label, method in candidates:
        method.setup()
        rep = measure(method.evaluate_vec, ref, xs)
        rows.append({
            "label": label,
            "cycles": method.mean_slots(xs[:24]),
            "rmse": rep.rmse,
            "max_err": rep.max_abs_error,
            "bytes": method.table_bytes(),
        })
    return rows


def test_gelu_direct_vs_tanh_approximation(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("GELU on PIM: direct tabulation vs the tanh approximation\n"
              + format_table(
                  ["implementation", "cycles/elem", "rmse", "max err",
                   "bytes"],
                  [(r["label"], f"{r['cycles']:.0f}", f"{r['rmse']:.2e}",
                    f"{r['max_err']:.2e}", r["bytes"]) for r in rows]))
    print()
    print(report)
    write_report("gelu_study.txt", report)

    by = {r["label"]: r for r in rows}
    direct = by["direct dlut_i"]
    approx = by["tanh-approx (dlut_i tanh)"]
    assert direct["cycles"] < 0.5 * approx["cycles"]
    assert direct["rmse"] < approx["rmse"] / 100
    # Even a near-perfect tanh cannot beat the approximation's own floor.
    assert by["tanh-approx (llut_i tanh)"]["rmse"] > 1e-4
