"""Per-function accuracy/cycles matrix across every supporting method.

The arXiv version of the paper tabulates accuracy for every supported
function; this bench regenerates that view: one row per (function, method)
pair at a mid-range configuration, over each function's full bench domain
(range extension enabled).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT, PAPER_FUNCTIONS

_PARAMS = {
    "cordic": {"iterations": 28},
    "cordic_fx": {"iterations": 28},
    "poly": {"degree": 14},
    "slut_i": {"target_rmse": 1e-7, "seg_bits": 4},
    "cordic_lut": {"iterations": 28, "lut_bits": 6},
    "mlut": {"size": 1 << 16},
    "mlut_i": {"size": (1 << 12) + 1},
    "llut": {"density_log2": 16},
    "llut_i": {"density_log2": 12},
    "llut_fx": {"density_log2": 16},
    "llut_i_fx": {"density_log2": 12},
    "dlut": {"mant_bits": 12},
    "dlut_i": {"mant_bits": 8},
    "dllut": {"mant_bits": 12},
    "dllut_i": {"mant_bits": 8},
}


def _collect():
    rng = np.random.default_rng(13)
    rows = []
    for function in sorted(PAPER_FUNCTIONS):
        spec = get_function(function)
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, 4096).astype(np.float32)
        ref64 = spec.reference(xs.astype(np.float64))
        scale = max(1.0, float(np.max(np.abs(ref64))))
        for method, funcs in METHOD_SUPPORT.items():
            if function not in funcs:
                continue
            m = make_method(function, method, assume_in_range=False,
                            **_PARAMS[method]).setup()
            rep = measure(m.evaluate_vec, spec.reference, xs)
            rows.append({
                "function": function,
                "method": method,
                "rmse": rep.rmse,
                "ulp": rep.mean_ulp_error,
                "cycles": m.mean_slots(xs[:12]),
                "norm_rmse": rep.rmse / scale,
            })
    return rows


def test_accuracy_matrix(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Accuracy/cycles matrix: every supported (function, method) "
              "pair, full input domains\n"
              + format_table(
                  ["function", "method", "rmse", "mean ULP", "cycles/elem"],
                  [(r["function"], r["method"], f"{r['rmse']:.2e}",
                    f"{r['ulp']:.1f}", f"{r['cycles']:.0f}") for r in rows]))
    print()
    print(report)
    write_report("accuracy_matrix.txt", report)

    # Every interpolated/CORDIC configuration reaches good normalized
    # accuracy over its full domain.
    for r in rows:
        if r["method"] in ("llut_i", "mlut_i", "cordic"):
            assert r["norm_rmse"] < 5e-4, (r["function"], r["method"])
    # Full coverage: all supported paper-function pairs executed.
    expected = sum(1 for m, funcs in METHOD_SUPPORT.items()
                   for f in funcs if f in PAPER_FUNCTIONS)
    assert len(rows) == expected
