"""Ablation: why host tables must be generated in float64.

Section 2.2.2 notes that ``a_inv`` runs only at table-generation time, so
the host can afford full precision.  This ablation quantifies the cost of
cutting that corner: building the same interpolated L-LUT with a float32
host pipeline (float32 grid points through a float32 libm).  The measured
penalty is real but modest — ~10% extra RMSE at the accuracy floor, nothing
at coarse densities — because linear interpolation between neighbouring
entries partially cancels the correlated argument-rounding error.  The
float64 pipeline is still the right default (it is free), but this corner
is more forgiving than one might expect.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function


def _float32_host_variant(density_log2):
    """An L-LUT whose table is generated entirely in float32 (the corner
    a careless host implementation would cut)."""
    m = make_method("sin", "llut_i", density_log2=density_log2)
    m.setup()
    idx = np.arange(m.entries, dtype=np.float64)
    points32 = m.geom.a_inv(idx).astype(np.float32)          # rounded args
    m._table = np.sin(points32.astype(np.float32)).astype(np.float32)
    return m


def _collect():
    spec = get_function("sin")
    rng = np.random.default_rng(41)
    xs = rng.uniform(0, 2 * np.pi, 1 << 15).astype(np.float32)
    rows = []
    for density in (9, 11, 13):
        good = make_method("sin", "llut_i", density_log2=density).setup()
        bad = _float32_host_variant(density)
        e_good = measure(good.evaluate_vec, spec.reference, xs).rmse
        e_bad = measure(bad.evaluate_vec, spec.reference, xs).rmse
        rows.append({"density": density, "float64_host": e_good,
                     "float32_host": e_bad})
    return rows


def test_table_precision_ablation(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Ablation: host table-generation precision (interp L-LUT "
              "sine)\n"
              + format_table(
                  ["density_log2", "rmse (float64 host)",
                   "rmse (float32 host)", "penalty"],
                  [(r["density"], f"{r['float64_host']:.3e}",
                    f"{r['float32_host']:.3e}",
                    f"{r['float32_host'] / r['float64_host']:.2f}x")
                   for r in rows]))
    print()
    print(report)
    write_report("ablation_table_precision.txt", report)

    # At the accuracy floor the sloppy host pipeline measurably hurts...
    floor = rows[-1]
    assert 1.02 < floor["float32_host"] / floor["float64_host"] < 1.5
    # ...while at coarse densities the spacing error dominates and hides it.
    coarse = rows[0]
    assert coarse["float32_host"] < 1.02 * coarse["float64_host"]
