"""Figure 8: range reduction/extension cycles per element.

sin (periodic folding: two float multiplies) and exp (exponent split) are
the expensive reductions; log (mantissa split) is cheaper; sqrt (frexp plus
integer parity handling) is nearly free.
"""

from repro.analysis.figures import fig8_data, fig8_report


def test_fig8_range_reduction_cycles(benchmark, write_report):
    data = benchmark.pedantic(fig8_data, rounds=1, iterations=1)
    report = fig8_report(data)
    print()
    print(report)
    write_report("fig8_range_reduction.txt", report)

    assert data["sqrt"] < 100
    assert data["log"] < data["exp"]
    assert data["sin"] > 500
