"""Validation: analytic pipeline model vs cycle-accurate simulation.

DESIGN.md substitutes the paper's hardware cycle counter with a closed-form
pipeline model.  This benchmark runs the same traced interpolated-L-LUT
kernel through both the model and the instruction-level simulator across
tasklet counts and placements, and reports the disagreement — the error bar
on every cycles/element number in this reproduction.
"""

from repro.analysis.report import format_table
from repro.api import make_method
from repro.isa.counter import CycleCounter, Tally
from repro.pim.config import UPMEM_DPU
from repro.pim.exec import simulate, trace_to_program
from repro.pim.pipeline import PipelineModel


def _trace(placement):
    m = make_method("sin", "llut_i", density_log2=10,
                    placement=placement).setup()
    trace = []
    ctx = CycleCounter(trace_ops=trace)
    for x in (0.3, 1.1, 2.2, 3.3, 4.4, 5.5):
        m.evaluate(ctx, x)
    return trace_to_program(trace), ctx.reset()


def _collect():
    model = PipelineModel(UPMEM_DPU)
    rows = []
    for placement in ("wram", "mram"):
        prog, tally = _trace(placement)
        for t in (1, 2, 4, 8, 11, 16):
            sim = simulate([list(prog)] * t)
            total = Tally(slots=tally.slots * t,
                          dma_latency=tally.dma_latency * t)
            analytic = model.cycles(total, t)
            rows.append({
                "placement": placement, "tasklets": t,
                "simulated": sim.cycles, "analytic": analytic,
                "error": analytic / sim.cycles - 1.0,
            })
    return rows


def test_pipeline_model_validation(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Pipeline model vs cycle-accurate simulation "
              "(interpolated L-LUT sine, 6 elements/tasklet)\n"
              + format_table(
                  ["placement", "tasklets", "simulated", "analytic", "error"],
                  [(r["placement"], r["tasklets"], r["simulated"],
                    f"{r['analytic']:.0f}", f"{r['error'] * 100:+.1f}%")
                   for r in rows]))
    print()
    print(report)
    write_report("pipeline_validation.txt", report)
    assert all(abs(r["error"]) < 0.15 for r in rows)
