"""Ablation: curvature-adaptive (segmented) vs uniform table spacing.

Section 2.2.2 says good spacing follows the second derivative; the paper's
uniform tables cannot exploit it.  The segmented L-LUT extension
(`repro.core.lut.slut`) does — this ablation measures, at matched accuracy,
how much memory adaptivity saves per function, and what the extra
per-lookup indirection costs.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function

_TARGET = 1e-7
_FUNCTIONS = ("atanh", "gelu", "sigmoid", "cndf", "log", "sin")


def _uniform_matching(function, target_rmse, xs, spec):
    """Smallest uniform interpolated L-LUT reaching ``target_rmse``."""
    for density in range(6, 24):
        m = make_method(function, "llut_i", density_log2=density,
                        assume_in_range=False).setup()
        if measure(m.evaluate_vec, spec.reference, xs).rmse <= target_rmse:
            return m
    raise AssertionError(f"uniform table never reached {target_rmse}")


def _collect():
    rng = np.random.default_rng(47)
    rows = []
    for function in _FUNCTIONS:
        spec = get_function(function)
        xs = rng.uniform(*spec.bench_domain, 4096).astype(np.float32)
        seg = make_method(function, "slut_i", target_rmse=_TARGET,
                          seg_bits=4, assume_in_range=False).setup()
        e_seg = measure(seg.evaluate_vec, spec.reference, xs).rmse
        uni = _uniform_matching(function, max(e_seg, _TARGET), xs, spec)
        rows.append({
            "function": function,
            "seg_rmse": e_seg,
            "seg_bytes": seg.table_bytes(),
            "uni_bytes": uni.table_bytes(),
            "seg_cycles": seg.mean_slots(xs[:12]),
            "uni_cycles": uni.mean_slots(xs[:12]),
        })
    return rows


def test_segmented_vs_uniform(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Ablation: curvature-adaptive vs uniform spacing "
              f"(matched RMSE ~ {_TARGET:g})\n"
              + format_table(
                  ["function", "rmse", "segmented bytes", "uniform bytes",
                   "memory saving", "cycle overhead"],
                  [(r["function"], f"{r['seg_rmse']:.1e}", r["seg_bytes"],
                    r["uni_bytes"],
                    f"{r['uni_bytes'] / r['seg_bytes']:.1f}x",
                    f"+{r['seg_cycles'] - r['uni_cycles']:.0f}")
                   for r in rows]))
    print()
    print(report)
    write_report("ablation_segmented.txt", report)

    by = {r["function"]: r for r in rows}
    # Curvature-concentrated functions save real memory...
    assert by["atanh"]["uni_bytes"] > 2 * by["atanh"]["seg_bytes"]
    assert by["gelu"]["uni_bytes"] > 1.5 * by["gelu"]["seg_bytes"]
    # ...while uniform-curvature sine gains nothing (honest negative).
    assert by["sin"]["uni_bytes"] < 2 * by["sin"]["seg_bytes"]
    # The indirection overhead stays modest.
    assert all(r["seg_cycles"] - r["uni_cycles"] < 400 for r in rows)
