"""Fused array evaluator throughput vs the traced batch engine.

The point of :mod:`repro.batch.vec` is that a sweep-style workload — the
same large input array launched repeatedly (accuracy sweep + WRAM timing +
MRAM timing of one table image, or repeated figure regeneration) — stops
paying per-launch classification, value evaluation, and path tracing: the
fused pass computes values and path keys together once, and the digest
memo serves every later launch of the same array from cache.

This bench pins that with two wall-clock floors on a large-n sweep:

* **steady state** (memo-warm, the sweep regime): >= 10x faster than the
  traced engine's ``batch_tally`` + ``evaluate_vec`` per launch;
* **single shot** (memo-cold first launch): no material regression
  (>= 0.7x) — the fused pass does the same work as the traced engine, once,
  minus the duplicated reduction.

Both paths must produce bit-identical values and tallies — speed must not
change physics.
"""

import time

import numpy as np

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.batch import batch_tally, compile_vec

#: One method per fused-kernel family: float interpolated L-LUT, fixed
#: interpolated L-LUT, and the CORDIC rotation (the heaviest classifier).
POINTS = [
    ("llut_i", {"density_log2": 10}),
    ("llut_i_fx", {"density_log2": 10}),
    ("cordic", {}),
]
_N = 200_000
_REPEAT = 10

STEADY_FLOOR = 10.0
SINGLE_SHOT_FLOOR = 0.7


def _assert_same_numbers(fused, values, batch):
    assert fused.values.dtype == values.dtype
    np.testing.assert_array_equal(fused.values.view(np.uint32),
                                  values.view(np.uint32))
    assert fused.batch.tally.slots == batch.tally.slots
    assert fused.batch.tally.counts == batch.tally.counts
    np.testing.assert_array_equal(fused.batch.slots, batch.slots)


def test_batch_vec_speedup_floors(bench_seeds, write_report):
    """Fused evaluator: >= 10x steady-state, no single-shot regression.

    Measured steady-state margin is ~20-170x (one memoized array triple
    serves every repeat; path tallies come from the persistent per-plan
    cache on both sides), so the 10x floor leaves headroom for a loaded
    CI core.  The cold first shot measures ~1.0-1.3x — the fused pass
    shares one reduction between values and keys but still pays the same
    per-path scalar traces.
    """
    rows = []
    worst_steady = float("inf")
    worst_single = float("inf")
    for name, params in POINTS:
        m = make_method("sin", name, assume_in_range=False,
                        **params).setup()
        xs = default_inputs("sin", n=_N,
                            seed=bench_seeds["batch_vec"]).astype(np.float32)

        # Warm imports / numpy dispatch outside the timers, and pin
        # bit-identity once per point.  Both engines run with persistent
        # per-plan tally caches, exactly as plan.execute() drives them —
        # the comparison is classification + value work, not path tracing.
        warm_ev = compile_vec(m)
        traced_tc, vec_tc = {}, {}
        _assert_same_numbers(warm_ev.run(xs, tally_cache=vec_tc),
                             m.evaluate_vec(xs),
                             batch_tally(m, xs, tally_cache=traced_tc))

        t0 = time.perf_counter()
        for _ in range(_REPEAT):
            batch_tally(m, xs, tally_cache=traced_tc)
            m.evaluate_vec(xs)
        t_traced = (time.perf_counter() - t0) / _REPEAT

        t0 = time.perf_counter()
        for _ in range(_REPEAT):
            compile_vec(m).run(xs, tally_cache={})
        t_cold = (time.perf_counter() - t0) / _REPEAT

        t0 = time.perf_counter()
        for _ in range(_REPEAT):
            warm_ev.run(xs, tally_cache=vec_tc)
        t_warm = (time.perf_counter() - t0) / _REPEAT

        steady = t_traced / t_warm
        single = t_traced / t_cold
        worst_steady = min(worst_steady, steady)
        worst_single = min(worst_single, single)
        rows.append(f"  {name:<10s} traced {t_traced * 1e3:8.1f} ms"
                    f"  cold {t_cold * 1e3:8.1f} ms ({single:4.1f}x)"
                    f"  warm {t_warm * 1e3:8.2f} ms ({steady:5.1f}x)")

    report = "\n".join([
        f"fused array evaluator vs traced engine "
        f"({_N} elements x {_REPEAT} launches)",
        *rows,
        f"  worst steady-state speedup : {worst_steady:5.1f}x "
        f"(floor: {STEADY_FLOOR:.0f}x)",
        f"  worst single-shot ratio    : {worst_single:5.1f}x "
        f"(floor: {SINGLE_SHOT_FLOOR:.1f}x)",
    ])
    print("\n" + report)
    write_report("batch_vec.txt", report)

    assert worst_steady >= STEADY_FLOOR, (
        f"steady-state fused evaluation only {worst_steady:.1f}x faster "
        f"than the traced engine (floor {STEADY_FLOOR:.0f}x)"
    )
    assert worst_single >= SINGLE_SHOT_FLOOR, (
        f"cold fused evaluation regressed to {worst_single:.2f}x of the "
        f"traced engine (floor {SINGLE_SHOT_FLOOR:.1f}x)"
    )
