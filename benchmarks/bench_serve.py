"""Serving front end under load: throughput floor, tail latency, coalescing.

The serving tentpole claims that concurrently-arriving requests for the
same kernel amortize onto one compiled plan: N clients cost one plan
build (single-flight) and their batches coalesce, so sustained request
rate is decoupled from per-request setup cost.  This bench drives the
quick load-generator profile and pins four things:

* a sustained-throughput floor (req/s) and a p99 latency ceiling —
  measured ~2.8-7.7k req/s and p99 14-46 ms on a cold container core,
  floors set ~5x below / ~10x above so a loaded CI core cannot flake;
* exactly one plan build per distinct kernel in the mix (single-flight);
* a coalesce ratio strictly above 1 (batching actually happened);
* bit-exactness: every verified served slice equals evaluating that
  request alone.
"""

from repro.serve import MIXED_PROFILE, run_load

_CLIENTS = 48
_REQUESTS = 8

#: Conservative floors for a loaded CI core (see module docstring).
REQ_PER_S_FLOOR = 400.0
P99_CEILING_S = 0.5
COALESCE_FLOOR = 2.0


def test_serve_throughput_floor(bench_seeds, write_report):
    report = run_load(
        MIXED_PROFILE,
        clients=_CLIENTS,
        requests_per_client=_REQUESTS,
        seed=bench_seeds["serve"],
        verify=True,
    )

    text = "\n".join([
        report.summary(),
        f"  floors: >= {REQ_PER_S_FLOOR:.0f} req/s, "
        f"p99 <= {P99_CEILING_S * 1e3:.0f} ms, "
        f"coalesce ratio >= {COALESCE_FLOOR:.1f}",
    ])
    print("\n" + text)
    write_report("serve.txt", text)

    # Everything admitted completes; nothing sheds at this load.
    assert report.completed == _CLIENTS * _REQUESTS
    assert report.shed == 0

    # Single-flight: one plan build per distinct kernel, no duplicates.
    assert report.plan_builds == len(MIXED_PROFILE.items)
    assert report.singleflight_leaders == len(MIXED_PROFILE.items)

    # Coalescing actually happened and every slice is bit-exact.
    assert report.coalesce_ratio >= COALESCE_FLOOR, (
        f"coalesce ratio {report.coalesce_ratio:.2f} below floor"
    )
    assert report.verified > 0
    assert report.mismatches == 0, (
        f"{report.mismatches} served slices diverged from direct evaluation"
    )

    # Wall-clock floors (the deliberately loose, CI-safe ones).
    assert report.req_per_s >= REQ_PER_S_FLOOR, (
        f"sustained only {report.req_per_s:.0f} req/s"
    )
    assert report.latency_p99 <= P99_CEILING_S, (
        f"p99 {report.latency_p99 * 1e3:.1f} ms above ceiling"
    )
