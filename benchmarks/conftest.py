"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation: it prints the rows/series the paper plots and writes them to
``benchmarks/out/`` so they survive pytest's output capture.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

from repro.analysis.figures import fig5_data

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def write_report():
    """Persist a figure/table report under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUT_DIR / name).write_text(text + "\n")

    return _write


@pytest.fixture(scope="session")
def sine_points():
    """The Figure 5-7 sine sweep, computed once for the whole session."""
    return fig5_data()
