"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation: it prints the rows/series the paper plots and writes them to
``benchmarks/out/`` so they survive pytest's output capture.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

from repro.analysis.figures import fig5_data

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Explicit per-bench input seeds.  Every bench that draws random inputs
#: names its stream here (or seeds ``default_rng`` inline) so no two
#: benches share a stream by accident and a bench's inputs never shift
#: silently with a library default.
BENCH_SEEDS = {
    "fig5_cycles": 7,
    "fig5_other_functions": 7,
    "library_throughput": 7,
    "ablation_fixed_cordic": 7,
    "sine_sweep": 7,  # conftest's own sine_points fixture
    "plan_cache": 7,
    "pool_scaling": 7,
    "batch_vec": 7,
    "serve": 2026,
    "topology": 7,
}


@pytest.fixture(scope="session")
def bench_seeds():
    """The explicit per-bench seed table (copy: benches must not mutate it)."""
    return dict(BENCH_SEEDS)


@pytest.fixture(scope="session")
def write_report():
    """Persist a figure/table report under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (OUT_DIR / name).write_text(text + "\n")

    return _write


@pytest.fixture(scope="session")
def sine_points():
    """The Figure 5-7 sine sweep, computed once for the whole session.

    ``sine_sweep`` draws its inputs with ``default_inputs('sin')``, whose
    seed is pinned in ``BENCH_SEEDS['sine_sweep']`` — asserted here so the
    table stays truthful if the library default ever moves.
    """
    from repro.analysis.sweep import default_inputs
    import numpy as np
    expected = default_inputs("sin", n=8, seed=BENCH_SEEDS["sine_sweep"])
    np.testing.assert_array_equal(default_inputs("sin", n=8), expected)
    return fig5_data()
