"""Ablation: how far can fixed point go?  (Extension beyond the paper.)

The paper's fixed-point Blackscholes swaps the four transcendental lookups
for fixed-point L-LUTs but keeps float glue arithmetic.  The ``fixed_full``
variant converts once and runs the whole kernel in s3.28 — quantifying the
remaining headroom of a fully fixed pipeline on an FP-less PIM core.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.pim.system import PIMSystem
from repro.workloads.blackscholes import (
    Blackscholes,
    generate_options,
    reference_call_prices,
)


def _run_all():
    system = PIMSystem()
    batch = generate_options(3000)
    ref = reference_call_prices(batch)
    rows = []
    for variant in ("llut_i", "llut_i_fx", "fixed_full"):
        bs = Blackscholes(variant).setup()
        res = bs.run(batch, system, virtual_n=10_000_000)
        err = np.abs(bs.prices(batch).astype(np.float64) - ref)
        rows.append({
            "variant": variant,
            "seconds": res.total_seconds,
            "slots": res.per_dpu.per_element_tally.slots,
            "max_err": float(err.max()),
        })
    return rows


def test_fixed_pipeline_headroom(benchmark, write_report):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    report = ("Ablation: Blackscholes fixed-point depth (10M options)\n"
              + format_table(
                  ["variant", "time", "slots/option", "max price err ($)"],
                  [(r["variant"], f"{r['seconds'] * 1e3:.1f} ms",
                    f"{r['slots']:.0f}", f"{r['max_err']:.2e}")
                   for r in rows]))
    print()
    print(report)
    write_report("ablation_fixed_pipeline.txt", report)

    t = {r["variant"]: r["seconds"] for r in rows}
    assert t["llut_i_fx"] < t["llut_i"]
    assert t["fixed_full"] < t["llut_i_fx"]
    # Accuracy must not degrade materially: price errors stay sub-cent.
    assert all(r["max_err"] < 1e-2 for r in rows)
