"""Ablation: sensitivity of accuracy results to the input distribution.

The paper's microbenchmarks use uniform random inputs (Section 4.1.1).
RMSE is an input-weighted quantity, so a different workload distribution
weights the table cells differently.  This ablation re-measures the sine
methods under uniform, normal (clipped to the domain), and edge-heavy
beta-shaped inputs, verifying that the method ordering — the basis of every
takeaway — is distribution-independent even though absolute RMSE moves.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import TWO_PI, get_function

_METHODS = (
    ("mlut", {"size": 1 << 14}),
    ("llut", {"density_log2": 12}),
    ("llut_i", {"density_log2": 8}),
    ("cordic", {"iterations": 16}),
)


def _distributions(n=1 << 14, seed=29):
    rng = np.random.default_rng(seed)
    return {
        "uniform": rng.uniform(0, TWO_PI, n).astype(np.float32),
        "normal": np.clip(rng.normal(TWO_PI / 2, 1.0, n), 0,
                          TWO_PI * 0.9999).astype(np.float32),
        "edges": (np.clip(rng.beta(0.3, 0.3, n), 0, 1)
                  * TWO_PI * 0.9999).astype(np.float32),
    }


def _collect():
    spec = get_function("sin")
    rows = []
    for method, params in _METHODS:
        m = make_method("sin", method, assume_in_range=True,
                        **params).setup()
        for dist, xs in _distributions().items():
            rep = measure(m.evaluate_vec, spec.reference, xs)
            rows.append({"method": method, "distribution": dist,
                         "rmse": rep.rmse})
    return rows


def test_distribution_sensitivity(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Ablation: input-distribution sensitivity (sine RMSE)\n"
              + format_table(
                  ["method", "distribution", "rmse"],
                  [(r["method"], r["distribution"], f"{r['rmse']:.3e}")
                   for r in rows]))
    print()
    print(report)
    write_report("ablation_distribution.txt", report)

    # RMSE moves by less than ~3x across distributions...
    by = {}
    for r in rows:
        by.setdefault(r["method"], []).append(r["rmse"])
    for method, rmses in by.items():
        assert max(rmses) < 4 * min(rmses), method

    # ...and the accuracy ordering between methods is stable per
    # distribution (llut denser than mlut here, interp best, etc.).
    for dist in ("uniform", "normal", "edges"):
        d = {r["method"]: r["rmse"] for r in rows
             if r["distribution"] == dist}
        assert d["llut_i"] < d["llut"] < d["mlut"], dist
