"""Logistic-regression inference: Figure 1(b) vs Figure 1(c) deployments.

Extension workload from the paper's motivation: measures how much the
sigmoid costs inside an end-to-end PIM inference kernel, and whether
computing it on the PIM cores (TransPimLib, Figure 1(c)) beats shipping
logits to the host and back (Figure 1(b)).
"""

from repro.analysis.report import format_table
from repro.pim.system import PIMSystem
from repro.workloads.logreg import LogisticRegression, generate_dataset

N_VIRTUAL = 30_000_000


def _collect():
    system = PIMSystem()
    features, weights, bias = generate_dataset(2000, n_features=16)
    rows = []
    for variant in ("poly", "llut_i", "host_sigmoid"):
        model = LogisticRegression(variant).setup(weights, bias)
        res = model.run(features, system, virtual_n=N_VIRTUAL)
        rows.append({
            "variant": variant,
            "total": res.total_seconds,
            "sigmoid_share": res.sigmoid_share,
            "roundtrip": res.host_roundtrip_seconds,
            "host_compute": res.host_compute_seconds,
        })
    return rows


def test_logreg_deployments(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Logistic regression, 30M samples x 16 features "
              "(2545 PIM cores)\n"
              + format_table(
                  ["sigmoid backend", "total", "sigmoid share of kernel",
                   "host roundtrip", "host compute"],
                  [(r["variant"], f"{r['total'] * 1e3:.1f} ms",
                    f"{r['sigmoid_share'] * 100:.0f}%",
                    f"{r['roundtrip'] * 1e3:.1f} ms",
                    f"{r['host_compute'] * 1e3:.1f} ms") for r in rows]))
    print()
    print(report)
    write_report("logreg_deployments.txt", report)

    t = {r["variant"]: r["total"] for r in rows}
    assert t["llut_i"] < t["poly"]          # TransPimLib beats polynomial
    assert t["llut_i"] < t["host_sigmoid"]  # Fig 1(c) beats Fig 1(b)
