"""Energy comparison for the Figure 9 workloads (extension).

Charges the PIM system its active power times kernel time and the host its
package power times execution time.  The honest outcome: PIM wins joules
exactly where it wins (or nearly wins) seconds — transfer energy is
negligible against softfloat compute at DDR4 per-byte costs.
"""

from repro.analysis.report import format_table
from repro.pim.energy import DEFAULT_ENERGY_MODEL
from repro.pim.system import PIMSystem
from repro.workloads.blackscholes import Blackscholes, generate_options
from repro.workloads.cpu_model import CPU_BLACKSCHOLES, CPU_SIGMOID
from repro.workloads.sigmoid import Sigmoid, generate_inputs


def _collect():
    model = DEFAULT_ENERGY_MODEL
    system = PIMSystem()
    rows = []

    n_bs = 10_000_000
    batch = generate_options(2000)
    cpu_t = CPU_BLACKSCHOLES.seconds(n_bs, 32)
    rows.append(("blackscholes", "cpu_32t",
                 model.cpu_energy(cpu_t, 24 * n_bs).total_joules))
    for variant in ("llut_i", "llut_i_fx", "fixed_full"):
        bs = Blackscholes(variant).setup()
        res = bs.run(batch, system, virtual_n=n_bs)
        rows.append(("blackscholes", f"pim_{variant}",
                     model.pim_energy(res, 20 * n_bs, 4 * n_bs).total_joules))

    n_sg = 30_000_000
    xs = generate_inputs(2000)
    cpu_t = CPU_SIGMOID.seconds(n_sg, 32)
    rows.append(("sigmoid", "cpu_32t",
                 model.cpu_energy(cpu_t, 8 * n_sg).total_joules))
    sg = Sigmoid("llut_i").setup()
    res = sg.run(xs, system, virtual_n=n_sg)
    rows.append(("sigmoid", "pim_llut_i",
                 model.pim_energy(res, 4 * n_sg, 4 * n_sg).total_joules))
    return rows


def test_workload_energy(benchmark, write_report):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    report = ("Energy per workload run (extension; 560 W PIM system vs "
              "250 W host)\n"
              + format_table(["workload", "configuration", "joules"],
                             [(w, c, f"{j:.1f}") for w, c, j in rows]))
    print()
    print(report)
    write_report("energy.txt", report)

    j = {(w, c): v for w, c, v in rows}
    # PIM wins energy where it wins time (fixed Blackscholes)...
    assert j[("blackscholes", "pim_fixed_full")] < \
        j[("blackscholes", "cpu_32t")]
    # ...and loses it where it loses time by more than the power ratio.
    assert j[("sigmoid", "pim_llut_i")] > j[("sigmoid", "cpu_32t")]
