"""Pareto frontier over the Figure 5-7 sweep.

Collapses the three figures into the 3-D (rmse, cycles, bytes) tradeoff and
reports which methods a user should ever pick — quantifying Key Takeaways
1 and 3 in one table.
"""

from repro.analysis.pareto import frontier_report, pareto_frontier


def test_pareto_frontier(benchmark, sine_points, write_report):
    mram = [p for p in sine_points if p.placement == "mram"]
    frontier = benchmark.pedantic(
        lambda: pareto_frontier(mram, tolerance=0.02), rounds=1, iterations=1
    )
    report = frontier_report(mram)
    print()
    print(report)
    write_report("pareto_frontier.txt", report)

    methods = {p.method for p in frontier}
    # Key Takeaway 1: the L-LUT family populates the frontier...
    assert {"llut", "llut_i"} & methods or {"llut_fx", "llut_i_fx"} & methods
    # ...and Key Takeaway 3: CORDIC stays on it via its tiny memory.
    assert any(m.startswith("cordic") for m in methods)
    # The non-interpolated M-LUT is never the right choice: an equal-spacing
    # L-LUT matches its accuracy and memory at a fifth of the cycles.
    assert "mlut" not in methods
    # And the L-LUT family outnumbers what is left of the M-LUT family.
    n_llut = sum(1 for p in frontier if "llut" in p.method)
    n_mlut = sum(1 for p in frontier if p.method.startswith("mlut"))
    assert n_llut > n_mlut
