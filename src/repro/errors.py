"""Exception hierarchy for the TransPimLib reproduction.

All library-specific errors derive from :class:`TransPimError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class TransPimError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(TransPimError):
    """A method, simulator, or workload was configured with invalid parameters."""


class UnsupportedFunctionError(TransPimError):
    """The requested (function, method) pair is not in the support matrix.

    Mirrors Table 2 of the paper: not every implementation method supports
    every function (e.g. D-LUT is unsuitable for periodic functions).
    """

    def __init__(self, function: str, method: str, reason: str = ""):
        self.function = function
        self.method = method
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"function {function!r} is not supported by method {method!r}{detail}"
        )


class RangeError(TransPimError):
    """An input value is outside the supported range of a method.

    Raised only when range extension is disabled; with range extension the
    library reduces the argument instead (Section 2.2.3 of the paper).
    """


class MemoryLayoutError(TransPimError):
    """A table or buffer does not fit in the requested PIM memory region."""


class SimulationError(TransPimError):
    """The PIM simulator was driven into an invalid state."""


class PoolError(SimulationError):
    """A multiprocess sharded dispatch failed.

    Raised by :mod:`repro.plan.pool` when a worker raises, dies, or the
    pool cannot be driven; the parent process always cleans up its shared
    memory segments and never returns a half-aggregated result.
    """

    def __init__(self, message: str, shard_index: int = -1):
        self.shard_index = shard_index
        super().__init__(message)


class PoolTimeoutError(PoolError):
    """A pooled shard did not complete within the dispatch timeout.

    Covers both genuinely slow shards and workers that hang or die
    mid-shard without the pool noticing (the task's result then never
    arrives).
    """


class ServerError(TransPimError):
    """The serving front end (:mod:`repro.serve`) rejected a request."""


class ServerOverloadedError(ServerError):
    """Admission control shed a request at the hard queue-depth limit.

    Raised by :meth:`repro.serve.Server.submit` when the number of pending
    requests has reached ``hard_limit``.  Below the hard limit but above
    ``max_pending`` the server applies *backpressure* (the submit awaits
    capacity) instead of shedding.
    """


class ServerClosedError(ServerError):
    """A request arrived after :meth:`repro.serve.Server.close` began.

    A draining server completes every request admitted before close but
    refuses new ones; a cancelled (non-draining) close also fails the
    requests still queued with this error.
    """
