"""Memory regions of a simulated PIM core: scratchpad (WRAM) and bank (MRAM).

A :class:`MemoryRegion` is a bump allocator with capacity checking.  The
library uses it to decide whether a lookup table of the requested precision
fits in WRAM (64 KB) or must live in MRAM — the tradeoff behind the paper's
Figure 5 dashed-vs-solid lines and its Observation 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import MemoryLayoutError

__all__ = ["Allocation", "MemoryRegion"]


@dataclass(frozen=True)
class Allocation:
    """A named, contiguous allocation inside a memory region."""

    label: str
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class MemoryRegion:
    """A fixed-capacity memory with bump allocation and 8-byte alignment.

    UPMEM MRAM DMA requires 8-byte-aligned, 8-byte-multiple transfers; we
    apply the same alignment to WRAM for uniformity.
    """

    ALIGNMENT = 8

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise MemoryLayoutError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._cursor = 0
        self._allocations: List[Allocation] = []
        self._tables: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._cursor

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._cursor

    @property
    def allocations(self) -> List[Allocation]:
        return list(self._allocations)

    def _aligned(self, nbytes: int) -> int:
        rem = nbytes % self.ALIGNMENT
        return nbytes if rem == 0 else nbytes + (self.ALIGNMENT - rem)

    def allocate(self, nbytes: int, label: str) -> Allocation:
        """Reserve ``nbytes`` (rounded up to alignment) under ``label``."""
        if nbytes < 0:
            raise MemoryLayoutError(f"{self.name}: negative allocation size")
        size = self._aligned(nbytes)
        if self._cursor + size > self.capacity_bytes:
            raise MemoryLayoutError(
                f"{self.name}: allocation {label!r} of {size} bytes does not fit "
                f"({self.free_bytes} bytes free of {self.capacity_bytes})"
            )
        alloc = Allocation(label=label, offset=self._cursor, nbytes=size)
        self._cursor += size
        self._allocations.append(alloc)
        return alloc

    def fits(self, nbytes: int) -> bool:
        """True when an allocation of ``nbytes`` would currently succeed."""
        return self._aligned(nbytes) <= self.free_bytes

    def reset(self) -> None:
        """Release every allocation and stored table."""
        self._cursor = 0
        self._allocations.clear()
        self._tables.clear()

    # ------------------------------------------------------------------
    # table storage (contents keyed by label; sizes tracked by allocate)

    def store_table(self, label: str, table: np.ndarray) -> Allocation:
        """Allocate space for ``table`` and keep its contents for lookups."""
        alloc = self.allocate(int(table.nbytes), label)
        self._tables[label] = table
        return alloc

    def table(self, label: str) -> np.ndarray:
        """Retrieve a stored table's contents."""
        try:
            return self._tables[label]
        except KeyError:
            raise MemoryLayoutError(
                f"{self.name}: no table stored under label {label!r}"
            ) from None
