"""Cycle-accurate execution of tasklet programs on one PIM core.

The analytic pipeline model (:mod:`repro.pim.pipeline`) converts instruction
tallies into cycles with closed-form throughput and DMA-overlap formulas.
This module provides the ground truth those formulas approximate: a
cycle-by-cycle simulation of the fine-grained multithreaded pipeline —

* one instruction issues per cycle, round-robin over eligible tasklets;
* two instructions of the *same* tasklet must be ``issue_spacing`` cycles
  apart (the revolver pipeline constraint);
* an emulated operation (softfloat add, integer multiply, ...) is a sequence
  of that many unit instructions of its tasklet;
* an MRAM access issues its setup instructions, then stalls its tasklet
  until the (serial, FIFO) DMA engine finishes the transfer.

Programs come from tracing real kernels: :class:`~repro.isa.CycleCounter`
records an instruction stream when given a trace list.  The test suite runs
the same kernels through both models and bounds their disagreement — the
validation behind DESIGN.md's pipeline-model substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.pim.config import DPUConfig, UPMEM_DPU

__all__ = ["Instr", "SimResult", "simulate", "trace_to_program"]


@dataclass(frozen=True)
class Instr:
    """One traced operation: ``slots`` unit instructions, plus optional DMA.

    ``dma_cycles > 0`` marks an MRAM access: after its setup slots issue, the
    tasklet blocks until the DMA engine has spent that many cycles on its
    transaction.
    """

    slots: int
    dma_cycles: int = 0


@dataclass
class SimResult:
    """Outcome of a cycle-accurate run."""

    cycles: int
    issued: int                 # unit instructions issued
    idle_cycles: int            # cycles with no eligible tasklet
    dma_busy_cycles: int        # cycles the DMA engine was active
    per_tasklet_finish: List[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        return self.issued / self.cycles if self.cycles else 0.0


class _TaskletState:
    __slots__ = ("program", "pc", "units_left", "last_issue",
                 "waiting_dma", "finish")

    def __init__(self, program: Sequence[Instr]):
        self.program = program
        self.pc = 0
        self.units_left = program[0].slots if program else 0
        self.last_issue = -(10 ** 9)
        self.waiting_dma = False
        self.finish = 0

    @property
    def done(self) -> bool:
        return self.pc >= len(self.program)

    def current(self) -> Instr:
        return self.program[self.pc]


def simulate(
    programs: Sequence[Sequence[Instr]],
    config: DPUConfig = UPMEM_DPU,
    max_cycles: int = 100_000_000,
) -> SimResult:
    """Run one program per tasklet to completion; return the cycle count."""
    if not programs:
        raise ConfigurationError("need at least one tasklet program")
    if len(programs) > config.max_tasklets:
        raise ConfigurationError(
            f"{len(programs)} tasklets exceed the core's "
            f"{config.max_tasklets}"
        )
    spacing = config.issue_spacing
    tasklets = [_TaskletState(list(p)) for p in programs]
    # Serial FIFO DMA engine: (tasklet index, remaining cycles).
    dma_queue: List[List[int]] = []

    cycle = 0
    issued = 0
    idle = 0
    dma_busy = 0
    rr = 0  # round-robin pointer

    def all_done() -> bool:
        return all(t.done for t in tasklets) and not dma_queue

    while not all_done():
        if cycle >= max_cycles:
            raise SimulationError("cycle-accurate simulation did not finish")

        # DMA engine: one cycle of work on the head transaction.
        if dma_queue:
            dma_busy += 1
            dma_queue[0][1] -= 1
            if dma_queue[0][1] <= 0:
                owner = dma_queue.pop(0)[0]
                tasklets[owner].waiting_dma = False

        # Issue stage: first eligible tasklet in round-robin order.
        chosen = -1
        for k in range(len(tasklets)):
            idx = (rr + k) % len(tasklets)
            t = tasklets[idx]
            if (not t.done and not t.waiting_dma
                    and cycle - t.last_issue >= spacing
                    and t.units_left > 0):
                chosen = idx
                break
        if chosen < 0:
            idle += 1
        else:
            t = tasklets[chosen]
            t.last_issue = cycle
            t.units_left -= 1
            issued += 1
            rr = (chosen + 1) % len(tasklets)
            if t.units_left == 0:
                instr = t.current()
                if instr.dma_cycles > 0:
                    t.waiting_dma = True
                    dma_queue.append([chosen, instr.dma_cycles])
                t.pc += 1
                if not t.done:
                    t.units_left = t.current().slots
                t.finish = cycle + 1
        cycle += 1

    return SimResult(
        cycles=cycle,
        issued=issued,
        idle_cycles=idle,
        dma_busy_cycles=dma_busy,
        per_tasklet_finish=[t.finish for t in tasklets],
    )


def trace_to_program(trace: Sequence[tuple]) -> List[Instr]:
    """Convert a :class:`CycleCounter` op trace into a tasklet program.

    The trace entries are ``(name, slots, dma_cycles)`` tuples as recorded by
    ``CycleCounter(trace_ops=[...])``.
    """
    return [Instr(slots=max(1, int(slots)), dma_cycles=int(dma))
            for (_name, slots, dma) in trace]
