"""UPMEM-like PIM system simulator: cores, memories, pipeline, transfers."""

from repro.pim.config import UPMEM_DPU, UPMEM_SYSTEM, DPUConfig, SystemConfig
from repro.pim.dpu import DPU, KernelResult
from repro.pim.exec import Instr, SimResult, simulate, trace_to_program

# PIMRuntime/InstalledFunction live in repro.pim.host; import them from
# there directly (importing here would cycle through repro.core.method).
from repro.pim.memory import Allocation, MemoryRegion
from repro.pim.pipeline import ExecutionEstimate, PipelineModel
from repro.pim.system import PIMSystem, SystemRunResult

__all__ = [
    "DPUConfig",
    "SystemConfig",
    "UPMEM_DPU",
    "UPMEM_SYSTEM",
    "DPU",
    "KernelResult",
    "MemoryRegion",
    "Allocation",
    "PipelineModel",
    "ExecutionEstimate",
    "PIMSystem",
    "SystemRunResult",
    "Instr",
    "SimResult",
    "simulate",
    "trace_to_program",
]
