"""The full PIM system: many PIM cores plus host transfer links.

Workloads in the paper (Figure 9) run on 2545 PIM cores with 16 tasklets
each.  Work is distributed evenly across cores (SPMD), inputs are scattered
host->PIM, results gathered PIM->host, and the kernel time is the slowest
core's time — with even distribution, the representative core's time.

Execution is plan-based (:mod:`repro.plan`): :meth:`PIMSystem.run` compiles
a throwaway :class:`~repro.plan.plan.ExecutionPlan` per call and executes
it — bit-identical to the pre-plan monolith (held to that by the
differential harness in ``tests/plan/``).  Callers that launch repeatedly
should compile once via :meth:`PIMSystem.plan` or a
:class:`~repro.plan.cache.PlanCache` and call ``execute`` on the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.config import SystemConfig, UPMEM_SYSTEM
from repro.pim.dpu import DPU, Kernel, KernelResult

__all__ = ["PIMSystem", "SystemRunResult"]


@dataclass
class SystemRunResult:
    """Timing breakdown for a whole-system kernel launch.

    The trailing fields echo the launch's configuration so traces and bench
    snapshots are self-describing: a persisted result names its straggler
    factor, virtual sizing, and transfer mode instead of losing them.
    """

    n_elements: int
    n_dpus_used: int
    tasklets: int
    kernel_seconds: float        # time on the (representative) slowest core
    host_to_pim_seconds: float   # scattering inputs
    pim_to_host_seconds: float   # gathering outputs
    launch_seconds: float        # fixed launch overhead
    per_dpu: KernelResult
    imbalance: float = 0.0           # straggler factor this run modeled
    virtual_n: Optional[int] = None  # requested virtual sizing (None: actual)
    include_transfers: bool = True   # False: Figure 1(c) resident operands
    balanced_transfers: bool = True  # False: serialized single-bank copies

    @property
    def total_seconds(self) -> float:
        return (
            self.kernel_seconds
            + self.host_to_pim_seconds
            + self.pim_to_host_seconds
            + self.launch_seconds
        )

    @property
    def compute_only_seconds(self) -> float:
        """Kernel time excluding transfers (the Figure 1(c) deployment)."""
        return self.kernel_seconds + self.launch_seconds


class PIMSystem:
    """A collection of identical PIM cores fed by a host processor."""

    def __init__(
        self,
        config: SystemConfig = UPMEM_SYSTEM,
        costs: OpCosts = UPMEM_COSTS,
    ):
        self.config = config
        self.costs = costs
        #: Representative core used for SPMD timing and table placement.
        self.dpu = DPU(config.dpu, costs)

    def elements_per_dpu(self, n_elements: int) -> int:
        """Even SPMD split, rounded up (the slowest core's share)."""
        return -(-n_elements // self.config.n_dpus)

    def plan(self, target, **options):
        """Compile ``target`` (a Method or raw kernel) into a reusable plan.

        Options are :func:`~repro.plan.plan.compile_plan`'s: ``tasklets``,
        ``sample_size``, ``transfers``, ``imbalance``.
        """
        from repro.plan.plan import compile_plan
        return compile_plan(self, target, **options)

    def run(
        self,
        kernel: Kernel,
        inputs: Sequence[float],
        tasklets: int = 16,
        sample_size: int = 64,
        bytes_in_per_element: int = 4,
        bytes_out_per_element: int = 4,
        include_transfers: bool = True,
        balanced_transfers: bool = True,
        imbalance: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        virtual_n: Optional[int] = None,
        batch: bool = True,
    ) -> SystemRunResult:
        """Simulate a whole-system run of ``kernel`` over ``inputs``.

        ``include_transfers=False`` models the in-PIM-pipeline deployment of
        Figure 1(c), where operands already live in the PIM cores' banks.
        ``virtual_n`` treats ``inputs`` as a sample standing in for that many
        elements (e.g. the paper's 10M options traced from a 10k sample).
        ``balanced_transfers=False`` models unequal per-bank buffers, which
        the hardware cannot scatter/gather in parallel (Section 2.1) — they
        serialize at the single-bank bandwidth.  ``imbalance`` models uneven
        work distribution: the slowest core receives ``(1 + imbalance)``
        times the fair share, and the whole launch waits for it (SPMD
        barrier at the gather).

        This is sugar over the plan/execute split: a throwaway plan is
        compiled and executed per call.  Repeated launches should hold a
        plan (:meth:`plan` or a PlanCache) and ``execute`` it instead.
        """
        from repro.plan.plan import ExecutionPlan, TransferSchedule

        plan = ExecutionPlan(
            self, kernel, tasklets=tasklets, sample_size=sample_size,
            transfers=TransferSchedule(
                bytes_in_per_element=bytes_in_per_element,
                bytes_out_per_element=bytes_out_per_element,
                include_transfers=include_transfers,
                balanced=balanced_transfers,
            ),
            imbalance=imbalance,
        )
        return plan.execute(inputs, virtual_n=virtual_n, rng=rng,
                            batch=batch, span_name="system.run")

    def run_sharded(
        self,
        kernel: Kernel,
        inputs: Sequence[float],
        shards: int = 2,
        overlap: bool = False,
        tasklets: int = 16,
        sample_size: int = 64,
        bytes_in_per_element: int = 4,
        bytes_out_per_element: int = 4,
        include_transfers: bool = True,
        balanced_transfers: bool = True,
        imbalance: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        virtual_n: Optional[int] = None,
        batch: bool = True,
        workers: Optional[int] = None,
        pool=None,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        rank_aligned: bool = False,
        rank_parallel_transfers: bool = False,
    ):
        """Run ``kernel`` split across ``shards`` disjoint DPU groups.

        ``overlap=True`` double-buffers: one shard's host<->PIM transfers
        overlap other shards' kernels (transfers serialize per direction on
        the host links; kernels of disjoint groups run concurrently).
        ``workers > 1`` (or an explicit :class:`~repro.plan.pool.ShardPool`
        as ``pool``) runs the shards on a multiprocess pool with
        bit-identical results; ``start_method`` picks the worker start
        method and ``timeout`` bounds the dispatch in wall seconds.
        ``rank_aligned`` splits along the system topology's rank
        boundaries, and ``rank_parallel_transfers`` lets unbalanced
        scatters/gathers serialize per rank rather than per system.
        Returns a :class:`~repro.plan.dispatch.ShardedRunResult`.
        """
        from repro.plan.dispatch import execute_sharded
        from repro.plan.plan import ExecutionPlan, TransferSchedule

        if imbalance is not None and np.isscalar(imbalance) and imbalance < 0:
            raise SimulationError("imbalance must be non-negative")
        plan = ExecutionPlan(
            self, kernel, tasklets=tasklets, sample_size=sample_size,
            transfers=TransferSchedule(
                bytes_in_per_element=bytes_in_per_element,
                bytes_out_per_element=bytes_out_per_element,
                include_transfers=include_transfers,
                balanced=balanced_transfers,
                rank_parallel=rank_parallel_transfers,
            ),
        )
        return execute_sharded(
            plan, inputs, n_shards=shards, overlap=overlap,
            virtual_n=virtual_n, imbalance=imbalance, rng=rng, batch=batch,
            workers=workers, pool=pool, start_method=start_method,
            timeout=timeout, rank_aligned=rank_aligned,
        )
