"""The full PIM system: many PIM cores plus host transfer links.

Workloads in the paper (Figure 9) run on 2545 PIM cores with 16 tasklets
each.  Work is distributed evenly across cores (SPMD), inputs are scattered
host->PIM, results gathered PIM->host, and the kernel time is the slowest
core's time — with even distribution, the representative core's time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.obs.tracer import span as _span
from repro.pim.config import SystemConfig, UPMEM_SYSTEM
from repro.pim.dpu import DPU, Kernel, KernelResult

__all__ = ["PIMSystem", "SystemRunResult"]


@dataclass
class SystemRunResult:
    """Timing breakdown for a whole-system kernel launch."""

    n_elements: int
    n_dpus_used: int
    tasklets: int
    kernel_seconds: float        # time on the (representative) slowest core
    host_to_pim_seconds: float   # scattering inputs
    pim_to_host_seconds: float   # gathering outputs
    launch_seconds: float        # fixed launch overhead
    per_dpu: KernelResult

    @property
    def total_seconds(self) -> float:
        return (
            self.kernel_seconds
            + self.host_to_pim_seconds
            + self.pim_to_host_seconds
            + self.launch_seconds
        )

    @property
    def compute_only_seconds(self) -> float:
        """Kernel time excluding transfers (the Figure 1(c) deployment)."""
        return self.kernel_seconds + self.launch_seconds


class PIMSystem:
    """A collection of identical PIM cores fed by a host processor."""

    def __init__(
        self,
        config: SystemConfig = UPMEM_SYSTEM,
        costs: OpCosts = UPMEM_COSTS,
    ):
        self.config = config
        self.costs = costs
        #: Representative core used for SPMD timing and table placement.
        self.dpu = DPU(config.dpu, costs)

    def elements_per_dpu(self, n_elements: int) -> int:
        """Even SPMD split, rounded up (the slowest core's share)."""
        return -(-n_elements // self.config.n_dpus)

    def run(
        self,
        kernel: Kernel,
        inputs: Sequence[float],
        tasklets: int = 16,
        sample_size: int = 64,
        bytes_in_per_element: int = 4,
        bytes_out_per_element: int = 4,
        include_transfers: bool = True,
        balanced_transfers: bool = True,
        imbalance: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        virtual_n: Optional[int] = None,
        batch: bool = True,
    ) -> SystemRunResult:
        """Simulate a whole-system run of ``kernel`` over ``inputs``.

        ``include_transfers=False`` models the in-PIM-pipeline deployment of
        Figure 1(c), where operands already live in the PIM cores' banks.
        ``virtual_n`` treats ``inputs`` as a sample standing in for that many
        elements (e.g. the paper's 10M options traced from a 10k sample).
        ``balanced_transfers=False`` models unequal per-bank buffers, which
        the hardware cannot scatter/gather in parallel (Section 2.1) — they
        serialize at the single-bank bandwidth.  ``imbalance`` models uneven
        work distribution: the slowest core receives ``(1 + imbalance)``
        times the fair share, and the whole launch waits for it (SPMD
        barrier at the gather).
        """
        if imbalance < 0:
            raise SimulationError("imbalance must be non-negative")
        inputs = np.asarray(inputs, dtype=np.float32)
        n = int(virtual_n if virtual_n is not None else inputs.shape[0])
        if n == 0 or inputs.shape[0] == 0:
            raise SimulationError("cannot run a system kernel over empty input")

        per_core = self.elements_per_dpu(n)
        n_used = min(self.config.n_dpus, -(-n // per_core))

        with _span("system.run", n_elements=n, tasklets=tasklets,
                   n_dpus_used=n_used) as run_sp:
            with _span("host_to_pim") as h2p_sp:
                if include_transfers:
                    h2p = self.config.host_to_pim_seconds(
                        n * bytes_in_per_element,
                        balanced=balanced_transfers)
                else:
                    h2p = 0.0
                h2p_sp.set(sim_seconds=h2p,
                           bytes=n * bytes_in_per_element
                           if include_transfers else 0)

            # The representative core traces a sample drawn from the full
            # input distribution but runs its per-core share of elements.
            with _span("kernel") as k_sp:
                core_result = self.dpu.run_kernel(
                    kernel,
                    inputs,
                    tasklets=tasklets,
                    sample_size=sample_size,
                    bytes_in_per_element=bytes_in_per_element,
                    bytes_out_per_element=bytes_out_per_element,
                    rng=rng,
                    virtual_n=n,
                    batch=batch,
                )
                share = per_core / n * (1.0 + imbalance)
                kernel_seconds = core_result.seconds * share
                k_sp.set(sim_seconds=kernel_seconds,
                         cycles=core_result.cycles * share,
                         per_dpu_cycles=core_result.cycles,
                         slots=core_result.total_tally.slots)

            with _span("pim_to_host") as p2h_sp:
                if include_transfers:
                    p2h = self.config.pim_to_host_seconds(
                        n * bytes_out_per_element,
                        balanced=balanced_transfers)
                else:
                    p2h = 0.0
                p2h_sp.set(sim_seconds=p2h,
                           bytes=n * bytes_out_per_element
                           if include_transfers else 0)

            with _span("launch") as l_sp:
                launch = self.config.launch_overhead_s
                l_sp.set(sim_seconds=launch)

            result = SystemRunResult(
                n_elements=n,
                n_dpus_used=n_used,
                tasklets=tasklets,
                kernel_seconds=kernel_seconds,
                host_to_pim_seconds=h2p,
                pim_to_host_seconds=p2h,
                launch_seconds=launch,
                per_dpu=core_result,
            )
            run_sp.set(sim_seconds=result.total_seconds)
        return result
