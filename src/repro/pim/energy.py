"""Energy model for PIM-vs-CPU comparisons (extension beyond the paper).

The paper motivates PIM with the *energy* cost of data movement (Section 1)
but reports only execution time.  This model adds the energy axis using
published system-level figures:

* a UPMEM DIMM draws ~23 W fully active — ~0.22 W per DPU including its
  bank — so the paper's 20-DIMM, 2545-DPU system draws ~560 W, *more* than
  the 2-socket host (~250 W);
* the PIM side is charged ``active power x kernel time`` plus per-byte link
  energy for host transfers; the CPU side package power times its time;
* moving a byte over the DDR4 link costs ~80 pJ.

The honest consequence (asserted by the tests): at these constants the PIM
system is energy-competitive exactly where it is time-competitive within
the ~2.2x power ratio.  Fixed-point Blackscholes (faster than the CPU) wins
energy; sigmoid (2x slower) loses it.  The per-byte transfer energy is
negligible next to softfloat compute — on this platform, avoiding data
movement buys *time* (bandwidth), not joules.

Compute energy scales with the cores a run actually occupies
(``SystemRunResult.n_dpus_used``); the paper-scale workloads fill all 2545
so their numbers are unchanged, but a 100-core run is no longer charged
2545 cores' power.  ``pim_energy(..., whole_system=True)`` restores the
always-on-DIMM reading.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.system import SystemRunResult

__all__ = ["EnergyModel", "DEFAULT_ENERGY_MODEL", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Joules spent by one configuration of one workload."""

    compute_joules: float
    transfer_joules: float

    @property
    def total_joules(self) -> float:
        return self.compute_joules + self.transfer_joules


@dataclass(frozen=True)
class EnergyModel:
    """System-level energy constants."""

    #: Active power of one PIM core including its DRAM bank, watts.
    watts_per_dpu: float = 0.22
    #: Number of PIM cores drawing that power during a kernel.
    n_dpus: int = 2545
    #: Host CPU package power (2 sockets), watts.
    cpu_watts: float = 250.0
    #: Energy per byte crossing the host<->memory link, joules.
    joules_per_transfer_byte: float = 80e-12

    @property
    def pim_watts(self) -> float:
        """Whole-system active power (all ``n_dpus`` cores powered)."""
        return self.watts_per_dpu * self.n_dpus

    def pim_energy(self, result: SystemRunResult,
                   bytes_in: int, bytes_out: int,
                   whole_system: bool = False) -> EnergyReport:
        """Energy of a simulated PIM run: kernel power-time + link bytes.

        Compute energy is charged for the cores the run *used*
        (``result.n_dpus_used``), not the full 2545 — a run that fills 100
        cores does not draw the other 2445's active power.  Pass
        ``whole_system=True`` for the paper's always-on-DIMM reading, where
        every installed DIMM draws active power for the duration of the
        kernel regardless of occupancy (DRAM refresh + idle DPU draw,
        pessimistic for PIM).
        """
        n_active = (self.n_dpus if whole_system
                    else min(result.n_dpus_used, self.n_dpus))
        compute = (self.watts_per_dpu * n_active
                   * result.compute_only_seconds)
        transfer = (bytes_in + bytes_out) * self.joules_per_transfer_byte
        return EnergyReport(compute_joules=compute, transfer_joules=transfer)

    def cpu_energy(self, seconds: float,
                   bytes_moved: int = 0) -> EnergyReport:
        """Energy of a CPU run: package power-time + memory-link bytes."""
        return EnergyReport(
            compute_joules=self.cpu_watts * seconds,
            transfer_joules=bytes_moved * self.joules_per_transfer_byte,
        )

    def pim_to_cpu_power_ratio(self) -> float:
        """CPU package power over PIM system power (<1: PIM draws more)."""
        return self.cpu_watts / self.pim_watts


#: The paper's platform: 2545 DPUs vs a 2-socket Xeon.
DEFAULT_ENERGY_MODEL = EnergyModel()
