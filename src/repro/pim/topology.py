"""Hierarchical channel/DIMM/rank topology of the PIM system.

The paper's evaluation platform (Section 4.1) is not a flat pool of PIM
cores: 2560 DPUs sit on 20 DIMMs (2 ranks of 64 DPUs each) behind two
memory channels, and 15 DPUs are defective, leaving 2545 usable.  The
structure matters for performance modeling:

* parallel (balanced) host<->PIM transfers batch per *rank* — an
  unbalanced scatter serializes per rank, not per system, so a rank-aware
  model recovers rank-level parallelism the flat ``n_dpus`` scalar hides
  ("UPMEM Unleashed", PAPERS.md);
* host-side worker placement is NUMA-sensitive — a pool worker driving
  ranks on channel 0 should run on the socket attached to channel 0.

:class:`Topology` is the hierarchy made explicit, with a flat *usable*
DPU index space layered on top: usable index ``i`` names the ``i``-th
non-defective DPU in physical order, which is exactly the index space
:class:`~repro.pim.config.SystemConfig.n_dpus`, ``shard_split`` and the
pipeline scheduler's ``dpu_range`` already speak.  The class is frozen
and hashable — it rides inside :class:`~repro.pim.config.SystemConfig`
and therefore inside every :class:`~repro.plan.cache.PlanKey` — and
pickles cleanly (it crosses the process boundary in every shipped plan).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DPUCoord", "Topology", "PAPER_TOPOLOGY"]


@dataclass(frozen=True)
class DPUCoord:
    """Hierarchical position of one DPU: (channel, dimm, rank, dpu).

    ``dimm`` and ``rank`` are channel- and DIMM-relative; ``dpu`` is the
    slot within the rank.
    """

    channel: int
    dimm: int
    rank: int
    dpu: int


#: The paper reports 2545 usable of 2560 DPUs but not *which* 15 are
#: defective; model them as a deterministic spread, one roughly every
#: 170 physical slots, so defects land in 15 distinct ranks.
_PAPER_DEFECTS: Tuple[int, ...] = tuple((i * 2560) // 15 + 13
                                        for i in range(15))


@dataclass(frozen=True)
class Topology:
    """A channel/DIMM/rank/DPU hierarchy with a defective-DPU mask.

    ``defective`` holds flat *physical* DPU indices (canonicalized to a
    sorted unique tuple).  The default geometry is the paper's: 2
    channels x 10 DIMMs x 2 ranks x 64 DPUs = 2560 physical DPUs; with
    the 15-defect paper mask (:data:`PAPER_TOPOLOGY`) that is 2545
    usable.

    Physical layout is channel-major::

        physical = ((channel * dimms_per_channel + dimm)
                    * ranks_per_dimm + rank) * dpus_per_rank + dpu

    and the flat usable index space is the physical order with defective
    slots removed.
    """

    channels: int = 2
    dimms_per_channel: int = 10
    ranks_per_dimm: int = 2
    dpus_per_rank: int = 64
    defective: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("channels", "dimms_per_channel", "ranks_per_dimm",
                     "dpus_per_rank"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"topology needs {name} >= 1")
        canonical = tuple(sorted({int(d) for d in self.defective}))
        object.__setattr__(self, "defective", canonical)
        physical = self.n_dpus_physical
        if canonical and not (0 <= canonical[0]
                              and canonical[-1] < physical):
            raise ConfigurationError(
                f"defective DPU indices must lie in [0, {physical})")
        if len(canonical) >= physical:
            raise ConfigurationError(
                "topology needs at least one usable DPU")

    # -- counts --------------------------------------------------------

    @property
    def n_dimms(self) -> int:
        return self.channels * self.dimms_per_channel

    @property
    def n_ranks(self) -> int:
        return self.n_dimms * self.ranks_per_dimm

    @property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def n_dpus_physical(self) -> int:
        return self.n_ranks * self.dpus_per_rank

    @property
    def n_dpus(self) -> int:
        """Usable DPUs — the flat count every layer above consumes."""
        return self.n_dpus_physical - len(self.defective)

    # -- flat <-> hierarchical mapping ---------------------------------

    def physical_of_usable(self, index: int) -> int:
        """Physical slot of the ``index``-th usable DPU."""
        if not 0 <= index < self.n_dpus:
            raise ConfigurationError(
                f"usable DPU index {index} out of range "
                f"[0, {self.n_dpus})")
        return int(_usable_physical(self)[index])

    def usable_of_physical(self, physical: int) -> int:
        """Flat usable index of a physical slot (defects have none)."""
        if not 0 <= physical < self.n_dpus_physical:
            raise ConfigurationError(
                f"physical DPU index {physical} out of range "
                f"[0, {self.n_dpus_physical})")
        arr = _usable_physical(self)
        pos = int(np.searchsorted(arr, physical))
        if pos >= arr.shape[0] or int(arr[pos]) != physical:
            raise ConfigurationError(
                f"physical DPU {physical} is defective")
        return pos

    def coord_of_physical(self, physical: int) -> DPUCoord:
        """Hierarchical coordinate of a physical slot."""
        if not 0 <= physical < self.n_dpus_physical:
            raise ConfigurationError(
                f"physical DPU index {physical} out of range "
                f"[0, {self.n_dpus_physical})")
        block, dpu = divmod(physical, self.dpus_per_rank)
        block, rank = divmod(block, self.ranks_per_dimm)
        channel, dimm = divmod(block, self.dimms_per_channel)
        return DPUCoord(channel=channel, dimm=dimm, rank=rank, dpu=dpu)

    def physical_of_coord(self, coord: DPUCoord) -> int:
        """Physical slot of a hierarchical coordinate."""
        if not (0 <= coord.channel < self.channels
                and 0 <= coord.dimm < self.dimms_per_channel
                and 0 <= coord.rank < self.ranks_per_dimm
                and 0 <= coord.dpu < self.dpus_per_rank):
            raise ConfigurationError(f"coordinate {coord} out of range")
        block = coord.channel * self.dimms_per_channel + coord.dimm
        block = block * self.ranks_per_dimm + coord.rank
        return block * self.dpus_per_rank + coord.dpu

    def coord_of(self, index: int) -> DPUCoord:
        """Hierarchical coordinate of the ``index``-th usable DPU."""
        return self.coord_of_physical(self.physical_of_usable(index))

    def usable_index(self, coord: DPUCoord) -> int:
        """Flat usable index of a hierarchical coordinate."""
        return self.usable_of_physical(self.physical_of_coord(coord))

    # -- rank structure over the usable index space --------------------

    def rank_spans(self) -> Tuple[Tuple[int, int], ...]:
        """Half-open usable-index span of every global rank, in order.

        A fully defective rank yields an empty span.  The spans tile
        ``[0, n_dpus)`` exactly, so a range that is a union of whole
        consecutive ranks is contiguous in the flat index space.
        """
        return _rank_spans(self)

    def rank_of_usable(self, index: int) -> int:
        """Global rank index of the ``index``-th usable DPU."""
        return self.physical_of_usable(index) // self.dpus_per_rank

    def channel_of_rank(self, rank: int) -> int:
        """Memory channel a global rank hangs off."""
        if not 0 <= rank < self.n_ranks:
            raise ConfigurationError(
                f"rank {rank} out of range [0, {self.n_ranks})")
        return rank // self.ranks_per_channel

    def ranks_in_range(self, start: int, stop: int) -> int:
        """Distinct ranks a usable-index range ``[start, stop)`` touches.

        The rank-parallel transfer model fans an unbalanced scatter
        across this many ranks instead of serializing the whole system.
        """
        if stop <= start:
            return 0
        if not (0 <= start and stop <= self.n_dpus):
            raise ConfigurationError(
                f"usable range [{start}, {stop}) out of [0, {self.n_dpus})")
        return self.rank_of_usable(stop - 1) - self.rank_of_usable(start) + 1

    def channel_of_range(self, start: int, stop: int) -> int:
        """Channel of a usable-index range's first rank (shard affinity)."""
        if stop <= start:
            raise ConfigurationError("channel_of_range needs a nonempty range")
        return self.channel_of_rank(self.rank_of_usable(start))

    def split_ranks(self, n_shards: int) -> List[Tuple[int, int]]:
        """Contiguous usable-index ranges of whole ranks, one per shard.

        Non-empty ranks are distributed round-up-first across shards
        (remainder ranks to the lowest-indexed shards, mirroring
        :func:`~repro.plan.dispatch.shard_split`); every returned range
        starts and ends on a rank boundary, so no shard's ``dpu_range``
        ever straddles a rank.
        """
        from repro.errors import SimulationError

        spans = [s for s in self.rank_spans() if s[1] > s[0]]
        if n_shards < 1:
            raise SimulationError("need at least one shard")
        if n_shards > len(spans):
            raise SimulationError(
                f"{n_shards} rank-aligned shards over {len(spans)} "
                "non-empty ranks: every shard needs a whole rank")
        rq, rr = divmod(len(spans), n_shards)
        ranges: List[Tuple[int, int]] = []
        offset = 0
        for i in range(n_shards):
            take = rq + (1 if i < rr else 0)
            group = spans[offset:offset + take]
            ranges.append((group[0][0], group[-1][1]))
            offset += take
        return ranges

    # -- slicing -------------------------------------------------------

    def subrange(self, start: int, stop: int) -> "Topology":
        """The usable-index slice ``[start, stop)`` as its own topology.

        The slice keeps the per-rank usable structure of the parent —
        each spanned rank becomes one rank of the sub-topology, with the
        slots the slice does not use marked defective — so a shard
        system built from it sees the same rank count (and therefore the
        same rank-parallel transfer times) as the parent slice.  The
        geometry collapses to one channel and one DIMM: channel affinity
        of a shard is the *parent* topology's business.
        """
        if not (0 <= start < stop <= self.n_dpus):
            raise ConfigurationError(
                f"subrange [{start}, {stop}) out of [0, {self.n_dpus})")
        spans = self.rank_spans()
        lo = self.rank_of_usable(start)
        hi = self.rank_of_usable(stop - 1) + 1
        counts = [max(0, min(stop, spans[r][1]) - max(start, spans[r][0]))
                  for r in range(lo, hi)]
        defects: List[int] = []
        for j, count in enumerate(counts):
            base = j * self.dpus_per_rank
            defects.extend(range(base + count, base + self.dpus_per_rank))
        sub = Topology(
            channels=1, dimms_per_channel=1, ranks_per_dimm=hi - lo,
            dpus_per_rank=self.dpus_per_rank, defective=tuple(defects),
        )
        from repro.obs import metrics as _metrics
        _metrics.inc("topology.subranges")
        return sub

    def take(self, n: int) -> "Topology":
        """The first ``n`` usable DPUs as a sub-topology."""
        return self.subrange(0, n)

    @classmethod
    def single_rank(cls, n_dpus: int) -> "Topology":
        """A flat one-rank topology of ``n_dpus`` (the back-compat shape
        a bare ``SystemConfig(n_dpus=...)`` synthesizes)."""
        return cls(channels=1, dimms_per_channel=1, ranks_per_dimm=1,
                   dpus_per_rank=n_dpus)

    # -- identity ------------------------------------------------------

    def signature(self) -> str:
        """Stable short identity for cache keys (no object reprs).

        Geometry counts verbatim plus a digest of the defect mask:
        equal topologies encode equally, distinct defect masks cannot
        collide textually.
        """
        base = (f"{self.channels}x{self.dimms_per_channel}"
                f"x{self.ranks_per_dimm}x{self.dpus_per_rank}")
        if not self.defective:
            return base
        blob = ",".join(str(d) for d in self.defective).encode()
        digest = hashlib.sha256(blob).hexdigest()[:12]
        return f"{base}-d{len(self.defective)}-{digest}"

    def describe(self) -> str:
        """Human-readable topology report (powers ``repro topology``)."""
        from repro.analysis.report import format_table

        rows = [
            ("channels", self.channels),
            ("DIMMs per channel", self.dimms_per_channel),
            ("ranks per DIMM", self.ranks_per_dimm),
            ("DPUs per rank", self.dpus_per_rank),
            ("DIMMs", self.n_dimms),
            ("ranks", self.n_ranks),
            ("physical DPUs", self.n_dpus_physical),
            ("defective DPUs", len(self.defective)),
            ("usable DPUs", self.n_dpus),
            ("signature", self.signature()),
        ]
        text = "PIM topology\n" + format_table(["field", "value"], rows)
        spans = self.rank_spans()
        crows = []
        for c in range(self.channels):
            lo = c * self.ranks_per_channel
            hi = lo + self.ranks_per_channel
            usable = sum(s[1] - s[0] for s in spans[lo:hi])
            crows.append((c, hi - lo, usable))
        text += ("\n\nper-channel\n"
                 + format_table(["channel", "ranks", "usable DPUs"], crows))
        return text


@lru_cache(maxsize=128)
def _usable_physical(topology: Topology) -> np.ndarray:
    """Sorted physical indices of the usable DPUs (cached per topology)."""
    mask = np.ones(topology.n_dpus_physical, dtype=bool)
    if topology.defective:
        mask[np.asarray(topology.defective, dtype=np.int64)] = False
    arr = np.nonzero(mask)[0].astype(np.int64)
    arr.flags.writeable = False
    return arr


@lru_cache(maxsize=128)
def _rank_spans(topology: Topology) -> Tuple[Tuple[int, int], ...]:
    """Usable-index span per global rank (cached per topology)."""
    physical = _usable_physical(topology)
    ranks = physical // topology.dpus_per_rank
    bounds = np.searchsorted(
        ranks, np.arange(topology.n_ranks + 1, dtype=np.int64))
    return tuple((int(bounds[r]), int(bounds[r + 1]))
                 for r in range(topology.n_ranks))


#: The paper's system: 2 channels x 10 DIMMs x 2 ranks x 64 DPUs, with a
#: deterministic 15-DPU defect mask -> 2545 usable of 2560.
PAPER_TOPOLOGY = Topology(defective=_PAPER_DEFECTS)
