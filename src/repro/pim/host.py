"""Host runtime: install TransPimLib functions into a PIM system and call them.

This is the deployment-shaped API a downstream user works with: a
:class:`PIMRuntime` owns a simulated system, `install()` performs the
host-side setup (table generation, memory placement in every core's WRAM or
MRAM, transfer-time accounting), and the returned
:class:`InstalledFunction` evaluates arrays bit-exactly while exposing the
simulated execution time of whole-system runs.

Example::

    from repro.pim.host import PIMRuntime
    from repro import make_method

    rt = PIMRuntime()
    sin = rt.install(make_method("sin", "llut_i", density_log2=12,
                                 assume_in_range=False))
    y = sin(x)                      # values
    t = sin.run(x).total_seconds    # simulated whole-system time
    print(rt.memory_report())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.report import format_table
from repro.core.method import Method
from repro.core.setup_model import DEFAULT_SETUP_MODEL, SetupTimeModel
from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.system import PIMSystem, SystemRunResult

__all__ = ["PIMRuntime", "InstalledFunction"]


@dataclass
class InstalledFunction:
    """A method set up and resident in every PIM core of a runtime."""

    method: Method
    runtime: "PIMRuntime"
    setup_seconds: float

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate values (bit-exact float32 path)."""
        return self.method.evaluate_vec(np.asarray(x, dtype=np.float32))

    def run(self, x: np.ndarray, tasklets: int = 16,
            virtual_n: Optional[int] = None, shards: int = 1,
            overlap: bool = False, workers: Optional[int] = None,
            pool=None, start_method: Optional[str] = None,
            timeout: Optional[float] = None):
        """Simulate a whole-system evaluation over ``x``.

        Launches go through the runtime's plan cache, so repeated calls are
        PlanCache-warm (no table rebuild, no re-tracing of seen cost paths)
        yet return numbers bit-identical to ``PIMSystem.run``.
        ``shards``/``overlap`` dispatch across disjoint DPU groups and
        return a :class:`~repro.plan.dispatch.ShardedRunResult` instead;
        ``workers``/``pool`` run those shards on a multiprocess pool
        (:mod:`repro.plan.pool`) with bit-identical results.
        """
        with _span("host.run", function=self.name) as sp:
            plan = self.runtime.plan(self.name, tasklets=tasklets)
            x = np.asarray(x, dtype=np.float32)
            if shards > 1:
                from repro.plan.dispatch import execute_sharded
                result = execute_sharded(plan, x, n_shards=shards,
                                         overlap=overlap,
                                         virtual_n=virtual_n,
                                         workers=workers, pool=pool,
                                         start_method=start_method,
                                         timeout=timeout)
            else:
                result = plan.execute(x, virtual_n=virtual_n,
                                      span_name="system.run")
            sp.set(sim_seconds=result.total_seconds,
                   n_elements=result.n_elements)
        return result

    @property
    def name(self) -> str:
        return f"{self.method.method_name}:{self.method.spec.name}"

    @property
    def table_bytes(self) -> int:
        return self.method.table_bytes()


class PIMRuntime:
    """Owns a PIM system and the functions installed into its cores."""

    def __init__(self, system: Optional[PIMSystem] = None,
                 setup_model: SetupTimeModel = DEFAULT_SETUP_MODEL):
        self.system = system or PIMSystem()
        self.setup_model = setup_model
        self._installed: Dict[str, InstalledFunction] = {}
        self._plans = None  # lazily-created PlanCache

    def install(self, method: Method) -> InstalledFunction:
        """Set up ``method`` and place its tables in the cores' memory.

        Raises :class:`~repro.errors.MemoryLayoutError` when the tables no
        longer fit the chosen region (every installed function shares the
        per-core WRAM/MRAM with everything installed before it).
        """
        # Validate the name before touching the cores: a rejected install
        # must not leave tables allocated in every core's region (or bump
        # the memory gauges) for a function the runtime refuses to own.
        name = f"{method.method_name}:{method.spec.name}"
        if name in self._installed:
            raise ConfigurationError(
                f"{name} is already installed in this runtime"
            )
        region = (self.system.dpu.wram if method.placement == "wram"
                  else self.system.dpu.mram)
        with _span("host.install", method=name) as sp:
            with _span("table_build") as build_sp:
                method.setup(region)
                build_sp.set(table_bytes=method.table_bytes(),
                             entries=method.host_entries())
            fn = InstalledFunction(
                method=method,
                runtime=self,
                setup_seconds=self.setup_model.seconds(
                    method.host_entries(), method.table_bytes()
                ),
            )
            sp.set(sim_seconds=fn.setup_seconds, placement=method.placement)
            _metrics.inc(f"memory.{region.name.lower()}_bytes",
                         method.table_bytes())
        self._installed[fn.name] = fn
        return fn

    @property
    def plan_cache(self):
        """The runtime's PlanCache (created on first use)."""
        if self._plans is None:
            from repro.plan.cache import PlanCache
            self._plans = PlanCache()
        return self._plans

    def plan(self, name: str, *, tasklets: int = 16, sample_size: int = 64,
             transfers=None):
        """Compiled :class:`~repro.plan.plan.ExecutionPlan` for an
        installed function, cached across calls."""
        fn = self[name]
        return self.plan_cache.plan(
            self.system, fn.method, tasklets=tasklets,
            sample_size=sample_size, transfers=transfers,
        )

    def __getitem__(self, name: str) -> InstalledFunction:
        try:
            return self._installed[name]
        except KeyError:
            installed = ", ".join(sorted(self._installed)) or "(none)"
            raise ConfigurationError(
                f"{name!r} is not installed; installed: {installed}"
            ) from None

    @property
    def functions(self) -> List[str]:
        return sorted(self._installed)

    @property
    def total_setup_seconds(self) -> float:
        return sum(f.setup_seconds for f in self._installed.values())

    def memory_report(self) -> str:
        """Per-core memory usage of everything installed so far."""
        dpu = self.system.dpu
        rows = []
        for region in (dpu.wram, dpu.mram):
            for alloc in region.allocations:
                rows.append((region.name, alloc.label, alloc.nbytes))
            rows.append((region.name, "(free)", region.free_bytes))
        return ("PIM core memory layout\n"
                + format_table(["region", "allocation", "bytes"], rows))
