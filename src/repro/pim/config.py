"""Configuration records for the simulated UPMEM-like PIM system.

Defaults mirror the paper's evaluation platform (Section 4.1): DPUs at
350 MHz with 64 KB of scratchpad (WRAM) and a 64 MB DRAM bank (MRAM) each,
and a 20-DIMM system totalling 2545 usable PIM cores.  The host is a
2-socket, 32-core Xeon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["DPUConfig", "SystemConfig", "UPMEM_DPU", "UPMEM_SYSTEM"]


@dataclass(frozen=True)
class DPUConfig:
    """Parameters of a single PIM core (a DPU in UPMEM terminology)."""

    frequency_mhz: float = 350.0
    wram_bytes: int = 64 * 1024          # scratchpad
    mram_bytes: int = 64 * 1024 * 1024   # DRAM bank
    iram_bytes: int = 24 * 1024          # instruction memory
    #: Minimum cycles between two instructions of the same tasklet; the
    #: fine-grained multithreaded pipeline saturates at this many tasklets.
    issue_spacing: int = 11
    max_tasklets: int = 24

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError("DPU frequency must be positive")
        if self.issue_spacing < 1:
            raise ConfigurationError("issue spacing must be at least 1")
        if self.max_tasklets < 1:
            raise ConfigurationError("a DPU needs at least one tasklet")

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count on this core to seconds."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class SystemConfig:
    """Parameters of the full PIM system plus its host links."""

    n_dpus: int = 2545
    dpu: DPUConfig = field(default_factory=DPUConfig)
    #: Aggregate host->PIM copy bandwidth with parallel (same-size) transfers
    #: across all MRAM banks, bytes/second.
    host_to_pim_bw: float = 16e9
    #: Aggregate PIM->host retrieve bandwidth, bytes/second.
    pim_to_host_bw: float = 8e9
    #: Single-bank transfer bandwidth, bytes/second.  Parallel (aggregate)
    #: transfers require same-size buffers on every bank (Section 2.1 of the
    #: paper); unbalanced transfers serialize at this rate.
    single_bank_bw: float = 600e6
    #: Fixed per-launch overhead on the host (kernel launch, driver), seconds.
    launch_overhead_s: float = 40e-6

    def __post_init__(self) -> None:
        if self.n_dpus < 1:
            raise ConfigurationError("system needs at least one PIM core")
        if self.host_to_pim_bw <= 0 or self.pim_to_host_bw <= 0:
            raise ConfigurationError("transfer bandwidths must be positive")

    def host_to_pim_seconds(self, total_bytes: int,
                            balanced: bool = True) -> float:
        """Time to scatter ``total_bytes`` from host to MRAM banks.

        Parallel transfers need equal buffer sizes across banks; unbalanced
        scatters fall back to serial single-bank copies (Section 2.1).
        """
        if balanced:
            return total_bytes / self.host_to_pim_bw
        return total_bytes / self.single_bank_bw

    def pim_to_host_seconds(self, total_bytes: int,
                            balanced: bool = True) -> float:
        """Time to gather ``total_bytes`` from MRAM banks back to the host."""
        if balanced:
            return total_bytes / self.pim_to_host_bw
        return total_bytes / self.single_bank_bw


#: The paper's DPU (350 MHz, 64 KB WRAM, 64 MB MRAM).
UPMEM_DPU = DPUConfig()

#: The paper's 20-DIMM system (2545 usable DPUs).
UPMEM_SYSTEM = SystemConfig()
