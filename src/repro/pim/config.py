"""Configuration records for the simulated UPMEM-like PIM system.

Defaults mirror the paper's evaluation platform (Section 4.1): DPUs at
350 MHz with 64 KB of scratchpad (WRAM) and a 64 MB DRAM bank (MRAM) each,
and a 20-DIMM system totalling 2545 usable PIM cores.  The host is a
2-socket, 32-core Xeon.

The system's core count is derived from a hierarchical
:class:`~repro.pim.topology.Topology` (channels -> DIMMs -> ranks ->
DPUs): the default reproduces the paper's 2545-usable-of-2560 machine,
while a bare ``SystemConfig(n_dpus=...)`` still works by synthesizing a
flat single-rank topology of that size.  Passing *both* with
``n_dpus`` smaller than the topology's usable count slices the topology
down to its first ``n_dpus`` usable cores — this is what keeps
``dataclasses.replace(config, n_dpus=k)`` (the shard sub-system idiom)
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.pim.topology import PAPER_TOPOLOGY, Topology

__all__ = ["DPUConfig", "SystemConfig", "UPMEM_DPU", "UPMEM_SYSTEM"]


@dataclass(frozen=True)
class DPUConfig:
    """Parameters of a single PIM core (a DPU in UPMEM terminology)."""

    frequency_mhz: float = 350.0
    wram_bytes: int = 64 * 1024          # scratchpad
    mram_bytes: int = 64 * 1024 * 1024   # DRAM bank
    iram_bytes: int = 24 * 1024          # instruction memory
    #: Minimum cycles between two instructions of the same tasklet; the
    #: fine-grained multithreaded pipeline saturates at this many tasklets.
    issue_spacing: int = 11
    max_tasklets: int = 24

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError("DPU frequency must be positive")
        if self.issue_spacing < 1:
            raise ConfigurationError("issue spacing must be at least 1")
        if self.max_tasklets < 1:
            raise ConfigurationError("a DPU needs at least one tasklet")

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count on this core to seconds."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class SystemConfig:
    """Parameters of the full PIM system plus its host links.

    ``n_dpus`` and ``topology`` reconcile in ``__post_init__``:

    * neither given — the paper topology (2545 usable of 2560);
    * only ``n_dpus`` — a synthesized flat single-rank topology;
    * only ``topology`` — ``n_dpus`` derived as its usable count;
    * both, with ``n_dpus`` below the usable count — the topology's
      first ``n_dpus`` usable cores (:meth:`Topology.take`), preserving
      the rank structure of the slice.

    After construction ``n_dpus == topology.n_dpus`` always holds.
    """

    n_dpus: Optional[int] = None
    dpu: DPUConfig = field(default_factory=DPUConfig)
    #: Aggregate host->PIM copy bandwidth with parallel (same-size) transfers
    #: across all MRAM banks, bytes/second.
    host_to_pim_bw: float = 16e9
    #: Aggregate PIM->host retrieve bandwidth, bytes/second.
    pim_to_host_bw: float = 8e9
    #: Single-bank transfer bandwidth, bytes/second.  Parallel (aggregate)
    #: transfers require same-size buffers on every bank (Section 2.1 of the
    #: paper); unbalanced transfers serialize at this rate.
    single_bank_bw: float = 600e6
    #: Fixed per-launch overhead on the host (kernel launch, driver), seconds.
    launch_overhead_s: float = 40e-6
    #: Hierarchical channel/DIMM/rank structure the flat index space maps
    #: onto; ``None`` resolves against ``n_dpus`` as documented above.
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        topo = self.topology
        if topo is None:
            if self.n_dpus is None:
                topo = PAPER_TOPOLOGY
            else:
                if self.n_dpus < 1:
                    raise ConfigurationError(
                        "system needs at least one PIM core")
                topo = Topology.single_rank(self.n_dpus)
        elif self.n_dpus is not None and self.n_dpus != topo.n_dpus:
            if self.n_dpus < 1:
                raise ConfigurationError("system needs at least one PIM core")
            if self.n_dpus > topo.n_dpus:
                raise ConfigurationError(
                    f"n_dpus={self.n_dpus} exceeds the topology's "
                    f"{topo.n_dpus} usable DPUs")
            topo = topo.take(self.n_dpus)
        object.__setattr__(self, "topology", topo)
        object.__setattr__(self, "n_dpus", topo.n_dpus)
        if self.host_to_pim_bw <= 0 or self.pim_to_host_bw <= 0:
            raise ConfigurationError("transfer bandwidths must be positive")

    def subrange(self, start: int, stop: int) -> "SystemConfig":
        """This config restricted to usable DPUs ``[start, stop)``.

        The rank-aligned shard dispatcher builds shard sub-systems with
        this so each shard sees its slice's true rank structure (and
        therefore its rank-parallel transfer times) instead of a flat
        synthesized rank.
        """
        sub = self.topology.subrange(start, stop)
        return replace(self, n_dpus=sub.n_dpus, topology=sub)

    def host_to_pim_seconds(self, total_bytes: int,
                            balanced: bool = True,
                            ranks: Optional[int] = None) -> float:
        """Time to scatter ``total_bytes`` from host to MRAM banks.

        Parallel transfers need equal buffer sizes across banks; unbalanced
        scatters fall back to serial single-bank copies (Section 2.1).
        ``ranks`` (rank-aware mode) bounds that serialization to the
        slowest *rank's* share instead of the whole system: distinct
        ranks transfer concurrently, so the serial time divides by the
        rank fan-out.  ``None`` keeps the legacy whole-system serial
        model.
        """
        if balanced:
            return total_bytes / self.host_to_pim_bw
        if ranks is None or ranks <= 1:
            return total_bytes / self.single_bank_bw
        return (total_bytes / ranks) / self.single_bank_bw

    def pim_to_host_seconds(self, total_bytes: int,
                            balanced: bool = True,
                            ranks: Optional[int] = None) -> float:
        """Time to gather ``total_bytes`` from MRAM banks back to the host."""
        if balanced:
            return total_bytes / self.pim_to_host_bw
        if ranks is None or ranks <= 1:
            return total_bytes / self.single_bank_bw
        return (total_bytes / ranks) / self.single_bank_bw


#: The paper's DPU (350 MHz, 64 KB WRAM, 64 MB MRAM).
UPMEM_DPU = DPUConfig()

#: The paper's 20-DIMM system (2545 usable DPUs).
UPMEM_SYSTEM = SystemConfig()
