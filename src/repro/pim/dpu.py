"""A simulated PIM core (UPMEM DPU): memories, pipeline, and kernel runs.

A kernel here is a per-element traced function ``kernel(ctx, x) -> y`` written
against the :class:`~repro.isa.CycleCounter` ISA.  Running a kernel over an
input array traces a representative sample of elements to obtain the average
per-element instruction tally, extrapolates to the full element count, adds
the streaming costs of moving operands between the DRAM bank and the
scratchpad, and converts to cycles through the multithreaded pipeline model.

This mirrors the paper's microbenchmark loop (Section 4.1.1): the PIM core
moves chunks of the input array from MRAM into WRAM and operates on each
element, while a hardware counter accumulates cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.isa.counter import CycleCounter, Tally
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.config import DPUConfig, UPMEM_DPU
from repro.pim.memory import MemoryRegion
from repro.pim.pipeline import PipelineModel

__all__ = ["DPU", "KernelResult", "STREAM_CHUNK_ELEMS", "LOOP_SLOTS_PER_ELEMENT"]

#: Elements moved per MRAM<->WRAM streaming chunk in the benchmark loop.
STREAM_CHUNK_ELEMS = 256

#: Loop bookkeeping per element: WRAM operand load/store, pointer updates,
#: loop compare-and-branch.  Charged identically to every method, so it
#: shifts all curves by a constant without changing their ordering.
LOOP_SLOTS_PER_ELEMENT = 8

Kernel = Callable[[CycleCounter, np.float32], object]


@dataclass
class KernelResult:
    """Outcome of simulating a kernel over an input array on one PIM core."""

    n_elements: int
    tasklets: int
    per_element_tally: Tally
    total_tally: Tally
    cycles: float
    seconds: float
    sample_outputs: np.ndarray

    @property
    def cycles_per_element(self) -> float:
        if self.n_elements == 0:
            return 0.0
        return self.cycles / self.n_elements


def _scale_tally(tally: Tally, factor: float) -> Tally:
    """Return a tally scaled by ``factor`` (fields become floats)."""
    scaled = Tally(
        slots=tally.slots * factor,
        dma_transactions=tally.dma_transactions * factor,
        dma_bytes=tally.dma_bytes * factor,
        dma_latency=tally.dma_latency * factor,
    )
    scaled.counts = {k: v * factor for k, v in tally.counts.items()}
    return scaled


class DPU:
    """One simulated PIM core with its WRAM, MRAM, and pipeline."""

    def __init__(
        self,
        config: DPUConfig = UPMEM_DPU,
        costs: OpCosts = UPMEM_COSTS,
    ):
        self.config = config
        self.costs = costs
        self.wram = MemoryRegion("WRAM", config.wram_bytes)
        self.mram = MemoryRegion("MRAM", config.mram_bytes)
        self.pipeline = PipelineModel(config)

    def reset_memory(self) -> None:
        """Release all tables and buffers in both memories."""
        self.wram.reset()
        self.mram.reset()

    # ------------------------------------------------------------------

    def _streaming_tally(self, n_elements: int, bytes_in: int, bytes_out: int) -> Tally:
        """Cost of moving operands MRAM<->WRAM in chunks plus loop overhead."""
        tally = Tally()
        tally.slots = n_elements * LOOP_SLOTS_PER_ELEMENT
        n_chunks = max(1, -(-n_elements // STREAM_CHUNK_ELEMS))
        transfers = 0
        if bytes_in:
            transfers += 1
        if bytes_out:
            transfers += 1
        tally.slots += n_chunks * transfers * self.costs.mram_dma_setup
        total_bytes = n_elements * (bytes_in + bytes_out)
        tally.dma_transactions = n_chunks * transfers
        tally.dma_bytes = total_bytes
        tally.dma_latency = ((total_bytes + 7) // 8) * self.costs.mram_dma_per_8b
        return tally

    def trace_element(self, kernel: Kernel, x: float) -> "tuple[object, Tally]":
        """Run ``kernel`` on a single element and return (output, tally)."""
        ctx = CycleCounter(self.costs)
        y = kernel(ctx, np.float32(x))
        return y, ctx.reset()

    @staticmethod
    def _batchable_method(kernel: Kernel):
        """The Method behind ``kernel`` if it is a plain bound ``evaluate``."""
        from repro.core.method import Method

        owner = getattr(kernel, "__self__", None)
        if isinstance(owner, Method) and \
                getattr(kernel, "__func__", None) is Method.evaluate:
            return owner
        return None

    def run_kernel(
        self,
        kernel: Kernel,
        inputs: Sequence[float],
        tasklets: int = 16,
        sample_size: int = 64,
        bytes_in_per_element: int = 4,
        bytes_out_per_element: int = 4,
        rng: Optional[np.random.Generator] = None,
        virtual_n: Optional[int] = None,
        batch: bool = True,
        tally_cache: Optional[dict] = None,
        vec=None,
    ) -> KernelResult:
        """Simulate running ``kernel`` over ``inputs`` with ``tasklets`` threads.

        A sample of elements (all of them when the array is small) is traced
        to measure the average per-element instruction tally; the total is an
        extrapolation plus the streaming costs.  Sampling is sound because
        TransPimLib kernels are data-oblivious up to branch direction, and the
        sample preserves the input distribution.

        When ``kernel`` is a :class:`~repro.core.method.Method`'s ``evaluate``
        and ``batch`` is true, the sample's tally comes from the batched
        traced-execution engine (``repro.batch``): the sample is classified
        into cost paths and one representative per path is traced.  The
        aggregate is bit-identical to the per-element scalar loop (the
        differential harness in ``tests/batch/`` enforces this), so reported
        cycle numbers do not change — only the tracing cost drops.
        ``batch=False`` forces the scalar loop.

        ``virtual_n`` treats ``inputs`` as a sample standing in for a larger
        array of that many elements drawn from the same distribution —
        tracing cost is bounded while timing reflects the full size.

        ``tally_cache`` is a path-key -> Tally dict handed to the batch
        engine so repeated launches (an ExecutionPlan's steady state) skip
        scalar tracing for already-seen cost paths.

        ``vec`` is an optional compiled
        :class:`~repro.batch.vec.VecEvaluator` for the same method: when it
        classifies the sample, one fused array pass produces the sample
        outputs *and* the cost aggregate (bit-identical to
        ``batch_tally`` + ``evaluate_vec`` — the vec differential harness
        enforces this), and its memo carries repeated launches.  When it
        abstains, the traced engine below runs unchanged.
        """
        inputs = np.asarray(inputs, dtype=np.float32)
        # 1-D arrays are streams of scalars; 2-D arrays are streams of
        # records (e.g. Blackscholes option tuples), one row per element.
        n = int(virtual_n if virtual_n is not None else inputs.shape[0])
        if n == 0 or inputs.shape[0] == 0:
            raise SimulationError("cannot run a kernel over an empty input array")

        available = int(inputs.shape[0])
        if available <= sample_size:
            sample = inputs
        else:
            generator = rng or np.random.default_rng(0x7A57)
            idx = generator.choice(available, size=sample_size, replace=False)
            sample = inputs[np.sort(idx)]

        method = self._batchable_method(kernel) if batch else None
        with _span("dpu.trace", sample_size=len(sample),
                   batched=method is not None) as trace_sp:
            if method is not None:
                from repro.batch import batch_tally

                fused = None
                if vec is not None and vec.method is method:
                    fused = vec.run(sample, tally_cache=tally_cache)
                if fused is not None:
                    sample_tally = fused.batch.tally
                    outputs = fused.values
                    trace_sp.set(n_cost_paths=len(fused.batch.paths),
                                 vec=True)
                else:
                    result = batch_tally(method, sample,
                                         tally_cache=tally_cache)
                    sample_tally = result.tally
                    outputs = method.evaluate_vec(sample)
                    trace_sp.set(n_cost_paths=len(result.paths))
            else:
                sample_tally = Tally()
                outputs = []
                for x in sample:
                    y, tally = self.trace_element(kernel, x)
                    sample_tally.add(tally)
                    outputs.append(y)

        per_element = _scale_tally(sample_tally, 1.0 / len(sample))
        total = _scale_tally(per_element, float(n))
        total.add(self._streaming_tally(n, bytes_in_per_element, bytes_out_per_element))

        estimate = self.pipeline.estimate(total, tasklets)
        cycles = estimate.total_cycles
        seconds = self.config.cycles_to_seconds(cycles)
        hidden = estimate.dma_hidden_fraction
        if hidden is not None:
            _metrics.observe("dpu.dma_hidden_fraction", hidden)
        _metrics.inc("dpu.kernel_runs")
        _metrics.inc("dpu.dma_bytes", total.dma_bytes)
        return KernelResult(
            n_elements=n,
            tasklets=tasklets,
            per_element_tally=per_element,
            total_tally=total,
            cycles=cycles,
            seconds=seconds,
            sample_outputs=np.asarray(outputs, dtype=np.float32),
        )

    def run_kernel_exact(
        self,
        kernel: Kernel,
        inputs: Sequence[float],
        tasklets: int = 16,
        max_units: int = 5_000_000,
    ) -> KernelResult:
        """Cycle-accurate kernel run: every element traced, instruction-level
        simulation instead of the analytic pipeline model.

        Ground truth for :meth:`run_kernel` (DESIGN.md's pipeline-model
        substitution), at simulation cost linear in total instruction slots —
        use for small arrays.  Elements are dealt round-robin to tasklets,
        as the SPMD benchmark loop does.
        """
        from repro.isa.counter import CycleCounter as _Counter
        from repro.pim.exec import simulate, trace_to_program

        inputs = np.asarray(inputs, dtype=np.float32)
        n = int(inputs.shape[0])
        if n == 0:
            raise SimulationError("cannot run a kernel over an empty input array")

        tasklets = min(tasklets, n)
        programs = [[] for _ in range(tasklets)]
        total = Tally()
        outputs = []
        for i, x in enumerate(inputs):
            trace = []
            ctx = _Counter(self.costs, trace_ops=trace)
            outputs.append(kernel(ctx, x))
            total.add(ctx.reset())
            programs[i % tasklets].extend(trace_to_program(trace))

        units = sum(instr.slots for prog in programs for instr in prog)
        if units > max_units:
            raise SimulationError(
                f"cycle-accurate run of {units} instruction slots exceeds "
                f"max_units={max_units}; use run_kernel() for large arrays"
            )
        sim = simulate(programs, self.config)
        per_element = _scale_tally(total, 1.0 / n)
        return KernelResult(
            n_elements=n,
            tasklets=tasklets,
            per_element_tally=per_element,
            total_tally=total,
            cycles=float(sim.cycles),
            seconds=self.config.cycles_to_seconds(sim.cycles),
            sample_outputs=np.asarray(outputs, dtype=np.float32),
        )
