"""Fine-grained multithreaded pipeline timing model.

UPMEM DPUs are deeply pipelined and fine-grained multithreaded: two
instructions of the *same* tasklet must be ``issue_spacing`` (11) cycles
apart, but instructions of different tasklets interleave freely.  With ``t``
resident tasklets the pipeline therefore retires ``min(t, 11)/11``
instructions per cycle — it saturates at 11 tasklets, which is why the paper
runs 16 tasklets per PIM core.

DMA latency overlaps with execution: while one tasklet waits for an MRAM
transaction, the others keep issuing.  With one tasklet the latency is fully
exposed; from ``issue_spacing`` tasklets upward it is fully hidden (bounded
below by the DMA engine's own serial occupancy).  This reproduces the paper's
Observation 4 — MRAM-resident LUTs perform like WRAM-resident ones because
softfloat slots, not DMA beats, dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.isa.counter import Tally
from repro.pim.config import DPUConfig

__all__ = ["PipelineModel", "ExecutionEstimate"]


@dataclass(frozen=True)
class ExecutionEstimate:
    """Cycle breakdown for running a tally on one PIM core."""

    pipeline_cycles: float   # instruction-slot component
    dma_cycles: float        # DMA latency component before overlap
    exposed_dma_cycles: float  # DMA latency that could not be hidden
    total_cycles: float

    @property
    def dma_hidden_fraction(self) -> Optional[float]:
        """Fraction of DMA latency hidden behind execution.

        ``None`` when the tally issued no DMA at all — there is nothing to
        hide, and reporting 0.0 would read as "all latency exposed" in
        metrics dashboards (vacuously, a no-DMA run is fully hidden).
        """
        if self.dma_cycles == 0:
            return None
        return 1.0 - self.exposed_dma_cycles / self.dma_cycles


class PipelineModel:
    """Converts instruction-slot tallies into cycles for a tasklet count."""

    def __init__(self, config: DPUConfig):
        self.config = config

    def throughput(self, tasklets: int) -> float:
        """Retired instruction slots per cycle with ``tasklets`` threads."""
        self._check(tasklets)
        spacing = self.config.issue_spacing
        return min(tasklets, spacing) / spacing

    def _check(self, tasklets: int) -> None:
        if tasklets < 1 or tasklets > self.config.max_tasklets:
            raise ConfigurationError(
                f"tasklet count {tasklets} outside [1, {self.config.max_tasklets}]"
            )

    def estimate(self, tally: Tally, tasklets: int) -> ExecutionEstimate:
        """Estimate cycles to execute ``tally`` with ``tasklets`` threads.

        The DMA overlap factor grows linearly with the number of *other*
        tasklets available to fill stall slots and reaches 1 at pipeline
        saturation.
        """
        self._check(tasklets)
        spacing = self.config.issue_spacing
        pipeline_cycles = tally.slots / self.throughput(tasklets)
        dma_cycles = float(tally.dma_latency)
        overlap = min(1.0, max(0, tasklets - 1) / spacing)
        exposed = dma_cycles * (1.0 - overlap)
        # Even fully-overlapped DMA cannot push total below the DMA engine's
        # serial occupancy.
        total = max(pipeline_cycles + exposed, dma_cycles)
        return ExecutionEstimate(
            pipeline_cycles=pipeline_cycles,
            dma_cycles=dma_cycles,
            exposed_dma_cycles=exposed,
            total_cycles=total,
        )

    def cycles(self, tally: Tally, tasklets: int) -> float:
        """Shorthand for ``estimate(...).total_cycles``."""
        return self.estimate(tally, tasklets).total_cycles
