"""Normalized request identity: what makes two serving requests coalescible.

Two requests may share one coalesced batch — and therefore one compiled
:class:`~repro.plan.plan.ExecutionPlan` — exactly when they would compile
to the same :class:`~repro.plan.cache.PlanKey`: same kernel (function +
method + every precision knob, q-format included), same placement, same
system configuration and op costs, same launch geometry, same vec flag.

A :class:`RequestSpec` is the request-side half of that identity,
*normalized* so that textually different ways of asking for the same
kernel collapse onto one key:

* constructor knobs are sorted by name and stored as ``(tag, value)``
  typed pairs (the same canonicalization :mod:`repro.plan.cache` uses for
  plan signatures), so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` are
  one spec, numpy scalars collapse onto their python values, and ``1``
  never collides with ``True`` or ``"1"``;
* fixed-point geometry knobs (``density_log2`` and friends) travel
  through the same pairs — requests for different table densities or
  segment budgets can never share one compiled table;
* defaults are applied before normalization, so an explicit
  ``placement="mram"`` equals an omitted one.

The mapping into a :class:`~repro.plan.cache.PlanKey` is total: the spec
builds an (un-setup) :class:`~repro.core.method.Method` via
:func:`repro.api.make_method` and keys it with
:meth:`~repro.plan.cache.PlanCache.key_for` — so every field of the plan
key machinery (table signature, system digest, costs, transfers) is
inherited rather than re-derived.  The ``cache-key`` lint pass checks this
module's builders with the same discipline it applies to the plan cache:
no ``repr()`` components, and every :class:`RequestSpec` field declared in
the coverage contract mapping it into ``PlanKey`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.plan.cache import PlanKey
from repro.plan.cache import key_for as _plan_key_for
from repro.plan.plan import TransferSchedule

__all__ = ["RequestSpec", "normalize_request", "spec_method", "request_key"]

#: Tag -> decoder for typed param pairs (inverse of the encoding below).
_DECODERS = {
    "b": bool,
    "i": int,
    "f": float.fromhex,
    "s": str,
}


def _param_pairs(params: Mapping[str, object]) -> Tuple[
        Tuple[str, Tuple[str, object]], ...]:
    """Constructor knobs as sorted, typed ``(name, (tag, value))`` pairs.

    The typed encoding is the plan cache's: booleans before ints (so
    ``True`` never collides with ``1``), floats canonicalized through
    ``hex()`` (bit-exact, repr-independent), everything else a string.
    """
    from repro.plan.cache import _typed

    pairs = []
    for name in sorted(params):
        if not isinstance(name, str):
            raise ConfigurationError(
                f"request param names must be strings, got {type(name).__name__}")
        pairs.append((name, _typed(params[name])))
    return tuple(pairs)


@dataclass(frozen=True)
class RequestSpec:
    """One normalized serving request target (hashable, order-canonical)."""

    #: Registered function name (``"sin"``, ``"gelu"``, ...).
    function: str
    #: Method family name (``"llut_i"``, ``"dlut"``, ``"cordic_fx"``, ...).
    method: str
    #: Sorted typed constructor knobs, q-format knobs included.
    params: Tuple[Tuple[str, Tuple[str, object]], ...] = ()
    #: Table placement; part of the plan identity (traced load costs).
    placement: str = "mram"
    #: Whether the kernel may skip range reduction.
    assume_in_range: bool = False

    def param_kwargs(self) -> Dict[str, object]:
        """The constructor knobs decoded back to plain python values."""
        return {name: _DECODERS[tag](value)
                for name, (tag, value) in self.params}

    @property
    def label(self) -> str:
        """Human-readable ``method:function`` label (stats, reports)."""
        return f"{self.method}:{self.function}"


def normalize_request(
    function: str,
    method: str,
    params: Optional[Mapping[str, object]] = None,
    *,
    placement: str = "mram",
    assume_in_range: bool = False,
) -> RequestSpec:
    """Canonical :class:`RequestSpec` for a request, defaults applied.

    Raises :class:`~repro.errors.ConfigurationError` for malformed param
    maps; (function, method) support is validated later, when the spec is
    first resolved to a Method (:func:`spec_method`).
    """
    if placement not in ("mram", "wram"):
        raise ConfigurationError(
            f"placement must be 'mram' or 'wram', got {placement}")
    return RequestSpec(
        function=str(function),
        method=str(method),
        params=_param_pairs(params if params is not None else {}),
        placement=str(placement),
        assume_in_range=bool(assume_in_range),
    )


def spec_method(spec: RequestSpec) -> Method:
    """A fresh (un-setup) Method for ``spec``.

    Construction is cheap — no table is built until the plan compiles —
    and validates the (function, method) pair against the support matrix.
    """
    from repro.api import make_method

    return make_method(
        spec.function, spec.method, placement=spec.placement,
        assume_in_range=spec.assume_in_range, **spec.param_kwargs())


def request_key(
    spec: RequestSpec,
    system,
    *,
    tasklets: int = 16,
    sample_size: int = 64,
    transfers: Optional[TransferSchedule] = None,
    imbalance: float = 0.0,
    vec: bool = True,
    method: Optional[Method] = None,
) -> PlanKey:
    """The :class:`~repro.plan.cache.PlanKey` this request coalesces under.

    Every component of the plan identity — table signature (function,
    method, knobs, q-format), placement, system config, op costs, launch
    geometry, transfer schedule, vec flag — is derived through the plan
    cache's own ``key_for``, so request coalescing and plan caching can
    never disagree about equality.  ``method`` optionally reuses an
    already-resolved Method (the server memoizes one per spec).
    """
    if method is None:
        method = spec_method(spec)
    return _plan_key_for(
        system, method, tasklets=tasklets, sample_size=sample_size,
        transfers=transfers, imbalance=imbalance, vec=vec)
