"""The asyncio serving front end: coalesce, single-flight, dispatch, scatter.

The paper's central performance fact is that PIM transcendental kernels
amortize: setup (table build, plan compile) is paid once per kernel
configuration, and per-element cost falls as launches grow.  A service
that forwards each request to :meth:`~repro.pim.system.PIMSystem.run`
individually forfeits both halves — it re-pays setup per cold kernel
burst and launches tiny batches.  :class:`Server` recovers them:

coalescing
    Requests are queued per *lane*, keyed by their normalized
    :class:`~repro.plan.cache.PlanKey` (:mod:`repro.serve.keys`).
    A per-lane flusher concatenates every request that arrives within a
    micro-batching window (``max_wait`` seconds, capped at ``max_batch``
    requests) into one numpy batch and dispatches it through a single
    compiled :class:`~repro.plan.plan.ExecutionPlan`.

single-flight plan builds
    The plan for a lane is compiled through :class:`.SingleFlight` at
    submit time, so N concurrent identical cold requests trigger exactly
    one table build and one plan compile — the rest await the shared
    future, and the build overlaps the batching window.

admission control
    An :class:`.AdmissionController` bounds pending depth: submits above
    ``max_pending`` await capacity (backpressure) and are shed with
    :class:`~repro.errors.ServerOverloadedError` at ``hard_limit``.

scatter-back
    Each request's :class:`ServeResult` carries the slice of the batch's
    values corresponding to its own inputs — bit-identical to evaluating
    the request alone, because the fused evaluator is elementwise.

Dispatch runs inline on the event loop: the simulator is CPU-bound pure
python/numpy and the tracer/metric registries are process-global, so a
thread pool would serialize on them anyway; inline dispatch keeps results
and metrics deterministic while arrivals naturally accumulate into the
next window.  A Server binds to the event loop of its first submit — use
one server per :func:`asyncio.run`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServerClosedError
from repro.obs import metrics as _metrics
from repro.plan.cache import PlanKey
from repro.plan.plan import ExecutionPlan
from repro.plan.session import PlanSession
from repro.serve.admission import AdmissionController
from repro.serve.keys import (RequestSpec, normalize_request, request_key,
                              spec_method)
from repro.serve.singleflight import SingleFlight

__all__ = ["ServeConfig", "ServeResult", "Server"]

_F32 = np.float32


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving loop (batching window, admission bounds)."""

    #: Most requests one coalesced batch may carry.
    max_batch: int = 256
    #: Micro-batching window in seconds: how long a flusher holds the
    #: first request of a batch for others to join.  ``0.0`` still
    #: coalesces everything submitted in the same event-loop tick.
    max_wait: float = 0.0
    #: Soft pending-request bound — submits above it await capacity.
    max_pending: int = 1024
    #: Hard bound — submits at it are shed with ServerOverloadedError.
    hard_limit: int = 4096
    #: Shards per dispatched batch (>1 routes through execute_sharded).
    shards: int = 1
    #: Compile plans with the fused array evaluator (bit-identical).
    vec: bool = True
    #: Split sharded dispatches along the system topology's rank
    #: boundaries (no shard straddles a rank); only meaningful with
    #: ``shards > 1``.
    rank_aligned: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError("ServeConfig needs max_batch >= 1")
        if self.max_wait < 0:
            raise ConfigurationError("ServeConfig needs max_wait >= 0")
        if self.shards < 1:
            raise ConfigurationError("ServeConfig needs shards >= 1")


@dataclass
class ServeResult:
    """One request's completed slice of a coalesced batch."""

    #: float32 results for this request's inputs, in submission order.
    values: np.ndarray
    #: ``method:function`` label of the lane that served it.
    label: str
    #: Elements this request contributed.
    n_elements: int
    #: Requests the carrying batch coalesced (1 = no coalescing).
    batch_requests: int
    #: Elements the carrying batch dispatched in one plan launch.
    batch_elements: int
    #: Simulated seconds of the carrying batch's launch.
    simulated_seconds: float


@dataclass
class _Pending:
    """One admitted request waiting in a lane."""

    spec: RequestSpec
    xs: np.ndarray
    future: "asyncio.Future[ServeResult]"


@dataclass
class _Lane:
    """Per-PlanKey request queue plus its flusher and compiled plan."""

    key: PlanKey
    label: str
    items: List[_Pending] = field(default_factory=list)
    #: Set whenever items is non-empty (wakes an idle flusher).
    event: asyncio.Event = field(default_factory=asyncio.Event)
    #: Pulsed on every enqueue (extends the micro-batching window).
    arrival: asyncio.Event = field(default_factory=asyncio.Event)
    plan: Optional[ExecutionPlan] = None
    task: Optional["asyncio.Task"] = None


class Server:
    """Async front end coalescing requests onto compiled execution plans."""

    def __init__(self, session: Optional[PlanSession] = None,
                 config: Optional[ServeConfig] = None):
        self.session = session if session is not None else PlanSession()
        self.config = config if config is not None else ServeConfig()
        self.system = self.session.runtime.system
        self._admission = AdmissionController(
            max_pending=self.config.max_pending,
            hard_limit=self.config.hard_limit)
        self._flights = SingleFlight()
        self._lanes: Dict[PlanKey, _Lane] = {}
        self._methods: Dict[RequestSpec, object] = {}
        self._keys: Dict[RequestSpec, PlanKey] = {}
        self._outstanding: Dict["asyncio.Future[ServeResult]", None] = {}
        self._closed = False
        #: Lifetime coalescing tallies (also in ``repro.obs.metrics``).
        self.batches = 0
        self.batched_requests = 0
        self.batched_elements = 0

    # -- request identity ----------------------------------------------

    def _method_for(self, spec: RequestSpec):
        method = self._methods.get(spec)
        if method is None:
            method = spec_method(spec)
            self._methods[spec] = method
        return method

    def _key_for(self, spec: RequestSpec) -> PlanKey:
        key = self._keys.get(spec)
        if key is None:
            key = request_key(
                spec, self.system, tasklets=self.session.tasklets,
                sample_size=self.session.sample_size, vec=self.config.vec,
                method=self._method_for(spec))
            self._keys[spec] = key
        return key

    def _lane_for(self, key: PlanKey, spec: RequestSpec) -> _Lane:
        lane = self._lanes.get(key)
        if lane is None:
            lane = _Lane(key=key, label=spec.label)
            self._lanes[key] = lane
        return lane

    # -- plan builds (single-flight) -----------------------------------

    async def _plan_for(self, lane: _Lane, spec: RequestSpec) -> ExecutionPlan:
        if lane.plan is not None:
            return lane.plan

        async def build() -> ExecutionPlan:
            # Yield once so every submit already scheduled in this burst
            # reaches the single-flight gate and joins as a follower
            # before the (synchronous) compile runs.
            await asyncio.sleep(0)
            return self.session.plans.plan(
                self.system, self._method_for(spec),
                tasklets=self.session.tasklets,
                sample_size=self.session.sample_size,
                vec=self.config.vec)

        plan = await self._flights.run(lane.key, build)
        lane.plan = plan
        return plan

    # -- submission ----------------------------------------------------

    async def submit(
        self,
        function: str,
        method: str,
        values,
        params: Optional[dict] = None,
        *,
        placement: str = "mram",
        assume_in_range: bool = False,
    ) -> ServeResult:
        """Serve one request; returns when its coalesced batch lands."""
        spec = normalize_request(
            function, method, params, placement=placement,
            assume_in_range=assume_in_range)
        return await self.submit_spec(spec, values)

    async def submit_spec(self, spec: RequestSpec, values) -> ServeResult:
        """Serve one request for an already-normalized spec.

        Admission may await (backpressure) or raise
        :class:`~repro.errors.ServerOverloadedError` /
        :class:`~repro.errors.ServerClosedError`; afterwards the request
        rides a coalesced batch and resolves with its own value slice.
        """
        xs = np.asarray(values, dtype=_F32).ravel()
        if xs.size == 0:
            raise ConfigurationError("cannot serve an empty input array")
        if self._closed:
            raise ServerClosedError("server is closed to new requests")
        await self._admission.admit()
        enqueued = False
        try:
            key = self._key_for(spec)
            lane = self._lane_for(key, spec)
            await self._plan_for(lane, spec)
            loop = asyncio.get_running_loop()
            pending = _Pending(spec=spec, xs=xs, future=loop.create_future())
            lane.items.append(pending)
            lane.event.set()
            lane.arrival.set()
            self._outstanding[pending.future] = None
            pending.future.add_done_callback(self._outstanding.pop)
            if lane.task is None or lane.task.done():
                lane.task = loop.create_task(self._flush_loop(lane))
            enqueued = True
        finally:
            if not enqueued:
                self._admission.release(1)
        return await pending.future

    async def submit_many(
        self, requests: Iterable[Tuple[RequestSpec, object]],
    ) -> List[ServeResult]:
        """Submit ``(spec, values)`` pairs concurrently; results in order."""
        return list(await asyncio.gather(
            *(self.submit_spec(spec, values) for spec, values in requests)))

    # -- the flusher ---------------------------------------------------

    async def _flush_loop(self, lane: _Lane) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        while True:
            if not lane.items:
                lane.event.clear()
                await lane.event.wait()
            if cfg.max_wait > 0:
                deadline = loop.time() + cfg.max_wait
                while len(lane.items) < cfg.max_batch:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    lane.arrival.clear()
                    try:
                        await asyncio.wait_for(lane.arrival.wait(),
                                               timeout=remaining)
                    except asyncio.TimeoutError:
                        break
            else:
                # Zero-window mode still coalesces a whole event-loop
                # tick: every submit scheduled before this yield enqueues.
                await asyncio.sleep(0)
            batch = lane.items[:cfg.max_batch]
            del lane.items[:cfg.max_batch]
            if batch:
                await self._run_batch(lane, batch)

    async def _run_batch(self, lane: _Lane, batch: List[_Pending]) -> None:
        xs = np.concatenate([p.xs for p in batch])
        try:
            values, result = await self._dispatch_batch(lane, xs)
        except asyncio.CancelledError:
            self._fail_batch(batch, ServerClosedError(
                "server closed while a batch was in flight"))
            raise
        except Exception as exc:
            self._fail_batch(batch, exc)
            return
        self.batches += 1
        self.batched_requests += len(batch)
        self.batched_elements += int(xs.size)
        _metrics.inc("serve.batches")
        _metrics.inc("serve.batch_requests", len(batch))
        _metrics.inc("serve.elements", int(xs.size))
        _metrics.observe("serve.coalesce_ratio",
                         self.batched_requests / self.batches)
        offset = 0
        for p in batch:
            n = int(p.xs.size)
            # Copy the slice: `values` may be a read-only view of the
            # fused evaluator's memo, and a view would pin the whole
            # batch array for the lifetime of one request's result.
            out = np.array(values[offset:offset + n], dtype=_F32)
            offset += n
            if not p.future.done():
                p.future.set_result(ServeResult(
                    values=out, label=lane.label, n_elements=n,
                    batch_requests=len(batch),
                    batch_elements=int(xs.size),
                    simulated_seconds=float(result.total_seconds)))
        self._admission.release(len(batch))

    def _fail_batch(self, batch: List[_Pending], exc: BaseException) -> None:
        for p in batch:
            if not p.future.done():
                p.future.set_exception(exc)
                # Mark retrieved: a submitter cancelled mid-await would
                # otherwise leave a never-retrieved exception at GC time.
                p.future.exception()
        self._admission.release(len(batch))

    async def _dispatch_batch(self, lane: _Lane, xs: np.ndarray):
        """Run one coalesced batch; returns ``(values, timing_result)``.

        Override point for tests (e.g. delaying completion to exercise
        out-of-order scatter-back); the default evaluates bit-exact values
        through the plan's fused evaluator and books the launch timing
        through the session (:meth:`~repro.plan.session.PlanSession
        .execute_plan`), sharded when configured.
        """
        plan = lane.plan
        values = plan.values(xs)
        result = self.session.execute_plan(
            lane.label, plan, xs,
            shards=self.config.shards, batch=True,
            rank_aligned=self.config.rank_aligned)
        return values, result

    # -- lifecycle -----------------------------------------------------

    async def close(self, *, drain: bool = True) -> None:
        """Stop accepting requests; drain or drop the queued ones.

        With ``drain=True`` (default) every already-admitted request
        completes before the flushers stop.  With ``drain=False`` queued
        requests fail with :class:`~repro.errors.ServerClosedError`; a
        batch already dispatching still completes (the simulator cannot
        be preempted mid-launch).
        """
        if self._closed:
            return
        self._closed = True
        self._admission.close()
        if drain:
            while self._outstanding:
                await asyncio.gather(*list(self._outstanding),
                                     return_exceptions=True)
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
        for lane in self._lanes.values():
            if lane.task is not None:
                try:
                    await lane.task
                except asyncio.CancelledError:
                    pass
                lane.task = None
        if not drain:
            dropped = 0
            for lane in self._lanes.values():
                for p in lane.items:
                    if not p.future.done():
                        p.future.set_exception(ServerClosedError(
                            "server closed without draining"))
                        p.future.exception()
                    dropped += 1
                lane.items.clear()
            if dropped:
                self._admission.release(dropped)

    async def __aenter__(self) -> "Server":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    # -- introspection -------------------------------------------------

    @property
    def coalesce_ratio(self) -> float:
        """Lifetime requests per dispatched batch (1.0 = none coalesced)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def stats(self) -> Dict[str, object]:
        """Snapshot across admission, single-flight, and coalescing."""
        return {
            "admission": self._admission.stats(),
            "singleflight": self._flights.stats(),
            "plancache": self.session.plans.stats(),
            "lanes": len(self._lanes),
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "batched_elements": self.batched_elements,
            "coalesce_ratio": self.coalesce_ratio,
        }
