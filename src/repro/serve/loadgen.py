"""Deterministic load generator for the serving front end.

Replays seeded mixed-kernel traffic — thousands of concurrent logical
clients submitting small requests — against a :class:`~repro.serve.server
.Server` and reports sustained request rate, latency percentiles, and the
server's coalescing/single-flight statistics.  The traffic *content* is
fully deterministic: each client owns a child generator spawned from one
:class:`numpy.random.SeedSequence`, so the (spec, size, values) stream of
every client is a pure function of ``seed`` regardless of how the event
loop interleaves them.  Only wall-clock figures (latency, req/s) vary
between runs.

``verify=True`` additionally re-evaluates a capped sample of served
requests directly on freshly built methods and counts bitwise mismatches
— the served slice of a coalesced batch must equal evaluating the request
alone.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.functions.registry import get_function
from repro.errors import ServerOverloadedError
from repro.obs import metrics as _metrics
from repro.plan.session import PlanSession
from repro.serve.keys import RequestSpec, normalize_request, spec_method
from repro.serve.server import ServeConfig, Server

__all__ = ["TrafficItem", "TrafficProfile", "LoadReport", "MIXED_PROFILE",
           "FAST_PROFILE", "run_load", "run_load_async"]

_F32 = np.float32


@dataclass(frozen=True)
class TrafficItem:
    """One kernel in a traffic mix, with its weight and request sizing."""

    spec: RequestSpec
    weight: float = 1.0
    min_n: int = 8
    max_n: int = 96


@dataclass(frozen=True)
class TrafficProfile:
    """A named, weighted kernel mix."""

    name: str
    items: Tuple[TrafficItem, ...]

    def weights(self) -> np.ndarray:
        """The items' draw probabilities, normalized to sum to 1."""
        w = np.array([item.weight for item in self.items], dtype=float)
        return w / w.sum()


#: Mixed-kernel profile spanning the implementation families: interpolated
#: and fixed-point L-LUTs, the fused direct-LUT kernels, CORDIC rotation,
#: and the spline table — the serving analogue of the differential suite's
#: FAST_PAIRS.
MIXED_PROFILE = TrafficProfile(name="mixed", items=(
    TrafficItem(normalize_request("sin", "llut_i"), weight=3.0),
    TrafficItem(normalize_request("sin", "llut_fx"), weight=2.0),
    TrafficItem(normalize_request("tanh", "dlut"), weight=2.0),
    TrafficItem(normalize_request("gelu", "dlut_i"), weight=2.0),
    TrafficItem(normalize_request("sin", "cordic"), weight=1.0),
    TrafficItem(normalize_request("exp", "slut_i"), weight=1.0),
))

#: Two-kernel profile for quick CI smoke runs.
FAST_PROFILE = TrafficProfile(name="fast", items=(
    TrafficItem(normalize_request("sin", "llut_i"), weight=2.0),
    TrafficItem(normalize_request("tanh", "dlut"), weight=1.0),
))


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    profile: str
    clients: int
    requests_per_client: int
    seed: int
    requests: int = 0
    completed: int = 0
    shed: int = 0
    wall_seconds: float = 0.0
    req_per_s: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    coalesce_ratio: float = 0.0
    batches: int = 0
    singleflight_leaders: int = 0
    singleflight_followers: int = 0
    plan_builds: int = 0
    verified: int = 0
    mismatches: int = 0
    server_stats: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line report (the ``repro loadgen`` output)."""
        lines = [
            f"loadgen[{self.profile}]: {self.clients} clients x "
            f"{self.requests_per_client} requests, seed {self.seed}",
            f"  completed {self.completed}/{self.requests} "
            f"({self.shed} shed) in {self.wall_seconds:.3f} s "
            f"-> {self.req_per_s:.0f} req/s",
            f"  latency p50 {self.latency_p50 * 1e3:.2f} ms, "
            f"p95 {self.latency_p95 * 1e3:.2f} ms, "
            f"p99 {self.latency_p99 * 1e3:.2f} ms",
            f"  coalesce ratio {self.coalesce_ratio:.1f} req/batch "
            f"over {self.batches} batches; "
            f"plan builds {self.plan_builds} "
            f"(single-flight {self.singleflight_leaders} leaders / "
            f"{self.singleflight_followers} followers)",
        ]
        if self.verified:
            lines.append(f"  verified {self.verified} requests "
                         f"bit-exact, {self.mismatches} mismatches")
        return "\n".join(lines)


def _draw_request(items: Tuple[TrafficItem, ...], weights: np.ndarray,
                  rng: np.random.Generator) -> Tuple[TrafficItem, np.ndarray]:
    """One (item, inputs) draw — a pure function of the rng state."""
    idx = int(rng.choice(len(items), p=weights))
    item = items[idx]
    n = int(rng.integers(item.min_n, item.max_n + 1))
    lo, hi = get_function(item.spec.function).natural_range
    xs = rng.uniform(lo, hi, size=n).astype(_F32)
    return item, xs


async def _client(server: Server, profile: TrafficProfile,
                  weights: np.ndarray, rng: np.random.Generator,
                  n_requests: int, latencies: List[float],
                  report: LoadReport,
                  verify_log: Optional[List[Tuple[RequestSpec, np.ndarray,
                                                  np.ndarray]]],
                  verify_limit: int) -> None:
    for _ in range(n_requests):
        item, xs = _draw_request(profile.items, weights, rng)
        report.requests += 1
        t0 = perf_counter()
        try:
            result = await server.submit_spec(item.spec, xs)
        except ServerOverloadedError:
            report.shed += 1
            continue
        latencies.append(perf_counter() - t0)
        report.completed += 1
        if verify_log is not None and len(verify_log) < verify_limit:
            verify_log.append((item.spec, xs, result.values))


def _verify(verify_log: List[Tuple[RequestSpec, np.ndarray, np.ndarray]],
            report: LoadReport) -> None:
    """Re-evaluate served slices directly; count bitwise mismatches."""
    methods: Dict[RequestSpec, object] = {}
    for spec, xs, served in verify_log:
        m = methods.get(spec)
        if m is None:
            m = spec_method(spec)
            m.setup()
            methods[spec] = m
        direct = m.evaluate_vec(xs)
        report.verified += 1
        if served.tobytes() != direct.astype(_F32).tobytes():
            report.mismatches += 1


async def run_load_async(
    profile: TrafficProfile = MIXED_PROFILE,
    *,
    clients: int = 64,
    requests_per_client: int = 8,
    seed: int = 2026,
    config: Optional[ServeConfig] = None,
    session: Optional[PlanSession] = None,
    verify: bool = False,
    verify_limit: int = 256,
) -> LoadReport:
    """Drive seeded traffic through a fresh server; return the report."""
    server = Server(session=session,
                    config=config if config is not None else ServeConfig())
    report = LoadReport(profile=profile.name, clients=clients,
                        requests_per_client=requests_per_client, seed=seed)
    weights = profile.weights()
    rngs = [np.random.default_rng(s)
            for s in np.random.SeedSequence(seed).spawn(clients)]
    latencies: List[float] = []
    verify_log: Optional[List[Tuple[RequestSpec, np.ndarray, np.ndarray]]] \
        = [] if verify else None

    t0 = perf_counter()
    await asyncio.gather(*(
        _client(server, profile, weights, rng, requests_per_client,
                latencies, report, verify_log, verify_limit)
        for rng in rngs))
    await server.close(drain=True)
    report.wall_seconds = perf_counter() - t0

    if latencies:
        arr = np.array(latencies)
        report.latency_p50 = float(np.percentile(arr, 50))
        report.latency_p95 = float(np.percentile(arr, 95))
        report.latency_p99 = float(np.percentile(arr, 99))
        _metrics.observe("serve.latency_p50_seconds", report.latency_p50)
        _metrics.observe("serve.latency_p95_seconds", report.latency_p95)
        _metrics.observe("serve.latency_p99_seconds", report.latency_p99)
    if report.wall_seconds > 0:
        report.req_per_s = report.completed / report.wall_seconds
    report.coalesce_ratio = server.coalesce_ratio
    report.batches = server.batches
    stats = server.stats()
    flight = stats["singleflight"]
    report.singleflight_leaders = flight["leaders"]
    report.singleflight_followers = flight["followers"]
    report.plan_builds = server.session.plans.misses
    report.server_stats = stats
    if verify_log:
        _verify(verify_log, report)
    return report


def run_load(profile: TrafficProfile = MIXED_PROFILE, **kwargs) -> LoadReport:
    """Synchronous wrapper: one fresh event loop per load run."""
    return asyncio.run(run_load_async(profile, **kwargs))
