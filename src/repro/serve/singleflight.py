"""Single-flight execution: N concurrent identical calls, one execution.

Plan compilation is the serving layer's expensive setup step — a table
build can cost orders of magnitude more than the launch it enables (the
paper's setup-vs-throughput split, Figure 6).  When a traffic burst lands
N concurrent requests for a not-yet-compiled kernel, the naive path builds
the same table N times.  :class:`SingleFlight` collapses the burst: the
first caller for a key becomes the *leader* and runs the builder; every
concurrent caller for the same key becomes a *follower* and awaits the
leader's shared future.  Exactly one build runs; everyone gets its result
(or its exception).

Flights are keyed by any hashable — the server keys them by the normalized
:class:`~repro.plan.cache.PlanKey` — and are removed once resolved, so a
*later* call (after the flight lands) runs the builder again; idempotent
builders such as :meth:`~repro.plan.cache.PlanCache.plan` then simply hit
their own cache.

Cancellation discipline: followers await a ``shield`` of the shared
future, so one follower being cancelled never tears down the flight the
others (and the leader) are still riding.  A cancelled *leader* fails the
flight for everyone — the callers then retry or propagate.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, Callable, Dict, Hashable

from repro.obs import metrics as _metrics

__all__ = ["SingleFlight"]


class SingleFlight:
    """Deduplicates concurrent calls per key onto one shared execution."""

    def __init__(self) -> None:
        self._flights: Dict[Hashable, "asyncio.Future[Any]"] = {}
        #: Calls that ran the builder (one per landed flight).
        self.leaders = 0
        #: Calls served by awaiting another call's in-flight builder.
        self.followers = 0

    def __len__(self) -> int:
        """Number of flights currently in the air."""
        return len(self._flights)

    async def run(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """``builder()`` once per concurrent burst of ``key``.

        ``builder`` may be a plain callable or return an awaitable (both
        are supported so a builder can hop onto an executor).  The
        leader's result — or exception — is shared with every concurrent
        caller of the same key.
        """
        existing = self._flights.get(key)
        if existing is not None:
            self.followers += 1
            _metrics.inc("serve.singleflight.followers")
            return await asyncio.shield(existing)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._flights[key] = future
        self.leaders += 1
        _metrics.inc("serve.singleflight.leaders")
        try:
            result = builder()
            if inspect.isawaitable(result):
                result = await result
        except BaseException as exc:
            self._flights.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved so a flight with zero followers does not
                # log "exception was never retrieved" at GC time; awaiting
                # followers still receive the exception normally.
                future.exception()
            raise
        else:
            self._flights.pop(key, None)
            if not future.done():
                future.set_result(result)
            return result

    def stats(self) -> Dict[str, int]:
        """Leader/follower counts plus flights currently open."""
        return {"leaders": self.leaders, "followers": self.followers,
                "in_flight": len(self._flights)}
