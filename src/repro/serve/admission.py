"""Admission control: bounded queue depth, backpressure, load shedding.

A coalescing server is only as stable as its queue: without a bound,
a traffic spike grows the pending set (and its numpy payloads) without
limit, and latency follows.  :class:`AdmissionController` enforces a
two-tier bound on the number of *pending requests* (admitted but not yet
completed):

soft limit (``max_pending``) — **backpressure**
    An arriving request above the soft limit *awaits* capacity instead of
    queueing; well-behaved async clients slow down to the service rate.
    Waiters are woken in FIFO order as completions free capacity.

hard limit (``hard_limit``) — **load shedding**
    Counting the requests already waiting for capacity, an arrival that
    would push the total at or beyond the hard limit fails fast with
    :class:`~repro.errors.ServerOverloadedError`.  Shedding at the door
    costs the client one exception instead of an unbounded wait, and the
    server keeps its queue (and its tail latency) bounded.

``close()`` fails all waiters with :class:`~repro.errors.ServerClosedError`
and makes further admission attempts raise it too; requests already
admitted are unaffected (the server drains them).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict

from repro.errors import (ConfigurationError, ServerClosedError,
                          ServerOverloadedError)
from repro.obs import metrics as _metrics

__all__ = ["AdmissionController"]


class AdmissionController:
    """Two-tier pending-request bound: await above soft, shed at hard."""

    def __init__(self, max_pending: int = 1024,
                 hard_limit: int = 4096) -> None:
        if max_pending < 1:
            raise ConfigurationError("admission needs max_pending >= 1")
        if hard_limit < max_pending:
            raise ConfigurationError(
                f"hard_limit ({hard_limit}) must be >= max_pending "
                f"({max_pending})")
        self.max_pending = int(max_pending)
        self.hard_limit = int(hard_limit)
        #: Requests admitted and not yet released (queued or dispatching).
        self.pending = 0
        #: Total requests ever admitted / shed / made to wait.
        self.admitted = 0
        self.shed = 0
        self.waited = 0
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Pending requests plus arrivals waiting for capacity."""
        return self.pending + len(self._waiters)

    async def admit(self) -> None:
        """Admit one request: return, await capacity, or shed.

        Raises :class:`~repro.errors.ServerOverloadedError` when the total
        depth (pending + waiting) has reached the hard limit, and
        :class:`~repro.errors.ServerClosedError` once :meth:`close` ran.
        """
        if self._closed:
            raise ServerClosedError("server is closed to new requests")
        if self.depth >= self.hard_limit:
            self.shed += 1
            _metrics.inc("serve.requests_shed")
            raise ServerOverloadedError(
                f"queue depth {self.depth} at hard limit "
                f"{self.hard_limit}; request shed")
        if self.pending >= self.max_pending:
            self.waited += 1
            _metrics.inc("serve.backpressure_waits")
            loop = asyncio.get_running_loop()
            waiter: "asyncio.Future[None]" = loop.create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                # A cancelled waiter must not strand the grant it may
                # have just been handed — pass it on.
                if waiter.done() and not waiter.cancelled():
                    self._wake_one()
                raise
            finally:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
        self.pending += 1
        self.admitted += 1
        _metrics.inc("serve.requests")
        _metrics.observe("serve.queue_depth", self.depth)

    def release(self, n: int = 1) -> None:
        """Return capacity for ``n`` completed (or failed) requests."""
        self.pending -= int(n)
        for _ in range(int(n)):
            if self.pending + 1 > self.max_pending:
                break
            self._wake_one()

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Refuse future admissions; fail everyone waiting for capacity."""
        self._closed = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ServerClosedError("server closed while awaiting "
                                      "admission capacity"))

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (also mirrored in ``repro.obs.metrics``)."""
        return {
            "pending": self.pending,
            "waiting": len(self._waiters),
            "admitted": self.admitted,
            "shed": self.shed,
            "waited": self.waited,
        }
