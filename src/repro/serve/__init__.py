"""PIM-as-a-service: an asyncio front end over the plan/execute machinery.

Requests name a kernel configuration (function, method, knobs, placement)
and carry a float32 array; the server coalesces concurrent requests with
the same normalized identity into one batch per compiled
:class:`~repro.plan.plan.ExecutionPlan`, builds each plan exactly once
per cold burst (single-flight), bounds its queue with backpressure and
load shedding, and scatters bit-exact per-request slices back.

Entry points: :class:`Server` (+ :class:`ServeConfig`) for embedding,
:func:`repro.serve.loadgen.run_load` for deterministic load generation,
``repro serve`` / ``repro loadgen`` on the command line.
"""

from repro.serve.admission import AdmissionController
from repro.serve.keys import (RequestSpec, normalize_request, request_key,
                              spec_method)
from repro.serve.loadgen import (FAST_PROFILE, MIXED_PROFILE, LoadReport,
                                 TrafficItem, TrafficProfile, run_load,
                                 run_load_async)
from repro.serve.server import ServeConfig, Server, ServeResult
from repro.serve.singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "FAST_PROFILE",
    "LoadReport",
    "MIXED_PROFILE",
    "RequestSpec",
    "ServeConfig",
    "ServeResult",
    "Server",
    "SingleFlight",
    "TrafficItem",
    "TrafficProfile",
    "normalize_request",
    "request_key",
    "run_load",
    "run_load_async",
    "spec_method",
]
