"""Row-wise attention-score softmax on PIM (extension workload).

Transformer attention applies softmax per *row* of a scores matrix.  Unlike
the paper's single 30M-element softmax — whose global max and sum force two
host round trips (PIM cores cannot talk to each other) — attention rows are
small enough to live inside one core's scratchpad, so the entire
max/exp/sum/scale sequence runs core-locally with **zero inter-core
communication**.  This workload quantifies that structural advantage: the
same element count costs one kernel launch instead of three phases plus two
host reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.system import PIMSystem, SystemRunResult
from repro.workloads import polynomial as poly

__all__ = ["VARIANTS", "AttentionSoftmax", "generate_scores",
           "reference_row_softmax"]

_F32 = np.float32

VARIANTS = ("poly", "llut_i", "direct_llut_i")

_DIRECT_IV = (-16.0, 1e-4)


def generate_scores(n_rows: int, row_len: int = 64,
                    seed: int = 2023) -> np.ndarray:
    """Attention-score-like rows: scaled dot products, zero-centered."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 2.0, (n_rows, row_len)).astype(_F32)


def reference_row_softmax(scores: np.ndarray) -> np.ndarray:
    """Float64 ground-truth row-wise softmax."""
    x = np.asarray(scores, dtype=np.float64)
    e = np.exp(x - x.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


@dataclass
class AttentionRunResult:
    """One-launch timing (contrast with the three-phase global softmax)."""

    run: SystemRunResult

    @property
    def total_seconds(self) -> float:
        return self.run.total_seconds

    @property
    def compute_only_seconds(self) -> float:
        return self.run.compute_only_seconds


class AttentionSoftmax:
    """Row-wise softmax with a configurable exp backend."""

    def __init__(self, variant: str = "llut_i", row_len: int = 64,
                 costs: OpCosts = UPMEM_COSTS):
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown AttentionSoftmax variant {variant!r}; "
                f"options: {VARIANTS}"
            )
        if row_len < 2:
            raise ConfigurationError("attention rows need at least 2 scores")
        self.variant = variant
        self.row_len = row_len
        self.costs = costs
        self._method = None
        self._ready = False

    def setup(self) -> "AttentionSoftmax":
        """Host-side: build the exp table for the chosen variant."""
        if self.variant == "llut_i":
            self._method = make_method(
                "exp", "llut_i", density_log2=14,
                assume_in_range=False, costs=self.costs,
            ).setup()
        elif self.variant == "direct_llut_i":
            self._method = make_method(
                "exp", "llut_i", density_log2=14, interval=_DIRECT_IV,
                assume_in_range=True, costs=self.costs,
            ).setup()
        self._ready = True
        return self

    def _require_ready(self) -> None:
        if not self._ready:
            raise ConfigurationError("call setup() before running")

    def _exp(self, ctx: CycleCounter, u) -> np.float32:
        if self.variant == "poly":
            return poly.poly_exp(ctx, u)
        return self._method.evaluate(ctx, u)

    # ------------------------------------------------------------------

    def kernel(self, ctx: CycleCounter, row) -> np.float32:
        """One full row, entirely core-local (traced).

        Returns the first probability (the whole row is written back; the
        return value only feeds the scalar/vector agreement check).
        """
        self._require_ready()
        L = self.row_len
        # Pass 1: row max (native compares).
        m = _F32(row[0])
        for j in range(1, L):
            ctx.branch()
            if ctx.fcmp(_F32(row[j]), m) > 0:
                m = _F32(row[j])
        # Pass 2: exp and row sum.
        es = []
        total = _F32(0.0)
        for j in range(L):
            d = ctx.fsub(_F32(row[j]), m)
            e = self._exp(ctx, d)
            es.append(e)
            total = ctx.fadd(total, e)
        # Pass 3: one divide for the row, then multiplies.
        inv = ctx.fdiv(_F32(1.0), total)
        return ctx.fmul(es[0], inv)

    def values(self, scores: np.ndarray) -> np.ndarray:
        """Vectorized float32 row-wise softmax."""
        self._require_ready()
        x = np.asarray(scores, dtype=_F32)
        m = x.max(axis=1, keepdims=True)
        d = (x - m).astype(_F32)
        if self.variant == "poly":
            e = poly.poly_exp_vec(d.ravel()).reshape(d.shape)
        else:
            e = self._method.evaluate_vec(d.ravel()).reshape(d.shape)
        total = e.astype(np.float64).sum(axis=1, keepdims=True)
        inv = (1.0 / total).astype(_F32)
        return (e * inv).astype(_F32)

    # ------------------------------------------------------------------

    def run(
        self,
        scores: np.ndarray,
        system: PIMSystem,
        tasklets: int = 16,
        virtual_rows: Optional[int] = None,
        shards: int = 1,
        overlap: bool = False,
    ) -> AttentionRunResult:
        """Simulate the single-launch whole-system run (rows are elements).

        ``shards > 1`` dispatches the rows across disjoint DPU groups
        (optionally ``overlap``-ped).
        """
        self._require_ready()
        if shards > 1:
            res = system.run_sharded(
                self.kernel, np.asarray(scores, dtype=_F32),
                shards=shards, overlap=overlap,
                tasklets=tasklets, sample_size=8,
                bytes_in_per_element=self.row_len * 4,
                bytes_out_per_element=self.row_len * 4,
                virtual_n=virtual_rows,
            )
        else:
            res = system.run(
                self.kernel, np.asarray(scores, dtype=_F32),
                tasklets=tasklets, sample_size=8,
                bytes_in_per_element=self.row_len * 4,
                bytes_out_per_element=self.row_len * 4,
                virtual_n=virtual_rows,
            )
        return AttentionRunResult(run=res)
