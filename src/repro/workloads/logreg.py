"""Logistic-regression inference on PIM (extension beyond the paper's three
workloads, directly from its motivation).

Section 1 motivates TransPimLib with sigmoid's role in logistic regression.
This workload runs the full inference pipeline on the simulated PIM system:
per sample a ``d``-feature dot product (native multiply-accumulate work the
PIM core does anyway) followed by one sigmoid — measuring how much of the
end-to-end time the transcendental actually costs, and how the Figure 1(b)
deployment (ship logits to the host for the sigmoid) compares with the
Figure 1(c) one (TransPimLib on the PIM core).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.system import PIMSystem, SystemRunResult
from repro.workloads import polynomial as poly

__all__ = ["VARIANTS", "LogisticRegression", "generate_dataset",
           "reference_probabilities", "LogRegRunResult"]

_F32 = np.float32

VARIANTS = ("poly", "llut_i", "host_sigmoid")


def generate_dataset(n_samples: int, n_features: int = 16,
                     seed: int = 2023):
    """Synthetic feature matrix and a trained-looking weight vector."""
    rng = np.random.default_rng(seed)
    features = rng.normal(0.0, 1.0, (n_samples, n_features)).astype(_F32)
    weights = rng.normal(0.0, n_features ** -0.5, n_features).astype(_F32)
    bias = _F32(rng.normal(0.0, 0.1))
    return features, weights, bias


def reference_probabilities(features, weights, bias) -> np.ndarray:
    """Float64 ground-truth class probabilities."""
    logits = features.astype(np.float64) @ weights.astype(np.float64) + float(bias)
    return 1.0 / (1.0 + np.exp(-logits))


#: Host-side scalar sigmoid cost per element (single thread), used for the
#: Figure 1(b) deployment where logits are shipped to the CPU.
HOST_SIGMOID_SEC_1T = 30e-9
_HOST_THREADS = 32
_HOST_EFFICIENCY = 0.85


@dataclass
class LogRegRunResult:
    """Timing of PIM inference, with the sigmoid's share broken out."""

    run: SystemRunResult
    sigmoid_slots: float
    dot_slots: float
    #: Extra transfer time the Figure 1(b) host-sigmoid deployment pays.
    host_roundtrip_seconds: float
    #: Host CPU time spent applying the sigmoid in that deployment.
    host_compute_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (self.run.total_seconds + self.host_roundtrip_seconds
                + self.host_compute_seconds)

    @property
    def sigmoid_share(self) -> float:
        total = self.sigmoid_slots + self.dot_slots
        return self.sigmoid_slots / total if total else 0.0


class LogisticRegression:
    """Logistic-regression inference with a configurable sigmoid backend."""

    def __init__(self, variant: str = "llut_i", n_features: int = 16,
                 costs: OpCosts = UPMEM_COSTS):
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown LogisticRegression variant {variant!r}; "
                f"options: {VARIANTS}"
            )
        self.variant = variant
        self.n_features = n_features
        self.costs = costs
        self._weights: Optional[np.ndarray] = None
        self._bias = _F32(0.0)
        self._method = None
        self._ready = False

    def setup(self, weights: np.ndarray, bias: float) -> "LogisticRegression":
        """Install the trained model and build the sigmoid backend."""
        if weights.shape != (self.n_features,):
            raise ConfigurationError(
                f"weights must have shape ({self.n_features},)"
            )
        self._weights = weights.astype(_F32)
        self._bias = _F32(bias)
        if self.variant == "llut_i":
            self._method = make_method(
                "sigmoid", "llut_i", density_log2=12,
                assume_in_range=False, costs=self.costs,
            ).setup()
        self._ready = True
        return self

    def _require_ready(self) -> None:
        if not self._ready:
            raise ConfigurationError("call setup() before running")

    # ------------------------------------------------------------------
    # traced kernel

    def _dot(self, ctx: CycleCounter, row) -> np.float32:
        acc = self._bias
        for j in range(self.n_features):
            prod = ctx.fmul(_F32(row[j]), self._weights[j])
            acc = ctx.fadd(acc, prod)
        return acc

    def kernel(self, ctx: CycleCounter, row) -> np.float32:
        """One sample: dot product + sigmoid (unless host-deployed)."""
        self._require_ready()
        logit = self._dot(ctx, row)
        if self.variant == "host_sigmoid":
            return logit  # Figure 1(b): the host applies the sigmoid
        if self.variant == "poly":
            return poly.poly_sigmoid(ctx, logit)
        return self._method.evaluate(ctx, logit)  # direct sigmoid table

    # ------------------------------------------------------------------
    # vectorized accuracy twin

    def probabilities(self, features: np.ndarray) -> np.ndarray:
        """Vectorized class probabilities for the feature matrix."""
        self._require_ready()
        logits = (features.astype(_F32) @ self._weights
                  + self._bias).astype(_F32)
        if self.variant == "host_sigmoid":
            # The host computes in double precision.
            return (1.0 / (1.0 + np.exp(-logits.astype(np.float64)))
                    ).astype(_F32)
        if self.variant == "poly":
            return poly.poly_sigmoid_vec(logits)
        return self._method.evaluate_vec(logits)

    # ------------------------------------------------------------------

    def run(
        self,
        features: np.ndarray,
        system: PIMSystem,
        tasklets: int = 16,
        virtual_n: Optional[int] = None,
        shards: int = 1,
        overlap: bool = False,
    ) -> LogRegRunResult:
        """Simulate whole-system inference over the feature matrix.

        ``shards > 1`` dispatches across disjoint DPU groups (optionally
        ``overlap``-ped); the wrapped ``run`` is then a
        :class:`~repro.plan.dispatch.ShardedRunResult`.
        """
        self._require_ready()
        bytes_in = self.n_features * 4
        if shards > 1:
            res = system.run_sharded(
                self.kernel, features, shards=shards, overlap=overlap,
                tasklets=tasklets, sample_size=24,
                bytes_in_per_element=bytes_in, bytes_out_per_element=4,
                virtual_n=virtual_n,
            )
        else:
            res = system.run(
                self.kernel, features, tasklets=tasklets, sample_size=24,
                bytes_in_per_element=bytes_in, bytes_out_per_element=4,
                virtual_n=virtual_n,
            )

        # Split the per-element slots into dot-product vs sigmoid work.
        ctx = CycleCounter(self.costs)
        self._dot(ctx, features[0])
        dot_slots = ctx.reset().slots
        sigmoid_slots = max(
            0.0, res.per_dpu.per_element_tally.slots - dot_slots
        )

        # Figure 1(b) deployment: logits leave the PIM, host computes the
        # sigmoid, probabilities may flow back for downstream PIM stages.
        n = virtual_n if virtual_n is not None else features.shape[0]
        if self.variant == "host_sigmoid":
            roundtrip = (system.config.pim_to_host_seconds(n * 4)
                         + system.config.host_to_pim_seconds(n * 4))
            host_compute = (n * HOST_SIGMOID_SEC_1T
                            / (_HOST_THREADS * _HOST_EFFICIENCY))
        else:
            roundtrip = 0.0
            host_compute = 0.0
        return LogRegRunResult(
            run=res,
            sigmoid_slots=sigmoid_slots,
            dot_slots=dot_slots,
            host_roundtrip_seconds=roundtrip,
            host_compute_seconds=host_compute,
        )
