"""Blackscholes option pricing on the simulated PIM system (Section 4.1.2).

Prices a portfolio of European call options with the Black-Scholes closed
form.  Per option the kernel needs one log, one sqrt, one exp, and two
evaluations of the cumulative normal distribution (CNDF) — the functions the
paper accelerates with TransPimLib.  Variants:

* ``poly``      — the paper's PIM baseline: polynomial approximations
  (Taylor exp, atanh-series log, Newton sqrt, Abramowitz & Stegun CNDF);
* ``mlut_i``    — interpolated M-LUTs for all four functions;
* ``llut_i``    — interpolated L-LUTs (the paper's best float method);
* ``llut_i_fx`` — drop-in fixed-point interpolated L-LUTs (float glue
  arithmetic, fixed lookups), the configuration Figure 9 calls
  "Blackscholes (fixed)";
* ``fixed_full``— an extension beyond the paper: the whole kernel in s3.28
  (prices normalized by the strike so values fit the format), showing how
  much headroom a fully fixed pipeline has.

All LUT variants tabulate over the *actual* argument ranges of the kernel
(e.g. ``exp`` only ever sees ``-rT in [-1/16, 0]``), which is how a library
user would configure TransPimLib and avoids range-extension costs where the
dataset makes them unnecessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.fixedpoint import Q3_28, fx_mul, fx_shift
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.system import PIMSystem, SystemRunResult
from repro.workloads import polynomial as poly

__all__ = ["OptionBatch", "generate_options", "reference_call_prices",
           "reference_put_prices", "Blackscholes"]

_F32 = np.float32

#: Tabulation intervals chosen from the generated dataset's argument ranges.
_LOG_IV = (0.25, 4.0)  # S/K stays in [0.65, 1.55] for the dataset
_EXP_IV = (-0.0625, 1e-4)
_SQRT_IV = (0.0625, 1.0001)
_CNDF_IV = (0.0, 7.9375)  # Phi is 1.0f beyond ~5.4; 7.9375 fits s3.28

VARIANTS = ("poly", "mlut_i", "llut_i", "llut_i_fx", "fixed_full")

#: Input record layout: (spot, strike, rate, volatility, time).
RECORD_FIELDS = 5
BYTES_PER_OPTION = RECORD_FIELDS * 4


@dataclass
class OptionBatch:
    """A batch of European call options."""

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    time: np.ndarray

    @property
    def n(self) -> int:
        return int(self.spot.size)

    def records(self) -> np.ndarray:
        """Options as an (n, 5) float32 record array (the PIM input layout)."""
        return np.stack(
            [self.spot, self.strike, self.rate, self.volatility, self.time],
            axis=1,
        ).astype(_F32)


def generate_options(n: int, seed: int = 2023) -> OptionBatch:
    """PARSEC-style synthetic option portfolio (documented substitution for
    the original input files, which are not redistributable)."""
    rng = np.random.default_rng(seed)
    spot = rng.uniform(25.0, 125.0, n).astype(_F32)
    strike = (spot * rng.uniform(0.65, 1.5, n)).astype(_F32)
    rate = rng.uniform(0.01, 0.05, n).astype(_F32)
    vol = rng.uniform(0.10, 0.60, n).astype(_F32)
    time = rng.uniform(0.10, 1.00, n).astype(_F32)
    return OptionBatch(spot, strike, rate, vol, time)


def reference_call_prices(batch: OptionBatch) -> np.ndarray:
    """Ground-truth float64 call prices (the host CPU's answer)."""
    from scipy.special import erf

    s = batch.spot.astype(np.float64)
    k = batch.strike.astype(np.float64)
    r = batch.rate.astype(np.float64)
    v = batch.volatility.astype(np.float64)
    t = batch.time.astype(np.float64)
    def cndf(x):
        return 0.5 * (1.0 + erf(x / np.sqrt(2.0)))

    vsq = v * np.sqrt(t)
    d1 = (np.log(s / k) + (r + v * v / 2.0) * t) / vsq
    d2 = d1 - vsq
    return s * cndf(d1) - k * np.exp(-r * t) * cndf(d2)


def reference_put_prices(batch: OptionBatch) -> np.ndarray:
    """Ground-truth float64 put prices (via put-call parity)."""
    s = batch.spot.astype(np.float64)
    k = batch.strike.astype(np.float64)
    r = batch.rate.astype(np.float64)
    t = batch.time.astype(np.float64)
    return reference_call_prices(batch) - s + k * np.exp(-r * t)


class Blackscholes:
    """One PIM variant of the Blackscholes workload."""

    def __init__(self, variant: str = "llut_i", costs: OpCosts = UPMEM_COSTS):
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown Blackscholes variant {variant!r}; options: {VARIANTS}"
            )
        self.variant = variant
        self.costs = costs
        self._methods: Dict[str, object] = {}
        self._ready = False

    # ------------------------------------------------------------------
    # host-side setup

    def _lut(self, function: str, method: str, **kw):
        common = dict(assume_in_range=True, costs=self.costs)
        common.update(kw)
        return make_method(function, method, **common)

    def setup(self) -> "Blackscholes":
        """Host-side: build the variant's function tables."""
        v = self.variant
        if v == "poly":
            self._ready = True
            return self
        if v in ("mlut_i", "llut_i"):
            method = v
            size_kw = (lambda n: {"size": (1 << n) + 1}) if v == "mlut_i" \
                else (lambda n: {"density_log2": n})
            self._methods = {
                "log": self._lut("log", method, interval=_LOG_IV, **size_kw(16)),
                "exp": self._lut("exp", method, interval=_EXP_IV, **size_kw(16)),
                "sqrt": self._lut("sqrt", method, interval=_SQRT_IV, **size_kw(16)),
                "cndf": self._lut("cndf", method, interval=_CNDF_IV,
                                  assume_in_range=False, **size_kw(13)),
            }
        else:  # fixed variants share the fixed tables
            self._methods = {
                "log": self._lut("log", "llut_i_fx", interval=_LOG_IV,
                                 density_log2=16),
                "exp": self._lut("exp", "llut_i_fx", interval=_EXP_IV,
                                 density_log2=16),
                "sqrt": self._lut("sqrt", "llut_i_fx", interval=_SQRT_IV,
                                  density_log2=16),
                "cndf": self._lut("cndf", "llut_i_fx", interval=_CNDF_IV,
                                  assume_in_range=False, density_log2=13),
            }
        for m in self._methods.values():
            m.setup()
        self._ready = True
        return self

    def table_bytes(self) -> int:
        """PIM memory consumed by all four function tables."""
        return sum(m.table_bytes() for m in self._methods.values())

    def _require_ready(self) -> None:
        if not self._ready:
            raise ConfigurationError("call setup() before running Blackscholes")

    # ------------------------------------------------------------------
    # traced kernels

    def _fn(self, name: str) -> Callable:
        if self.variant == "poly":
            return {
                "log": poly.poly_log,
                "exp": poly.poly_exp,
                "sqrt": poly.poly_sqrt,
                "cndf": poly.poly_cndf,
            }[name]
        method = self._methods[name]
        return lambda ctx, x: method.evaluate(ctx, x)

    def kernel_put(self, ctx: CycleCounter, rec) -> np.float32:
        """Price one *put* option via put-call parity (traced).

        The parity conversion is three float ops on top of the call kernel —
        the discount factor is reused, so no extra transcendental work.
        """
        call = self.kernel(ctx, rec)
        s, k, r, t = _F32(rec[0]), _F32(rec[1]), _F32(rec[2]), _F32(rec[4])
        disc = self._fn("exp")(ctx, ctx.fneg(ctx.fmul(r, t))) \
            if self.variant != "fixed_full" else \
            ctx.fx2f(self._methods["exp"].core_eval_raw(
                ctx, ctx.isub(0, ctx.f2fx(ctx.fmul(r, t), 28))), 28)
        kd = ctx.fmul(k, disc)
        return ctx.fadd(ctx.fsub(call, s), kd)

    def put_prices(self, batch: OptionBatch) -> np.ndarray:
        """Vectorized float32 put prices (parity over :meth:`prices`)."""
        calls = self.prices(batch)
        s = batch.spot.astype(_F32)
        k = batch.strike.astype(_F32)
        r = batch.rate.astype(_F32)
        t = batch.time.astype(_F32)
        if self.variant == "poly":
            disc = poly.poly_exp_vec((-(r * t).astype(_F32)).astype(_F32))
        elif self.variant == "fixed_full":
            raw = np.round((-(r * t).astype(_F32)).astype(np.float64)
                           * (1 << 28)).astype(np.int64)
            disc = (self._methods["exp"].core_eval_raw_vec(raw)
                    / float(1 << 28)).astype(_F32)
        else:
            disc = self._methods["exp"].evaluate_vec(
                (-(r * t).astype(_F32)).astype(_F32))
        kd = (k * disc).astype(_F32)
        return ((calls - s).astype(_F32) + kd).astype(_F32)

    def kernel(self, ctx: CycleCounter, rec) -> np.float32:
        """Price one option (traced).  ``rec = (S, K, r, v, T)``."""
        self._require_ready()
        if self.variant == "fixed_full":
            return self._kernel_fixed(ctx, rec)
        s, k, r, v, t = (_F32(x) for x in rec)
        p_log, p_exp = self._fn("log"), self._fn("exp")
        p_sqrt, p_cndf = self._fn("sqrt"), self._fn("cndf")

        ratio = ctx.fdiv(s, k)
        lg = p_log(ctx, ratio)
        sq = p_sqrt(ctx, t)
        vsq = ctx.fmul(v, sq)
        v2h = ctx.ldexp(ctx.fmul(v, v), -1)
        drift = ctx.fadd(r, v2h)
        num = ctx.fadd(lg, ctx.fmul(drift, t))
        d1 = ctx.fdiv(num, vsq)
        d2 = ctx.fsub(d1, vsq)
        nd1 = p_cndf(ctx, d1)
        nd2 = p_cndf(ctx, d2)
        rt = ctx.fmul(r, t)
        disc = p_exp(ctx, ctx.fneg(rt))
        term1 = ctx.fmul(s, nd1)
        term2 = ctx.fmul(ctx.fmul(k, disc), nd2)
        return ctx.fsub(term1, term2)

    def _kernel_fixed(self, ctx: CycleCounter, rec) -> np.float32:
        """Fully fixed-point kernel (s3.28), prices normalized by the strike.

        ``call = K * [ (S/K) Phi(d1) - e^{-rT} Phi(d2) ]`` — the bracket and
        every intermediate fit s3.28 for the generated dataset; d1/d2 are
        saturated to the CNDF table range (where Phi is already 1 to float32).
        """
        fmt = Q3_28
        fr = fmt.frac_bits
        s, k, r, v, t = (_F32(x) for x in rec)
        logm = self._methods["log"]
        expm = self._methods["exp"]
        sqrtm = self._methods["sqrt"]
        cndfm = self._methods["cndf"]

        ratio_f = ctx.fdiv(s, k)
        ratio = ctx.f2fx(ratio_f, fr)
        rx = ctx.f2fx(r, fr)
        vx = ctx.f2fx(v, fr)
        tx = ctx.f2fx(t, fr)

        lg = logm.core_eval_raw(ctx, ratio)
        sq = sqrtm.core_eval_raw(ctx, tx)
        vsq = fx_mul(ctx, fmt, vx, sq)
        v2h = fx_shift(ctx, fmt, fx_mul(ctx, fmt, vx, vx), -1)
        drift = ctx.iadd(rx, v2h)
        num = ctx.iadd(lg, fx_mul(ctx, fmt, drift, tx))
        # Divide without the usual word-width wrap: d1 can exceed the s3.28
        # range and must *saturate* (a wrapped d1 would select the wrong CNDF
        # tail), exactly as DPU fixed-point code would clamp it.
        d1 = ctx.idiv64(ctx.shl(num, fr), vsq)
        d1 = self._saturate_fixed(ctx, d1)
        d2 = self._saturate_fixed(ctx, ctx.isub(d1, vsq))
        nd1 = cndfm.core_eval_raw(ctx, self._abs_complement(ctx, cndfm, d1))
        nd1 = self._undo_complement(ctx, nd1, d1)
        nd2 = cndfm.core_eval_raw(ctx, self._abs_complement(ctx, cndfm, d2))
        nd2 = self._undo_complement(ctx, nd2, d2)
        rt = fx_mul(ctx, fmt, rx, tx)
        disc = expm.core_eval_raw(ctx, ctx.isub(0, rt))
        bracket = ctx.isub(
            fx_mul(ctx, fmt, ratio, nd1), fx_mul(ctx, fmt, disc, nd2)
        )
        bracket_f = ctx.fx2f(bracket, fr)
        return ctx.fmul(k, bracket_f)

    _FIXED_BOUND = int(7.9 * Q3_28.scale)
    _ONE_FIXED = Q3_28.scale

    def _saturate_fixed(self, ctx: CycleCounter, raw: int) -> int:
        """Clamp an s3.28 word into +-7.9 (two compares, like DPU code would)."""
        if ctx.icmp(raw, self._FIXED_BOUND) > 0:
            ctx.branch()
            return self._FIXED_BOUND
        if ctx.icmp(raw, -self._FIXED_BOUND) < 0:
            ctx.branch()
            return -self._FIXED_BOUND
        return raw

    def _abs_complement(self, ctx: CycleCounter, method, raw: int) -> int:
        """|raw| — the fixed-point half of the CNDF complement symmetry."""
        if ctx.icmp(raw, 0) < 0:
            ctx.branch()
            return ctx.isub(0, raw)
        return raw

    def _undo_complement(self, ctx: CycleCounter, val: int, original: int) -> int:
        """Phi(-x) = 1 - Phi(x) on raw words."""
        if ctx.icmp(original, 0) < 0:
            ctx.branch()
            return ctx.isub(self._ONE_FIXED, val)
        return val

    # ------------------------------------------------------------------
    # vectorized accuracy twin

    def prices(self, batch: OptionBatch) -> np.ndarray:
        """Vectorized float32 prices for the whole batch."""
        self._require_ready()
        s = batch.spot.astype(_F32)
        k = batch.strike.astype(_F32)
        r = batch.rate.astype(_F32)
        v = batch.volatility.astype(_F32)
        t = batch.time.astype(_F32)

        if self.variant == "poly":
            f_log, f_exp = poly.poly_log_vec, poly.poly_exp_vec
            f_sqrt, f_cndf = poly.poly_sqrt_vec, poly.poly_cndf_vec
        else:
            f_log = self._methods["log"].evaluate_vec
            f_exp = self._methods["exp"].evaluate_vec
            f_sqrt = self._methods["sqrt"].evaluate_vec
            f_cndf = self._methods["cndf"].evaluate_vec

        if self.variant == "fixed_full":
            return self._prices_fixed(s, k, r, v, t)

        ratio = (s / k).astype(_F32)
        lg = f_log(ratio)
        sq = f_sqrt(t)
        vsq = (v * sq).astype(_F32)
        v2h = ((v * v).astype(_F32) * _F32(0.5)).astype(_F32)
        drift = (r + v2h).astype(_F32)
        num = (lg + (drift * t).astype(_F32)).astype(_F32)
        d1 = (num / vsq).astype(_F32)
        d2 = (d1 - vsq).astype(_F32)
        nd1 = f_cndf(d1)
        nd2 = f_cndf(d2)
        disc = f_exp((-(r * t).astype(_F32)).astype(_F32))
        term1 = (s * nd1).astype(_F32)
        term2 = ((k * disc).astype(_F32) * nd2).astype(_F32)
        return (term1 - term2).astype(_F32)

    def _prices_fixed(self, s, k, r, v, t) -> np.ndarray:
        fmt = Q3_28
        scale = fmt.scale
        def to_fx(a):
            return np.round(a.astype(np.float64) * scale).astype(np.int64)

        ratio = to_fx((s / k).astype(_F32))
        rx, vx, tx = to_fx(r), to_fx(v), to_fx(t)
        logm = self._methods["log"]
        expm = self._methods["exp"]
        sqrtm = self._methods["sqrt"]
        cndfm = self._methods["cndf"]

        lg = logm.core_eval_raw_vec(ratio)
        sq = sqrtm.core_eval_raw_vec(tx)
        def mulfx(a, b):
            return (a * b) >> fmt.frac_bits

        vsq = mulfx(vx, sq)
        v2h = mulfx(vx, vx) >> 1
        drift = rx + v2h
        num = lg + mulfx(drift, tx)
        wide = num << fmt.frac_bits
        d1 = np.where(vsq != 0, np.sign(wide) * (np.abs(wide) // np.abs(
            np.where(vsq == 0, 1, vsq))), 0)
        bound = self._FIXED_BOUND
        d1 = np.clip(d1, -bound, bound)
        d2 = np.clip(d1 - vsq, -bound, bound)

        def cndf_raw(d):
            val = cndfm.core_eval_raw_vec(np.abs(d))
            return np.where(d < 0, self._ONE_FIXED - val, val)

        nd1 = cndf_raw(d1)
        nd2 = cndf_raw(d2)
        rt = mulfx(rx, tx)
        disc = expm.core_eval_raw_vec(-rt)
        bracket = mulfx(ratio, nd1) - mulfx(disc, nd2)
        bracket_f = (bracket / scale).astype(_F32)
        return (k * bracket_f).astype(_F32)

    # ------------------------------------------------------------------
    # system run

    def run(
        self,
        batch: OptionBatch,
        system: PIMSystem,
        tasklets: int = 16,
        sample_size: int = 48,
        virtual_n: int = None,
        use_batch: bool = True,
        shards: int = 1,
        overlap: bool = False,
    ) -> SystemRunResult:
        """Simulate the whole-system run over the option batch.

        ``virtual_n`` sizes the run as if the batch were that many options
        (the batch then only feeds the traced sample).  ``shards > 1``
        dispatches across disjoint DPU groups (optionally ``overlap``-ped).
        """
        self._require_ready()
        if shards > 1:
            return system.run_sharded(
                self.kernel, batch.records(), shards=shards, overlap=overlap,
                tasklets=tasklets, sample_size=sample_size,
                bytes_in_per_element=BYTES_PER_OPTION,
                bytes_out_per_element=4,
                virtual_n=virtual_n, batch=use_batch,
            )
        return system.run(
            self.kernel,
            batch.records(),
            tasklets=tasklets,
            sample_size=sample_size,
            bytes_in_per_element=BYTES_PER_OPTION,
            bytes_out_per_element=4,
            virtual_n=virtual_n,
            batch=use_batch,
        )
