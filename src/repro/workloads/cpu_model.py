"""Host-CPU baseline timing model for the full workloads (Figure 9).

We do not have the paper's 2-socket, 32-core Xeon (or its pthread C
baselines), so the CPU side of Figure 9 is an analytic throughput model:
per-element compute cost for one thread, a parallel-scaling efficiency, and a
memory-bandwidth floor that caps multithreaded runs of streaming workloads.

Calibration (documented substitutions, see DESIGN.md):

* Blackscholes: ~400 ns per option single-threaded — in line with the PARSEC
  scalar kernel (one log, one exp, one sqrt, two CNDFs, several divides per
  option with scalar libm);
* Sigmoid: ~55 ns per element (scalar ``expf`` plus a divide, plain C loop);
* Softmax: ~60 ns per element (three passes: max, exp+sum, scale).

These constants set the absolute scale only; the PIM-vs-CPU *ratios* that
Figure 9 reports additionally depend on the PIM cost model, and both are
exercised by the sensitivity ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "CPUModel",
    "CPU_BLACKSCHOLES",
    "CPU_SIGMOID",
    "CPU_SOFTMAX",
]


@dataclass(frozen=True)
class CPUModel:
    """Analytic CPU execution-time model for one streaming workload."""

    name: str
    #: Single-thread compute cost per element, seconds.
    sec_per_element_1t: float
    #: Bytes touched per element (reads + writes) for the bandwidth floor.
    bytes_per_element: int
    #: Parallel scaling efficiency for multithreaded runs.
    parallel_efficiency: float = 0.85
    #: Aggregate memory bandwidth of the host (2-socket), bytes/second.
    memory_bandwidth: float = 80e9

    def seconds(self, n_elements: int, threads: int = 1) -> float:
        """Modeled execution time for ``n_elements`` on ``threads`` threads."""
        if threads < 1:
            raise ConfigurationError("thread count must be at least 1")
        scale = threads * self.parallel_efficiency if threads > 1 else 1.0
        compute = n_elements * self.sec_per_element_1t / scale
        memory = n_elements * self.bytes_per_element / self.memory_bandwidth
        return max(compute, memory)


CPU_BLACKSCHOLES = CPUModel(
    name="blackscholes", sec_per_element_1t=400e-9, bytes_per_element=24
)
CPU_SIGMOID = CPUModel(
    name="sigmoid", sec_per_element_1t=55e-9, bytes_per_element=8
)
CPU_SOFTMAX = CPUModel(
    name="softmax", sec_per_element_1t=60e-9, bytes_per_element=16
)
