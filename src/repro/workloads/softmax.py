"""Softmax workload on the simulated PIM system (Section 4.1.2).

``softmax(x)_i = e^{x_i} / sum_k e^{x_k}`` over a 30M-element vector, in the
numerically-stable three-phase form:

1. global max — each PIM core scans its slice, the host reduces the 2545
   partial maxima (PIM cores cannot talk to each other; inter-core
   communication goes through the host, Section 2.1);
2. ``e_i = exp(x_i - max)`` with per-core partial sums, host-reduced;
3. scale by the host-broadcast reciprocal (one multiply per element — the
   host does the single divide, so no per-element float divide is paid).

The exp uses the same variants as Sigmoid: polynomial baseline, interpolated
M-LUT / L-LUT (full range extension), and a ``direct_llut_i`` extension that
tabulates exp over [-16, 0] directly (arguments are bounded after the max
subtraction; inputs below -16 clamp to e^-16 ~ 1.1e-7, which underflows the
final float32 softmax anyway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.obs.tracer import span as _span
from repro.pim.system import PIMSystem, SystemRunResult
from repro.workloads import polynomial as poly

__all__ = ["VARIANTS", "generate_inputs", "reference_softmax", "Softmax",
           "SoftmaxRunResult"]

_F32 = np.float32

VARIANTS = ("poly", "mlut_i", "llut_i", "direct_llut_i")

_DIRECT_IV = (-16.0, 1e-4)


def generate_inputs(n: int, seed: int = 2023, spread: float = 4.0) -> np.ndarray:
    """Logit-like inputs (zero-centered normal)."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, spread, n).astype(_F32)


def reference_softmax(x: np.ndarray) -> np.ndarray:
    """Float64 ground truth (stable form)."""
    x = np.asarray(x, dtype=np.float64)
    e = np.exp(x - x.max())
    return e / e.sum()


@dataclass
class SoftmaxRunResult:
    """Timing of the three softmax phases plus host coordination."""

    max_phase: SystemRunResult
    exp_phase: SystemRunResult
    scale_phase: SystemRunResult
    host_reduce_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.max_phase.total_seconds
            + self.exp_phase.total_seconds
            + self.scale_phase.total_seconds
            + self.host_reduce_seconds
        )

    @property
    def compute_only_seconds(self) -> float:
        return (
            self.max_phase.compute_only_seconds
            + self.exp_phase.compute_only_seconds
            + self.scale_phase.compute_only_seconds
            + self.host_reduce_seconds
        )


class Softmax:
    """One PIM variant of the Softmax workload."""

    def __init__(self, variant: str = "llut_i", costs: OpCosts = UPMEM_COSTS):
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown Softmax variant {variant!r}; options: {VARIANTS}"
            )
        self.variant = variant
        self.costs = costs
        self._method = None
        self._ready = False

    def setup(self) -> "Softmax":
        """Host-side: build the chosen variant's table."""
        if self.variant == "mlut_i":
            self._method = make_method(
                "exp", "mlut_i", size=(1 << 14) + 1,
                assume_in_range=False, costs=self.costs,
            ).setup()
        elif self.variant == "llut_i":
            self._method = make_method(
                "exp", "llut_i", density_log2=14,
                assume_in_range=False, costs=self.costs,
            ).setup()
        elif self.variant == "direct_llut_i":
            self._method = make_method(
                "exp", "llut_i", density_log2=14, interval=_DIRECT_IV,
                assume_in_range=True, costs=self.costs,
            ).setup()
        self._ready = True
        return self

    def table_bytes(self) -> int:
        """PIM memory consumed by the variant's table (0 for poly)."""
        return self._method.table_bytes() if self._method is not None else 0

    def _require_ready(self) -> None:
        if not self._ready:
            raise ConfigurationError("call setup() before running Softmax")

    # ------------------------------------------------------------------
    # traced per-element kernels (one per phase)

    def kernel_max(self, ctx: CycleCounter, x) -> np.float32:
        """Phase 1: running-max scan (compare + conditional move)."""
        ctx.fcmp(_F32(x), _F32(0.0))
        ctx.branch()
        return _F32(x)

    def _exp(self, ctx: CycleCounter, u) -> np.float32:
        if self.variant == "poly":
            return poly.poly_exp(ctx, u)
        return self._method.evaluate(ctx, u)

    def kernel_exp_sum(self, ctx: CycleCounter, x, gmax: float = 0.0) -> np.float32:
        """Phase 2: e = exp(x - max), accumulated into a running sum."""
        self._require_ready()
        d = ctx.fsub(_F32(x), _F32(gmax))
        e = self._exp(ctx, d)
        ctx.fadd(e, _F32(0.0))  # the partial-sum accumulate
        return e

    def kernel_scale(self, ctx: CycleCounter, e, inv_sum: float = 1.0) -> np.float32:
        """Phase 3: multiply by the host-broadcast reciprocal."""
        return ctx.fmul(_F32(e), _F32(inv_sum))

    # ------------------------------------------------------------------
    # vectorized accuracy twin

    def values(self, x: np.ndarray) -> np.ndarray:
        """Vectorized float32 softmax over the whole vector."""
        self._require_ready()
        x = np.asarray(x, dtype=_F32)
        gmax = x.max()
        d = (x - gmax).astype(_F32)
        if self.variant == "poly":
            e = poly.poly_exp_vec(d)
        else:
            e = self._method.evaluate_vec(d)
        # Per-core float32 partial sums, host-reduced in double (as on the
        # real system); a single full-precision sum is an adequate stand-in.
        total = float(e.astype(np.float64).sum())
        inv = _F32(1.0 / total)
        return (e * inv).astype(_F32)

    # ------------------------------------------------------------------

    def run(
        self,
        x: np.ndarray,
        system: PIMSystem,
        tasklets: int = 16,
        sample_size: int = 64,
        virtual_n: int = None,
        use_batch: bool = True,
        shards: int = 1,
        overlap: bool = False,
    ) -> SoftmaxRunResult:
        """Simulate the three-phase whole-system run (``virtual_n`` sizes it up).

        ``shards > 1`` dispatches each phase across disjoint DPU groups
        (optionally ``overlap``-ped between a phase's shards; phases still
        barrier on the host reduction between them).
        """
        self._require_ready()
        x = np.asarray(x, dtype=_F32)
        gmax = float(x.max())

        def _launch(kernel, sample_size_, bytes_out, include_transfers=True):
            if shards > 1:
                return system.run_sharded(
                    kernel, x, shards=shards, overlap=overlap,
                    tasklets=tasklets, sample_size=sample_size_,
                    bytes_in_per_element=4, bytes_out_per_element=bytes_out,
                    include_transfers=include_transfers,
                    virtual_n=virtual_n, batch=use_batch,
                )
            return system.run(
                kernel, x, tasklets=tasklets, sample_size=sample_size_,
                bytes_in_per_element=4, bytes_out_per_element=bytes_out,
                include_transfers=include_transfers,
                virtual_n=virtual_n, batch=use_batch,
            )

        with _span("workload.softmax", variant=self.variant) as sp:
            with _span("phase.max"):
                r_max = _launch(self.kernel_max, 8, 0)
            with _span("phase.exp_sum"):
                r_exp = _launch(
                    lambda ctx, v: self.kernel_exp_sum(ctx, v, gmax),
                    sample_size, 4,
                    include_transfers=False,  # operands resident after phase 1
                )
            with _span("phase.scale"):
                r_scale = _launch(self.kernel_scale, 8, 4)
            # Host reduces 2545 partial maxima and sums: negligible compute,
            # one small gather each — model as two launch overheads.
            with _span("reduce") as red_sp:
                host_reduce = 2.0 * system.config.launch_overhead_s
                red_sp.set(sim_seconds=host_reduce)
            result = SoftmaxRunResult(
                max_phase=r_max,
                exp_phase=r_exp,
                scale_phase=r_scale,
                host_reduce_seconds=host_reduce,
            )
            sp.set(sim_seconds=result.total_seconds)
        return result
