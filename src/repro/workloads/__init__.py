"""Full workloads: Blackscholes, Sigmoid, Softmax, plus their baselines."""

from repro.workloads.blackscholes import (
    Blackscholes,
    OptionBatch,
    generate_options,
    reference_call_prices,
)
from repro.workloads.cpu_model import (
    CPU_BLACKSCHOLES,
    CPU_SIGMOID,
    CPU_SOFTMAX,
    CPUModel,
)
from repro.workloads.attention import AttentionSoftmax
from repro.workloads.logreg import LogisticRegression
from repro.workloads.sigmoid import Sigmoid
from repro.workloads.softmax import Softmax

__all__ = [
    "Blackscholes",
    "OptionBatch",
    "generate_options",
    "reference_call_prices",
    "Sigmoid",
    "Softmax",
    "LogisticRegression",
    "AttentionSoftmax",
    "CPUModel",
    "CPU_BLACKSCHOLES",
    "CPU_SIGMOID",
    "CPU_SOFTMAX",
]
