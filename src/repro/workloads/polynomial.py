"""Polynomial-approximation baselines (the paper's PIM baseline, Section 4.1.2).

The baseline PIM implementations of Blackscholes, Sigmoid, and Softmax do not
use TransPimLib; they compute transcendental functions with classic polynomial
methods on the PIM core:

* ``exp``: argument reduction + Taylor/Horner on ``[0, ln2)`` — one float
  multiply and add per term, the cost structure the paper contrasts with LUTs
  ("one floating-point multiplication per bit of precision");
* ``log``: mantissa split + the ``atanh`` series (odd powers);
* ``sqrt``: exponent split + Newton-Raphson iterations (one float divide each);
* ``CNDF``: the Abramowitz & Stegun 7.1.26 polynomial used by the original
  Blackscholes benchmark, which itself needs an ``exp``.

Each function exists as a traced scalar (cost-charged) and a vectorized
float32 twin.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.ldexp import ldexpf_vec
from repro.core.range_reduction import (
    ExpSplitReducer,
    LogSplitReducer,
    SqrtSplitReducer,
)
from repro.isa.counter import CycleCounter

__all__ = [
    "poly_exp",
    "poly_exp_vec",
    "poly_log",
    "poly_log_vec",
    "poly_sqrt",
    "poly_sqrt_vec",
    "poly_cndf",
    "poly_cndf_vec",
    "poly_sigmoid",
    "poly_sigmoid_vec",
]

_F32 = np.float32

#: Taylor coefficients of exp around 0, high order first (Horner), 1/k!.
_EXP_TERMS = 10
_EXP_COEFFS = [_F32(1.0 / math.factorial(k)) for k in range(_EXP_TERMS, -1, -1)]

#: atanh series: ln(m) = 2 * sum t^(2k+1) / (2k+1), t = (m-1)/(m+1) in [0, 1/3].
_LOG_ODD_TERMS = 7
_LOG_COEFFS = [_F32(1.0 / (2 * k + 1)) for k in range(_LOG_ODD_TERMS - 1, -1, -1)]

#: Abramowitz & Stegun 7.1.26 constants (as in the PARSEC Blackscholes kernel).
_AS_GAMMA = _F32(0.2316419)
_AS_COEFFS = [
    _F32(1.330274429),   # a5 (applied first in Horner)
    _F32(-1.821255978),  # a4
    _F32(1.781477937),   # a3
    _F32(-0.356563782),  # a2
    _F32(0.319381530),   # a1
]
_INV_SQRT_2PI = _F32(1.0 / math.sqrt(2.0 * math.pi))

_exp_reducer = ExpSplitReducer()
_log_reducer = LogSplitReducer()
_sqrt_reducer = SqrtSplitReducer()


# ----------------------------------------------------------------------
# exp


def _horner(ctx: CycleCounter, coeffs, x: np.float32) -> np.float32:
    acc = coeffs[0]
    for c in coeffs[1:]:
        acc = ctx.fadd(ctx.fmul(acc, x), c)
    return acc


def _horner_vec(coeffs, x: np.ndarray) -> np.ndarray:
    acc = np.full(x.shape, coeffs[0], dtype=_F32)
    for c in coeffs[1:]:
        acc = ((acc * x).astype(_F32) + c).astype(_F32)
    return acc


def poly_exp(ctx: CycleCounter, x) -> np.float32:
    """Taylor-series exp with exponent/mantissa range reduction."""
    f, k = _exp_reducer.reduce(ctx, _F32(x))
    ef = _horner(ctx, _EXP_COEFFS, f)
    return _exp_reducer.reconstruct(ctx, ef, k)


def poly_exp_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`poly_exp`."""
    f, k = _exp_reducer.reduce_vec(np.asarray(x, dtype=_F32))
    ef = _horner_vec(_EXP_COEFFS, f)
    return _exp_reducer.reconstruct_vec(ef, k)


# ----------------------------------------------------------------------
# log


def poly_log(ctx: CycleCounter, x) -> np.float32:
    """atanh-series log with mantissa range reduction (m in [1, 2))."""
    m, e = _log_reducer.reduce(ctx, _F32(x))
    num = ctx.fsub(m, _F32(1.0))
    den = ctx.fadd(m, _F32(1.0))
    t = ctx.fdiv(num, den)
    t2 = ctx.fmul(t, t)
    series = _horner(ctx, _LOG_COEFFS, t2)
    half_log = ctx.fmul(series, t)
    log_m = ctx.ldexp(half_log, 1)
    return _log_reducer.reconstruct(ctx, log_m, e)


def poly_log_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`poly_log`."""
    m, e = _log_reducer.reduce_vec(np.asarray(x, dtype=_F32))
    num = (m - _F32(1.0)).astype(_F32)
    den = (m + _F32(1.0)).astype(_F32)
    t = (num / den).astype(_F32)
    t2 = (t * t).astype(_F32)
    series = _horner_vec(_LOG_COEFFS, t2)
    half_log = (series * t).astype(_F32)
    log_m = ldexpf_vec(half_log, 1)
    return _log_reducer.reconstruct_vec(log_m, e)


# ----------------------------------------------------------------------
# sqrt

_SQRT_NEWTON_ITERS = 3


def poly_sqrt(ctx: CycleCounter, x) -> np.float32:
    """Newton-Raphson sqrt with exponent range reduction (m in [0.5, 2))."""
    m, e = _sqrt_reducer.reduce(ctx, _F32(x))
    # Linear initial guess y ~ 0.59 + 0.42 m, error < 6% on [0.5, 2).
    y = ctx.fadd(ctx.fmul(m, _F32(0.4173075996388651)), _F32(0.5900984548320208))
    for _ in range(_SQRT_NEWTON_ITERS):
        q = ctx.fdiv(m, y)
        s = ctx.fadd(y, q)
        y = ctx.ldexp(s, -1)
    return _sqrt_reducer.reconstruct(ctx, y, e)


def poly_sqrt_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`poly_sqrt`."""
    m, e = _sqrt_reducer.reduce_vec(np.asarray(x, dtype=_F32))
    y = ((m * _F32(0.4173075996388651)).astype(_F32)
         + _F32(0.5900984548320208)).astype(_F32)
    for _ in range(_SQRT_NEWTON_ITERS):
        q = (m / y).astype(_F32)
        y = ldexpf_vec((y + q).astype(_F32), -1)
    return _sqrt_reducer.reconstruct_vec(y, e)


# ----------------------------------------------------------------------
# CNDF (Abramowitz & Stegun 7.1.26)


def poly_cndf(ctx: CycleCounter, x) -> np.float32:
    """Cumulative normal distribution via the A&S polynomial plus exp."""
    x = _F32(x)
    negative = ctx.fcmp(x, _F32(0.0)) < 0
    ctx.branch()
    ax = ctx.fabs(x) if negative else x
    # k = 1 / (1 + gamma * |x|)
    gk = ctx.fmul(_AS_GAMMA, ax)
    den = ctx.fadd(gk, _F32(1.0))
    k = ctx.fdiv(_F32(1.0), den)
    series = _horner(ctx, _AS_COEFFS, k)
    poly = ctx.fmul(series, k)
    # phi(|x|) = exp(-x^2/2) / sqrt(2 pi)
    x2h = ctx.ldexp(ctx.fmul(ax, ax), -1)
    ex = poly_exp(ctx, ctx.fneg(x2h))
    pdf = ctx.fmul(ex, _INV_SQRT_2PI)
    tail = ctx.fmul(pdf, poly)
    result = ctx.fsub(_F32(1.0), tail)
    if negative:
        return ctx.fsub(_F32(1.0), result)
    return result


def poly_cndf_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`poly_cndf`."""
    x = np.asarray(x, dtype=_F32)
    ax = np.abs(x).astype(_F32)
    gk = (_AS_GAMMA * ax).astype(_F32)
    den = (gk + _F32(1.0)).astype(_F32)
    k = (_F32(1.0) / den).astype(_F32)
    series = _horner_vec(_AS_COEFFS, k)
    poly = (series * k).astype(_F32)
    x2h = ldexpf_vec((ax * ax).astype(_F32), -1)
    ex = poly_exp_vec((-x2h).astype(_F32))
    pdf = (ex * _INV_SQRT_2PI).astype(_F32)
    tail = (pdf * poly).astype(_F32)
    result = (_F32(1.0) - tail).astype(_F32)
    flipped = (_F32(1.0) - result).astype(_F32)
    return np.where(x < 0, flipped, result).astype(_F32)


# ----------------------------------------------------------------------
# sigmoid


def poly_sigmoid(ctx: CycleCounter, x) -> np.float32:
    """Logistic sigmoid via the polynomial exp: 1 / (1 + e^-x)."""
    ex = poly_exp(ctx, ctx.fneg(_F32(x)))
    den = ctx.fadd(ex, _F32(1.0))
    return ctx.fdiv(_F32(1.0), den)


def poly_sigmoid_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`poly_sigmoid`."""
    ex = poly_exp_vec((-np.asarray(x, dtype=_F32)).astype(_F32))
    den = (ex + _F32(1.0)).astype(_F32)
    return (_F32(1.0) / den).astype(_F32)
