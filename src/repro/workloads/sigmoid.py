"""Sigmoid activation workload on the simulated PIM system (Section 4.1.2).

Computes ``S(x) = 1 / (1 + e^-x)`` element-wise over a 30M-element vector.
As in the paper, the TransPimLib variants accelerate the ``exp`` inside the
sigmoid with interpolated M-LUT / L-LUT methods (full exp_split range
extension included); the PIM baseline uses the polynomial exp.  A
``direct_llut_i`` extension variant tabulates the sigmoid itself — one lookup
and no float divide — to show the headroom of function-level tabulation.
"""

from __future__ import annotations


import numpy as np

from repro.api import make_method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.system import PIMSystem, SystemRunResult
from repro.workloads import polynomial as poly

__all__ = ["VARIANTS", "generate_inputs", "reference_sigmoid", "Sigmoid"]

_F32 = np.float32

VARIANTS = ("poly", "mlut_i", "llut_i", "direct_llut_i")


def generate_inputs(n: int, seed: int = 2023, spread: float = 8.0) -> np.ndarray:
    """Neural-net-like pre-activations: zero-centered, a few sigmas wide."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, spread / 3.0, n).astype(_F32)


def reference_sigmoid(x: np.ndarray) -> np.ndarray:
    """Float64 ground truth."""
    return 1.0 / (1.0 + np.exp(-np.asarray(x, dtype=np.float64)))


class Sigmoid:
    """One PIM variant of the Sigmoid workload."""

    def __init__(self, variant: str = "llut_i", costs: OpCosts = UPMEM_COSTS):
        if variant not in VARIANTS:
            raise ConfigurationError(
                f"unknown Sigmoid variant {variant!r}; options: {VARIANTS}"
            )
        self.variant = variant
        self.costs = costs
        self._method = None
        self._ready = False

    def setup(self) -> "Sigmoid":
        """Host-side: build the chosen variant's table."""
        if self.variant == "mlut_i":
            self._method = make_method(
                "exp", "mlut_i", size=(1 << 14) + 1,
                assume_in_range=False, costs=self.costs,
            ).setup()
        elif self.variant == "llut_i":
            self._method = make_method(
                "exp", "llut_i", density_log2=14,
                assume_in_range=False, costs=self.costs,
            ).setup()
        elif self.variant == "direct_llut_i":
            self._method = make_method(
                "sigmoid", "llut_i", density_log2=12,
                assume_in_range=False, costs=self.costs,
            ).setup()
        self._ready = True
        return self

    def table_bytes(self) -> int:
        """PIM memory consumed by the variant's table (0 for poly)."""
        return self._method.table_bytes() if self._method is not None else 0

    def _require_ready(self) -> None:
        if not self._ready:
            raise ConfigurationError("call setup() before running Sigmoid")

    # ------------------------------------------------------------------

    def kernel(self, ctx: CycleCounter, x) -> np.float32:
        """Traced per-element sigmoid."""
        self._require_ready()
        x = _F32(x)
        if self.variant == "poly":
            return poly.poly_sigmoid(ctx, x)
        if self.variant == "direct_llut_i":
            return self._method.evaluate(ctx, x)
        ex = self._method.evaluate(ctx, ctx.fneg(x))
        den = ctx.fadd(ex, _F32(1.0))
        return ctx.fdiv(_F32(1.0), den)

    def values(self, x: np.ndarray) -> np.ndarray:
        """Vectorized float32 twin."""
        self._require_ready()
        x = np.asarray(x, dtype=_F32)
        if self.variant == "poly":
            return poly.poly_sigmoid_vec(x)
        if self.variant == "direct_llut_i":
            return self._method.evaluate_vec(x)
        ex = self._method.evaluate_vec((-x).astype(_F32))
        den = (ex + _F32(1.0)).astype(_F32)
        return (_F32(1.0) / den).astype(_F32)

    def run(
        self,
        x: np.ndarray,
        system: PIMSystem,
        tasklets: int = 16,
        sample_size: int = 64,
        virtual_n: int = None,
        use_batch: bool = True,
        shards: int = 1,
        overlap: bool = False,
    ) -> SystemRunResult:
        """Simulate the whole-system run (``virtual_n`` sizes it up).

        ``shards > 1`` dispatches across disjoint DPU groups (optionally
        ``overlap``-ped) and returns a
        :class:`~repro.plan.dispatch.ShardedRunResult`.
        """
        self._require_ready()
        if shards > 1:
            return system.run_sharded(
                self.kernel, x, shards=shards, overlap=overlap,
                tasklets=tasklets, sample_size=sample_size,
                virtual_n=virtual_n, batch=use_batch,
            )
        return system.run(
            self.kernel,
            x,
            tasklets=tasklets,
            sample_size=sample_size,
            bytes_in_per_element=4,
            bytes_out_per_element=4,
            virtual_n=virtual_n,
            batch=use_batch,
        )
