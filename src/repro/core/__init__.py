"""The paper's primary contribution: CORDIC- and LUT-based method library."""

from repro.core.accuracy import AccuracyReport, max_abs_error, measure, rmse
from repro.core.functions.registry import FUNCTIONS, FunctionSpec, get_function
from repro.core.functions.support import (
    BASE_METHODS,
    METHOD_SUPPORT,
    supported_functions,
    supported_methods,
    supports,
)
from repro.core.method import Method

__all__ = [
    "Method",
    "FunctionSpec",
    "FUNCTIONS",
    "get_function",
    "BASE_METHODS",
    "METHOD_SUPPORT",
    "supports",
    "supported_methods",
    "supported_functions",
    "AccuracyReport",
    "measure",
    "rmse",
    "max_abs_error",
]
