"""Bit-level tools for IEEE-754 single-precision (float32) values.

The UPMEM DPU has no floating-point hardware: floats are 32-bit words that
software interprets.  TransPimLib's L-LUT and D-LUT methods exploit this by
operating on the raw bit pattern (exponent adds for ``ldexp``, direct bit
slicing for D-LUT addresses).  This module provides the primitive view/cast
operations those methods are built from, in both scalar and vectorized form.

All scalar functions accept and return Python ints / ``np.float32`` and are
exact; vectorized twins accept numpy arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "EXP_BIAS",
    "EXP_BITS",
    "MANT_BITS",
    "float_to_bits",
    "bits_to_float",
    "exponent_field",
    "mantissa_field",
    "sign_bit",
    "biased_exponent",
    "unbiased_exponent",
    "compose_float",
    "is_subnormal",
    "ulp_spacing",
]

#: Number of mantissa (fraction) bits in float32.
MANT_BITS = 23
#: Number of exponent bits in float32.
EXP_BITS = 8
#: Exponent bias in float32.
EXP_BIAS = 127

_U32 = np.uint32
_F32 = np.float32

ArrayLike = Union[np.ndarray, float, int]


def float_to_bits(x: ArrayLike) -> Union[int, np.ndarray]:
    """Reinterpret a float32 value (or array) as its uint32 bit pattern."""
    arr = np.asarray(x, dtype=_F32)
    bits = arr.view(_U32)
    if bits.ndim == 0:
        return int(bits)
    return bits


def bits_to_float(bits: ArrayLike) -> Union[np.float32, np.ndarray]:
    """Reinterpret a uint32 bit pattern (or array) as a float32 value."""
    arr = np.asarray(bits, dtype=_U32)
    val = arr.view(_F32)
    if val.ndim == 0:
        return _F32(val)
    return val


def sign_bit(x: ArrayLike) -> Union[int, np.ndarray]:
    """Return the sign bit (0 or 1) of a float32 value or array."""
    bits = np.asarray(float_to_bits(x))
    out = (bits >> np.uint32(31)) & np.uint32(1)
    if out.ndim == 0:
        return int(out)
    return out


def exponent_field(x: ArrayLike) -> Union[int, np.ndarray]:
    """Return the raw (biased) 8-bit exponent field of a float32 value."""
    bits = np.asarray(float_to_bits(x))
    out = (bits >> np.uint32(MANT_BITS)) & np.uint32(0xFF)
    if out.ndim == 0:
        return int(out)
    return out


# ``biased_exponent`` is the conventional name for the raw field; keep both.
biased_exponent = exponent_field


def unbiased_exponent(x: ArrayLike) -> Union[int, np.ndarray]:
    """Return the unbiased exponent *e* such that ``|x| = m * 2**e``, m in [1,2).

    Subnormals report the exponent of the smallest normal (-126), matching the
    convention used by the D-LUT address generator.
    """
    raw = np.asarray(exponent_field(x), dtype=np.int32)
    out = np.where(raw == 0, np.int32(1 - EXP_BIAS), raw - np.int32(EXP_BIAS))
    if out.ndim == 0:
        return int(out)
    return out


def mantissa_field(x: ArrayLike) -> Union[int, np.ndarray]:
    """Return the raw 23-bit mantissa (fraction) field of a float32 value."""
    bits = np.asarray(float_to_bits(x))
    out = bits & np.uint32((1 << MANT_BITS) - 1)
    if out.ndim == 0:
        return int(out)
    return out


def compose_float(
    sign: ArrayLike, exponent: ArrayLike, mantissa: ArrayLike
) -> Union[np.float32, np.ndarray]:
    """Assemble a float32 from sign bit, raw exponent field, and mantissa field."""
    s = np.asarray(sign, dtype=_U32)
    e = np.asarray(exponent, dtype=_U32)
    m = np.asarray(mantissa, dtype=_U32)
    bits = (s << np.uint32(31)) | (e << np.uint32(MANT_BITS)) | (
        m & np.uint32((1 << MANT_BITS) - 1)
    )
    return bits_to_float(bits)


def is_subnormal(x: ArrayLike) -> Union[bool, np.ndarray]:
    """True when the value is subnormal (raw exponent 0, nonzero mantissa)."""
    raw = np.asarray(exponent_field(x))
    mant = np.asarray(mantissa_field(x))
    out = (raw == 0) & (mant != 0)
    if out.ndim == 0:
        return bool(out)
    return out


def ulp_spacing(x: ArrayLike) -> Union[np.float32, np.ndarray]:
    """Return the unit-in-the-last-place spacing at ``x`` (float32)."""
    arr = np.asarray(x, dtype=_F32)
    nxt = np.nextafter(np.abs(arr), np.float32(np.inf), dtype=_F32)
    out = (nxt - np.abs(arr)).astype(_F32)
    if out.ndim == 0:
        return _F32(out)
    return out
