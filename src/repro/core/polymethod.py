"""Polynomial approximation as a first-class method (``poly``).

The paper contrasts its LUT methods against polynomial approximation —
"one floating-point multiplication is needed for each bit of precision"
(Section 4.2.1).  Exposing a Remez-fitted minimax polynomial through the
same :class:`~repro.core.method.Method` interface puts that contrast on the
Figure 5 axes directly: the ``poly`` curve climbs with accuracy like
CORDIC's (every extra term is a softfloat multiply-add) while the LUT
curves stay flat.

Host-side setup runs the Remez exchange *in a normalized variable*
``u = (x - center) / half_width`` on [-1, 1]: raw-x Horner evaluation on a
wide interval like tanh's [0, 8) is catastrophically ill-conditioned in
float32 (x^14 ~ 4e12 against alternating coefficients), while the
normalized form keeps every power bounded by 1.  The PIM side pays one
extra subtract and multiply for the transform, then ``degree``
multiply-adds.
"""

from __future__ import annotations

import numpy as np

from repro.core.functions.registry import FunctionSpec
from repro.core.method import Method
from repro.core.minimax import horner, horner_vec, remez
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["MinimaxPolyMethod"]

_F32 = np.float32


class MinimaxPolyMethod(Method):
    """Degree-n minimax polynomial over the function's natural range."""

    method_name = "poly"

    def __init__(self, spec: FunctionSpec, degree: int = 8, **kwargs):
        super().__init__(spec, **kwargs)
        if not 0 <= degree <= 24:
            raise ConfigurationError(
                f"polynomial degree must be in [0, 24], got {degree}"
            )
        self.degree = degree
        self._coeffs = []
        self._fit = None
        lo, hi = spec.natural_range
        self._center = _F32((lo + hi) / 2.0)
        self._inv_half = _F32(2.0 / (hi - lo))

    # ------------------------------------------------------------------
    # host side

    def _build(self) -> None:
        lo, hi = self.spec.natural_range
        center = (lo + hi) / 2.0
        half = (hi - lo) / 2.0

        def normalized(u):
            return self.spec.reference(center + half * np.asarray(u))

        self._fit = remez(normalized, self.degree, (-1.0, 1.0))
        self._coeffs = self._fit.coefficients_f32_desc()

    def table_bytes(self) -> int:
        # Only the coefficient vector lives on the PIM core.
        return (self.degree + 1) * 4

    def planned_table_bytes(self) -> int:
        return self.table_bytes()

    def host_entries(self) -> int:
        # Setup cost is the Remez fit: charge its dense evaluation grid.
        return 4096

    @property
    def fit_error(self) -> float:
        """The certified minimax error of the fitted polynomial."""
        if self._fit is None:
            raise ConfigurationError("call setup() first")
        return self._fit.max_error

    # ------------------------------------------------------------------
    # PIM side

    def core_eval(self, ctx: CycleCounter, u):
        t = ctx.fsub(_F32(u), self._center)
        t = ctx.fmul(t, self._inv_half)
        return horner(ctx, self._coeffs, t)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        t = ((u - self._center).astype(_F32) * self._inv_half).astype(_F32)
        return horner_vec(self._coeffs, t)

    def core_path_vec(self, u):
        # Horner evaluation is branch-free: constant cost.
        return np.zeros(np.asarray(u).shape, dtype=np.int64)
