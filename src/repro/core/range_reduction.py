"""Range reduction and extension (Section 2.2.3, Figure 8 of the paper).

Both CORDIC and lookup tables support limited input ranges.  Each supported
function has an identity that folds an arbitrary input into the method's
*natural range* and a reconstruction that undoes the fold on the output:

* trigonometric functions: periodicity (``x mod 2*pi``);
* ``exp``: ``e^x = 2^k * e^f`` with ``f = x - k*ln2 in [0, ln2)``;
* ``log``: ``log(2^e * m) = e*ln2 + log(m)`` with ``m in [1, 2)``;
* ``sqrt``: ``sqrt(2^(2e') * m') = 2^e' * sqrt(m')`` with ``m' in [1, 4)``;
* saturating/symmetric functions (tanh, GELU, sigmoid, CNDF, sinh, cosh):
  evaluate at ``|x|`` and reconstruct via the function's symmetry.

Every reducer exists in two bit-identical forms: a *traced* scalar form that
charges PIM instruction costs through a :class:`~repro.isa.CycleCounter`
(this is what Figure 8 measures), and a vectorized float32 numpy form used
for bulk accuracy sweeps.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import frexpf_vec, ldexpf_vec
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = [
    "Reducer",
    "IdentityReducer",
    "PeriodicReducer",
    "ExpSplitReducer",
    "LogSplitReducer",
    "SqrtSplitReducer",
    "RsqrtSplitReducer",
    "AtanRecipReducer",
    "EluReflectReducer",
    "OddSymmetricReducer",
    "make_reducer",
]

_F32 = np.float32

_LN2 = math.log(2.0)


class Reducer(ABC):
    """Folds inputs into a core interval and reconstructs outputs."""

    name: str = "abstract"

    @abstractmethod
    def reduce(self, ctx: CycleCounter, x: np.float32) -> Tuple[np.float32, object]:
        """Traced fold of ``x``; returns (reduced input, reconstruction state)."""

    @abstractmethod
    def reconstruct(self, ctx: CycleCounter, y: np.float32, state: object) -> np.float32:
        """Traced inverse transform applied to the core function's output."""

    @abstractmethod
    def reduce_vec(self, x: np.ndarray) -> Tuple[np.ndarray, object]:
        """Vectorized twin of :meth:`reduce`."""

    @abstractmethod
    def reconstruct_vec(self, y: np.ndarray, state: object) -> np.ndarray:
        """Vectorized twin of :meth:`reconstruct`."""

    def path_key_vec(self, x: np.ndarray) -> Optional[np.ndarray]:
        """Cost-path key of reduce+reconstruct for each element, or ``None``.

        Two inputs share a key exactly when the traced :meth:`reduce` and
        :meth:`reconstruct` take the same branches for both, so their
        instruction tallies are identical (see ``repro.batch``).  Keys mirror
        the *scalar* branch semantics: a traced ``fcmp(a, b) >= 0`` is
        ``~(a < b)`` here, so NaN inputs classify with the branch the scalar
        trace actually takes.  ``None`` means this reducer cannot classify
        and callers must fall back to element-by-element tracing.
        """
        return None


class IdentityReducer(Reducer):
    """No reduction: inputs are assumed to lie in the natural range already.

    This is the configuration of the paper's sine microbenchmarks (inputs in
    ``[0, 2*pi]``, Section 4.2.4).
    """

    name = "none"

    def reduce(self, ctx, x):
        return _F32(x), None

    def reconstruct(self, ctx, y, state):
        return _F32(y)

    def reduce_vec(self, x):
        return np.asarray(x, dtype=_F32), None

    def reconstruct_vec(self, y, state):
        return np.asarray(y, dtype=_F32)

    def path_key_vec(self, x):
        return np.zeros(np.asarray(x).shape, dtype=np.int64)


class PeriodicReducer(Reducer):
    """Fold into ``[0, period)`` using the function's periodicity.

    Traced cost: two float multiplies, a floor, an int-to-float conversion,
    a subtract, and a clamp — the most expensive reduction in Figure 8.
    """

    name = "periodic"

    def __init__(self, period: float):
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.period = _F32(period)
        self.inv_period = _F32(1.0 / period)

    def reduce(self, ctx, x):
        q = ctx.fmul(x, self.inv_period)
        k = ctx.ffloor(q)
        kf = ctx.i2f(k)
        whole = ctx.fmul(kf, self.period)
        u = ctx.fsub(x, whole)
        # Rounding can leave u marginally outside [0, period); clamp.
        if ctx.fcmp(u, _F32(0.0)) < 0:
            ctx.branch()
            u = ctx.fadd(u, self.period)
        if ctx.fcmp(u, self.period) >= 0:
            ctx.branch()
            u = ctx.fsub(u, self.period)
        return u, None

    def reconstruct(self, ctx, y, state):
        return _F32(y)

    def reduce_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        q = _F32(1) * x * self.inv_period
        k = np.floor(q.astype(_F32)).astype(_F32)
        whole = (k * self.period).astype(_F32)
        u = (x - whole).astype(_F32)
        u = np.where(u < 0, (u + self.period).astype(_F32), u)
        u = np.where(u >= self.period, (u - self.period).astype(_F32), u)
        return u.astype(_F32), None

    def reconstruct_vec(self, y, state):
        return np.asarray(y, dtype=_F32)

    def path_key_vec(self, x):
        # Replicates the scalar trace: ffloor maps non-finite to 0, and the
        # second clamp uses fcmp(u, period) >= 0, which is True for NaN.
        x = np.asarray(x, dtype=_F32)
        q64 = (x * self.inv_period).astype(_F32).astype(np.float64)
        kf = np.where(np.isfinite(q64), np.floor(q64), 0.0)
        whole = (kf.astype(_F32) * self.period).astype(_F32)
        u = (x - whole).astype(_F32)
        below = u < 0
        u = np.where(below, (u + self.period).astype(_F32), u)
        above = ~(u < self.period)
        return (below.astype(np.int64) << 1) | above.astype(np.int64)


class ExpSplitReducer(Reducer):
    """``e^x = 2^k * e^f`` with ``k = floor(x / ln2)`` and ``f in [0, ln2)``."""

    name = "exp_split"

    _INV_LN2 = _F32(1.0 / _LN2)
    _LN2_F = _F32(_LN2)

    def reduce(self, ctx, x):
        q = ctx.fmul(x, self._INV_LN2)
        k = ctx.ffloor(q)
        kf = ctx.i2f(k)
        whole = ctx.fmul(kf, self._LN2_F)
        f = ctx.fsub(x, whole)
        if ctx.fcmp(f, _F32(0.0)) < 0:
            ctx.branch()
            f = ctx.fadd(f, self._LN2_F)
            k -= 1  # lint: allow(folded into the floor fixup branch on hardware)
        return f, k

    def reconstruct(self, ctx, y, state):
        return ctx.ldexp(y, int(state))

    def reduce_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        q = (x * self._INV_LN2).astype(_F32)
        k = np.floor(q).astype(np.int32)
        whole = (k.astype(_F32) * self._LN2_F).astype(_F32)
        f = (x - whole).astype(_F32)
        below = f < 0
        f = np.where(below, (f + self._LN2_F).astype(_F32), f)
        k = np.where(below, k - 1, k)
        return f.astype(_F32), k

    def reconstruct_vec(self, y, state):
        return ldexpf_vec(np.asarray(y, dtype=_F32), state)

    def residual_vec(self, x):
        """Scalar-faithful ``(f, below)`` of :meth:`reduce` over an array.

        Unlike :meth:`reduce_vec`, the float64 floor is guarded the way the
        traced ``ffloor`` is (non-finite -> 0) so the residual matches the
        scalar trace bit for bit on every input, including inf/NaN.
        """
        x = np.asarray(x, dtype=_F32)
        q64 = (x * self._INV_LN2).astype(_F32).astype(np.float64)
        kf = np.where(np.isfinite(q64), np.floor(q64), 0.0)
        whole = (kf.astype(_F32) * self._LN2_F).astype(_F32)
        f = (x - whole).astype(_F32)
        below = f < 0
        f = np.where(below, (f + self._LN2_F).astype(_F32), f).astype(_F32)
        return f, below

    def path_key_vec(self, x):
        _, below = self.residual_vec(x)
        return below.astype(np.int64)


class LogSplitReducer(Reducer):
    """``log_b(2^e * m) = e*log_b(2) + log_b(m)`` with ``m in [1, 2)``.

    ``base`` selects the logarithm: e (default), 2, or 10.  For base 2 the
    per-element multiply by ``log_b(2) = 1`` is elided — a base-2 logarithm
    is the cheapest of the family on a PIM core.
    """

    name = "log_split"

    def __init__(self, base: float = math.e):
        if base <= 1.0:
            raise ConfigurationError("log base must exceed 1")
        self.base = float(base)
        self.log_b_2 = _F32(math.log(2.0, self.base))
        self._unit = self.log_b_2 == _F32(1.0)

    def reduce(self, ctx, x):
        m, e = ctx.frexp(x)          # m in [0.5, 1)
        m2 = ctx.ldexp(m, 1)         # m2 in [1, 2)
        return m2, e - 1  # lint: allow(exponent bias folded into frexp's field extraction)

    def reconstruct(self, ctx, y, state):
        ef = ctx.i2f(int(state))
        scaled = ef if self._unit else ctx.fmul(ef, self.log_b_2)
        return ctx.fadd(y, scaled)

    def reduce_vec(self, x):
        m, e = frexpf_vec(np.asarray(x, dtype=_F32))
        return ldexpf_vec(m, 1), e - 1

    def reconstruct_vec(self, y, state):
        ef = state.astype(_F32)
        scaled = ef if self._unit else (ef * self.log_b_2).astype(_F32)
        return (np.asarray(y, dtype=_F32) + scaled).astype(_F32)

    def path_key_vec(self, x):
        # frexp/ldexp/i2f/fmul/fadd: constant cost, a single path.
        return np.zeros(np.asarray(x).shape, dtype=np.int64)


class SqrtSplitReducer(Reducer):
    """``sqrt(2^(2e') * m') = 2^e' * sqrt(m')`` with ``m' in [0.5, 2)``.

    The cheapest reduction in Figure 8: one frexp, a parity test, and an
    exponent adjustment — no floating-point arithmetic at all.  The core
    interval ``[0.5, 2)`` also satisfies hyperbolic-CORDIC vectoring
    convergence (``|y/x| <= 0.81``), so one reducer serves LUTs and CORDIC.
    """

    name = "sqrt_split"

    def reduce(self, ctx, x):
        m, e = ctx.frexp(x)          # m in [0.5, 1)
        parity = ctx.iand(e, 1)
        ctx.branch()
        if parity:                   # e odd:  x = 2^(e-1) * (2m),  2m in [1, 2)
            m_adj = ctx.ldexp(m, 1)
            half_e = ctx.shr(e - 1, 1)  # lint: allow(folded into the parity-bit shift)
        else:                        # e even: x = 2^e * m,         m in [0.5, 1)
            m_adj = m
            half_e = ctx.shr(e, 1)
        return m_adj, half_e

    def reconstruct(self, ctx, y, state):
        return ctx.ldexp(y, int(state))

    def reduce_vec(self, x):
        m, e = frexpf_vec(np.asarray(x, dtype=_F32))
        odd = (e & 1) == 1
        m_adj = np.where(odd, ldexpf_vec(m, 1), m)
        half_e = np.where(odd, (e - 1) >> 1, e >> 1)
        return m_adj.astype(_F32), half_e.astype(np.int32)

    def reconstruct_vec(self, y, state):
        return ldexpf_vec(np.asarray(y, dtype=_F32), state)

    def path_key_vec(self, x):
        # The odd-exponent arm pays one extra ldexp.
        _, e = frexpf_vec(np.asarray(x, dtype=_F32))
        return (np.asarray(e, dtype=np.int64) & 1)


class OddSymmetricReducer(Reducer):
    """Evaluate at ``|x|`` and reconstruct through the function's symmetry.

    ``kind`` selects the reconstruction:

    * ``"odd"``        : f(-x) = -f(x)            (sin, tan, sinh, tanh)
    * ``"even"``       : f(-x) = f(x)             (cos, cosh)
    * ``"complement"`` : f(-x) = 1 - f(x)         (sigmoid, CNDF)
    * ``"gelu"``       : f(-x) = f(x) - x         (GELU, softplus, SiLU)
    * ``"pi_minus"``   : f(-x) = pi - f(x)        (acos)
    """

    KINDS = ("odd", "even", "complement", "gelu", "pi_minus")

    name = "odd_symmetric"

    def __init__(self, kind: str):
        if kind not in self.KINDS:
            raise ConfigurationError(f"unknown symmetry kind {kind!r}")
        self.kind = kind

    def reduce(self, ctx, x):
        x = _F32(x)
        negative = ctx.fcmp(x, _F32(0.0)) < 0
        ctx.branch()
        u = ctx.fabs(x) if negative else x
        return u, (negative, x)

    def reconstruct(self, ctx, y, state):
        negative, original = state
        if not negative:
            return _F32(y)
        if self.kind == "odd":
            return ctx.fneg(y)
        if self.kind == "even":
            return _F32(y)
        if self.kind == "complement":
            return ctx.fsub(_F32(1.0), y)
        if self.kind == "pi_minus":
            return ctx.fsub(_F32(math.pi), y)
        # gelu: f(x) = f(|x|) + x for x < 0
        return ctx.fadd(y, original)

    def reduce_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        negative = x < 0
        # where(negative, -x, x), not abs: the scalar path keeps -0.0 as is
        # (fcmp(-0.0, 0) compares equal, so the fabs arm never runs).
        u = np.where(negative, (-x).astype(_F32), x).astype(_F32)
        return u, (negative, x)

    def reconstruct_vec(self, y, state):
        negative, original = state
        y = np.asarray(y, dtype=_F32)
        if self.kind == "odd":
            flipped = (-y).astype(_F32)
        elif self.kind == "even":
            flipped = y
        elif self.kind == "complement":
            flipped = (_F32(1.0) - y).astype(_F32)
        elif self.kind == "pi_minus":
            flipped = (_F32(math.pi) - y).astype(_F32)
        else:  # gelu
            flipped = (y + original).astype(_F32)
        return np.where(negative, flipped, y).astype(_F32)

    def path_key_vec(self, x):
        # Negative inputs pay the fabs and the symmetry reconstruction.
        x = np.asarray(x, dtype=_F32)
        return (x < 0).astype(np.int64)


class RsqrtSplitReducer(SqrtSplitReducer):
    """``1/sqrt(2^(2e') * m') = 2^-e' * rsqrt(m')`` with ``m' in [0.5, 2)``.

    Same split as :class:`SqrtSplitReducer`; the reconstruction negates the
    exponent (still a single ``ldexp``).
    """

    name = "rsqrt_split"

    def reconstruct(self, ctx, y, state):
        return ctx.ldexp(y, -int(state))  # lint: allow(folded into the ldexp exponent subtract)

    def reconstruct_vec(self, y, state):
        return ldexpf_vec(np.asarray(y, dtype=_F32), -state)


class AtanRecipReducer(Reducer):
    """``atan(x) = pi/2 - atan(1/x)`` for ``x > 1``, plus odd symmetry.

    The most expensive reduction in the library: inputs beyond 1 pay a float
    divide.  (CORDIC's vectoring mode computes atan for any argument
    directly and skips this reducer entirely.)
    """

    name = "atan_recip"

    _HALF_PI = _F32(math.pi / 2.0)

    def reduce(self, ctx, x):
        x = _F32(x)
        negative = ctx.fcmp(x, _F32(0.0)) < 0
        ctx.branch()
        u = ctx.fabs(x) if negative else x
        inverted = ctx.fcmp(u, _F32(1.0)) > 0
        ctx.branch()
        if inverted:
            u = ctx.fdiv(_F32(1.0), u)
        return u, (negative, inverted)

    def reconstruct(self, ctx, y, state):
        negative, inverted = state
        if inverted:
            y = ctx.fsub(self._HALF_PI, y)
        if negative:
            y = ctx.fneg(y)
        return _F32(y)

    def reduce_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        negative = x < 0
        # Sign-faithful fold (see OddSymmetricReducer.reduce_vec on -0.0).
        u = np.where(negative, (-x).astype(_F32), x).astype(_F32)
        inverted = u > _F32(1.0)
        inv = (_F32(1.0) / np.where(u == 0, _F32(1.0), u)).astype(_F32)
        u = np.where(inverted, inv, u).astype(_F32)
        return u, (negative, inverted)

    def reconstruct_vec(self, y, state):
        negative, inverted = state
        y = np.asarray(y, dtype=_F32)
        y = np.where(inverted, (self._HALF_PI - y).astype(_F32), y)
        return np.where(negative, (-y).astype(_F32), y).astype(_F32)

    def path_key_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        negative = x < 0
        inverted = np.abs(x).astype(_F32) > _F32(1.0)
        return (negative.astype(np.int64) << 1) | inverted.astype(np.int64)


class EluReflectReducer(Reducer):
    """ELU's piecewise split: non-negative inputs bypass the table.

    Negative inputs evaluate the table directly (the natural range is
    ``(-16, 0]``); non-negative inputs are clamped to the 0 endpoint for the
    (discarded) lookup and reconstructed as the original value — the
    branchless pattern a SIMD/tasklet kernel would use.
    """

    name = "reflect_negative"

    def reduce(self, ctx, x):
        x = _F32(x)
        negative = ctx.fcmp(x, _F32(0.0)) < 0
        ctx.branch()
        u = x if negative else _F32(0.0)
        return u, (negative, x)

    def reconstruct(self, ctx, y, state):
        negative, original = state
        return _F32(y) if negative else original

    def reduce_vec(self, x):
        x = np.asarray(x, dtype=_F32)
        negative = x < 0
        u = np.where(negative, x, _F32(0.0)).astype(_F32)
        return u, (negative, x)

    def reconstruct_vec(self, y, state):
        negative, original = state
        return np.where(negative, np.asarray(y, dtype=_F32),
                        original).astype(_F32)

    def path_key_vec(self, x):
        # Both arms charge the same ops; split anyway (over-splitting is safe).
        x = np.asarray(x, dtype=_F32)
        return (x < 0).astype(np.int64)


_SYMMETRY_KIND = {
    "sin": "odd",
    "cos": "even",
    "tan": "odd",
    "sinh": "odd",
    "cosh": "even",
    "tanh": "odd",
    "gelu": "gelu",          # f(-x) = f(x) - x
    "softplus": "gelu",      # same identity
    "silu": "gelu",          # same identity
    "sigmoid": "complement",
    "cndf": "complement",
    "atanh": "odd",
    "erf": "odd",
    "asin": "odd",
    "acos": "pi_minus",
}


def make_reducer(spec: FunctionSpec, assume_in_range: bool = False) -> Reducer:
    """Build the reducer a method should use for ``spec``.

    ``assume_in_range=True`` reproduces the microbenchmark configuration
    where inputs already lie in the natural range and reduction is skipped.
    """
    if assume_in_range or spec.extension is None:
        return IdentityReducer()
    if spec.extension == "periodic":
        return PeriodicReducer(spec.period)
    if spec.extension == "exp_split":
        return ExpSplitReducer()
    if spec.extension == "log_split":
        base = {"log": math.e, "log2": 2.0, "log10": 10.0}[spec.name]
        return LogSplitReducer(base)
    if spec.extension == "sqrt_split":
        return SqrtSplitReducer()
    if spec.extension == "rsqrt_split":
        return RsqrtSplitReducer()
    if spec.extension == "atan_recip":
        return AtanRecipReducer()
    if spec.extension == "reflect_negative":
        return EluReflectReducer()
    if spec.extension == "log_split":  # pragma: no cover - handled above
        return LogSplitReducer()
    if spec.extension == "odd_symmetric":
        return OddSymmetricReducer(_SYMMETRY_KIND[spec.name])
    raise ConfigurationError(f"unknown extension {spec.extension!r}")
