"""Host-side setup time model (Figure 6 of the paper).

Setup consists of (1) generating tables on the host CPU and (2) copying them
into the PIM core's DRAM bank.  Both components are modeled explicitly:

* generation costs a fixed per-call overhead plus a per-entry cost (one libm
  evaluation and a store — ~8 ns on the paper's Xeon);
* the copy runs at the single-bank host->PIM bandwidth (~600 MB/s on UPMEM;
  a table is set up once per PIM core, so the parallel-transfer aggregate
  bandwidth does not apply).

The model reproduces Figure 6's structure: CORDIC setup is flat (a few dozen
angle-table entries regardless of accuracy), LUT setup grows linearly with
table size, and CORDIC+LUT sits slightly above CORDIC but stays flat because
its skip table's size is fixed by ``lut_bits``, not by the accuracy target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.method import Method

__all__ = ["SetupTimeModel", "DEFAULT_SETUP_MODEL", "setup_seconds"]


@dataclass(frozen=True)
class SetupTimeModel:
    """Constants of the host setup-time model."""

    #: Fixed overhead per setup call (allocation, driver API), seconds.
    call_overhead_s: float = 20e-6
    #: Host time to generate one table entry (libm call + store), seconds.
    per_entry_s: float = 8e-9
    #: Host -> single PIM bank copy bandwidth, bytes/second.
    copy_bandwidth: float = 600e6

    def seconds(self, entries: int, table_bytes: int) -> float:
        """Setup time for a table of ``entries`` entries / ``table_bytes``."""
        generate = entries * self.per_entry_s
        copy = table_bytes / self.copy_bandwidth
        return self.call_overhead_s + generate + copy


#: Model instance used by all figure harnesses.
DEFAULT_SETUP_MODEL = SetupTimeModel()


def setup_seconds(method: Method, model: SetupTimeModel = DEFAULT_SETUP_MODEL) -> float:
    """Modeled host setup time for a constructed (set-up) method."""
    return model.seconds(method.host_entries(), method.table_bytes())
