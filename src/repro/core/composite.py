"""Composite methods: functions built from other TransPimLib methods.

On CPUs/GPUs, GELU is almost always computed through its tanh approximation

    gelu(x) ~ 0.5 x (1 + tanh( sqrt(2/pi) (x + 0.044715 x^3) ))

because a fast tanh is available in hardware.  On an FP-emulating PIM core
the trade flips: the approximation spends five softfloat multiplies *around*
the tanh, while TransPimLib can tabulate GELU directly for the cost of one
lookup.  :class:`GeluViaTanh` implements the composite faithfully (traced
and vectorized) so the benchmark can quantify the flip — it is both slower
*and* less accurate (the approximation itself has ~1e-3 peak error) than a
direct D-LUT.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.functions.registry import get_function
from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["GeluViaTanh"]

_F32 = np.float32

_A = _F32(math.sqrt(2.0 / math.pi))
_B = _F32(0.044715)


class GeluViaTanh(Method):
    """GELU through the tanh approximation, tanh from a TransPimLib method."""

    method_name = "gelu_tanh_approx"

    def __init__(self, tanh_method: Method, **kwargs):
        if tanh_method.spec.name != "tanh":
            raise ConfigurationError(
                "GeluViaTanh needs a method bound to tanh, got "
                f"{tanh_method.spec.name!r}"
            )
        super().__init__(get_function("gelu"), **kwargs)
        self.tanh_method = tanh_method

    # ------------------------------------------------------------------
    # host side

    def _build(self) -> None:
        self.tanh_method.setup()

    def table_bytes(self) -> int:
        return self.tanh_method.table_bytes()

    def planned_table_bytes(self):
        return self.tanh_method.planned_table_bytes()

    def set_placement(self, placement: str) -> None:
        super().set_placement(placement)
        self.tanh_method.set_placement(placement)

    def host_entries(self) -> int:
        return self.tanh_method.host_entries()

    # ------------------------------------------------------------------
    # PIM side (u >= 0 after the gelu symmetry reduction)

    def core_eval(self, ctx: CycleCounter, u):
        u2 = ctx.fmul(u, u)
        u3 = ctx.fmul(u2, u)
        cubic = ctx.fmul(_B, u3)
        inner = ctx.fadd(u, cubic)
        arg = ctx.fmul(_A, inner)
        t = self.tanh_method.core_eval(ctx, arg)
        one_plus = ctx.fadd(_F32(1.0), t)
        half_u = ctx.ldexp(u, -1)
        return ctx.fmul(half_u, one_plus)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        u2 = (u * u).astype(_F32)
        u3 = (u2 * u).astype(_F32)
        cubic = (_B * u3).astype(_F32)
        inner = (u + cubic).astype(_F32)
        arg = (_A * inner).astype(_F32)
        t = self.tanh_method.core_eval_vec(arg)
        one_plus = (_F32(1.0) + t).astype(_F32)
        half_u = (u * _F32(0.5)).astype(_F32)
        return (half_u * one_plus).astype(_F32)

    def core_path_vec(self, u):
        # The wrapper arithmetic is branch-free; the cost path is decided
        # entirely by the inner tanh on the transformed argument.
        u = np.asarray(u, dtype=_F32)
        u2 = (u * u).astype(_F32)
        u3 = (u2 * u).astype(_F32)
        cubic = (_B * u3).astype(_F32)
        inner = (u + cubic).astype(_F32)
        arg = (_A * inner).astype(_F32)
        return self.tanh_method.core_path_vec(arg)
