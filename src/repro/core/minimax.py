"""Minimax polynomial fitting via the Remez exchange algorithm.

The paper's polynomial baseline cites both Taylor series and minimax
polynomials.  Taylor coefficients are trivial; this module supplies the
minimax side: given a function and interval, find the degree-n polynomial
minimizing the maximum error.  It exists to make the Figure 9 baseline as
strong as possible — the ablation benchmark verifies that even
minimax-grade polynomials (which save 2-3 terms over Taylor at equal
accuracy) do not close the gap to the LUT methods, because every term still
costs a softfloat multiply-add.

Implementation: classic Remez exchange — start from Chebyshev extrema,
solve for coefficients with an equioscillating error term, move the
reference points to the new error extrema, iterate until the error levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["MinimaxFit", "remez", "horner", "horner_vec"]

_F32 = np.float32


@dataclass(frozen=True)
class MinimaxFit:
    """A fitted minimax polynomial with its certified error."""

    coefficients: np.ndarray   # ascending order: c0 + c1 x + ...
    interval: tuple
    max_error: float           # measured on a dense grid
    iterations: int

    def coefficients_f32_desc(self) -> List[np.float32]:
        """Descending-order float32 coefficients for Horner evaluation."""
        return [np.float32(c) for c in self.coefficients[::-1]]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return np.polyval(self.coefficients[::-1],
                          np.asarray(x, dtype=np.float64))


def _chebyshev_extrema(lo: float, hi: float, count: int) -> np.ndarray:
    k = np.arange(count, dtype=np.float64)
    nodes = np.cos(np.pi * k / (count - 1))
    return (lo + hi) / 2 + (hi - lo) / 2 * nodes[::-1]


def remez(
    f: Callable[[np.ndarray], np.ndarray],
    degree: int,
    interval: tuple,
    max_iterations: int = 30,
    grid_points: int = 4096,
    tolerance: float = 1e-3,
) -> MinimaxFit:
    """Fit the degree-``degree`` minimax polynomial to ``f`` on ``interval``.

    Converges when the trial error equioscillates (extrema equal within
    ``tolerance`` relative spread), or after ``max_iterations`` exchanges.
    """
    lo, hi = float(interval[0]), float(interval[1])
    if not hi > lo:
        raise ConfigurationError("minimax interval must be non-degenerate")
    if degree < 0:
        raise ConfigurationError("polynomial degree must be non-negative")

    n_ref = degree + 2
    refs = _chebyshev_extrema(lo, hi, n_ref)
    grid = np.linspace(lo, hi, grid_points)
    fgrid = np.asarray(f(grid), dtype=np.float64)

    coeffs = np.zeros(degree + 1)
    for iteration in range(1, max_iterations + 1):
        # Solve for coefficients + the levelled error E:
        #   sum c_k x_i^k + (-1)^i E = f(x_i)
        vander = np.vander(refs, degree + 1, increasing=True)
        signs = ((-1.0) ** np.arange(n_ref)).reshape(-1, 1)
        system = np.hstack([vander, signs])
        rhs = np.asarray(f(refs), dtype=np.float64)
        solution = np.linalg.solve(system, rhs)
        coeffs = solution[:degree + 1]

        # Locate error extrema on the dense grid.
        err = np.polyval(coeffs[::-1], grid) - fgrid
        # Pick alternating extrema: the largest |err| in each sign run.
        sign_changes = np.where(np.diff(np.sign(err)) != 0)[0]
        boundaries = np.concatenate(([0], sign_changes + 1, [grid_points]))
        extrema = []
        for a, b in zip(boundaries[:-1], boundaries[1:]):
            if b > a:
                seg = slice(a, b)
                idx = a + int(np.argmax(np.abs(err[seg])))
                extrema.append(idx)
        if len(extrema) < n_ref:
            break  # error already below sign-resolution: converged
        # Keep the n_ref largest-amplitude alternating extrema, ordered.
        extrema = sorted(extrema, key=lambda i: -abs(err[i]))[:n_ref]
        refs = grid[np.sort(extrema)]

        peaks = np.abs(err[np.sort(extrema)])
        spread = (peaks.max() - peaks.min()) / max(peaks.max(), 1e-300)
        if spread < tolerance:
            break

    final_err = float(np.max(np.abs(np.polyval(coeffs[::-1], grid) - fgrid)))
    return MinimaxFit(
        coefficients=coeffs,
        interval=(lo, hi),
        max_error=final_err,
        iterations=iteration,
    )


def horner(ctx: CycleCounter, coeffs_desc: Sequence[np.float32],
           x: np.float32) -> np.float32:
    """Traced Horner evaluation: one fmul + fadd per term."""
    acc = _F32(coeffs_desc[0])
    for c in coeffs_desc[1:]:
        acc = ctx.fadd(ctx.fmul(acc, x), _F32(c))
    return acc


def horner_vec(coeffs_desc: Sequence[np.float32],
               x: np.ndarray) -> np.ndarray:
    """Vectorized float32 twin of :func:`horner`."""
    x = np.asarray(x, dtype=_F32)
    acc = np.full(x.shape, _F32(coeffs_desc[0]), dtype=_F32)
    for c in coeffs_desc[1:]:
        acc = ((acc * x).astype(_F32) + _F32(c)).astype(_F32)
    return acc
