"""Memory sizing helpers: from budgets to precision knobs and back.

Figure 7's content as forward/inverse functions: given a method family and
a byte budget, what is the densest table that fits — and conversely, what
does a precision knob cost in bytes?  Used by capacity planning (how many
functions fit one core's WRAM?) and by the recommender's budget filter.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.core.functions.registry import FunctionSpec, get_function
from repro.errors import ConfigurationError

__all__ = [
    "lut_entries",
    "lut_bytes",
    "max_density_for_budget",
    "max_size_for_budget",
    "cordic_bytes",
    "dlut_bytes",
    "functions_per_wram",
]

_ENTRY_BYTES = 4
_GUARD_ENTRIES = 2


def _interval(spec: FunctionSpec,
              interval: Tuple[float, float] = None) -> Tuple[float, float]:
    return interval if interval is not None else spec.natural_range


def lut_entries(function: str, density_log2: int,
                interval: Tuple[float, float] = None) -> int:
    """Entries of an L-LUT at the given power-of-two density."""
    lo, hi = _interval(get_function(function), interval)
    return int(math.ceil((hi - lo) * 2.0 ** density_log2)) + _GUARD_ENTRIES


def lut_bytes(function: str, density_log2: int,
              interval: Tuple[float, float] = None) -> int:
    """Bytes of an L-LUT at the given density."""
    return lut_entries(function, density_log2, interval) * _ENTRY_BYTES


def max_density_for_budget(function: str, budget_bytes: int,
                           interval: Tuple[float, float] = None) -> int:
    """Largest ``density_log2`` whose L-LUT fits in ``budget_bytes``.

    Raises when not even density 2^0 fits (the interval itself is too wide
    for the budget).
    """
    if lut_bytes(function, 0, interval) > budget_bytes:
        raise ConfigurationError(
            f"not even a unit-density table for {function!r} fits in "
            f"{budget_bytes} bytes"
        )
    n = 0
    while lut_bytes(function, n + 1, interval) <= budget_bytes:
        n += 1
    return n


def max_size_for_budget(budget_bytes: int) -> int:
    """Largest M-LUT entry count fitting ``budget_bytes``."""
    return max(2, budget_bytes // _ENTRY_BYTES)


def cordic_bytes(iterations: int) -> int:
    """CORDIC footprint: the angle table plus two constants."""
    return iterations * _ENTRY_BYTES + 8


def dlut_bytes(mant_bits: int, e_min: int, e_max: int,
               interpolated: bool = False) -> int:
    """D-LUT footprint for the given exponent window and mantissa bits."""
    cells = (e_max - e_min) << mant_bits
    entries = cells + (_GUARD_ENTRIES if interpolated else 0)
    return entries * _ENTRY_BYTES


def functions_per_wram(function: str, density_log2: int,
                       wram_budget: int = 48 * 1024) -> int:
    """How many same-shaped L-LUTs fit one core's usable scratchpad."""
    per = lut_bytes(function, density_log2)
    return wram_budget // per if per else 0
