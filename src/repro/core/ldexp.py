"""Software ``ldexpf``/``frexpf`` built from integer bit operations.

The UPMEM runtime does not provide ``ldexp``, so the paper implements it in
accordance with C99 (Section 3.2.2).  Multiplying by a power of two reduces to
an add on the exponent field of the float32 bit pattern — a handful of native
integer instructions — which is what makes the L-LUT address generation free
of floating-point multiplies.

The scalar implementations below use only integer bit manipulation (mirroring
a DPU implementation) and are bit-exact against the C99 semantics, including
signed zeros, infinities, NaNs, subnormal inputs, overflow to infinity, and
gradual underflow with round-to-nearest-even.  Vectorized twins delegate to
numpy and are tested to agree with the scalar versions.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.float_bits import EXP_BIAS, MANT_BITS, bits_to_float, float_to_bits

__all__ = ["ldexpf", "frexpf", "ldexpf_vec", "frexpf_vec"]

_F32 = np.float32

_EXP_MASK = 0xFF
_MANT_MASK = (1 << MANT_BITS) - 1
_IMPLICIT_BIT = 1 << MANT_BITS


def ldexpf(x: Union[float, np.float32], n: int) -> np.float32:
    """Compute ``x * 2**n`` in float32, using only integer bit operations.

    Follows C99 ``ldexpf``: exact scaling where representable, overflow to
    signed infinity, gradual underflow to subnormals with round-to-nearest-even,
    and propagation of zeros/inf/NaN.
    """
    bits = int(float_to_bits(_F32(x)))
    sign = bits & 0x80000000
    exp = (bits >> MANT_BITS) & _EXP_MASK
    mant = bits & _MANT_MASK

    if exp == _EXP_MASK:  # inf or NaN: unchanged
        return _F32(bits_to_float(bits))
    if exp == 0 and mant == 0:  # signed zero: unchanged
        return _F32(bits_to_float(bits))

    if exp == 0:
        # Subnormal input: normalize so the implicit bit is set, tracking the
        # shift in the exponent.
        e = 1
        while not (mant & _IMPLICIT_BIT):
            mant <<= 1
            e -= 1
    else:
        e = exp
        mant |= _IMPLICIT_BIT

    e += n

    if e >= _EXP_MASK:  # overflow -> signed infinity
        return _F32(bits_to_float(sign | (_EXP_MASK << MANT_BITS)))

    if e <= 0:
        # Result is subnormal (or underflows to zero).  Shift the 24-bit
        # significand right by (1 - e) with round-to-nearest-even.
        shift = 1 - e
        if shift > MANT_BITS + 2:
            return _F32(bits_to_float(sign))  # underflow to signed zero
        kept = mant >> shift
        remainder = mant & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if remainder > half or (remainder == half and (kept & 1)):
            kept += 1  # may carry into the exponent field: that is correct
        return _F32(bits_to_float(sign | kept))

    mant &= _MANT_MASK  # drop the implicit bit again
    return _F32(bits_to_float(sign | (e << MANT_BITS) | mant))


def frexpf(x: Union[float, np.float32]) -> Tuple[np.float32, int]:
    """Split ``x`` into ``(m, e)`` with ``x == m * 2**e`` and ``|m| in [0.5, 1)``.

    Follows C99 ``frexpf``; zeros, infinities, and NaNs return ``(x, 0)``.
    """
    bits = int(float_to_bits(_F32(x)))
    sign = bits & 0x80000000
    exp = (bits >> MANT_BITS) & _EXP_MASK
    mant = bits & _MANT_MASK

    if exp == _EXP_MASK or (exp == 0 and mant == 0):
        return _F32(bits_to_float(bits)), 0

    if exp == 0:
        # Normalize a subnormal.
        e = 1
        while not (mant & _IMPLICIT_BIT):
            mant <<= 1
            e -= 1
        mant &= _MANT_MASK
    else:
        e = exp

    # Mantissa in [0.5, 1) means a biased exponent field of EXP_BIAS - 1.
    out_bits = sign | ((EXP_BIAS - 1) << MANT_BITS) | mant
    return _F32(bits_to_float(out_bits)), e - (EXP_BIAS - 1)


def ldexpf_vec(x: np.ndarray, n: Union[int, np.ndarray]) -> np.ndarray:
    """Vectorized float32 ``ldexp`` (numpy-backed twin of :func:`ldexpf`)."""
    return np.ldexp(np.asarray(x, dtype=_F32), np.asarray(n, dtype=np.int32)).astype(_F32)


def frexpf_vec(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized float32 ``frexp`` (numpy-backed twin of :func:`frexpf`)."""
    m, e = np.frexp(np.asarray(x, dtype=_F32))
    return m.astype(_F32), e.astype(np.int32)
