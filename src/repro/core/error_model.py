"""Analytic accuracy models for the implementation methods.

Section 2.2.2 of the paper explains *why* the methods have the accuracy they
do: a non-interpolated fuzzy LUT's error follows the function's first
derivative times the cell width, an interpolated one's follows the second
derivative times the width squared, and CORDIC's follows its residual angle.
This module turns those arguments into quantitative predictions:

* nearest-entry LUT:   ``rmse ~ rms(f') * h / sqrt(12)``
  (the residual ``x - a_inv(a(x))`` is uniform on ``(-h/2, h/2)``);
* interpolated LUT:    ``rmse ~ rms(f'') * h^2 / sqrt(120)``
  (linear-interp error ``f''(x) h^2 t(1-t)/2``, RMS over ``t`` in [0,1]);
* CORDIC rotation:     ``rmse ~ rms(f') * resolution / sqrt(3)``
  with ``resolution = atan(2^-(n-1))`` (the final residual angle bound);

all floored by the float32 representation of the stored values,
``rmse >= rms(ulp(f)) / sqrt(12)``.

The property-based tests assert that *measured* RMSE stays within a small
factor of these predictions across methods, functions, and table sizes —
a strong internal-consistency check on both the implementations and the
models.
"""

from __future__ import annotations

import math
from typing import Callable, Tuple

import numpy as np

from repro.core.float_bits import ulp_spacing
from repro.core.functions.registry import FunctionSpec

__all__ = [
    "rms_derivative",
    "float32_floor",
    "predict_lut_rmse",
    "predict_interpolated_lut_rmse",
    "predict_cordic_rmse",
]

_SAMPLES = 4096


def _grid(lo: float, hi: float, n: int = _SAMPLES) -> np.ndarray:
    # Stay strictly inside the interval so one-sided derivatives behave.
    pad = (hi - lo) * 1e-6
    return np.linspace(lo + pad, hi - pad, n)


def rms_derivative(reference: Callable[[np.ndarray], np.ndarray],
                   interval: Tuple[float, float], order: int = 1) -> float:
    """RMS of the first or second derivative over ``interval`` (numeric)."""
    lo, hi = interval
    x = _grid(lo, hi)
    h = (hi - lo) / (_SAMPLES * 8)
    f = reference
    if order == 1:
        d = (f(x + h) - f(x - h)) / (2 * h)
    elif order == 2:
        d = (f(x + h) - 2 * f(x) + f(x - h)) / (h * h)
    else:
        raise ValueError("order must be 1 or 2")
    return float(np.sqrt(np.mean(np.square(d))))


def float32_floor(reference: Callable[[np.ndarray], np.ndarray],
                  interval: Tuple[float, float]) -> float:
    """The RMSE floor from storing values as float32 (half-ULP rounding)."""
    lo, hi = interval
    values = reference(_grid(lo, hi)).astype(np.float32)
    ulps = np.asarray(ulp_spacing(values), dtype=np.float64)
    return float(np.sqrt(np.mean(np.square(ulps))) / math.sqrt(12.0))


def predict_lut_rmse(spec: FunctionSpec, cell_width: float,
                     interval: Tuple[float, float] = None) -> float:
    """Predicted RMSE of a nearest-entry (non-interpolated) uniform LUT."""
    iv = interval or spec.natural_range
    slope = rms_derivative(spec.reference, iv, order=1)
    model = slope * cell_width / math.sqrt(12.0)
    return max(model, float32_floor(spec.reference, iv))


def predict_interpolated_lut_rmse(spec: FunctionSpec, cell_width: float,
                                  interval: Tuple[float, float] = None) -> float:
    """Predicted RMSE of a linearly interpolated uniform LUT."""
    iv = interval or spec.natural_range
    curvature = rms_derivative(spec.reference, iv, order=2)
    model = curvature * cell_width ** 2 / math.sqrt(120.0)
    return max(model, float32_floor(spec.reference, iv))


def predict_cordic_rmse(spec: FunctionSpec, iterations: int,
                        interval: Tuple[float, float] = None) -> float:
    """Predicted RMSE of rotation-mode CORDIC after ``iterations`` steps."""
    iv = interval or spec.natural_range
    slope = rms_derivative(spec.reference, iv, order=1)
    resolution = math.atan(2.0 ** -(iterations - 1))
    model = slope * resolution / math.sqrt(3.0)
    return max(model, float32_floor(spec.reference, iv))
