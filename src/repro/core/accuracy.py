"""Accuracy metrics used throughout the evaluation (Section 4.1.1).

The paper reports root-mean-square absolute error (RMSE) against the host's
standard math library, and notes that maximum absolute error and ULP error
show the same trends.  All three are implemented here against the float64
reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.float_bits import ulp_spacing

__all__ = ["AccuracyReport", "rmse", "max_abs_error", "mean_ulp_error", "measure"]


def rmse(approx: np.ndarray, exact: np.ndarray) -> float:
    """Root-mean-square absolute error."""
    a = np.asarray(approx, dtype=np.float64)
    e = np.asarray(exact, dtype=np.float64)
    return float(np.sqrt(np.mean((a - e) ** 2)))


def max_abs_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Maximum absolute error."""
    a = np.asarray(approx, dtype=np.float64)
    e = np.asarray(exact, dtype=np.float64)
    return float(np.max(np.abs(a - e)))


def mean_ulp_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean error in units of last place of the exact value (float32 ULPs)."""
    a = np.asarray(approx, dtype=np.float64)
    e = np.asarray(exact, dtype=np.float64)
    spacing = np.asarray(ulp_spacing(e.astype(np.float32)), dtype=np.float64)
    spacing = np.where(spacing == 0, np.finfo(np.float32).tiny, spacing)
    return float(np.mean(np.abs(a - e) / spacing))


@dataclass(frozen=True)
class AccuracyReport:
    """All three accuracy metrics for one method/function evaluation."""

    rmse: float
    max_abs_error: float
    mean_ulp_error: float
    n_points: int

    def __str__(self) -> str:
        return (
            f"RMSE={self.rmse:.3e} max|err|={self.max_abs_error:.3e} "
            f"ULP={self.mean_ulp_error:.2f} (n={self.n_points})"
        )


def measure(
    approx_fn: Callable[[np.ndarray], np.ndarray],
    reference_fn: Callable[[np.ndarray], np.ndarray],
    inputs: np.ndarray,
) -> AccuracyReport:
    """Evaluate both implementations over ``inputs`` and compare."""
    x = np.asarray(inputs)
    approx = np.asarray(approx_fn(x), dtype=np.float64)
    exact = np.asarray(reference_fn(np.asarray(x, dtype=np.float64)))
    return AccuracyReport(
        rmse=rmse(approx, exact),
        max_abs_error=max_abs_error(approx, exact),
        mean_ulp_error=mean_ulp_error(approx, exact),
        n_points=int(x.size),
    )
