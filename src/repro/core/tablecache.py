"""Host-side table cache: persist generated lookup tables across runs.

Figure 6 shows LUT setup dominated by table *generation* (one libm call per
entry).  A real deployment generates each table once and reuses it; this
module provides that: tables are stored under a key derived from the
method's exact geometry (function, spacing, interval, storage format), so a
cache hit restores bit-identical tables without touching the reference
implementation.

Only self-contained table methods are cacheable (M-LUT, L-LUT, D-LUT
families).  Composites (DL-LUT, the tan quotient) and CORDIC methods are
rejected — CORDIC tables are a few dozen entries and not worth caching;
composites should cache their parts.
"""

from __future__ import annotations

import hashlib
import pathlib
from typing import Union

import numpy as np

from repro.core.lut.base import FuzzyLUT
from repro.core.lut.dllut import _DLLUTBase
from repro.core.lut.tan import TanQuotientLUT
from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics

__all__ = ["TableCache", "cache_signature"]


def cache_signature(method: Method) -> str:
    """Stable key for a method's table contents.

    Built from the method name, function, and every primitive field of its
    geometry — anything that changes the stored values changes the key.
    """
    parts = [method.method_name, method.spec.name]
    geom = getattr(method, "geom", None)
    if geom is not None:
        parts += [
            f"{k}={v!r}" for k, v in sorted(vars(geom).items())
            if isinstance(v, (int, float, str, bool, np.floating, np.integer))
        ]
    for attr in ("size", "k", "p", "lo", "hi"):
        v = getattr(method, attr, None)
        if isinstance(v, (int, float, np.floating, np.integer)):
            parts.append(f"{attr}={float(v)!r}")
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()[:24]
    return f"{method.method_name}-{method.spec.name}-{digest}"


def _check_cacheable(method: Method) -> None:
    if isinstance(method, (_DLLUTBase, TanQuotientLUT)):
        raise ConfigurationError(
            f"{method.method_name} is a composite; cache its parts instead"
        )
    if not isinstance(method, FuzzyLUT):
        raise ConfigurationError(
            f"{method.method_name} is not a table method; nothing to cache"
        )


class TableCache:
    """A directory of ``.npy`` tables keyed by method geometry."""

    def __init__(self, directory: Union[str, pathlib.Path]):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, method: Method) -> pathlib.Path:
        return self.directory / f"{cache_signature(method)}.npy"

    def contains(self, method: Method) -> bool:
        """True when a table for this exact geometry is cached."""
        _check_cacheable(method)
        return self._path(method).exists()

    def store(self, method: Method) -> pathlib.Path:
        """Persist a set-up method's table; returns the file path."""
        _check_cacheable(method)
        if not getattr(method, "_ready", False):
            raise ConfigurationError("set up the method before caching it")
        path = self._path(method)
        np.save(path, method._table, allow_pickle=False)
        return path

    def load_into(self, method: Method) -> bool:
        """Restore a cached table into a fresh method.

        Returns True on a hit (the method becomes ready without table
        generation), False on a miss.
        """
        _check_cacheable(method)
        path = self._path(method)
        if not path.exists():
            _metrics.inc("tablecache.misses")
            return False
        method._table = np.load(path, allow_pickle=False)
        method._ready = True
        _metrics.inc("tablecache.hits")
        return True

    def setup(self, method: Method) -> Method:
        """Cache-aware setup: load on hit, build-and-store on miss."""
        if not self.load_into(method):
            method.setup()
            self.store(method)
        return method

    def clear(self) -> int:
        """Delete every cached table; returns how many were removed."""
        files = list(self.directory.glob("*.npy"))
        for f in files:
            f.unlink()
        return len(files)
