"""Host-side table cache: persist generated lookup tables across runs.

Figure 6 shows LUT setup dominated by table *generation* (one libm call per
entry).  A real deployment generates each table once and reuses it; this
module provides that: tables are stored under a key derived from the
method's exact geometry (function, spacing, interval, storage format), so a
cache hit restores bit-identical tables without touching the reference
implementation.

Only self-contained table methods are cacheable (M-LUT, L-LUT, D-LUT
families).  Composites (DL-LUT, the tan quotient) and CORDIC methods are
rejected — CORDIC tables are a few dozen entries and not worth caching;
composites should cache their parts.
"""

from __future__ import annotations

import hashlib
import pathlib
from collections import OrderedDict
from typing import Optional, Union

import numpy as np

from repro.core.lut.base import FuzzyLUT
from repro.core.lut.dllut import _DLLUTBase
from repro.core.lut.tan import TanQuotientLUT
from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics

__all__ = ["TableCache", "cache_signature"]


def cache_signature(method: Method) -> str:
    """Stable key for a method's table contents.

    Built from the method name, function, and every primitive field of its
    geometry — anything that changes the stored values changes the key.
    """
    parts = [method.method_name, method.spec.name]
    geom = getattr(method, "geom", None)
    if geom is not None:
        parts += [
            f"{k}={v!r}" for k, v in sorted(vars(geom).items())
            if isinstance(v, (int, float, str, bool, np.floating, np.integer))
        ]
    for attr in ("size", "k", "p", "lo", "hi"):
        v = getattr(method, attr, None)
        if isinstance(v, (int, float, np.floating, np.integer)):
            parts.append(f"{attr}={float(v)!r}")
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()[:24]
    return f"{method.method_name}-{method.spec.name}-{digest}"


def _check_cacheable(method: Method) -> None:
    if isinstance(method, (_DLLUTBase, TanQuotientLUT)):
        raise ConfigurationError(
            f"{method.method_name} is a composite; cache its parts instead"
        )
    if not isinstance(method, FuzzyLUT):
        raise ConfigurationError(
            f"{method.method_name} is not a table method; nothing to cache"
        )


class TableCache:
    """A directory of ``.npy`` tables keyed by method geometry.

    ``max_bytes`` bounds the directory's total size: when a store would
    exceed it, least-recently-used entries (loads and stores both refresh
    recency) are deleted until the new table fits.  The entry being stored
    is never evicted, even when it alone exceeds the bound.  Hit, miss,
    store, and eviction counts surface as attributes and through
    ``repro.obs.metrics`` (``tablecache.*``).
    """

    def __init__(self, directory: Union[str, pathlib.Path],
                 max_bytes: Optional[int] = None):
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError("TableCache max_bytes must be positive")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        # LRU over cached files, oldest first.  Pre-existing files (another
        # process's run, or a re-opened cache) enter in mtime order so the
        # bound applies to them too.
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        for f in sorted(self.directory.glob("*.npy"),
                        key=lambda p: p.stat().st_mtime):
            self._lru[f.stem] = f.stat().st_size

    def _path(self, method: Method) -> pathlib.Path:
        return self.directory / f"{cache_signature(method)}.npy"

    def _touch(self, key: str, size: int) -> None:
        self._lru[key] = size
        self._lru.move_to_end(key)

    @property
    def total_bytes(self) -> int:
        """Total size of every cached table file."""
        return sum(self._lru.values())

    def __len__(self) -> int:
        return len(self._lru)

    def contains(self, method: Method) -> bool:
        """True when a table for this exact geometry is cached."""
        _check_cacheable(method)
        return self._path(method).exists()

    def store(self, method: Method) -> pathlib.Path:
        """Persist a set-up method's table; returns the file path.

        Evicts least-recently-used entries first if the bound would
        overflow.
        """
        _check_cacheable(method)
        if not getattr(method, "_ready", False):
            raise ConfigurationError("set up the method before caching it")
        path = self._path(method)
        np.save(path, method._table, allow_pickle=False)
        self._touch(path.stem, path.stat().st_size)
        self.stores += 1
        _metrics.inc("tablecache.stores")
        self._evict(keep=path.stem)
        _metrics.observe("tablecache.bytes", self.total_bytes)
        return path

    def load_into(self, method: Method) -> bool:
        """Restore a cached table into a fresh method.

        Returns True on a hit (the method becomes ready without table
        generation), False on a miss.
        """
        _check_cacheable(method)
        path = self._path(method)
        if not path.exists():
            self.misses += 1
            _metrics.inc("tablecache.misses")
            return False
        method._table = np.load(path, allow_pickle=False)
        method._ready = True
        self._touch(path.stem, path.stat().st_size)
        self.hits += 1
        _metrics.inc("tablecache.hits")
        return True

    def setup(self, method: Method) -> Method:
        """Cache-aware setup: load on hit, build-and-store on miss."""
        if not self.load_into(method):
            method.setup()
            self.store(method)
        return method

    def _evict(self, keep: str) -> None:
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._lru) > 1:
            # The just-stored entry was touched to the recent end, so the
            # oldest key is never ``keep`` while anything else remains.
            key = next(iter(self._lru))
            assert key != keep
            self._lru.pop(key)
            f = self.directory / f"{key}.npy"
            if f.exists():
                f.unlink()
            self.evictions += 1
            _metrics.inc("tablecache.evictions")

    def clear(self) -> int:
        """Delete every cached table; returns how many were removed."""
        files = list(self.directory.glob("*.npy"))
        for f in files:
            f.unlink()
        self._lru.clear()
        return len(files)
