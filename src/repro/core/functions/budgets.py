"""Per-method op budgets: the paper's Table 1 as machine-checked contracts.

Section 2.2 / Table 1 of the paper characterizes each method by how many of
the *expensive* operations one evaluation may issue: softfloat multiplies
and divides, emulated integer multiplies/divides, the bit-manipulation
``ldexp``, and table loads.  This module encodes those claims per method —
M-LUT spends exactly one fp multiply, L-LUT zero (address generation via
``ldexp``), interpolation adds exactly one multiply and one extra load,
CORDIC trades them all for ``2*iterations`` ldexps — so the lint's contract
pass can diff a traced :class:`~repro.isa.counter.Tally` against them.

A budget maps each category of :data:`repro.isa.opcosts.OP_CATEGORY` to an
inclusive ``(lo, hi)`` range.  Most methods are exact (``lo == hi``); the
hyperbolic sinh/cosh/tanh budgets are ranges because the kernel branches
between the rotation core and the exp-identity fallback at
``ROTATION_BOUND``, and both sides of the branch must stay inside the
declared envelope.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.opcosts import OP_CATEGORY

__all__ = ["CATEGORIES", "Budget", "budget_for", "tally_categories"]

CATEGORIES = ("fp_mul", "fp_div", "int_mul", "int_div", "ldexp", "loads")

Budget = Dict[str, Tuple[int, int]]


def tally_categories(counts: Dict[str, int]) -> Dict[str, int]:
    """Fold raw ``Tally.counts`` into the contract categories."""
    out = {c: 0 for c in CATEGORIES}
    for op, n in counts.items():
        cat = OP_CATEGORY.get(op)
        if cat is not None:
            out[cat] += n
    return out


def _budget(**kw) -> Budget:
    """Build a budget; int values mean exact, tuples mean (lo, hi)."""
    out: Budget = {c: (0, 0) for c in CATEGORIES}
    for cat, v in kw.items():
        if cat not in out:
            raise KeyError(f"unknown budget category {cat!r}")
        out[cat] = (v, v) if isinstance(v, int) else (int(v[0]), int(v[1]))
    return out


def _add(a: Budget, b: Budget) -> Budget:
    return {c: (a[c][0] + b[c][0], a[c][1] + b[c][1]) for c in CATEGORIES}


# ----------------------------------------------------------------------
# Table 1 rows (single-table LUT methods): fixed costs per evaluation.

def _lut_budget(m) -> Optional[Budget]:
    name = m.method_name
    if name == "mlut":
        # M-LUT: one fp multiply for index scaling, one load.
        return _budget(fp_mul=1, loads=1)
    if name == "mlut_i":
        # Interpolation adds exactly one multiply and one load.
        return _budget(fp_mul=2, loads=2)
    if name == "llut":
        # L-LUT: zero multiplies.  With the magic-number trick even the
        # ldexp disappears; otherwise address generation costs one ldexp.
        if getattr(m.geom, "magic_ok", False):
            return _budget(loads=1)
        return _budget(ldexp=1, loads=1)
    if name == "llut_i":
        return _budget(fp_mul=1, ldexp=1, loads=2)
    if name == "llut_fx":
        # Fixed-point L-LUT: pure integer add/shift addressing.
        return _budget(loads=1)
    if name == "llut_i_fx":
        # The interpolation multiply becomes one wide integer multiply.
        return _budget(int_mul=1, loads=2)
    if name == "slut_i":
        # Segmented: one descriptor load + two value loads.
        return _budget(fp_mul=1, ldexp=1, loads=3)
    if name == "dlut":
        return _budget(loads=1)
    if name == "dlut_i":
        return _budget(fp_mul=1, ldexp=1, loads=2)
    if name == "dllut":
        # Both dispatch targets (low L-LUT, high D-LUT) cost one load.
        return _budget(loads=1)
    if name == "dllut_i":
        return _budget(fp_mul=1, ldexp=1, loads=2)
    return None


# ----------------------------------------------------------------------
# CORDIC families: budgets scale with the iteration count.

def _cordic_budget(m) -> Optional[Budget]:
    from repro.core.cordic.circular import CordicCircular
    from repro.core.cordic.fixed import CordicCircularFixed
    from repro.core.cordic.hyperbolic import CordicHyperbolic
    from repro.core.cordic.vectoring import CordicArctan
    from repro.core.hybrid import HybridCircular, HybridHyperbolic

    it = getattr(m, "iterations", 0)

    if isinstance(m, CordicCircularFixed):
        # All-integer rotation: one fx quadrant multiply, shift/add steps.
        return _budget(int_mul=1, loads=it)

    if isinstance(m, HybridCircular):
        # The table resolves the first lut_bits iterations; the quadrant
        # split still costs one fx multiply, the vector load two reads.
        rest = it - m.lut_bits
        b = _budget(int_mul=1, ldexp=2 * rest, loads=2 + rest)
        if m.spec.name == "tan":
            b = _add(b, _budget(fp_div=1))
        return b

    if isinstance(m, HybridHyperbolic):
        steps = len(m._schedule)
        b = _budget(ldexp=2 * steps, loads=2 + steps)
        if m.spec.name in ("sinh", "cosh"):
            # Large |u| falls back to the exp identity: the split reducer
            # multiplies twice, reconstruction and halving each ldexp once,
            # and the reciprocal costs one divide.
            return _add(b, _budget(fp_mul=(0, 2), fp_div=(0, 1),
                                   ldexp=(0, 2)))
        if m.spec.name == "tanh":
            return _add(b, _budget(fp_mul=(0, 2), fp_div=1, ldexp=(0, 2)))
        return b  # exp

    if isinstance(m, CordicArctan):
        # Vectoring mode: atan with *zero* multiplies or divides — the
        # final quarter-turn-to-radians scale is one fx multiply.
        return _budget(int_mul=1, ldexp=2 * it, loads=it)

    if isinstance(m, CordicCircular):
        b = _budget(int_mul=1, ldexp=2 * it, loads=it)
        if m.spec.name == "tan":
            b = _add(b, _budget(fp_div=1))
        return b

    if isinstance(m, CordicHyperbolic):
        steps = len(m._schedule)
        b = _budget(ldexp=2 * steps, loads=steps)
        name = m.spec.name
        if name in ("log2", "log10", "sqrt"):
            return _add(b, _budget(fp_mul=1))
        if name in ("sinh", "cosh"):
            return _add(b, _budget(fp_mul=(0, 2), fp_div=(0, 1),
                                   ldexp=(0, 2)))
        if name == "tanh":
            return _add(b, _budget(fp_mul=(0, 2), fp_div=1, ldexp=(0, 2)))
        return b  # exp, log

    return None


def budget_for(m) -> Optional[Budget]:
    """The declared op budget for a configured method instance.

    Covers the core evaluation path (``assume_in_range=True``, the identity
    reducer) — range reduction costs are characterized separately in
    Figure 8.  Returns ``None`` for methods without a declared contract.
    """
    from repro.core.lut.tan import TanQuotientLUT
    from repro.core.polymethod import MinimaxPolyMethod

    if isinstance(m, TanQuotientLUT):
        inner_sin = budget_for(m.sin_m)
        inner_cos = budget_for(m.cos_m)
        if inner_sin is None or inner_cos is None:
            return None
        # tan = sin/cos: both inner evaluations plus the one divide that
        # makes tangent cost 2-3x a sine (Section 4.2.4).
        return _add(_add(inner_sin, inner_cos), _budget(fp_div=1))

    if isinstance(m, MinimaxPolyMethod):
        # "One floating-point multiplication per bit of precision": degree
        # Horner steps plus the interval-normalization multiply.
        return _budget(fp_mul=m.degree + 1)

    b = _cordic_budget(m)
    if b is not None:
        return b
    return _lut_budget(m)
