"""Registry of target functions and their float64 reference implementations.

Each :class:`FunctionSpec` records the ground-truth implementation (used for
table generation on the host and for accuracy measurement), the natural
approximation interval that lookup tables cover, the microbenchmark input
domain used in the paper's evaluation, and which range-extension identity
applies (Section 2.2.3).

The registry also encodes Table 2 of the paper — which implementation methods
support which functions — via :func:`supported_methods` in
:mod:`repro.core.functions.support`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

try:  # scipy is available in the evaluation environment; keep a fallback.
    from scipy.special import erf as _erf_impl
except ImportError:  # pragma: no cover - exercised only without scipy
    _erf_impl = np.vectorize(math.erf)

__all__ = [
    "FunctionSpec",
    "FUNCTIONS",
    "get_function",
    "reference",
    "TWO_PI",
]

TWO_PI = 2.0 * math.pi


def _erf(x: np.ndarray) -> np.ndarray:
    """Gauss error function."""
    return np.asarray(_erf_impl(np.asarray(x, dtype=np.float64)))


def _gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit: ``x * Phi(x)`` (exact erf form)."""
    x = np.asarray(x, dtype=np.float64)
    return x * 0.5 * (1.0 + _erf(x / math.sqrt(2.0)))


def _cndf(x: np.ndarray) -> np.ndarray:
    """Cumulative normal distribution function ``Phi(x)``."""
    x = np.asarray(x, dtype=np.float64)
    return 0.5 * (1.0 + _erf(x / math.sqrt(2.0)))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = np.asarray(x, dtype=np.float64)
    return 1.0 / (1.0 + np.exp(-x))


def _softplus(x: np.ndarray) -> np.ndarray:
    """softplus(x) = ln(1 + e^x), computed stably."""
    x = np.asarray(x, dtype=np.float64)
    return np.logaddexp(0.0, x)


def _silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: x * sigmoid(x)."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


def _elu(x: np.ndarray) -> np.ndarray:
    """ELU (alpha=1): x for x >= 0, e^x - 1 below."""
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, x, np.expm1(x))


def _rsqrt(x: np.ndarray) -> np.ndarray:
    """Reciprocal square root."""
    return 1.0 / np.sqrt(np.asarray(x, dtype=np.float64))


@dataclass(frozen=True)
class FunctionSpec:
    """A target function together with its approximation geometry."""

    name: str
    #: Ground-truth implementation over float64 arrays.
    reference: Callable[[np.ndarray], np.ndarray]
    #: Interval a lookup table covers after range reduction, [lo, hi).
    natural_range: Tuple[float, float]
    #: Input interval of the paper's microbenchmarks (uniform random inputs).
    bench_domain: Tuple[float, float]
    #: Range-extension identity: one of None, "periodic", "quadrant",
    #: "exp_split", "log_split", "sqrt_split", "odd_symmetric".
    extension: Optional[str]
    #: Period for periodic functions (2*pi for trigonometric functions).
    period: Optional[float] = None
    #: True when f(-x) = -f(x); lets tables cover only x >= 0.
    odd: bool = False

    def ref_scalar(self, x: float) -> float:
        """Evaluate the reference at a scalar point."""
        return float(self.reference(np.asarray([x], dtype=np.float64))[0])


FUNCTIONS: Dict[str, FunctionSpec] = {
    "sin": FunctionSpec(
        name="sin",
        reference=np.sin,
        natural_range=(0.0, TWO_PI),
        bench_domain=(0.0, TWO_PI),
        extension="periodic",
        period=TWO_PI,
        odd=True,
    ),
    "cos": FunctionSpec(
        name="cos",
        reference=np.cos,
        natural_range=(0.0, TWO_PI),
        bench_domain=(0.0, TWO_PI),
        extension="periodic",
        period=TWO_PI,
    ),
    "tan": FunctionSpec(
        name="tan",
        reference=np.tan,
        natural_range=(0.0, TWO_PI),
        bench_domain=(0.0, TWO_PI),
        extension="periodic",
        period=TWO_PI,
        odd=True,
    ),
    "sinh": FunctionSpec(
        name="sinh",
        reference=np.sinh,
        natural_range=(0.0, 4.0),
        bench_domain=(-4.0, 4.0),
        extension="odd_symmetric",
        odd=True,
    ),
    "cosh": FunctionSpec(
        name="cosh",
        reference=np.cosh,
        natural_range=(0.0, 4.0),
        bench_domain=(-4.0, 4.0),
        extension="odd_symmetric",  # even: |x| reduction without sign flip
    ),
    "tanh": FunctionSpec(
        name="tanh",
        reference=np.tanh,
        natural_range=(0.0, 8.0),
        bench_domain=(-8.0, 8.0),
        extension="odd_symmetric",
        odd=True,
    ),
    "exp": FunctionSpec(
        name="exp",
        reference=np.exp,
        natural_range=(0.0, 0.6931471805599453),  # [0, ln2): the exp_split residual
        bench_domain=(-10.0, 10.0),
        extension="exp_split",
    ),
    "log": FunctionSpec(
        name="log",
        reference=np.log,
        natural_range=(1.0, 2.0),
        bench_domain=(0.01, 100.0),
        extension="log_split",
    ),
    "sqrt": FunctionSpec(
        name="sqrt",
        reference=np.sqrt,
        natural_range=(0.5, 2.0),
        bench_domain=(0.01, 100.0),
        extension="sqrt_split",
    ),
    "gelu": FunctionSpec(
        name="gelu",
        reference=_gelu,
        natural_range=(0.0, 8.0),
        bench_domain=(-8.0, 8.0),
        extension="odd_symmetric",  # gelu(-x) = gelu(x) - x
    ),
    "sigmoid": FunctionSpec(
        name="sigmoid",
        reference=_sigmoid,
        natural_range=(0.0, 16.0),
        bench_domain=(-16.0, 16.0),
        extension="odd_symmetric",  # sigmoid(-x) = 1 - sigmoid(x)
    ),
    "cndf": FunctionSpec(
        name="cndf",
        reference=_cndf,
        natural_range=(0.0, 6.0),
        bench_domain=(-6.0, 6.0),
        extension="odd_symmetric",  # Phi(-x) = 1 - Phi(x)
    ),
    # ------------------------------------------------------------------
    # Extensions beyond the paper's Table 2 (same machinery; see DESIGN.md).
    "atan": FunctionSpec(
        name="atan",
        reference=np.arctan,
        natural_range=(0.0, 1.0001),
        bench_domain=(-50.0, 50.0),
        extension="atan_recip",  # atan(x) = pi/2 - atan(1/x) for x > 1
        odd=True,
    ),
    "atanh": FunctionSpec(
        name="atanh",
        reference=np.arctanh,
        natural_range=(0.0, 0.9502),
        bench_domain=(-0.95, 0.95),
        extension="odd_symmetric",
        odd=True,
    ),
    "erf": FunctionSpec(
        name="erf",
        reference=_erf,
        natural_range=(0.0, 4.0),
        bench_domain=(-4.0, 4.0),
        extension="odd_symmetric",
        odd=True,
    ),
    "log2": FunctionSpec(
        name="log2",
        reference=np.log2,
        natural_range=(1.0, 2.0),
        bench_domain=(0.01, 100.0),
        extension="log_split",
    ),
    "log10": FunctionSpec(
        name="log10",
        reference=np.log10,
        natural_range=(1.0, 2.0),
        bench_domain=(0.01, 100.0),
        extension="log_split",
    ),
    "rsqrt": FunctionSpec(
        name="rsqrt",
        reference=_rsqrt,
        natural_range=(0.5, 2.0),
        bench_domain=(0.01, 100.0),
        extension="rsqrt_split",
    ),
    "softplus": FunctionSpec(
        name="softplus",
        reference=_softplus,
        natural_range=(0.0, 16.0),
        bench_domain=(-16.0, 16.0),
        extension="odd_symmetric",  # softplus(-x) = softplus(x) - x
    ),
    "silu": FunctionSpec(
        name="silu",
        reference=_silu,
        natural_range=(0.0, 16.0),
        bench_domain=(-16.0, 16.0),
        extension="odd_symmetric",  # silu(-x) = silu(x) - x
    ),
    "asin": FunctionSpec(
        name="asin",
        reference=np.arcsin,
        natural_range=(0.0, 0.995),
        bench_domain=(-0.99, 0.99),
        extension="odd_symmetric",
        odd=True,
    ),
    "acos": FunctionSpec(
        name="acos",
        reference=np.arccos,
        natural_range=(0.0, 0.995),
        bench_domain=(-0.99, 0.99),
        extension="odd_symmetric",  # acos(-x) = pi - acos(x)
    ),
    "elu": FunctionSpec(
        name="elu",
        reference=_elu,
        natural_range=(-16.0, 0.0001),
        bench_domain=(-8.0, 8.0),
        extension="reflect_negative",  # positive inputs pass through
    ),
}


def get_function(name: str) -> FunctionSpec:
    """Look up a function spec by name, with a helpful error."""
    try:
        return FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(FUNCTIONS))
        raise ConfigurationError(
            f"unknown function {name!r}; known functions: {known}"
        ) from None


def reference(name: str, x: np.ndarray) -> np.ndarray:
    """Evaluate the float64 reference for ``name`` over ``x``."""
    return get_function(name).reference(np.asarray(x, dtype=np.float64))
