"""Function registry and the Table 2 support matrix."""

from repro.core.functions.registry import FUNCTIONS, FunctionSpec, get_function, reference
from repro.core.functions.support import (
    BASE_METHODS,
    METHOD_SUPPORT,
    check_support,
    supported_functions,
    supported_methods,
    supports,
)

__all__ = [
    "FUNCTIONS",
    "FunctionSpec",
    "get_function",
    "reference",
    "BASE_METHODS",
    "METHOD_SUPPORT",
    "supports",
    "check_support",
    "supported_methods",
    "supported_functions",
]
