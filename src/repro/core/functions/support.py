"""The method-by-function support matrix (Table 2 of the paper, extended).

Eight base methods; interpolation is a variant flag on the LUT families and
fixed-point a variant flag on L-LUT.  Not every pairing makes sense:

* CORDIC covers the functions with circular/hyperbolic rotation or vectoring
  identities (trigonometric/hyperbolic functions, exp, log/log2/log10, sqrt,
  atan) but not erf-derived functions (GELU, CNDF, sigmoid, erf) and not
  atanh (whose arguments near 1 exceed the hyperbolic vectoring convergence
  bound).
* M-LUT / L-LUT are generic fuzzy tables and support every function.
* Fixed-point L-LUT requires inputs *and* outputs representable in s3.28
  (magnitude < 8), which excludes tan (unbounded output), sinh/cosh
  (outputs up to ~27 over the natural range), and sigmoid/softplus/silu/elu
  (natural input ranges reaching 16).
* D-LUT / DL-LUT space entries like the positive float grid (denser near
  zero), which suits saturating, approximately-linear functions but is
  unusable for periodic functions and for ELU's negative core interval.
* ``cordic_fx`` is this reproduction's extension: the whole rotation in
  s1.30 fixed point (shift-add only), applicable where a quarter-turn
  angle domain exists (sin, cos).

Beyond the paper's twelve functions, the matrix carries eleven extensions
(atan, atanh, asin, acos, erf, log2, log10, rsqrt, softplus, silu, elu)
built from the same reducers and tables; see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.errors import UnsupportedFunctionError

__all__ = [
    "BASE_METHODS",
    "METHOD_SUPPORT",
    "PAPER_FUNCTIONS",
    "EXTENSION_FUNCTIONS",
    "supports",
    "check_support",
    "supported_methods",
    "supported_functions",
]

#: The paper's eight implementation methods (Section 3, Table 2).
BASE_METHODS: List[str] = [
    "cordic",
    "cordic_lut",
    "mlut",
    "mlut_i",
    "llut",
    "llut_i",
    "dlut",
    "dllut",
]

#: Functions evaluated in the paper.
PAPER_FUNCTIONS = frozenset(
    {"sin", "cos", "tan", "sinh", "cosh", "tanh", "exp", "log", "sqrt",
     "gelu", "sigmoid", "cndf"}
)

#: This reproduction's additional functions (same machinery).
EXTENSION_FUNCTIONS = frozenset(
    {"atan", "atanh", "erf", "log2", "log10", "rsqrt",
     "softplus", "silu", "elu", "asin", "acos"}
)

_ALL_FUNCS = PAPER_FUNCTIONS | EXTENSION_FUNCTIONS

_CORDIC_FUNCS = frozenset(
    {"sin", "cos", "tan", "sinh", "cosh", "tanh", "exp",
     "log", "log2", "log10", "sqrt", "atan"}
)
_NON_PERIODIC = _ALL_FUNCS - {"sin", "cos", "tan", "elu"}
_S3_28_SAFE = _ALL_FUNCS - {
    "tan", "sinh", "cosh", "sigmoid", "softplus", "silu", "elu"
}

METHOD_SUPPORT: Dict[str, FrozenSet[str]] = {
    "cordic": _CORDIC_FUNCS,
    # The LUT-skip applies to rotation-mode CORDIC; log/sqrt/atan use
    # vectoring mode, whose rotation directions depend on the data vector,
    # so no prefix can be pre-resolved from the angle alone.
    "cordic_lut": _CORDIC_FUNCS - {"log", "log2", "log10", "sqrt", "atan"},
    "cordic_fx": frozenset({"sin", "cos"}),
    # Minimax polynomial over the natural range; tan's pole is not
    # polynomially approximable.
    "poly": _ALL_FUNCS - {"tan"},
    "mlut": _ALL_FUNCS,
    "mlut_i": _ALL_FUNCS,
    "llut": _ALL_FUNCS,
    "llut_i": _ALL_FUNCS,
    "llut_fx": _S3_28_SAFE,
    "llut_i_fx": _S3_28_SAFE,
    # Segmented L-LUT (extension): curvature-adaptive two-level table.
    # Periodic functions have uniform curvature, so segmentation buys
    # nothing there; supported anyway except where D-LUT also fails.
    "slut_i": _ALL_FUNCS - {"tan"},
    "dlut": _NON_PERIODIC,
    "dlut_i": _NON_PERIODIC,
    "dllut": _NON_PERIODIC,
    "dllut_i": _NON_PERIODIC,
}


def supports(method: str, function: str) -> bool:
    """True when ``method`` implements ``function`` (Table 2)."""
    return function in METHOD_SUPPORT.get(method, frozenset())


def check_support(method: str, function: str) -> None:
    """Raise :class:`UnsupportedFunctionError` for unsupported pairings."""
    if method not in METHOD_SUPPORT:
        raise UnsupportedFunctionError(
            function, method, f"unknown method; known: {sorted(METHOD_SUPPORT)}"
        )
    if function not in METHOD_SUPPORT[method]:
        raise UnsupportedFunctionError(function, method)


def supported_methods(function: str) -> List[str]:
    """All methods that implement ``function``, in registry order."""
    return [m for m in METHOD_SUPPORT if function in METHOD_SUPPORT[m]]


def supported_functions(method: str) -> List[str]:
    """All functions implemented by ``method``, sorted."""
    return sorted(METHOD_SUPPORT.get(method, frozenset()))
