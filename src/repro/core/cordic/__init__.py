"""CORDIC implementations: circular and hyperbolic modes, plus Table 1 data."""

from repro.core.cordic.circular import CordicCircular
from repro.core.cordic.fixed import CordicCircularFixed
from repro.core.cordic.hyperbolic import ROTATION_BOUND, CordicHyperbolic
from repro.core.cordic.vectoring import CordicArctan
from repro.core.cordic.tables import (
    TABLE1,
    Table1Row,
    circular_angle_table,
    circular_gain,
    hyperbolic_angle_table,
    hyperbolic_gain,
    hyperbolic_schedule,
)

__all__ = [
    "CordicCircular",
    "CordicCircularFixed",
    "CordicArctan",
    "CordicHyperbolic",
    "ROTATION_BOUND",
    "TABLE1",
    "Table1Row",
    "circular_angle_table",
    "circular_gain",
    "hyperbolic_angle_table",
    "hyperbolic_gain",
    "hyperbolic_schedule",
]
