"""Circular-mode CORDIC for sin, cos, and tan (Section 3.1, Figure 3).

The implementation follows the paper's six-step pipeline: the input angle
(already folded to ``[0, 2*pi)`` by range reduction when enabled) is
converted to s3.28 fixed point and multiplied once by ``2/pi`` so that the
two bits above the fraction *are* the quadrant and the fraction *is* the
residual angle in quarter-turn units — the quadrant split costs two bit
operations instead of float comparisons.  The rotation vector (x, y) then
iterates in float32 while the angle accumulator z iterates in fixed point
(it is only added to and compared against zero, both native integer ops).

Per-iteration cost: two ``ldexp``, two float adds, one table load, one
integer add, and a sign test — which is why CORDIC's cycle count grows
linearly with accuracy in Figure 5 while LUT methods stay flat.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.cordic.tables import (
    CIRCULAR_ANGLE_FRAC_BITS,
    circular_angle_table,
    circular_gain,
)
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.fixedpoint import Q3_28, fx_mul
from repro.isa.counter import CycleCounter

__all__ = ["CordicCircular"]

_F32 = np.float32
_FRAC = CIRCULAR_ANGLE_FRAC_BITS
_FRAC_MASK = (1 << _FRAC) - 1

#: 2/pi in Q3.28 raw form (used by the single quadrant-split multiply).
_TWO_OVER_PI_RAW = int(round((2.0 / math.pi) * (1 << _FRAC)))


class CordicCircular(Method):
    """CORDIC rotation mode computing sin/cos/tan of one angle."""

    method_name = "cordic"

    def __init__(self, spec: FunctionSpec, iterations: int = 24, **kwargs):
        if spec.name not in ("sin", "cos", "tan"):
            raise ConfigurationError(
                f"circular CORDIC computes sin/cos/tan, not {spec.name!r}"
            )
        super().__init__(spec, **kwargs)
        if iterations < 1:
            raise ConfigurationError("CORDIC needs at least one iteration")
        self.iterations = iterations
        self._angles = np.empty(0, dtype=np.int64)
        self._x0 = _F32(0.0)

    # ------------------------------------------------------------------
    # host side

    def _build(self) -> None:
        self._angles = circular_angle_table(self.iterations)
        self._x0 = _F32(circular_gain(self.iterations))

    def table_bytes(self) -> int:
        # Angle table (4 bytes per iteration) plus the gain and 2/pi constants.
        return self.iterations * 4 + 8

    def planned_table_bytes(self) -> int:
        # Parameter-determined (hybrids included): table_bytes needs no build.
        return self.table_bytes()

    def host_entries(self) -> int:
        return self.iterations

    # ------------------------------------------------------------------
    # PIM side, traced

    def _split_quadrant(self, ctx: CycleCounter, u) -> Tuple[int, int]:
        """One fixed multiply by 2/pi; top bits = quadrant, fraction = angle."""
        a = ctx.f2fx(u, _FRAC)
        q = fx_mul(ctx, Q3_28, a, _TWO_OVER_PI_RAW)
        quad = ctx.iand(ctx.shr(q, _FRAC), 3)
        z = ctx.iand(q, _FRAC_MASK)
        return quad, z

    def _rotate(self, ctx: CycleCounter, z: int) -> Tuple[np.float32, np.float32]:
        """Drive z (Q0.28 quarter-turns, in [0, 1)) to zero; return (cos, sin)."""
        x = self._x0
        y = _F32(0.0)
        for i in range(self.iterations):
            t = int(self._load(ctx, self._angles, i))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.icmp(z, 0) >= 0:
                x, y = ctx.fsub(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
            else:
                x, y = ctx.fadd(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
        return x, y

    def core_eval(self, ctx: CycleCounter, u):
        quad, z = self._split_quadrant(ctx, u)
        c, s = self._rotate(ctx, z)
        ctx.branch()  # quadrant dispatch
        if self.spec.name == "sin":
            return (s, c, ctx.fneg(s), ctx.fneg(c))[quad]
        if self.spec.name == "cos":
            return (c, ctx.fneg(s), ctx.fneg(c), s)[quad]
        # tan: even quadrants give s/c, odd quadrants give -c/s.
        if quad & 1:  # lint: allow(quadrant parity bit; the dispatch branch above is charged)
            return ctx.fdiv(ctx.fneg(c), s)
        return ctx.fdiv(s, c)

    # ------------------------------------------------------------------
    # PIM side, vectorized twin

    def _split_quadrant_vec(self, u: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        a = np.round(u.astype(np.float64) * (1 << _FRAC)).astype(np.int64)
        q = (a * _TWO_OVER_PI_RAW) >> _FRAC
        quad = (q >> _FRAC) & 3
        z = q & _FRAC_MASK
        return quad, z

    def _rotate_full_vec(
        self, z: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One rotation pass returning (cos, sin, n_pos) together.

        The array-compiled evaluator (:mod:`repro.batch.vec`) needs the
        rotation values *and* the direction count in one recurrence: the
        ``pos`` mask that steers the float vector is exactly the direction
        bit the cost key counts, so fusing them halves the passes over the
        z recurrence compared to ``_rotate_vec`` + ``_rotate_pos_vec``.
        """
        x = np.full(z.shape, self._x0, dtype=_F32)
        y = np.zeros(z.shape, dtype=_F32)
        n = np.zeros(z.shape, dtype=np.int64)
        for i in range(self.iterations):
            t = int(self._angles[i])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = z >= 0
            n += pos
            x_pos = (x - ys).astype(_F32)
            x_neg = (x + ys).astype(_F32)
            y_pos = (y + xs).astype(_F32)
            y_neg = (y - xs).astype(_F32)
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z - t, z + t)
        return x, y, n

    def _rotate_vec(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        # Same recurrence without the direction count (pure value path);
        # kept separate so plain evaluate_vec pays no counting passes.
        x = np.full(z.shape, self._x0, dtype=_F32)
        y = np.zeros(z.shape, dtype=_F32)
        for i in range(self.iterations):
            t = int(self._angles[i])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = z >= 0
            x_pos = (x - ys).astype(_F32)
            x_neg = (x + ys).astype(_F32)
            y_pos = (y + xs).astype(_F32)
            y_neg = (y - xs).astype(_F32)
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z - t, z + t)
        return x, y

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        quad, z = self._split_quadrant_vec(u)
        c, s = self._rotate_vec(z)
        if self.spec.name == "sin":
            choices = [s, c, (-s).astype(_F32), (-c).astype(_F32)]
        elif self.spec.name == "cos":
            choices = [c, (-s).astype(_F32), (-c).astype(_F32), s]
        else:  # tan
            even = (s / c).astype(_F32)
            odd = ((-c).astype(_F32) / s).astype(_F32)
            return np.where(quad & 1 == 0, even, odd).astype(_F32)
        return np.select([quad == 0, quad == 1, quad == 2, quad == 3], choices)

    def _rotate_pos_vec(self, z: np.ndarray) -> np.ndarray:
        """Per-element count of positive rotation directions.

        The two rotation arms charge the same number of slots but different
        op *names* (isub on the positive arm, iadd on the negative one), so
        the counts dict depends on the direction multiset — fully captured
        by this count.  The z recurrence is pure integer and independent of
        the float vector, so it vectorizes exactly.
        """
        n = np.zeros(z.shape, dtype=np.int64)
        for i in range(self.iterations):
            t = int(self._angles[i])
            pos = z >= 0
            n += pos
            z = np.where(pos, z - t, z + t)
        return n

    def core_path_vec(self, u):
        # Replicate the scalar Q3.28 pipeline exactly: f2fx (non-finite ->
        # 0), then the 2/pi fixed multiply.  int64 products wrap mod 2^64,
        # which commutes with ">> 28 then wrap to 32 bits" (2^36 = 0 mod
        # 2^32), so the wrapped quadrant/angle match the scalar exact-int
        # ones whenever |raw| < 2^35 (above that we abstain: the scalar
        # fx_mul itself overflows QFormat.wrap near 2^35.65).
        from repro.batch.keys import f2fx_exact_vec, pack_fields, wrap32_vec

        u = np.asarray(u, dtype=_F32)
        a_f = f2fx_exact_vec(u, _FRAC)
        if bool(np.any(np.abs(a_f) >= 2.0**35)):
            return None
        a = a_f.astype(np.int64)
        q = wrap32_vec((a * np.int64(_TWO_OVER_PI_RAW)) >> np.int64(_FRAC))
        quad = (q >> np.int64(_FRAC)) & np.int64(3)
        z = q & np.int64(_FRAC_MASK)
        n_pos = self._rotate_pos_vec(z)
        if self.spec.name == "tan":
            # tan additionally pays one fneg in odd quadrants; sin/cos
            # evaluate every tuple item of the quadrant dispatch.
            parity = (quad & 1).astype(np.int64)
        else:
            parity = np.zeros(u.shape, dtype=np.int64)
        return pack_fields([(parity, 1), (n_pos, 16)])
