"""Fully fixed-point circular CORDIC (extension beyond the paper).

The paper's Figure 5 CORDIC keeps the rotation vector in (software emulated)
float32, making each iteration cost two softfloat adds.  On an FP-less PIM
core nothing forces that choice: with the vector in s1.30 fixed point each
iteration is shifts and adds — native, single-slot instructions.

The catch is rounding: a bare arithmetic shift truncates toward negative
infinity and the bias accumulates over 30 iterations.  This implementation
uses rounding shifts (add half, then shift), keeping the error a zero-mean
random walk of ~2^-31 steps — the method reaches the same ~1e-9 accuracy as
the fixed-point L-LUTs at roughly 15x fewer cycles than float CORDIC.

The ablation benchmark ``bench_ablation_fixed_cordic`` quantifies this.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.cordic.circular import CordicCircular
from repro.core.cordic.tables import (
    CIRCULAR_ANGLE_FRAC_BITS,
    circular_angle_table,
    circular_gain,
)
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["CordicCircularFixed"]

_F32 = np.float32
_FRAC = CIRCULAR_ANGLE_FRAC_BITS

#: Fraction bits of the fixed-point rotation vector (s1.30).
VECTOR_FRAC = 30


def _rshift_round(ctx: CycleCounter, v: int, i: int) -> int:  # lint: const(i)
    """Rounding arithmetic right shift: two native instructions."""
    if i == 0:
        return v
    half = 1 << (i - 1)
    return ctx.shr(ctx.iadd(v, half), i)


class CordicCircularFixed(CordicCircular):
    """sin/cos with the rotation vector in s1.30 fixed point."""

    method_name = "cordic_fx"
    fixed_point = True

    def __init__(self, spec, iterations: int = 24, **kwargs):
        if spec.name not in ("sin", "cos"):
            raise ConfigurationError(
                "fixed-point circular CORDIC computes sin/cos only "
                f"(tan needs an unbounded output), not {spec.name!r}"
            )
        super().__init__(spec, iterations=iterations, **kwargs)
        self._x0_raw = 0

    def _build(self) -> None:
        self._angles = circular_angle_table(self.iterations)
        self._x0_raw = int(round(
            circular_gain(self.iterations) * (1 << VECTOR_FRAC)
        ))

    # ------------------------------------------------------------------
    # traced

    def _rotate_raw(self, ctx: CycleCounter, z: int) -> Tuple[int, int]:
        """All-integer rotation; returns (cos, sin) as s1.30 raw words."""
        x = self._x0_raw
        y = 0
        for i in range(self.iterations):
            t = int(self._load(ctx, self._angles, i))
            xs = _rshift_round(ctx, x, i)
            ys = _rshift_round(ctx, y, i)
            ctx.branch()
            if ctx.icmp(z, 0) >= 0:
                x, y = ctx.isub(x, ys), ctx.iadd(y, xs)
                z = ctx.isub(z, t)
            else:
                x, y = ctx.iadd(x, ys), ctx.isub(y, xs)
                z = ctx.iadd(z, t)
        return x, y

    def core_eval(self, ctx: CycleCounter, u):
        quad, z = self._split_quadrant(ctx, u)
        c, s = self._rotate_raw(ctx, z)
        ctx.branch()  # quadrant dispatch
        if self.spec.name == "sin":
            raw = (s, c, ctx.isub(0, s), ctx.isub(0, c))[quad]
        else:  # cos
            raw = (c, ctx.isub(0, s), ctx.isub(0, c), s)[quad]
        return ctx.fx2f(raw, VECTOR_FRAC)

    # ------------------------------------------------------------------
    # vectorized twin

    def _rotate_raw_vec(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = np.full(z.shape, self._x0_raw, dtype=np.int64)
        y = np.zeros(z.shape, dtype=np.int64)
        for i in range(self.iterations):
            t = int(self._angles[i])
            if i == 0:
                xs, ys = x, y
            else:
                half = 1 << (i - 1)
                xs = (x + half) >> i
                ys = (y + half) >> i
            pos = z >= 0
            x_pos, x_neg = x - ys, x + ys
            y_pos, y_neg = y + xs, y - xs
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z - t, z + t)
        return x, y

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        quad, z = self._split_quadrant_vec(u)
        c, s = self._rotate_raw_vec(z)
        if self.spec.name == "sin":
            raw = np.select([quad == 0, quad == 1, quad == 2, quad == 3],
                            [s, c, -s, -c])
        else:
            raw = np.select([quad == 0, quad == 1, quad == 2, quad == 3],
                            [c, -s, -c, s])
        return (raw / float(1 << VECTOR_FRAC)).astype(_F32)
