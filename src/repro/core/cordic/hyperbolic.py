"""Hyperbolic-mode CORDIC: exp, sinh, cosh, tanh (rotation), log, sqrt
(vectoring).

Rotation mode drives the fixed-point angle accumulator to zero and leaves
``(cosh z, sinh z)`` in the float rotation vector; exp is their sum.
Vectoring mode drives the y component to zero: with ``x0 = w+1, y0 = w-1``
the accumulated angle is ``atanh((w-1)/(w+1)) = ln(w)/2``; with
``x0 = w+0.25, y0 = w-0.25`` the final x is ``sqrt(w)`` up to the constant
gain.  Convergence requires ``|z| <= ~1.118`` (with the repeated iterations
4, 13, 40, ...), which the natural ranges guarantee: exp residuals live in
``[0, ln2)``, log mantissas in ``[1, 2)``, sqrt mantissas in ``[0.5, 2)``.

sinh/cosh/tanh beyond the convergence bound fall back to their exp
identities (``sinh x = (e^x - e^-x)/2``, ``tanh x = 1 - 2/(e^2x + 1)``),
which costs one float divide — part of why hyperbolic functions are more
expensive than sine in Section 4.2.4.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.core.cordic.tables import (
    HYPERBOLIC_ANGLE_FRAC_BITS,
    hyperbolic_angle_table,
    hyperbolic_gain,
    hyperbolic_schedule,
)
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.method import Method
from repro.core.range_reduction import ExpSplitReducer
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["CordicHyperbolic", "ROTATION_BOUND"]

_F32 = np.float32
_FRAC = HYPERBOLIC_ANGLE_FRAC_BITS

#: Largest |z| the rotation converges for (sum of the angle table).
ROTATION_BOUND = 1.1181

_ROTATION_FUNCS = ("exp", "sinh", "cosh", "tanh")
_VECTORING_FUNCS = ("log", "log2", "log10", "sqrt")


class CordicHyperbolic(Method):
    """Hyperbolic CORDIC bound to one of exp/sinh/cosh/tanh/log/sqrt."""

    method_name = "cordic"

    def __init__(self, spec: FunctionSpec, iterations: int = 24, **kwargs):
        if spec.name not in _ROTATION_FUNCS + _VECTORING_FUNCS:
            raise ConfigurationError(
                f"hyperbolic CORDIC does not compute {spec.name!r}"
            )
        super().__init__(spec, **kwargs)
        if iterations < 1:
            raise ConfigurationError("CORDIC needs at least one iteration")
        self.iterations = iterations
        self._schedule: List[int] = []
        self._angles = np.empty(0, dtype=np.int64)
        self._gain = _F32(0.0)
        self._inv_gain = _F32(0.0)
        # Base conversion for log2/log10: log_b(m) = ln(m) * log_b(e).
        self._log_scale = {
            "log2": _F32(1.0 / math.log(2.0)),
            "log10": _F32(1.0 / math.log(10.0)),
        }.get(spec.name)
        # exp-identity fallbacks for large sinh/cosh/tanh arguments.
        self._exp_reducer = ExpSplitReducer()

    # ------------------------------------------------------------------
    # host side

    def _build(self) -> None:
        self._schedule = hyperbolic_schedule(self.iterations)
        self._angles = hyperbolic_angle_table(self._schedule)
        # Hyperbolic iterations *shrink* the vector by P = prod sqrt(1-2^-2i)
        # (unlike circular ones, which stretch it), so the rotation starts at
        # 1/P to land exactly on (cosh, sinh).
        self._gain = _F32(hyperbolic_gain(self._schedule))
        self._inv_gain = _F32(1.0 / hyperbolic_gain(self._schedule))

    def table_bytes(self) -> int:
        return self.iterations * 4 + 8

    def planned_table_bytes(self) -> int:
        return self.table_bytes()

    def host_entries(self) -> int:
        return self.iterations

    # ------------------------------------------------------------------
    # traced rotation / vectoring cores

    def _rotate(self, ctx: CycleCounter, z: int) -> Tuple[np.float32, np.float32]:
        """Drive z (Q1.30 radians) to zero; return (cosh, sinh)."""
        x = self._inv_gain
        y = _F32(0.0)
        for j, i in enumerate(self._schedule):
            t = int(self._load(ctx, self._angles, j))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.icmp(z, 0) >= 0:
                x, y = ctx.fadd(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
            else:
                x, y = ctx.fsub(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
        return x, y

    def _vectoring(
        self, ctx: CycleCounter, x: np.float32, y: np.float32
    ) -> Tuple[np.float32, int]:
        """Drive y to zero; return (final x, accumulated angle raw Q1.30)."""
        z = 0
        for j, i in enumerate(self._schedule):
            t = int(self._load(ctx, self._angles, j))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.fcmp(y, _F32(0.0)) >= 0:
                # d = -1: shrink y
                x, y = ctx.fsub(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
            else:
                x, y = ctx.fadd(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
        return x, z

    def _exp_core(self, ctx: CycleCounter, f: np.float32) -> np.float32:
        """e^f for f in [0, ln2) via one rotation."""
        z = ctx.f2fx(f, _FRAC)
        c, s = self._rotate(ctx, z)
        return ctx.fadd(c, s)

    def _exp_full(self, ctx: CycleCounter, v: np.float32) -> np.float32:
        """e^v for arbitrary v >= 0 (inline exp_split + rotation)."""
        f, k = self._exp_reducer.reduce(ctx, v)
        ef = self._exp_core(ctx, f)
        return ctx.ldexp(ef, int(k))

    # ------------------------------------------------------------------
    # traced per-function dispatch (u is the range-reduced input)

    def core_eval(self, ctx: CycleCounter, u):
        name = self.spec.name
        if name == "exp":
            return self._exp_core(ctx, u)

        if name in ("log", "log2", "log10"):
            x0 = ctx.fadd(u, _F32(1.0))
            y0 = ctx.fsub(u, _F32(1.0))
            _, z = self._vectoring(ctx, x0, y0)
            z2 = ctx.shl(z, 1)  # ln(u) = 2 * atanh((u-1)/(u+1))
            ln = ctx.fx2f(z2, _FRAC)
            if self._log_scale is None:
                return ln
            return ctx.fmul(ln, self._log_scale)

        if name == "sqrt":
            x0 = ctx.fadd(u, _F32(0.25))
            y0 = ctx.fsub(u, _F32(0.25))
            x, _ = self._vectoring(ctx, x0, y0)
            # Vectoring also shrank the magnitude by P; undo it.
            return ctx.fmul(x, self._inv_gain)

        # sinh / cosh / tanh on u = |x| (the reducer handled the sign).
        ctx.branch()
        if ctx.fcmp(u, _F32(ROTATION_BOUND)) <= 0:
            z = ctx.f2fx(u, _FRAC)
            c, s = self._rotate(ctx, z)
            if name == "sinh":
                return s
            if name == "cosh":
                return c
            return ctx.fdiv(s, c)  # tanh

        if name == "tanh":
            # tanh u = 1 - 2 / (e^(2u) + 1)
            v = ctx.ldexp(u, 1)
            e2u = self._exp_full(ctx, v)
            den = ctx.fadd(e2u, _F32(1.0))
            frac = ctx.fdiv(_F32(2.0), den)
            return ctx.fsub(_F32(1.0), frac)

        # sinh / cosh via e^u and its reciprocal.
        eu = self._exp_full(ctx, u)
        einv = ctx.fdiv(_F32(1.0), eu)
        if name == "sinh":
            d = ctx.fsub(eu, einv)
        else:
            d = ctx.fadd(eu, einv)
        return ctx.ldexp(d, -1)

    # ------------------------------------------------------------------
    # vectorized twins

    def _rotate_vec(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        x = np.full(z.shape, self._inv_gain, dtype=_F32)
        y = np.zeros(z.shape, dtype=_F32)
        for j, i in enumerate(self._schedule):
            t = int(self._angles[j])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = z >= 0
            x_pos = (x + ys).astype(_F32)
            x_neg = (x - ys).astype(_F32)
            y_pos = (y + xs).astype(_F32)
            y_neg = (y - xs).astype(_F32)
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z - t, z + t)
        return x, y

    def _vectoring_vec(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        z = np.zeros(x.shape, dtype=np.int64)
        for j, i in enumerate(self._schedule):
            t = int(self._angles[j])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = y >= 0
            x_pos = (x - ys).astype(_F32)
            x_neg = (x + ys).astype(_F32)
            y_pos = (y - xs).astype(_F32)
            y_neg = (y + xs).astype(_F32)
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z + t, z - t)
        return x, z

    def _exp_core_vec(self, f: np.ndarray) -> np.ndarray:
        z = np.round(f.astype(np.float64) * (1 << _FRAC)).astype(np.int64)
        c, s = self._rotate_vec(z)
        return (c + s).astype(_F32)

    def _exp_full_vec(self, v: np.ndarray) -> np.ndarray:
        f, k = self._exp_reducer.reduce_vec(v)
        ef = self._exp_core_vec(f)
        return ldexpf_vec(ef, k)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        name = self.spec.name
        if name == "exp":
            return self._exp_core_vec(u)

        if name in ("log", "log2", "log10"):
            x0 = (u + _F32(1.0)).astype(_F32)
            y0 = (u - _F32(1.0)).astype(_F32)
            _, z = self._vectoring_vec(x0, y0)
            ln = ((z << 1) / float(1 << _FRAC)).astype(_F32)
            if self._log_scale is None:
                return ln
            return (ln * self._log_scale).astype(_F32)

        if name == "sqrt":
            x0 = (u + _F32(0.25)).astype(_F32)
            y0 = (u - _F32(0.25)).astype(_F32)
            x, _ = self._vectoring_vec(x0, y0)
            return (x * self._inv_gain).astype(_F32)

        small = u <= _F32(ROTATION_BOUND)
        out = np.empty(u.shape, dtype=_F32)

        if np.any(small):
            us = u[small]
            z = np.round(us.astype(np.float64) * (1 << _FRAC)).astype(np.int64)
            c, s = self._rotate_vec(z)
            if name == "sinh":
                out[small] = s
            elif name == "cosh":
                out[small] = c
            else:
                out[small] = (s / c).astype(_F32)

        big = ~small
        if np.any(big):
            ub = u[big]
            if name == "tanh":
                e2u = self._exp_full_vec(ldexpf_vec(ub, 1))
                den = (e2u + _F32(1.0)).astype(_F32)
                frac = (_F32(2.0) / den).astype(_F32)
                out[big] = (_F32(1.0) - frac).astype(_F32)
            else:
                eu = self._exp_full_vec(ub)
                einv = (_F32(1.0) / eu).astype(_F32)
                d = (eu - einv) if name == "sinh" else (eu + einv)
                out[big] = ldexpf_vec(d.astype(_F32), -1)
        return out

    def _rotate_pos_vec(self, z: np.ndarray) -> np.ndarray:
        """Count of positive rotation directions (decides fadd/fsub and
        isub/iadd totals; both arms have equal slot cost)."""
        n = np.zeros(z.shape, dtype=np.int64)
        for j, _ in enumerate(self._schedule):
            t = int(self._angles[j])
            pos = z >= 0
            n += pos
            z = np.where(pos, z - t, z + t)
        return n

    def _vectoring_pos_vec(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Count of positive vectoring directions.

        Vectoring decides on the float y component, so the full float32
        (x, y) recurrence is replicated bit for bit.  The scalar test is the
        three-way ``fcmp(y, 0) >= 0`` which sends NaN down the positive arm
        — hence ``~(y < 0)``, not ``y >= 0``.
        """
        n = np.zeros(x.shape, dtype=np.int64)
        for j, i in enumerate(self._schedule):
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = ~(y < 0)
            n += pos
            x = np.where(pos, (x - ys).astype(_F32), (x + ys).astype(_F32))
            y = np.where(pos, (y - xs).astype(_F32), (y + xs).astype(_F32))
        return n

    @staticmethod
    def _z_raw_vec(w: np.ndarray):
        """Scalar-faithful ``f2fx(w, _FRAC)`` over an array, or None when a
        raw word exceeds exact float64 integer range."""
        from repro.batch.keys import f2fx_exact_vec

        a_f = f2fx_exact_vec(w, _FRAC)
        if bool(np.any(np.abs(a_f) >= 2.0**52)):
            return None
        return a_f.astype(np.int64)

    def core_path_vec(self, u):
        from repro.batch.keys import pack_fields

        u = np.asarray(u, dtype=_F32)
        name = self.spec.name
        if name == "exp":
            z = self._z_raw_vec(u)
            if z is None:
                return None
            return self._rotate_pos_vec(z)

        if name in ("log", "log2", "log10"):
            x0 = (u + _F32(1.0)).astype(_F32)
            y0 = (u - _F32(1.0)).astype(_F32)
            return self._vectoring_pos_vec(x0, y0)

        if name == "sqrt":
            x0 = (u + _F32(0.25)).astype(_F32)
            y0 = (u - _F32(0.25)).astype(_F32)
            return self._vectoring_pos_vec(x0, y0)

        # sinh/cosh/tanh: one branch picks rotation vs the exp-identity
        # fallback.  The scalar test is the three-way fcmp(u, B) <= 0, which
        # sends NaN down the rotation path — hence ~(u > B), not (u <= B).
        small = ~(u > _F32(ROTATION_BOUND))
        z_small = self._z_raw_vec(np.where(small, u, _F32(0.0)).astype(_F32))
        if z_small is None:
            return None
        v = ldexpf_vec(u, 1) if name == "tanh" else u
        f, below = self._exp_reducer.residual_vec(v)
        z_big = self._z_raw_vec(f)
        if z_big is None:
            return None
        n_pos = np.where(
            small, self._rotate_pos_vec(z_small), self._rotate_pos_vec(z_big)
        )
        below_bit = (below & ~small).astype(np.int64)
        return pack_fields(
            [(small.astype(np.int64), 1), (below_bit, 1), (n_pos, 16)]
        )
