"""CORDIC angle tables, gains, and iteration schedules (Table 1, Section 2.2.1).

The circular mode rotates by ``atan(2^-i)`` with stretching factor
``sqrt(1 + 2^-2i)``; the hyperbolic mode rotates by ``atanh(2^-i)`` with
factor ``sqrt(1 - 2^-2i)`` and must *repeat* iterations 4, 13, 40, ... to
converge; the linear mode rotates by ``2^-i`` with no stretching.

Angle accumulators run in fixed point on the PIM core (they are only ever
compared against zero and added/subtracted, which are native single-cycle
integer ops), so the tables are generated here as integer raw words:

* circular angles in *quarter-turn* units (``atan(2^-i) / (pi/2)``), Q0.28 —
  the quarter-turn scaling folds the quadrant split of Figure 3 into two bit
  operations;
* hyperbolic angles in radians, Q1.30.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "CIRCULAR_ANGLE_FRAC_BITS",
    "HYPERBOLIC_ANGLE_FRAC_BITS",
    "circular_angle_table",
    "circular_gain",
    "hyperbolic_schedule",
    "hyperbolic_angle_table",
    "hyperbolic_gain",
    "Table1Row",
    "TABLE1",
]

#: Circular angles are stored in quarter-turn units with 28 fraction bits.
CIRCULAR_ANGLE_FRAC_BITS = 28

#: Hyperbolic angles are stored in radians with 30 fraction bits.
HYPERBOLIC_ANGLE_FRAC_BITS = 30


def circular_angle_table(iterations: int) -> np.ndarray:
    """Quarter-turn ``atan(2^-i)`` angles as Q0.28 raw words, i = 0..n-1."""
    if iterations < 1:
        raise ConfigurationError("CORDIC needs at least one iteration")
    i = np.arange(iterations, dtype=np.float64)
    quarter_turns = np.arctan(2.0 ** -i) / (math.pi / 2.0)
    return np.round(quarter_turns * (1 << CIRCULAR_ANGLE_FRAC_BITS)).astype(np.int64)


def circular_gain(iterations: int, start: int = 0) -> float:
    """``prod 1/sqrt(1 + 2^-2i)`` over i = start..start+n-1 (the K factor).

    Starting the rotation vector at this value makes the final vector land
    exactly on (cos, sin) without a post-multiply.
    """
    i = np.arange(start, start + iterations, dtype=np.float64)
    return float(np.prod(1.0 / np.sqrt(1.0 + 4.0 ** -i)))


def hyperbolic_schedule(iterations: int) -> List[int]:
    """The hyperbolic iteration index sequence with convergence repeats.

    Indices start at 1; indices 4, 13, 40, 121, ... (``3k+1``) are executed
    twice.  ``iterations`` counts executed steps, i.e. the length of the
    returned list.
    """
    if iterations < 1:
        raise ConfigurationError("CORDIC needs at least one iteration")
    schedule: List[int] = []
    i = 1
    next_repeat = 4
    while len(schedule) < iterations:
        schedule.append(i)
        if i == next_repeat and len(schedule) < iterations:
            schedule.append(i)  # the repeated step
            next_repeat = 3 * next_repeat + 1
        i += 1
    return schedule[:iterations]


def hyperbolic_angle_table(schedule: List[int]) -> np.ndarray:
    """``atanh(2^-i)`` in radians as Q1.30 raw words, following ``schedule``."""
    i = np.asarray(schedule, dtype=np.float64)
    angles = np.arctanh(2.0 ** -i)
    return np.round(angles * (1 << HYPERBOLIC_ANGLE_FRAC_BITS)).astype(np.int64)


def hyperbolic_gain(schedule: List[int]) -> float:
    """``prod sqrt(1 - 2^-2i)`` over the schedule (the hyperbolic K factor)."""
    i = np.asarray(schedule, dtype=np.float64)
    return float(np.prod(np.sqrt(1.0 - 4.0 ** -i)))


# ----------------------------------------------------------------------
# Table 1 of the paper, as verifiable data.


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1: a CORDIC mode's defining quantities."""

    mode: str
    #: Rotation matrix for iteration ``i`` and direction ``d`` (+1/-1).
    matrix: Callable[[int, int], np.ndarray]
    #: Rotation angle of iteration ``i``.
    angle: Callable[[int], float]
    #: Per-iteration stretching factor ``k_i``.
    stretch: Callable[[int], float]
    functions: Tuple[str, ...]


def _circular_matrix(i: int, d: int) -> np.ndarray:
    s = d * 2.0 ** -i
    return np.array([[1.0, -s], [s, 1.0]])


def _hyperbolic_matrix(i: int, d: int) -> np.ndarray:
    s = d * 2.0 ** -i
    return np.array([[1.0, s], [s, 1.0]])


def _linear_matrix(i: int, d: int) -> np.ndarray:
    s = d * 2.0 ** -i
    return np.array([[1.0, 0.0], [s, 1.0]])


TABLE1: Tuple[Table1Row, ...] = (
    Table1Row(
        mode="circular",
        matrix=_circular_matrix,
        angle=lambda i: math.atan(2.0 ** -i),
        stretch=lambda i: math.sqrt(1.0 + 4.0 ** -i),
        functions=("sin", "cos", "tan", "arctan"),
    ),
    Table1Row(
        mode="hyperbolic",
        matrix=_hyperbolic_matrix,
        angle=lambda i: math.atanh(2.0 ** -i),
        stretch=lambda i: math.sqrt(1.0 - 4.0 ** -i),
        functions=("sinh", "cosh", "tanh", "exp", "log", "sqrt", "atanh"),
    ),
    Table1Row(
        mode="linear",
        matrix=_linear_matrix,
        angle=lambda i: 2.0 ** -i,
        stretch=lambda i: 1.0,
        functions=("multiplication", "division"),
    ),
)
