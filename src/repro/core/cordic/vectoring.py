"""Circular-mode CORDIC vectoring: arctangent (extension beyond the paper).

Vectoring mode drives the y component of the vector ``(1, t)`` to zero; the
fixed-point angle accumulator then holds ``atan(t)`` directly.  Convergence
covers *any* argument (the angle table's total capacity, ~1.74 rad, exceeds
``pi/2``), so unlike the LUT methods no reciprocal range reduction — and
hence no float divide — is ever needed.  Only odd symmetry is applied.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.cordic.tables import (
    CIRCULAR_ANGLE_FRAC_BITS,
    circular_angle_table,
)
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.method import Method
from repro.core.range_reduction import OddSymmetricReducer
from repro.errors import ConfigurationError
from repro.fixedpoint import Q3_28, fx_mul
from repro.isa.counter import CycleCounter

__all__ = ["CordicArctan"]

_F32 = np.float32
_FRAC = CIRCULAR_ANGLE_FRAC_BITS

#: pi/2 in Q3.28 raw form: converts quarter-turn angles back to radians.
_HALF_PI_RAW = int(round((math.pi / 2.0) * (1 << _FRAC)))


class CordicArctan(Method):
    """Circular vectoring CORDIC computing atan(x) for any x."""

    method_name = "cordic"

    def __init__(self, spec: FunctionSpec, iterations: int = 24, **kwargs):
        if spec.name != "atan":
            raise ConfigurationError(
                f"CordicArctan computes atan, not {spec.name!r}"
            )
        super().__init__(spec, **kwargs)
        if iterations < 1:
            raise ConfigurationError("CORDIC needs at least one iteration")
        self.iterations = iterations
        self._angles = np.empty(0, dtype=np.int64)
        # Vectoring handles the full magnitude range itself; only the sign
        # needs folding (atan is odd).  This replaces the LUT methods'
        # reciprocal reducer and its float divide.
        if not self.assume_in_range:
            self.reducer = OddSymmetricReducer("odd")

    def _build(self) -> None:
        self._angles = circular_angle_table(self.iterations)

    def table_bytes(self) -> int:
        return self.iterations * 4 + 8

    def planned_table_bytes(self) -> int:
        return self.table_bytes()

    def host_entries(self) -> int:
        return self.iterations

    # ------------------------------------------------------------------

    def _vectoring(self, ctx: CycleCounter, y: np.float32) -> int:
        """Drive (1, y) to the x axis; return the angle in Q0.28 quarter-turns."""
        x = _F32(1.0)
        z = 0
        for i in range(self.iterations):
            t = int(self._load(ctx, self._angles, i))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.fcmp(y, _F32(0.0)) >= 0:
                x, y = ctx.fadd(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
            else:
                x, y = ctx.fsub(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
        return z

    def core_eval(self, ctx: CycleCounter, u):
        z = self._vectoring(ctx, _F32(u))
        rad = fx_mul(ctx, Q3_28, z, _HALF_PI_RAW)
        return ctx.fx2f(rad, _FRAC)

    def core_eval_vec(self, u):
        y = np.asarray(u, dtype=_F32)
        x = np.ones(y.shape, dtype=_F32)
        z = np.zeros(y.shape, dtype=np.int64)
        for i in range(self.iterations):
            t = int(self._angles[i])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = y >= 0
            x_pos = (x + ys).astype(_F32)
            x_neg = (x - ys).astype(_F32)
            y_pos = (y - xs).astype(_F32)
            y_neg = (y + xs).astype(_F32)
            x = np.where(pos, x_pos, x_neg)
            y = np.where(pos, y_pos, y_neg)
            z = np.where(pos, z + t, z - t)
        rad = (z * _HALF_PI_RAW) >> _FRAC
        return (rad / float(1 << _FRAC)).astype(_F32)

    def core_path_vec(self, u):
        # Both arms have equal slot cost, but charge iadd vs isub — the op
        # counts depend on the direction multiset.  Directions are decided
        # on the float y component, so replicate the float32 recurrence bit
        # for bit.  Scalar test is the three-way fcmp(y, 0) >= 0, which
        # sends NaN down the positive arm — hence ~(y < 0).
        y = np.asarray(u, dtype=_F32)
        x = np.ones(y.shape, dtype=_F32)
        n = np.zeros(y.shape, dtype=np.int64)
        for i in range(self.iterations):
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = ~(y < 0)
            n += pos
            x = np.where(pos, (x + ys).astype(_F32), (x - ys).astype(_F32))
            y = np.where(pos, (y - xs).astype(_F32), (y + xs).astype(_F32))
        return n
