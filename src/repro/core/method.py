"""Base class shared by every TransPimLib implementation method.

A :class:`Method` splits its life in two, mirroring the host/PIM split in the
paper (Figure 1(c)):

* :meth:`setup` runs on the *host*: it generates lookup/iteration tables in
  full float64 precision (the pseudo-inverse ``a_inv`` is only ever used
  here), rounds them to the PIM storage format, and optionally places them in
  a simulated memory region (WRAM scratchpad or MRAM bank).
* :meth:`evaluate` runs on the *PIM core*: a traced scalar computation whose
  every arithmetic step charges instruction costs through a
  :class:`~repro.isa.CycleCounter`.

:meth:`evaluate_vec` is the vectorized accuracy twin — bit-identical float32
semantics over numpy arrays, used for bulk RMSE sweeps over 2^16 inputs.
Tests assert scalar and vectorized paths agree.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, List, Optional

import numpy as np

from repro.core.functions.registry import FunctionSpec
from repro.core.range_reduction import Reducer, make_reducer
from repro.errors import ConfigurationError, SimulationError
from repro.isa.counter import CycleCounter, Tally
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.memory import MemoryRegion

__all__ = ["Method"]

_F32 = np.float32

_PLACEMENTS = ("wram", "mram")


class Method(ABC):
    """One implementation method bound to one target function."""

    #: Canonical method name (a key of ``METHOD_SUPPORT``).
    method_name: ClassVar[str] = "abstract"
    #: Whether the method linearly interpolates between table entries.
    interpolated: ClassVar[bool] = False
    #: Whether the PIM-side arithmetic is fixed-point.
    fixed_point: ClassVar[bool] = False

    def __init__(
        self,
        spec: FunctionSpec,
        *,
        placement: str = "mram",
        assume_in_range: bool = True,
        costs: OpCosts = UPMEM_COSTS,
    ):
        if placement not in _PLACEMENTS:
            raise ConfigurationError(
                f"placement must be one of {_PLACEMENTS}, got {placement!r}"
            )
        self.spec = spec
        self.placement = placement
        self.assume_in_range = assume_in_range
        self.costs = costs
        self.reducer: Reducer = make_reducer(spec, assume_in_range)
        self._ready = False

    # ------------------------------------------------------------------
    # host side

    @abstractmethod
    def _build(self) -> None:
        """Generate tables/constants on the host (float64, then rounded)."""

    @abstractmethod
    def table_bytes(self) -> int:
        """PIM memory consumed by this method's tables and constants."""

    @abstractmethod
    def host_entries(self) -> int:
        """Number of table entries the host generates (drives setup time)."""

    def setup(self, memory: Optional[MemoryRegion] = None) -> "Method":
        """Host-side setup; optionally reserve space in a PIM memory region.

        Placing into a region enforces the capacity constraint that caps
        non-interpolated LUT accuracy in the paper (Observation 4/Figure 7).
        Returns ``self`` for chaining.
        """
        self._build()
        self._ready = True
        if memory is not None:
            memory.allocate(self.table_bytes(), self._alloc_label())
        return self

    def planned_table_bytes(self) -> Optional[int]:
        """Predicted :meth:`table_bytes` *without* running :meth:`setup`.

        Lets sweeps skip building tables that cannot fit the target memory
        (the multi-second 2^22-entry builds dominate benchmark wall-clock).
        ``None`` means the footprint is only known after building (adaptive
        segmentation); callers must then build and check ``table_bytes()``.
        """
        if self._ready:
            return self.table_bytes()
        return None

    def set_placement(self, placement: str) -> None:
        """Retarget the tables to WRAM or MRAM (composites recurse).

        Placement only affects the traced load costs, so a built method can
        be re-pointed without rebuilding — sweeps exploit this to build each
        table once for both placement curves.
        """
        if placement not in _PLACEMENTS:
            raise ConfigurationError(
                f"placement must be one of {_PLACEMENTS}, got {placement!r}"
            )
        self.placement = placement

    def _alloc_label(self) -> str:
        return f"{self.method_name}:{self.spec.name}"

    def _require_ready(self) -> None:
        if not self._ready:
            raise SimulationError(
                f"{self._alloc_label()}: call setup() before evaluating"
            )

    # ------------------------------------------------------------------
    # PIM side

    @abstractmethod
    def core_eval(self, ctx: CycleCounter, u: np.float32) -> np.float32:
        """Traced evaluation for an input already inside the natural range."""

    @abstractmethod
    def core_eval_vec(self, u: np.ndarray) -> np.ndarray:
        """Vectorized twin of :meth:`core_eval`."""

    def evaluate(self, ctx: CycleCounter, x: float) -> np.float32:
        """Traced evaluation of one element, including range handling."""
        self._require_ready()
        u, state = self.reducer.reduce(ctx, _F32(x))
        y = self.core_eval(ctx, u)
        return self.reducer.reconstruct(ctx, y, state)

    def evaluate_vec(self, x: np.ndarray) -> np.ndarray:
        """Vectorized evaluation of an array, including range handling."""
        self._require_ready()
        u, state = self.reducer.reduce_vec(np.asarray(x, dtype=_F32))
        y = self.core_eval_vec(u)
        return self.reducer.reconstruct_vec(y, state)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Convenience: set up on first use, then evaluate vectorized."""
        if not self._ready:
            self.setup()
        return self.evaluate_vec(x)

    # ------------------------------------------------------------------
    # cost-path classification (the contract behind repro.batch)

    #: Core path keys must fit below this bit position; the reducer key is
    #: packed above it.
    CORE_KEY_BITS: ClassVar[int] = 48

    def core_path_vec(self, u: np.ndarray) -> Optional[np.ndarray]:
        """Cost-path key of :meth:`core_eval` for each (reduced) element.

        Two elements share a key exactly when the traced ``core_eval`` takes
        the same branches for both — and therefore charges the same
        instruction tally.  Keys are non-negative int64 below
        ``2**CORE_KEY_BITS``.  ``None`` (the default) means the method does
        not classify and ``repro.batch`` falls back to scalar tracing.
        """
        return None

    def classify_paths(self, x: np.ndarray) -> Optional[np.ndarray]:
        """Cost-path key of :meth:`evaluate` (reducer + core) per element.

        Combines the reducer's :meth:`~repro.core.range_reduction.Reducer.path_key_vec`
        with :meth:`core_path_vec` on the reduced inputs.  Returns ``None``
        when either layer cannot classify.  Keys are opaque: equal key means
        bit-identical instruction tally (enforced by the differential harness
        in ``tests/batch/``).
        """
        self._require_ready()
        x = np.asarray(x, dtype=_F32)
        rkey = self.reducer.path_key_vec(x)
        if rkey is None:
            return None
        u, _ = self.reducer.reduce_vec(x)
        ckey = self.core_path_vec(u)
        if ckey is None:
            return None
        return (np.asarray(rkey, dtype=np.int64) << self.CORE_KEY_BITS) | \
            np.asarray(ckey, dtype=np.int64)

    def cost_paths(self, xs: np.ndarray) -> Optional[List["CostPath"]]:
        """Enumerate the distinct cost paths present in ``xs``.

        Returns one :class:`~repro.batch.CostPath` (key, representative
        input, element count, traced tally) per distinct path, or ``None``
        when this method cannot classify.
        """
        from repro.batch import enumerate_paths
        keys = self.classify_paths(xs)
        if keys is None:
            return None
        return enumerate_paths(self, np.asarray(xs, dtype=_F32), keys)

    # ------------------------------------------------------------------
    # measurement helpers

    def element_tally(self, x: float) -> Tally:
        """Instruction tally for evaluating one element (no streaming costs)."""
        ctx = CycleCounter(self.costs)
        self.evaluate(ctx, x)
        return ctx.reset()

    def mean_slots(self, xs: np.ndarray, batch: bool = True) -> float:
        """Average per-element instruction slots over a sample of inputs.

        Uses the batched traced-execution engine (one scalar trace per
        distinct cost path) when the method classifies its paths; otherwise
        falls back to an element-by-element scalar loop.  Both give the same
        result bit for bit; ``batch=False`` forces the scalar loop.
        """
        from repro.batch import batch_tally
        xs = np.asarray(xs, dtype=_F32)
        if xs.size == 0:
            raise ConfigurationError("mean_slots needs at least one input")
        result = batch_tally(self, xs, batch=batch)
        return result.tally.slots / xs.size

    # ------------------------------------------------------------------
    # traced table access honoring placement

    def _load(self, ctx: CycleCounter, table: np.ndarray, index: int):
        """Load one table entry from the configured memory (WRAM or MRAM)."""
        if self.placement == "wram":
            return ctx.wram_read(table, index)
        return ctx.mram_read(table, index, int(table.itemsize))

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        suffix = " (interpolated)" if self.interpolated else ""
        kind = "fixed-point" if self.fixed_point else "float32"
        return (
            f"{self.method_name}{suffix} {self.spec.name} [{kind}, "
            f"{self.placement.upper()}, {self.table_bytes()} B]"
        )
