"""CORDIC + LUT combined method (Section 3.3.2).

Following the idea the paper cites, the first ``lut_bits`` worth of CORDIC
rotation is resolved by a single table lookup: the top bits of the fixed-point
angle accumulator index a table of pre-rotated vectors (scaled so that the
*remaining* iterations' stretch factor cancels), and CORDIC continues from a
mid-sequence iteration on the residual angle.  This trades a modest table
(whose size is independent of the target accuracy, keeping setup time flat)
for the first — and most expensive to replace — iterations.

Applies to rotation-mode CORDIC only: in vectoring mode (log, sqrt) the
rotation directions depend on the data vector, so no prefix can be
precomputed from the angle alone.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.core.cordic.circular import CordicCircular
from repro.core.cordic.hyperbolic import ROTATION_BOUND, CordicHyperbolic
from repro.core.cordic.tables import (
    CIRCULAR_ANGLE_FRAC_BITS,
    HYPERBOLIC_ANGLE_FRAC_BITS,
    circular_angle_table,
    circular_gain,
    hyperbolic_angle_table,
    hyperbolic_gain,
    hyperbolic_schedule,
)
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["HybridCircular", "HybridHyperbolic"]

_F32 = np.float32


class HybridCircular(CordicCircular):
    """CORDIC+LUT for sin/cos/tan: a 2^lut_bits-entry table replaces the
    first ``lut_bits`` iterations of the circular rotation."""

    method_name = "cordic_lut"

    def __init__(self, spec: FunctionSpec, iterations: int = 24,
                 lut_bits: int = 6, **kwargs):
        super().__init__(spec, iterations=iterations, **kwargs)
        if not 1 <= lut_bits < iterations:
            raise ConfigurationError(
                f"lut_bits must be in [1, iterations), got {lut_bits} "
                f"with {iterations} iterations"
            )
        self.lut_bits = lut_bits
        self._xtab = np.empty(0, dtype=_F32)
        self._ytab = np.empty(0, dtype=_F32)

    def _build(self) -> None:
        frac = CIRCULAR_ANGLE_FRAC_BITS
        j = self.lut_bits
        self._angles = circular_angle_table(self.iterations)
        rest_gain = circular_gain(self.iterations - j, start=j)
        idx = np.arange(1 << j, dtype=np.float64)
        theta = idx * 2.0 ** -j * (math.pi / 2.0)  # cell left edges, radians
        self._xtab = (np.cos(theta) * rest_gain).astype(_F32)
        self._ytab = (np.sin(theta) * rest_gain).astype(_F32)

    def table_bytes(self) -> int:
        # Pre-rotated vector table + the residual angle table + constants.
        return (1 << self.lut_bits) * 8 + (self.iterations - self.lut_bits) * 4 + 8

    def host_entries(self) -> int:
        return 2 * (1 << self.lut_bits) + (self.iterations - self.lut_bits)

    def _rotate(self, ctx: CycleCounter, z: int) -> Tuple[np.float32, np.float32]:
        frac = CIRCULAR_ANGLE_FRAC_BITS
        j = self.lut_bits
        idx = ctx.shr(z, frac - j)
        z = ctx.iand(z, (1 << (frac - j)) - 1)
        x = self._load(ctx, self._xtab, idx)
        y = self._load(ctx, self._ytab, idx)
        for i in range(j, self.iterations):
            t = int(self._load(ctx, self._angles, i))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.icmp(z, 0) >= 0:
                x, y = ctx.fsub(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
            else:
                x, y = ctx.fadd(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
        return x, y

    def _rotate_vec(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        frac = CIRCULAR_ANGLE_FRAC_BITS
        j = self.lut_bits
        idx = z >> (frac - j)
        z = z & ((1 << (frac - j)) - 1)
        x = self._xtab[idx]
        y = self._ytab[idx]
        for i in range(j, self.iterations):
            t = int(self._angles[i])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos = z >= 0
            x = np.where(pos, (x - ys).astype(_F32), (x + ys).astype(_F32))
            y = np.where(pos, (y + xs).astype(_F32), (y - xs).astype(_F32))
            z = np.where(pos, z - t, z + t)
        return x, y

    def _rotate_pos_vec(self, z: np.ndarray) -> np.ndarray:
        # The table resolves the top lut_bits of the angle; directions are
        # decided on the masked residual over the remaining iterations.
        frac = CIRCULAR_ANGLE_FRAC_BITS
        j = self.lut_bits
        z = z & ((1 << (frac - j)) - 1)
        n = np.zeros(z.shape, dtype=np.int64)
        for i in range(j, self.iterations):
            t = int(self._angles[i])
            pos = z >= 0
            n += pos
            z = np.where(pos, z - t, z + t)
        return n


class HybridHyperbolic(CordicHyperbolic):
    """CORDIC+LUT for exp/sinh/cosh/tanh: the table covers the rotation's
    convergence interval [0, 1.12) at 2^-lut_bits resolution."""

    method_name = "cordic_lut"

    def __init__(self, spec: FunctionSpec, iterations: int = 24,
                 lut_bits: int = 6, **kwargs):
        if spec.name in ("log", "sqrt"):
            raise ConfigurationError(
                "CORDIC+LUT does not apply to vectoring mode (log, sqrt)"
            )
        super().__init__(spec, iterations=iterations, **kwargs)
        if lut_bits < 1:
            raise ConfigurationError("lut_bits must be at least 1")
        self.lut_bits = lut_bits
        self._xtab = np.empty(0, dtype=_F32)
        self._ytab = np.empty(0, dtype=_F32)
        self._skip = 0  # schedule positions resolved by the table

    def _build(self) -> None:
        j = self.lut_bits
        full = hyperbolic_schedule(self.iterations + 64)
        # Skip schedule positions whose rotation the table already resolves:
        # the residual angle is below 2^-j, so start at index i ~ j.
        skip = next(pos for pos, i in enumerate(full) if i >= j)
        self._schedule = hyperbolic_schedule(self.iterations + skip)[skip:]
        self._skip = skip
        self._angles = hyperbolic_angle_table(self._schedule)
        self._gain = _F32(hyperbolic_gain(self._schedule))
        self._inv_gain = _F32(1.0 / hyperbolic_gain(self._schedule))
        entries = int(math.ceil(ROTATION_BOUND * (1 << j))) + 1
        idx = np.arange(entries, dtype=np.float64)
        theta = idx * 2.0 ** -j
        # Pre-divide by the remaining iterations' shrink factor P.
        self._xtab = (np.cosh(theta) / float(self._gain)).astype(_F32)
        self._ytab = (np.sinh(theta) / float(self._gain)).astype(_F32)

    def table_bytes(self) -> int:
        return self._xtab.size * 8 + len(self._schedule) * 4 + 8

    def planned_table_bytes(self):
        # The trimmed schedule (and hence the footprint) is computed during
        # _build; fall back to the post-setup default.
        from repro.core.method import Method
        return Method.planned_table_bytes(self)

    def host_entries(self) -> int:
        return 2 * int(self._xtab.size) + len(self._schedule)

    def _rotate(self, ctx: CycleCounter, z: int) -> Tuple[np.float32, np.float32]:
        frac = HYPERBOLIC_ANGLE_FRAC_BITS
        j = self.lut_bits
        idx = ctx.shr(z, frac - j)
        z = ctx.iand(z, (1 << (frac - j)) - 1)
        x = self._load(ctx, self._xtab, idx)
        y = self._load(ctx, self._ytab, idx)
        for pos, i in enumerate(self._schedule):
            t = int(self._load(ctx, self._angles, pos))
            xs = ctx.ldexp(x, -i)
            ys = ctx.ldexp(y, -i)
            ctx.branch()
            if ctx.icmp(z, 0) >= 0:
                x, y = ctx.fadd(x, ys), ctx.fadd(y, xs)
                z = ctx.isub(z, t)
            else:
                x, y = ctx.fsub(x, ys), ctx.fsub(y, xs)
                z = ctx.iadd(z, t)
        return x, y

    def _rotate_vec(self, z: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        frac = HYPERBOLIC_ANGLE_FRAC_BITS
        j = self.lut_bits
        idx = z >> (frac - j)
        z = z & ((1 << (frac - j)) - 1)
        x = self._xtab[idx]
        y = self._ytab[idx]
        for pos, i in enumerate(self._schedule):
            t = int(self._angles[pos])
            xs = ldexpf_vec(x, -i)
            ys = ldexpf_vec(y, -i)
            pos_mask = z >= 0
            x = np.where(pos_mask, (x + ys).astype(_F32), (x - ys).astype(_F32))
            y = np.where(pos_mask, (y + xs).astype(_F32), (y - xs).astype(_F32))
            z = np.where(pos_mask, z - t, z + t)
        return x, y

    def _rotate_pos_vec(self, z: np.ndarray) -> np.ndarray:
        # Mask off the table-resolved top bits, then count directions over
        # the trimmed schedule (already shortened by ``_skip`` in _build).
        frac = HYPERBOLIC_ANGLE_FRAC_BITS
        j = self.lut_bits
        z = z & ((1 << (frac - j)) - 1)
        n = np.zeros(z.shape, dtype=np.int64)
        for pos, _ in enumerate(self._schedule):
            t = int(self._angles[pos])
            is_pos = z >= 0
            n += is_pos
            z = np.where(is_pos, z - t, z + t)
        return n
