"""Combined direct-float + LDEXP fuzzy lookup table (DL-LUT, Section 3.3.1).

The DL-LUT removes the D-LUT's gap between zero and ``2^e_min`` by covering
``[0, 2^e_min)`` with a small uniform L-LUT whose density matches the first
D-LUT cell (``2^-(m - e_min)`` spacing, i.e. exactly ``2^m`` low entries),
and dispatching on one float compare per lookup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.batch.keys import pack_fields
from repro.core.functions.registry import FunctionSpec
from repro.core.lut.base import FuzzyLUT
from repro.core.lut.dlut import DLUT, DLUTInterpolated
from repro.core.lut.llut import LLUT, LLUTInterpolated
from repro.isa.counter import CycleCounter

__all__ = ["DLLUT", "DLLUTInterpolated"]

_F32 = np.float32


class _DLLUTBase(FuzzyLUT):
    """Shared composition logic for both DL-LUT variants."""

    _LOW_CLS: type
    _HIGH_CLS: type

    def __init__(
        self,
        spec: FunctionSpec,
        mant_bits: int = 8,
        e_min: int = -14,
        e_max: Optional[int] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        # The inner parts never range-reduce themselves: the DL-LUT's own
        # reducer already normalized the input, and dispatch happens here.
        inner_kwargs = dict(kwargs)
        inner_kwargs["assume_in_range"] = True
        inner_kwargs.setdefault("placement", self.placement)
        inner_kwargs.setdefault("costs", self.costs)
        low_density = mant_bits - e_min
        self.boundary = _F32(2.0 ** e_min)
        self.low = self._LOW_CLS(
            spec,
            density_log2=low_density,
            interval=(0.0, float(self.boundary)),
            **inner_kwargs,
        )
        self.high = self._HIGH_CLS(
            spec,
            mant_bits=mant_bits,
            e_min=e_min,
            e_max=e_max,
            **inner_kwargs,
        )

    def _build(self) -> None:
        self.low.setup()
        self.high.setup()
        # Keep a combined view so ``entries`` reflects total footprint.
        self._table = np.concatenate([self.low._table, self.high._table])

    def table_bytes(self) -> int:
        return self.low.table_bytes() + self.high.table_bytes()

    def planned_table_bytes(self):
        low = self.low.planned_table_bytes()
        high = self.high.planned_table_bytes()
        if low is None or high is None:
            return None
        return low + high

    def set_placement(self, placement: str) -> None:
        super().set_placement(placement)
        self.low.set_placement(placement)
        self.high.set_placement(placement)

    def host_entries(self) -> int:
        return self.low.entries + self.high.entries

    def core_eval(self, ctx: CycleCounter, u):
        if ctx.fcmp(u, self.boundary) < 0:
            ctx.branch()
            return self.low.core_eval(ctx, u)
        return self.high.core_eval(ctx, u)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        below = u < self.boundary
        out = self.high.core_eval_vec(u)
        if np.any(below):
            out = out.copy()
            out[below] = self.low.core_eval_vec(u[below])
        return out

    def core_path_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        below = u < self.boundary   # fcmp < 0: NaN dispatches high
        low_key = self.low.core_path_vec(u)
        high_key = self.high.core_path_vec(u)
        if low_key is None or high_key is None:
            return None
        inner = np.where(below, low_key, high_key)
        return pack_fields([(below, 1), (inner, 8)])


class DLLUT(_DLLUTBase):
    """Non-interpolated DL-LUT."""

    method_name = "dllut"
    interpolated = False
    _LOW_CLS = LLUT
    _HIGH_CLS = DLUT


class DLLUTInterpolated(_DLLUTBase):
    """Interpolated DL-LUT."""

    method_name = "dllut_i"
    interpolated = True
    _LOW_CLS = LLUTInterpolated
    _HIGH_CLS = DLUTInterpolated
