"""Segmented L-LUT: curvature-adaptive spacing (extension beyond the paper).

Section 2.2.2 observes that a good table "places more entries where the
function's slope changes quickly" — spacing should follow the second
derivative — but the paper's uniform M/L-LUTs cannot exploit it, and its
D-LUT ties the spacing to the input's magnitude rather than to curvature.
This method closes the gap with a classic two-level design:

1. a *uniform* first level splits the interval into ``2^seg_bits`` segments
   (power-of-two width, so the segment index is one magic add + mask, like
   the L-LUT);
2. each segment carries its own power-of-two density, chosen by the host
   from the measured local curvature so every segment contributes the same
   error; the per-segment descriptor (value-table offset, entry count,
   magic constant, density) is one 16-byte record.

Per lookup the PIM core pays two magic adds, two bit extractions, one
descriptor load, and one value load — about 110 slots more than the flat
L-LUT — in exchange for a table sized by the *integral* of sqrt-curvature
instead of its maximum.  For curvature-concentrated functions (atanh near
its pole, GELU's kink region) this cuts memory severalfold at equal
accuracy; the ablation benchmark quantifies it.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.batch.keys import clamp_zone, pack_fields
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.lut.base import FuzzyLUT
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["SegmentedLLUT"]

_F32 = np.float32
_MASK22 = (1 << 22) - 1


def _magic_constant(p: float, density_log2: int) -> np.float32:
    """The L-LUT magic constant for origin ``p`` and density ``2^n``."""
    return _F32(1.5 * 2.0 ** (23 - density_log2) - p)


class SegmentedLLUT(FuzzyLUT):
    """Interpolated two-level L-LUT with per-segment curvature-set density."""

    method_name = "slut_i"
    interpolated = True

    def __init__(
        self,
        spec: FunctionSpec,
        target_rmse: float = 1e-7,
        seg_bits: int = 4,
        interval: Optional[Tuple[float, float]] = None,
        max_density_log2: int = 22,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        if not 1 <= seg_bits <= 10:
            raise ConfigurationError("seg_bits must be in [1, 10]")
        if target_rmse <= 0:
            raise ConfigurationError("target_rmse must be positive")
        lo, hi = interval if interval is not None else spec.natural_range
        if not hi > lo:
            raise ConfigurationError("interval must be non-degenerate")
        self.lo, self.hi = float(lo), float(hi)
        self.seg_bits = seg_bits
        self.target_rmse = float(target_rmse)
        self.max_density_log2 = max_density_log2
        # Segment grid: power-of-two width covering [p, p + 2^seg_bits * w).
        width = (self.hi - self.lo) / (1 << seg_bits)
        self.seg_width_log2 = -int(math.floor(math.log2(width)))
        self.p = (math.floor(self.lo * 2.0 ** self.seg_width_log2)
                  / 2.0 ** self.seg_width_log2)
        self.n_segments = int(math.ceil(
            (self.hi - self.p) * 2.0 ** self.seg_width_log2)) + 1
        self._seg_magic = _magic_constant(self.p, self.seg_width_log2)
        # Per-segment descriptors, filled by _build.
        self._offsets = np.empty(0, dtype=np.int64)
        self._counts = np.empty(0, dtype=np.int64)
        self._magics = np.empty(0, dtype=_F32)
        self._densities = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # host side

    def _segment_density(self, s_lo: float, s_hi: float) -> int:
        """Density needed so this segment's interpolation RMSE ~ target."""
        if s_hi <= s_lo:  # degenerate trailing guard segment
            return self.seg_width_log2
        xs = np.linspace(s_lo, s_hi, 64)
        h = (s_hi - s_lo) / 512
        f = self.spec.reference
        xs = np.clip(xs, self.lo + h, self.hi - h)
        f2 = (f(xs + h) - 2 * f(xs) + f(xs - h)) / (h * h)
        f2 = f2[np.isfinite(f2)]
        rms = float(np.sqrt(np.mean(np.square(f2)))) if f2.size else 1e-30
        # interp rmse ~ rms(f'') * cell^2 / sqrt(120)
        cell = (self.target_rmse * math.sqrt(120.0) / rms) ** 0.5
        n = int(math.ceil(-math.log2(max(cell, 1e-12))))
        return max(self.seg_width_log2, min(n, self.max_density_log2))

    def _build(self) -> None:
        seg_w = 2.0 ** -self.seg_width_log2
        tables = []
        offsets, counts, magics, densities = [], [], [], []
        offset = 0
        for k in range(self.n_segments):
            s_lo = self.p + k * seg_w
            s_hi = min(s_lo + seg_w, self.hi + seg_w)
            n_k = self._segment_density(s_lo, min(s_hi, self.hi))
            entries = (1 << (n_k - self.seg_width_log2)) + 2
            idx = np.arange(entries, dtype=np.float64)
            points = s_lo + idx * 2.0 ** -n_k
            with np.errstate(all="ignore"):  # guard points may leave the domain
                values = np.asarray(self.spec.reference(points),
                                    dtype=np.float64)
            # Entries past the interval normally extrapolate naturally, but
            # the function may be undefined there (atanh at 1): replace
            # non-finite values with the interval-end value.
            bad = ~np.isfinite(values)
            if np.any(bad):
                values[bad] = float(self.spec.reference(
                    np.asarray([self.hi]))[0])
            tables.append(values.astype(_F32))
            offsets.append(offset)
            counts.append(entries)
            magics.append(_magic_constant(s_lo, n_k))
            densities.append(n_k)
            offset += entries
        self._table = np.concatenate(tables)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._counts = np.asarray(counts, dtype=np.int64)
        self._magics = np.asarray(magics, dtype=_F32)
        self._densities = np.asarray(densities, dtype=np.int64)

    def table_bytes(self) -> int:
        """Value table plus 16-byte per-segment descriptors."""
        return int(self._table.size) * 4 + self.n_segments * 16

    # ------------------------------------------------------------------
    # PIM side, traced

    def core_eval(self, ctx: CycleCounter, u):
        # First level: segment index, exactly like an L-LUT address.
        t = ctx.fadd(u, self._seg_magic)
        bits = ctx.bitcast_f2i(t)
        if bits & 0x80000000:  # lint: allow(signed view of the register, free)
            bits -= 1 << 32  # lint: allow(signed view of the bit pattern, free on hardware)
        seg = ctx.iand(bits, _MASK22)
        # The magic add rounds to nearest; segment selection needs floor.
        grid1 = ctx.fsub(t, self._seg_magic)
        if ctx.fcmp(u, grid1) < 0:
            ctx.branch()
            seg = ctx.isub(seg, 1)
        seg = self._clamp_index(ctx, seg, self.n_segments - 1)
        # Descriptor load (one 16-byte WRAM/MRAM access).
        if self.placement == "wram":
            ctx.wram_read(self._offsets, seg)
        else:
            ctx.mram_read(self._offsets, seg, 16)
        offset = int(self._offsets[seg])
        count = int(self._counts[seg])
        magic = self._magics[seg]
        n_k = int(self._densities[seg])
        # Second level: local index within the segment.
        t2 = ctx.fadd(u, magic)
        bits2 = ctx.bitcast_f2i(t2)
        idx = ctx.iand(bits2, _MASK22)
        grid = ctx.fsub(t2, magic)
        d = ctx.fsub(u, grid)
        delta = ctx.ldexp(d, n_k)
        if ctx.fcmp(delta, _F32(0.0)) < 0:
            ctx.branch()
            idx = ctx.isub(idx, 1)
            delta = ctx.fadd(delta, _F32(1.0))
        idx = self._clamp_index(ctx, idx, count - 2)  # lint: allow(descriptor stores count-2)
        base = ctx.iadd(offset, idx)
        l0 = self._load(ctx, self._table, base)
        l1 = self._load(ctx, self._table, ctx.iadd(base, 1))
        diff = ctx.fsub(l1, l0)
        prod = ctx.fmul(diff, delta)
        return ctx.fadd(l0, prod)

    # ------------------------------------------------------------------
    # vectorized twin

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        t = (u + self._seg_magic).astype(_F32)
        seg = (t.view(np.int32).astype(np.int64)) & _MASK22
        grid1 = (t - self._seg_magic).astype(_F32)
        seg = seg - (u < grid1)
        seg = np.clip(seg, 0, self.n_segments - 1)
        offset = self._offsets[seg]
        count = self._counts[seg]
        magic = self._magics[seg]
        n_k = self._densities[seg]

        t2 = (u + magic).astype(_F32)
        idx = (t2.view(np.int32).astype(np.int64)) & _MASK22
        grid = (t2 - magic).astype(_F32)
        d = (u - grid).astype(_F32)
        delta = ldexpf_vec(d, n_k.astype(np.int32))
        neg = delta < 0
        idx = idx - neg
        delta = np.where(neg, (delta + _F32(1.0)).astype(_F32), delta)
        idx = np.clip(idx, 0, count - 2)
        base = offset + idx
        l0 = self._table[base]
        l1 = self._table[base + 1]
        return (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)

    def core_path_vec(self, u):
        # The second level's op sequence is segment-independent, so only the
        # branch bits and clamp zones matter — not the segment identity.
        u = np.asarray(u, dtype=_F32)
        t = (u + self._seg_magic).astype(_F32)
        seg = (t.view(np.int32).astype(np.int64)) & _MASK22
        grid1 = (t - self._seg_magic).astype(_F32)
        seg_fix = u < grid1            # fcmp < 0: NaN takes no fix
        seg = seg - seg_fix
        seg_zone = clamp_zone(seg, self.n_segments - 1)
        seg_c = np.clip(seg, 0, self.n_segments - 1)
        count = self._counts[seg_c]
        magic = self._magics[seg_c]
        n_k = self._densities[seg_c]

        t2 = (u + magic).astype(_F32)
        idx = (t2.view(np.int32).astype(np.int64)) & _MASK22
        grid = (t2 - magic).astype(_F32)
        d = (u - grid).astype(_F32)
        delta = ldexpf_vec(d, n_k.astype(np.int32))
        neg = delta < 0
        idx = idx - neg
        idx_zone = clamp_zone(idx, count - 2)
        return pack_fields([
            (seg_fix, 1), (seg_zone, 2), (neg, 1), (idx_zone, 2),
        ])
