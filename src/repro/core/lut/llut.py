"""LDEXP-based fuzzy lookup table (L-LUT, Section 3.2.2).

The density is constrained to a power of two, ``k = 2^n``, which turns the
M-LUT's float multiply into exponent arithmetic.  The address is obtained
with a single float *add* of a precomputed "magic" constant: adding
``C = 1.5 * 2^(23-n) - p`` forces the float32 rounding point to the ``2^-n``
grid, after which the low mantissa bits of the sum *are* the table index.
This is the multiply-free address generation that gives L-LUT its ~5x win
over M-LUT in Figure 5 (the magic constant is the ldexp-family bit trick;
its value is exactly ``round((x - p) * 2^n)``).

For tables too dense for the trick's mantissa headroom (more than ~2^22
entries, used only by extreme non-interpolated accuracy points), the address
falls back to an explicit ``ldexp`` plus rounding, still multiply-free.

Fixed-point variants (s3.28, the paper's format) do the same arithmetic on
raw integer words: the interpolation multiply becomes an emulated integer
multiply, roughly 3x cheaper than the softfloat one — the mechanism behind
the paper's fixed-vs-float observations.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.batch.keys import (
    clamp_zone,
    f2fx_exact_vec,
    ffloor_index_vec,
    fround_index_vec,
    pack_fields,
    raw_index_clip,
)
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.lut.base import FuzzyLUT, build_fixed_table, build_table
from repro.errors import ConfigurationError
from repro.fixedpoint import Q3_28, fx_mul, fx_mul_vec
from repro.isa.counter import CycleCounter

__all__ = ["LLUT", "LLUTInterpolated", "LLUTFixed", "LLUTInterpolatedFixed"]

_F32 = np.float32
_MASK22 = (1 << 22) - 1


class _LLUTGeometry:
    """Shared power-of-two grid geometry for all L-LUT variants."""

    def __init__(self, spec: FunctionSpec, density_log2: int,
                 interval: Optional[Tuple[float, float]]):
        self.n = int(density_log2)
        lo, hi = interval if interval is not None else spec.natural_range
        if not hi > lo:
            raise ConfigurationError("L-LUT interval must be non-degenerate")
        self.lo, self.hi = float(lo), float(hi)
        # Origin snapped onto the 2^-n grid so that grid points (and the
        # magic constant) are exactly representable.
        self.p = math.floor(self.lo * 2.0 ** self.n) / 2.0 ** self.n
        self.step = 2.0 ** (-self.n)
        #: +2: one entry for the right endpoint, one interpolation guard.
        self.entries = int(math.ceil((self.hi - self.p) * 2.0 ** self.n)) + 2
        # Magic-add validity: the scaled offset must fit below the rounding
        # point's mantissa headroom (2^22 grid steps).
        self.magic_ok = (self.hi - self.p) < 2.0 ** (22 - self.n)
        if self.magic_ok:
            magic = 1.5 * 2.0 ** (23 - self.n)
            self.magic = _F32(magic)
            self.c = _F32(magic - self.p)  # exact: p is on the 2^-n grid
            # Integer guards: the trick is only valid while the sum stays in
            # the magic constant's binade.  Inputs below p drop a binade
            # (clamp to index 0); inputs far above hi overflow it (clamp
            # high).  IEEE floats of one sign order like their bit patterns,
            # so both guards are single native integer compares.
            from repro.core.float_bits import float_to_bits
            self.lo_bits = int(float_to_bits(self.magic))
            self.hi_bits = int(float_to_bits(_F32(2.0 * magic)))

    def a_inv(self, i: np.ndarray) -> np.ndarray:
        """Exact preimage of address ``i`` (host side, float64)."""
        return self.p + np.asarray(i, dtype=np.float64) * self.step


class LLUT(FuzzyLUT):
    """Non-interpolated L-LUT: zero float multiplies per lookup."""

    method_name = "llut"
    interpolated = False

    def __init__(
        self,
        spec: FunctionSpec,
        density_log2: int = 10,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _LLUTGeometry(spec, density_log2, interval)

    def _build(self) -> None:
        self._table = build_table(
            self.spec.reference, self.geom.a_inv, self.geom.entries
        )

    def planned_table_bytes(self) -> int:
        return self.geom.entries * self.ENTRY_BYTES

    def core_eval(self, ctx: CycleCounter, u):
        g = self.geom
        if g.magic_ok:
            t = ctx.fadd(u, g.c)
            bits = ctx.bitcast_f2i(t)
            if bits & 0x80000000:  # lint: allow(signed view of the register, free)
                bits -= 1 << 32  # lint: allow(signed view, free on hardware)
            if ctx.icmp(bits, g.lo_bits) < 0:      # u below p: binade drop
                ctx.branch()
                bits = g.lo_bits
            if ctx.icmp(bits, g.hi_bits) >= 0:     # far above hi: overflow
                ctx.branch()
                bits = g.hi_bits - 1
            idx = ctx.iand(bits, _MASK22)
        else:
            v = ctx.fsub(u, _F32(g.p)) if g.p != 0 else u
            w = ctx.ldexp(v, g.n)
            idx = ctx.fround(w)
        idx = self._clamp_index(ctx, idx, self.entries - 1)
        return self._load(ctx, self._table, idx)

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits = t.view(np.int32).astype(np.int64)   # signed view
            bits = np.clip(bits, g.lo_bits, g.hi_bits - 1)
            idx = bits & _MASK22
        else:
            v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
            w = ldexpf_vec(v, g.n)
            idx = np.floor(w.astype(np.float64) + 0.5).astype(np.int64)
        idx = np.clip(idx, 0, self.entries - 1)
        return self._table[idx]

    def core_path_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits = t.view(np.int32).astype(np.int64)
            b_lo = bits < g.lo_bits
            b_hi = (~b_lo) & (bits >= g.hi_bits)
            idx = np.clip(bits, g.lo_bits, g.hi_bits - 1) & _MASK22
            return pack_fields([
                (b_lo, 1), (b_hi, 1),
                (clamp_zone(idx, self.entries - 1), 2),
            ])
        v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
        w = ldexpf_vec(v, g.n)
        return clamp_zone(fround_index_vec(w), self.entries - 1)


class LLUTInterpolated(FuzzyLUT):
    """Interpolated L-LUT: one float multiply per lookup (the interpolation).

    The grid value is reconstructed exactly from the magic sum
    (``g = t - C``, exact by Sterbenz), giving the interpolation weight with
    two subtracts and one ``ldexp`` — no address multiply.
    """

    method_name = "llut_i"
    interpolated = True

    def __init__(
        self,
        spec: FunctionSpec,
        density_log2: int = 10,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _LLUTGeometry(spec, density_log2, interval)

    def _build(self) -> None:
        self._table = build_table(
            self.spec.reference, self.geom.a_inv, self.geom.entries
        )

    def planned_table_bytes(self) -> int:
        return self.geom.entries * self.ENTRY_BYTES

    def core_eval(self, ctx: CycleCounter, u):
        g = self.geom
        if g.magic_ok:
            t = ctx.fadd(u, g.c)
            bits = ctx.bitcast_f2i(t)
            if bits & 0x80000000:  # lint: allow(signed view of the register, free)
                bits -= 1 << 32  # lint: allow(signed view, free on hardware)
            if ctx.icmp(bits, g.lo_bits) < 0:      # u below p: binade drop
                ctx.branch()
                bits = g.lo_bits
                t = ctx.bitcast_i2f(bits)
                u = _F32(g.p)  # register move: interpolate from the left edge
            if ctx.icmp(bits, g.hi_bits) >= 0:     # far above hi: overflow
                ctx.branch()
                bits = g.hi_bits - 1
                t = ctx.bitcast_i2f(bits)
            idx = ctx.iand(bits, _MASK22)
            grid = ctx.fsub(t, g.c)       # exact: p + idx * 2^-n
            d = ctx.fsub(u, grid)         # in [-h/2, h/2] when in range
            delta = ctx.ldexp(d, g.n)     # in [-0.5, 0.5]
            if ctx.fcmp(delta, _F32(0.0)) < 0:
                ctx.branch()
                idx = ctx.isub(idx, 1)
                delta = ctx.fadd(delta, _F32(1.0))
            if ctx.fcmp(delta, _F32(1.0)) > 0:     # clamped out-of-range input
                ctx.branch()
                delta = _F32(1.0)
        else:
            v = ctx.fsub(u, _F32(g.p)) if g.p != 0 else u
            w = ctx.ldexp(v, g.n)
            idx = ctx.ffloor(w)
            fi = ctx.i2f(idx)
            delta = ctx.fsub(w, fi)
        idx = self._clamp_index(ctx, idx, self.entries - 2)
        l0 = self._load(ctx, self._table, idx)
        l1 = self._load(ctx, self._table, ctx.iadd(idx, 1))
        diff = ctx.fsub(l1, l0)
        prod = ctx.fmul(diff, delta)
        return ctx.fadd(l0, prod)

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits = t.view(np.int32).astype(np.int64)   # signed view
            low = bits < g.lo_bits
            bits = np.clip(bits, g.lo_bits, g.hi_bits - 1)
            t = bits.astype(np.uint32).view(_F32)
            u = np.where(low, _F32(g.p), u)
            idx = bits & _MASK22
            grid = (t - g.c).astype(_F32)
            d = (u - grid).astype(_F32)
            delta = ldexpf_vec(d, g.n)
            neg = delta < 0
            idx = idx - neg
            delta = np.where(neg, (delta + _F32(1.0)).astype(_F32), delta)
            delta = np.minimum(delta, _F32(1.0))
        else:
            v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
            w = ldexpf_vec(v, g.n)
            idx = np.floor(w).astype(np.int64)
            delta = (w - idx.astype(_F32)).astype(_F32)
        idx = np.clip(idx, 0, self.entries - 2)
        l0 = self._table[idx]
        l1 = self._table[idx + 1]
        return (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)

    def core_path_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits0 = t.view(np.int32).astype(np.int64)
            b_lo = bits0 < g.lo_bits
            b_hi = (~b_lo) & (bits0 >= g.hi_bits)
            bits = np.clip(bits0, g.lo_bits, g.hi_bits - 1)
            t = bits.astype(np.uint32).view(_F32)
            uu = np.where(b_lo, _F32(g.p), u)
            idx = bits & _MASK22
            grid = (t - g.c).astype(_F32)
            d = (uu - grid).astype(_F32)
            delta = ldexpf_vec(d, g.n)
            neg = delta < 0            # fcmp(delta, 0) < 0: NaN is not-neg
            idx = idx - neg
            delta = np.where(neg, (delta + _F32(1.0)).astype(_F32), delta)
            gt1 = delta > _F32(1.0)    # fcmp(delta, 1) > 0: NaN is not-gt
            return pack_fields([
                (b_lo, 1), (b_hi, 1), (neg, 1), (gt1, 1),
                (clamp_zone(idx, self.entries - 2), 2),
            ])
        v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
        w = ldexpf_vec(v, g.n)
        return clamp_zone(ffloor_index_vec(w), self.entries - 2)


class _FixedGeometry:
    """s3.28 grid geometry shared by the fixed-point L-LUT variants."""

    def __init__(self, spec: FunctionSpec, density_log2: int,
                 interval: Optional[Tuple[float, float]]):
        self.fmt = Q3_28
        self.n = int(density_log2)
        if not 0 <= self.n <= self.fmt.frac_bits:
            raise ConfigurationError(
                f"fixed-point L-LUT density_log2 must be in "
                f"[0, {self.fmt.frac_bits}], got {self.n}"
            )
        lo, hi = interval if interval is not None else spec.natural_range
        if not hi > lo:
            raise ConfigurationError("L-LUT interval must be non-degenerate")
        # hi is an open bound: an interval ending exactly at the format
        # limit (e.g. tanh's [0, 8)) is fine; the last raw word saturates.
        if not (self.fmt.representable(lo)
                and hi <= self.fmt.max_value + self.fmt.resolution):
            raise ConfigurationError(
                f"interval [{lo}, {hi}] exceeds the {self.fmt} range"
            )
        self.lo, self.hi = float(lo), float(hi)
        #: Sub-grid shift: raw words carry 28 fraction bits, the grid 2^-n.
        self.shift = self.fmt.frac_bits - self.n
        raw_lo = int(round(self.lo * self.fmt.scale))
        self.p_raw = (raw_lo >> self.shift) << self.shift  # grid-aligned
        raw_hi = min(int(round(self.hi * self.fmt.scale)), self.fmt.max_raw)
        self.entries = ((raw_hi - self.p_raw) >> self.shift) + 2

    def a_inv(self, i: np.ndarray) -> np.ndarray:
        i = np.asarray(i, dtype=np.float64)
        return (self.p_raw + i * (1 << self.shift)) / self.fmt.scale


class LLUTFixed(FuzzyLUT):
    """Non-interpolated fixed-point L-LUT (s3.28 arithmetic end to end)."""

    method_name = "llut_fx"
    interpolated = False
    fixed_point = True

    def __init__(
        self,
        spec: FunctionSpec,
        density_log2: int = 10,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _FixedGeometry(spec, density_log2, interval)

    def _build(self) -> None:
        raw = build_fixed_table(
            self.spec.reference, self.geom.a_inv,
            self.geom.entries, self.geom.fmt.frac_bits,
        )
        self._table = raw.astype(np.int32)

    def planned_table_bytes(self) -> int:
        return self.geom.entries * self.ENTRY_BYTES

    def core_eval_raw(self, ctx: CycleCounter, a: int) -> int:
        """Lookup on an s3.28 raw word, returning an s3.28 raw word.

        Entry point for fully fixed-point pipelines (e.g. the fixed-point
        Blackscholes variant), which avoid the float<->fixed conversions.
        """
        g = self.geom
        r = ctx.isub(a, g.p_raw) if g.p_raw else a
        if g.shift == 0:
            idx = r
        else:
            # Round half up as floor-shift + dropped half bit.  The naive
            # `(r + half) >> shift` carry can wrap the 32-bit word when the
            # domain ends at the format limit (tanh/gelu at 8.0).
            idx = ctx.shr(r, g.shift)
            half_bit = ctx.iand(ctx.shr(r, g.shift - 1), 1)
            idx = ctx.iadd(idx, half_bit)
        idx = self._clamp_index(ctx, idx, self.entries - 1)
        return int(self._load(ctx, self._table, idx))

    def core_eval(self, ctx: CycleCounter, u):
        a = ctx.f2fx(u, self.geom.fmt.frac_bits)
        yfx = self.core_eval_raw(ctx, a)
        return ctx.fx2f(yfx, self.geom.fmt.frac_bits)

    def core_eval_raw_vec(self, a: np.ndarray) -> np.ndarray:
        """Vectorized twin of :meth:`core_eval_raw`."""
        g = self.geom
        r = np.asarray(a, dtype=np.int64) - g.p_raw
        if g.shift == 0:
            idx = r
        else:
            idx = (r >> g.shift) + ((r >> (g.shift - 1)) & 1)
        idx = np.clip(idx, 0, self.entries - 1)
        return self._table[idx].astype(np.int64)

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        a = np.round(u.astype(np.float64) * g.fmt.scale).astype(np.int64)
        yfx = self.core_eval_raw_vec(a)
        return (yfx / g.fmt.scale).astype(_F32)

    def core_path_vec(self, u):
        g = self.geom
        a_f = f2fx_exact_vec(u, g.fmt.frac_bits)
        a, huge_pos, huge_neg = raw_index_clip(a_f)
        r = a - g.p_raw
        if g.shift == 0:
            idx = r
        else:
            idx = (r >> g.shift) + ((r >> (g.shift - 1)) & 1)
        zone = clamp_zone(idx, self.entries - 1)
        zone = np.where(huge_neg, np.int64(1), zone)
        zone = np.where(huge_pos, np.int64(2), zone)
        return zone


class LLUTInterpolatedFixed(FuzzyLUT):
    """Interpolated fixed-point L-LUT: the one multiply is an integer multiply.

    Replacing the softfloat multiply with the (still emulated, but ~3x
    cheaper) wide integer multiply is what doubles performance over the
    float interpolated L-LUT in the paper's Figure 5.
    """

    method_name = "llut_i_fx"
    interpolated = True
    fixed_point = True

    def __init__(
        self,
        spec: FunctionSpec,
        density_log2: int = 10,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _FixedGeometry(spec, density_log2, interval)

    def _build(self) -> None:
        raw = build_fixed_table(
            self.spec.reference, self.geom.a_inv,
            self.geom.entries, self.geom.fmt.frac_bits,
        )
        self._table = raw.astype(np.int32)

    def planned_table_bytes(self) -> int:
        return self.geom.entries * self.ENTRY_BYTES

    def core_eval_raw(self, ctx: CycleCounter, a: int) -> int:
        """Interpolated lookup on an s3.28 raw word (fixed in, fixed out)."""
        g = self.geom
        r = ctx.isub(a, g.p_raw) if g.p_raw else a
        idx = ctx.shr(r, g.shift)
        idx = self._clamp_index(ctx, idx, self.entries - 2)
        dbits = ctx.iand(r, (1 << g.shift) - 1)
        delta_fx = ctx.shl(dbits, g.n)  # renormalize to 28 fraction bits
        l0 = int(self._load(ctx, self._table, idx))
        l1 = int(self._load(ctx, self._table, ctx.iadd(idx, 1)))
        diff = ctx.isub(l1, l0)
        prod = fx_mul(ctx, g.fmt, diff, delta_fx)
        return ctx.iadd(l0, prod)

    def core_eval(self, ctx: CycleCounter, u):
        a = ctx.f2fx(u, self.geom.fmt.frac_bits)
        yfx = self.core_eval_raw(ctx, a)
        return ctx.fx2f(yfx, self.geom.fmt.frac_bits)

    def core_eval_raw_vec(self, a: np.ndarray) -> np.ndarray:
        """Vectorized twin of :meth:`core_eval_raw`.

        The interpolation product goes through :func:`fx_mul_vec` so it
        wraps at the 32-bit word exactly like the traced ``fx_mul`` —
        a bare ``>> frac_bits`` would diverge at word-width boundaries.
        """
        g = self.geom
        r = np.asarray(a, dtype=np.int64) - g.p_raw
        idx = np.clip(r >> g.shift, 0, self.entries - 2)
        dbits = r & ((1 << g.shift) - 1)
        delta_fx = dbits << g.n
        l0 = self._table[idx].astype(np.int64)
        l1 = self._table[idx + 1].astype(np.int64)
        prod = fx_mul_vec(g.fmt, l1 - l0, delta_fx)
        return l0 + prod

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        a = np.round(u.astype(np.float64) * g.fmt.scale).astype(np.int64)
        yfx = self.core_eval_raw_vec(a)
        return (yfx / g.fmt.scale).astype(_F32)

    def core_path_vec(self, u):
        g = self.geom
        a_f = f2fx_exact_vec(u, g.fmt.frac_bits)
        a, huge_pos, huge_neg = raw_index_clip(a_f)
        idx = (a - g.p_raw) >> g.shift
        zone = clamp_zone(idx, self.entries - 2)
        zone = np.where(huge_neg, np.int64(1), zone)
        zone = np.where(huge_pos, np.int64(2), zone)
        return zone
