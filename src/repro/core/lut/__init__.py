"""Fuzzy lookup-table methods: M-LUT, L-LUT (float and fixed), D-LUT, DL-LUT."""

from repro.core.lut.base import FuzzyLUT, build_fixed_table, build_table
from repro.core.lut.dllut import DLLUT, DLLUTInterpolated
from repro.core.lut.dlut import DLUT, DLUTInterpolated
from repro.core.lut.llut import LLUT, LLUTFixed, LLUTInterpolated, LLUTInterpolatedFixed
from repro.core.lut.mlut import MLUT, MLUTInterpolated

__all__ = [
    "FuzzyLUT",
    "build_table",
    "build_fixed_table",
    "MLUT",
    "MLUTInterpolated",
    "LLUT",
    "LLUTInterpolated",
    "LLUTFixed",
    "LLUTInterpolatedFixed",
    "DLUT",
    "DLUTInterpolated",
    "DLLUT",
    "DLLUTInterpolated",
]
