"""Direct float-conversion fuzzy lookup table (D-LUT, Section 3.2.3).

The address *is* the float bit pattern: keeping the exponent field plus the
top ``m`` mantissa bits (one shift, one subtract) yields an index whose cell
width grows with the magnitude of the input — entries are spaced like the
float32 grid itself, dense near zero and sparse far from it.  That spacing
matches saturating activation functions (tanh, GELU, sigmoid, CNDF): steep
near zero, flat in the tails.

Its structural limitation (fixed by DL-LUT) is the gap between 0 and the
smallest covered exponent ``2^e_min``: inputs below it clamp to the first
cell.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.batch.keys import clamp_zone
from repro.core.float_bits import EXP_BIAS, MANT_BITS, bits_to_float
from repro.core.functions.registry import FunctionSpec
from repro.core.ldexp import ldexpf_vec
from repro.core.lut.base import FuzzyLUT, build_table
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

__all__ = ["DLUT", "DLUTInterpolated"]

_F32 = np.float32


class _DLUTGeometry:
    """Exponent/mantissa-slicing geometry shared by D-LUT variants."""

    def __init__(self, spec: FunctionSpec, mant_bits: int, e_min: int,
                 e_max: Optional[int], interval: Optional[Tuple[float, float]]):
        if not 0 <= mant_bits <= MANT_BITS:
            raise ConfigurationError(
                f"mant_bits must be in [0, {MANT_BITS}], got {mant_bits}"
            )
        lo, hi = interval if interval is not None else spec.natural_range
        if e_max is None:
            e_max = int(math.ceil(math.log2(hi)))
        if e_min >= e_max:
            raise ConfigurationError("e_min must be below e_max")
        if e_min + EXP_BIAS < 1:
            raise ConfigurationError(
                f"e_min {e_min} reaches the subnormal range; minimum is "
                f"{1 - EXP_BIAS}"
            )
        self.m = int(mant_bits)
        self.e_min = int(e_min)
        self.e_max = int(e_max)
        self.shift = MANT_BITS - self.m
        self.offset = (self.e_min + EXP_BIAS) << self.m
        #: Number of lookup cells covering [2^e_min, 2^e_max).
        self.cells = (self.e_max - self.e_min) << self.m

    def edge(self, i: np.ndarray) -> np.ndarray:
        """Left edge of cell ``i`` (host side, exact)."""
        bits = ((np.asarray(i, dtype=np.int64) + self.offset) << self.shift)
        return np.asarray(
            bits_to_float(bits.astype(np.uint32)), dtype=np.float64
        )

    def center(self, i: np.ndarray) -> np.ndarray:
        """Cell midpoint — the optimal stored point for non-interpolated use."""
        i = np.asarray(i, dtype=np.int64)
        return 0.5 * (self.edge(i) + self.edge(i + 1))


class DLUT(FuzzyLUT):
    """Non-interpolated D-LUT: three integer ops per lookup, no float math."""

    method_name = "dlut"
    interpolated = False

    def __init__(
        self,
        spec: FunctionSpec,
        mant_bits: int = 8,
        e_min: int = -14,
        e_max: Optional[int] = None,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _DLUTGeometry(spec, mant_bits, e_min, e_max, interval)

    def _build(self) -> None:
        self._table = build_table(
            self.spec.reference, self.geom.center, self.geom.cells
        )

    def planned_table_bytes(self) -> int:
        return self.geom.cells * self.ENTRY_BYTES

    def core_eval(self, ctx: CycleCounter, u):
        g = self.geom
        bits = ctx.bitcast_f2i(u)
        sh = ctx.shr(bits, g.shift)
        idx = ctx.isub(sh, g.offset)
        idx = self._clamp_index(ctx, idx, g.cells - 1)
        return self._load(ctx, self._table, idx)

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        idx = np.clip(idx, 0, g.cells - 1)
        return self._table[idx]

    def core_path_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        return clamp_zone(idx, g.cells - 1)


class DLUTInterpolated(FuzzyLUT):
    """Interpolated D-LUT: the interpolation weight comes from the low
    mantissa bits, so address generation still needs no float multiply."""

    method_name = "dlut_i"
    interpolated = True

    def __init__(
        self,
        spec: FunctionSpec,
        mant_bits: int = 8,
        e_min: int = -14,
        e_max: Optional[int] = None,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        self.geom = _DLUTGeometry(spec, mant_bits, e_min, e_max, interval)

    def _build(self) -> None:
        # Entries at cell edges, with one guard cell past 2^e_max.
        self._table = build_table(
            self.spec.reference, self.geom.edge, self.geom.cells + 2
        )

    def planned_table_bytes(self) -> int:
        return (self.geom.cells + 2) * self.ENTRY_BYTES

    def core_eval(self, ctx: CycleCounter, u):
        g = self.geom
        bits = ctx.bitcast_f2i(u)
        sh = ctx.shr(bits, g.shift)
        idx = ctx.isub(sh, g.offset)
        low = ctx.iand(bits, (1 << g.shift) - 1)
        li = ctx.i2f(low)
        delta = ctx.ldexp(li, -g.shift)
        idx = self._clamp_index(ctx, idx, g.cells)
        l0 = self._load(ctx, self._table, idx)
        l1 = self._load(ctx, self._table, ctx.iadd(idx, 1))
        diff = ctx.fsub(l1, l0)
        prod = ctx.fmul(diff, delta)
        return ctx.fadd(l0, prod)

    def core_eval_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        low = (bits & ((1 << g.shift) - 1)).astype(_F32)
        delta = ldexpf_vec(low, -g.shift)
        idx = np.clip(idx, 0, g.cells)
        l0 = self._table[idx]
        l1 = self._table[idx + 1]
        return (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)

    def core_path_vec(self, u):
        g = self.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        return clamp_zone(idx, g.cells)
