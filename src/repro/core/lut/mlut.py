"""Multiplication-based fuzzy lookup table (M-LUT, Section 3.2.1).

Regular spacing between entries: ``a(x) = round((x - p) * k)`` with density
``k`` and origin ``p``.  The address generation costs one float subtract, one
float multiply, and one rounding step — the float multiply is exactly what
the L-LUT variants remove.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.batch.keys import clamp_zone, ffloor_index_vec, fround_index_vec
from repro.core.functions.registry import FunctionSpec
from repro.core.lut.base import FuzzyLUT, build_table
from repro.errors import ConfigurationError

__all__ = ["MLUT", "MLUTInterpolated"]

_F32 = np.float32


class MLUT(FuzzyLUT):
    """Non-interpolated M-LUT: one multiply per lookup."""

    method_name = "mlut"
    interpolated = False

    def __init__(
        self,
        spec: FunctionSpec,
        size: int = 1024,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        if size < 2:
            raise ConfigurationError("M-LUT size must be at least 2")
        self.size = size
        self.lo, self.hi = interval if interval is not None else spec.natural_range
        if not self.hi > self.lo:
            raise ConfigurationError("M-LUT interval must be non-degenerate")
        # Density and origin as the PIM core will see them (float32).
        self.k = _F32((size - 1) / (self.hi - self.lo))
        self.p = _F32(self.lo)

    # ------------------------------------------------------------------
    # host side

    def _a_inv(self, i: np.ndarray) -> np.ndarray:
        """Pseudo-inverse: the exact preimage of address ``i``."""
        return float(self.p) + np.asarray(i, dtype=np.float64) / float(self.k)

    def _build(self) -> None:
        self._table = build_table(self.spec.reference, self._a_inv, self.size)

    def planned_table_bytes(self) -> int:
        return self.size * self.ENTRY_BYTES

    # ------------------------------------------------------------------
    # PIM side

    def core_eval(self, ctx, u):
        v = ctx.fsub(u, self.p) if self.p != 0 else u
        v = ctx.fmul(v, self.k)
        idx = ctx.fround(v)
        idx = self._clamp_index(ctx, idx, self.entries - 1)
        return self._load(ctx, self._table, idx)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        v = u if self.p == 0 else (u - self.p).astype(_F32)
        v = (v * self.k).astype(_F32)
        idx = np.floor(v.astype(np.float64) + 0.5).astype(np.int64)
        idx = np.clip(idx, 0, self.entries - 1)
        return self._table[idx]

    def core_path_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        v = u if self.p == 0 else (u - self.p).astype(_F32)
        v = (v * self.k).astype(_F32)
        return clamp_zone(fround_index_vec(v), self.entries - 1)


class MLUTInterpolated(FuzzyLUT):
    """Interpolated M-LUT: two multiplies per lookup (address + interpolation)."""

    method_name = "mlut_i"
    interpolated = True

    def __init__(
        self,
        spec: FunctionSpec,
        size: int = 1024,
        interval: Optional[Tuple[float, float]] = None,
        **kwargs,
    ):
        super().__init__(spec, **kwargs)
        if size < 3:
            raise ConfigurationError("interpolated M-LUT size must be at least 3")
        self.size = size
        self.lo, self.hi = interval if interval is not None else spec.natural_range
        if not self.hi > self.lo:
            raise ConfigurationError("M-LUT interval must be non-degenerate")
        # size entries span the interval; the last interpolation segment ends
        # exactly at hi, so the floor address ranges over [0, size-2].
        self.k = _F32((size - 1) / (self.hi - self.lo))
        self.p = _F32(self.lo)

    def _a_inv(self, i: np.ndarray) -> np.ndarray:
        return float(self.p) + np.asarray(i, dtype=np.float64) / float(self.k)

    def _build(self) -> None:
        self._table = build_table(self.spec.reference, self._a_inv, self.size)

    def planned_table_bytes(self) -> int:
        return self.size * self.ENTRY_BYTES

    def core_eval(self, ctx, u):
        v = ctx.fsub(u, self.p) if self.p != 0 else u
        v = ctx.fmul(v, self.k)
        idx = ctx.ffloor(v)
        idx = self._clamp_index(ctx, idx, self.entries - 2)
        fi = ctx.i2f(idx)
        delta = ctx.fsub(v, fi)
        l0 = self._load(ctx, self._table, idx)
        l1 = self._load(ctx, self._table, ctx.iadd(idx, 1))
        diff = ctx.fsub(l1, l0)
        prod = ctx.fmul(diff, delta)
        return ctx.fadd(l0, prod)

    def core_eval_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        v = u if self.p == 0 else (u - self.p).astype(_F32)
        v = (v * self.k).astype(_F32)
        idx = np.clip(np.floor(v).astype(np.int64), 0, self.entries - 2)
        delta = (v - idx.astype(_F32)).astype(_F32)
        l0 = self._table[idx]
        l1 = self._table[idx + 1]
        return (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)

    def core_path_vec(self, u):
        u = np.asarray(u, dtype=_F32)
        v = u if self.p == 0 else (u - self.p).astype(_F32)
        v = (v * self.k).astype(_F32)
        return clamp_zone(ffloor_index_vec(v), self.entries - 2)
