"""Shared machinery for fuzzy lookup-table methods (Section 2.2.2).

A fuzzy LUT is defined by an address-generation function ``a(x)`` (executed
on the PIM core for every input) and its pseudo-inverse ``a_inv(i)`` (used
*only* during host-side table generation, so its cost never appears on the
PIM side).  Table entry ``i`` stores ``f(a_inv(i))`` computed in float64 and
rounded to the PIM storage format.

Concrete subclasses differ exactly in how ``a``/``a_inv`` are realized:
multiplication (M-LUT), exponent arithmetic (L-LUT), the raw float bit
pattern (D-LUT), or a composition (DL-LUT).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.functions.registry import FunctionSpec
from repro.core.method import Method
from repro.errors import ConfigurationError

__all__ = ["FuzzyLUT", "build_table", "build_fixed_table"]

_F32 = np.float32


def _pad_nonfinite(values: np.ndarray) -> np.ndarray:
    """Replace non-finite entries with their nearest finite neighbour.

    Guard entries lie just past the tabulated interval, where the function
    may be undefined (asin beyond 1, atanh at 1, log at 0); padding keeps
    the clamped lookups and interpolation guards well-defined.
    """
    bad = ~np.isfinite(values)
    if not np.any(bad):
        return values
    good_idx = np.flatnonzero(~bad)
    if good_idx.size == 0:
        raise ConfigurationError("table has no finite entries at all")
    all_idx = np.arange(values.size)
    nearest = good_idx[np.searchsorted(
        good_idx, np.clip(all_idx, good_idx[0], good_idx[-1]),
        side="left").clip(0, good_idx.size - 1)]
    out = values.copy()
    out[bad] = values[nearest[bad]]
    return out


def build_table(
    reference: Callable[[np.ndarray], np.ndarray],
    a_inv: Callable[[np.ndarray], np.ndarray],
    entries: int,
) -> np.ndarray:
    """Host-side table generation: ``table[i] = f(a_inv(i))`` in float64.

    The result is rounded once to float32 for PIM storage — the only place
    precision is lost, which is what lets interpolated tables approach the
    float32 accuracy floor the paper observes (~1e-9 RMSE).
    """
    if entries < 2:
        raise ConfigurationError("a lookup table needs at least two entries")
    idx = np.arange(entries, dtype=np.float64)
    points = np.asarray(a_inv(idx), dtype=np.float64)
    with np.errstate(all="ignore"):  # guard entries may leave the domain
        values = np.asarray(reference(points), dtype=np.float64)
    values = _pad_nonfinite(values)
    return values.astype(_F32)


def build_fixed_table(
    reference: Callable[[np.ndarray], np.ndarray],
    a_inv: Callable[[np.ndarray], np.ndarray],
    entries: int,
    frac_bits: int,
) -> np.ndarray:
    """Like :func:`build_table` but quantized to fixed-point raw words."""
    if entries < 2:
        raise ConfigurationError("a lookup table needs at least two entries")
    idx = np.arange(entries, dtype=np.float64)
    points = np.asarray(a_inv(idx), dtype=np.float64)
    with np.errstate(all="ignore"):
        values = np.asarray(reference(points), dtype=np.float64)
    values = _pad_nonfinite(values)
    # Quantize in place: these tables reach 2^22+ entries and a sweep builds
    # dozens, so the intermediate arrays dominate build time.
    raw = values * float(1 << frac_bits)
    np.round(raw, out=raw)
    # Saturate (don't wrap) at the 32-bit storage word: guard entries just
    # past the tabulated interval can exceed it (gelu's open bound at 8.0
    # rounds to exactly 2^31), and a two's-complement wrap would turn them
    # into huge negative table values.
    np.clip(raw, -(2 ** 31), 2 ** 31 - 1, out=raw)
    return raw.astype(np.int64)


class FuzzyLUT(Method):
    """Base class for all table-based methods.

    Subclasses populate ``self._table`` (and friends) in ``_build`` and
    implement the traced/vectorized address generation.
    """

    #: Bytes per stored entry (float32 or 32-bit fixed raw word).
    ENTRY_BYTES = 4

    def __init__(self, spec: FunctionSpec, **kwargs):
        super().__init__(spec, **kwargs)
        self._table: np.ndarray = np.empty(0, dtype=_F32)

    @property
    def entries(self) -> int:
        """Number of table entries actually stored."""
        return int(self._table.size)

    def table_bytes(self) -> int:
        return self.entries * self.ENTRY_BYTES

    def host_entries(self) -> int:
        return self.entries

    def _clamp_index(self, ctx, idx: int, hi: int) -> int:
        """Traced clamp of a table index into ``[0, hi]``.

        Two compares and a (possible) branch — charged for every element
        because the PIM code always executes the bounds checks.
        """
        if ctx.icmp(idx, 0) < 0:
            ctx.branch()
            return 0
        if ctx.icmp(idx, hi) > 0:
            ctx.branch()
            return hi
        return idx
