"""Tangent through sine and cosine tables plus one division (Section 4.2.4).

Tabulating tan directly is hopeless near its poles (the slope is unbounded,
so no finite spacing bounds the error).  TransPimLib instead computes the
sine and cosine with the chosen LUT method and divides — which is exactly why
the paper reports tangent costing 2-3x a sine: two lookups plus a float
divide, the single most expensive softfloat operation.
"""

from __future__ import annotations

from typing import Type

import numpy as np

from repro.batch.keys import pack_fields
from repro.core.functions.registry import FunctionSpec, get_function
from repro.core.lut.base import FuzzyLUT
from repro.isa.counter import CycleCounter

__all__ = ["TanQuotientLUT", "make_tan_lut"]

_F32 = np.float32


class TanQuotientLUT(FuzzyLUT):
    """tan(x) = sin(x) / cos(x) with both factors from one LUT method."""

    method_name = "tan_quotient"  # overridden per instance

    def __init__(self, inner_cls: Type[FuzzyLUT], spec: FunctionSpec,
                 **params):
        # Split constructor kwargs: Method-level options stay with us and are
        # also forwarded; precision knobs go to the inner tables.
        method_opts = {
            k: params[k]
            for k in ("placement", "assume_in_range", "costs") if k in params
        }
        super().__init__(spec, **method_opts)
        inner = dict(params)
        inner["assume_in_range"] = True  # this wrapper reduces the range
        inner.setdefault("placement", self.placement)
        inner.setdefault("costs", self.costs)
        self.sin_m = inner_cls(get_function("sin"), **inner)
        self.cos_m = inner_cls(get_function("cos"), **inner)
        self.method_name = self.sin_m.method_name
        self.interpolated = self.sin_m.interpolated
        self.fixed_point = self.sin_m.fixed_point

    def _build(self) -> None:
        self.sin_m.setup()
        self.cos_m.setup()
        self._table = np.concatenate([self.sin_m._table, self.cos_m._table])

    def table_bytes(self) -> int:
        return self.sin_m.table_bytes() + self.cos_m.table_bytes()

    def planned_table_bytes(self):
        sin_b = self.sin_m.planned_table_bytes()
        cos_b = self.cos_m.planned_table_bytes()
        if sin_b is None or cos_b is None:
            return None
        return sin_b + cos_b

    def set_placement(self, placement: str) -> None:
        super().set_placement(placement)
        self.sin_m.set_placement(placement)
        self.cos_m.set_placement(placement)

    def host_entries(self) -> int:
        return self.sin_m.host_entries() + self.cos_m.host_entries()

    def core_eval(self, ctx: CycleCounter, u):
        s = self.sin_m.core_eval(ctx, u)
        c = self.cos_m.core_eval(ctx, u)
        return ctx.fdiv(s, c)

    def core_eval_vec(self, u):
        s = self.sin_m.core_eval_vec(u)
        c = self.cos_m.core_eval_vec(u)
        return (np.asarray(s, dtype=_F32) / np.asarray(c, dtype=_F32)).astype(_F32)

    def core_path_vec(self, u):
        s_key = self.sin_m.core_path_vec(u)
        c_key = self.cos_m.core_path_vec(u)
        if s_key is None or c_key is None:
            return None
        return pack_fields([(s_key, 12), (c_key, 12)])


def make_tan_lut(inner_cls: Type[FuzzyLUT], **params) -> TanQuotientLUT:
    """Build the tan wrapper around ``inner_cls`` sine/cosine tables."""
    return TanQuotientLUT(inner_cls, get_function("tan"), **params)
