"""TransPimLib reproduction: transcendental functions for PIM systems.

The package reproduces Item et al., "TransPimLib: Efficient Transcendental
Functions for Processing-in-Memory Systems" (ISPASS 2023) in pure Python:

* :mod:`repro.core` — the eight implementation methods (CORDIC, CORDIC+LUT,
  M-LUT, L-LUT, D-LUT, DL-LUT, interpolated and fixed-point variants) with
  exact float32 / s3.28 semantics;
* :mod:`repro.pim` — a UPMEM-like PIM system simulator (instruction cost
  model, multithreaded pipeline, WRAM/MRAM, host transfers);
* :mod:`repro.workloads` — Blackscholes, Sigmoid, and Softmax on the
  simulated PIM system plus CPU and polynomial-approximation baselines;
* :mod:`repro.analysis` — harnesses regenerating every figure and table of
  the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import make_method

    sin = make_method("sin", "llut_i", density_log2=12).setup()
    x = np.linspace(0, 2 * np.pi, 1000, dtype=np.float32)
    y = sin.evaluate_vec(x)           # accuracy path (bit-exact float32)
    slots = sin.mean_slots(x[:64])    # PIM cycle cost per element
"""

from repro.api import ALL_METHOD_NAMES, LUT_METHODS, make_method
from repro.core.accuracy import AccuracyReport, measure
from repro.core.functions.registry import FUNCTIONS, get_function
from repro.core.functions.support import METHOD_SUPPORT, supported_methods, supports
from repro.core.method import Method
from repro.errors import TransPimError
from repro.isa import CycleCounter, OpCosts, UPMEM_COSTS
from repro.pim import DPU, PIMSystem

__all__ = [
    "make_method",
    "ALL_METHOD_NAMES",
    "LUT_METHODS",
    "Method",
    "FUNCTIONS",
    "get_function",
    "METHOD_SUPPORT",
    "supports",
    "supported_methods",
    "AccuracyReport",
    "measure",
    "CycleCounter",
    "OpCosts",
    "UPMEM_COSTS",
    "DPU",
    "PIMSystem",
    "TransPimError",
]

__version__ = "0.1.0"
