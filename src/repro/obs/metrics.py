"""Counters and gauges for the simulator's internal machinery.

Where spans (``repro.obs.tracer``) attribute *time*, metrics attribute
*events and quantities*: cost-path hit counts and per-path cycle products
from the batch engine, table-cache and method-cache hits, WRAM/MRAM bytes
placed, the DMA hidden fraction of each kernel run.

A :class:`MetricsRegistry` is attached with :func:`collecting` (or
``attach_metrics``); instrumented code calls the module-level helpers
(:func:`inc`, :func:`observe`), which no-op when nothing is attached — the
same near-zero disabled fast path the tracer uses.

Counters accumulate; gauges record the last observation plus min/max/count
so repeated observations (e.g. one DMA-hidden-fraction per kernel run)
still summarize usefully.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional, Union

__all__ = [
    "MetricsRegistry", "Counter", "Gauge",
    "inc", "observe", "collecting", "attach_metrics", "detach_metrics",
    "active_metrics",
]

#: Version tag embedded in every metrics export.
METRICS_SCHEMA = "repro-metrics/1"

Number = Union[int, float]


class Counter:
    """A monotonically accumulating named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last/min/max/count summary of repeated observations."""

    __slots__ = ("name", "last", "min", "max", "count")

    def __init__(self, name: str):
        self.name = name
        self.last: Optional[Number] = None
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.count = 0

    def observe(self, value: Number) -> None:
        """Record one observation, folding it into last/min/max/count."""
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.count += 1

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold another gauge's ``to_dict`` payload into this one.

        ``last`` takes the merged-in value (the observations being folded
        happened after this registry's), min/max widen, counts add.  Used
        to reconcile worker-process registries into the parent's.
        """
        if payload.get("count", 0) == 0:
            return
        self.last = payload["last"]
        self.min = payload["min"] if self.min is None \
            else min(self.min, payload["min"])
        self.max = payload["max"] if self.max is None \
            else max(self.max, payload["max"])
        self.count += payload["count"]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {"type": "gauge", "last": self.last, "min": self.min,
                "max": self.max, "count": self.count}


class MetricsRegistry:
    """A flat namespace of counters and gauges, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def value(self, name: str, default: Number = 0) -> Number:
        """A counter's current value (``default`` when never incremented)."""
        c = self._counters.get(name)
        return default if c is None else c.value

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a ``to_dict`` snapshot from another registry into this one.

        The pooled dispatcher collects each worker's metrics in a fresh
        registry, ships the snapshot back (plain data), and merges it here
        so pooled and inline dispatches report identical counters.
        Counter values add; gauges merge via :meth:`Gauge.merge`.
        """
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r} (expected {METRICS_SCHEMA!r})")
        for name, payload in snapshot.get("metrics", {}).items():
            if payload.get("type") == "counter":
                self.counter(name).inc(payload.get("value", 0))
            else:
                self.gauge(name).merge(payload)

    def to_dict(self) -> Dict[str, Any]:
        """Whole registry as plain data (JSON-ready), names sorted."""
        out: Dict[str, Any] = {"schema": METRICS_SCHEMA, "metrics": {}}
        for name in sorted(set(self._counters) | set(self._gauges)):
            if name in self._counters:
                out["metrics"][name] = self._counters[name].to_dict()
            else:
                out["metrics"][name] = self._gauges[name].to_dict()
        return out

    def report(self) -> str:
        """Human-readable one-line-per-metric summary."""
        lines = []
        for name, payload in self.to_dict()["metrics"].items():
            if payload["type"] == "counter":
                lines.append(f"{name:<40} {payload['value']}")
            else:
                lines.append(f"{name:<40} last={payload['last']} "
                             f"min={payload['min']} max={payload['max']} "
                             f"n={payload['count']}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level active registry (the instrumented code's entry point)

_ACTIVE: Optional[MetricsRegistry] = None


def inc(name: str, n: Number = 1) -> None:
    """Increment a counter on the attached registry (no-op when detached)."""
    reg = _ACTIVE
    if reg is not None:
        reg.counter(name).inc(n)


def observe(name: str, value: Number) -> None:
    """Record a gauge observation (no-op when detached)."""
    reg = _ACTIVE
    if reg is not None:
        reg.gauge(name).observe(value)


def attach_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` receive all metrics until :func:`detach_metrics`."""
    global _ACTIVE
    _ACTIVE = registry
    return registry


def detach_metrics() -> None:
    """Stop collecting (helpers revert to the no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


def active_metrics() -> Optional[MetricsRegistry]:
    """The currently attached registry, or None."""
    return _ACTIVE


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None):
    """Attach a registry for a ``with`` block; restores the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
