"""Structured tracing: nested spans over the simulator's execution phases.

The paper's evaluation is an exercise in *attribution* — Figures 5-9 break
every number into setup, transfer, and kernel phases.  This module gives the
simulator the same discipline: a :class:`Tracer` records a tree of
:class:`Span` objects (table-build, host->PIM, kernel, PIM->host, reduce...),
each carrying wall-clock duration plus arbitrary attributes (simulated
cycles, seconds, slot counts) set by the instrumented code.

Instrumentation sites call :func:`span`, which returns a real span only when
a tracer is attached; otherwise it returns a shared no-op handle.  The
disabled path is one module-global load and an ``is None`` test — cheap
enough to leave in the hot paths permanently (the >=10x batch-throughput
floor bench in ``benchmarks/`` runs with no tracer attached and pins this).

Exports: Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto)
and an indented human tree via :meth:`Tracer.tree`.

Example::

    from repro.obs import Tracer, tracing

    tracer = Tracer()
    with tracing(tracer):
        runtime.install(method)(xs)
    print(tracer.tree())
    json.dump(tracer.to_chrome_trace(), open("trace.json", "w"))
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span", "Tracer", "NullSpan", "NULL_SPAN",
    "span", "tracing", "attach", "detach", "active_tracer",
]

#: Version tag embedded in every exported trace.
TRACE_SCHEMA = "repro-trace/1"


@dataclass
class Span:
    """One timed, attributed phase of execution (possibly with children)."""

    name: str
    start_ns: int
    end_ns: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (simulated cycles, seconds, counts...)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Wall-clock nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (depth-first) with this name, or None."""
        for child in self.children:
            if child.name == name:
                return child
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {
            "name": self.name,
            "wall_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }


class NullSpan:
    """Shared no-op span handle returned when no tracer is attached."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        """Discard attributes; chainable like the real handle."""
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: The singleton no-op handle; reentrant and stateless.
NULL_SPAN = NullSpan()


class _SpanHandle:
    """Context manager that opens a span on a tracer and closes it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name=name, start_ns=time.perf_counter_ns(),
                          attrs=attrs)

    def set(self, **attrs: Any) -> "_SpanHandle":
        self._span.set(**attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self._span)
        return self

    def __exit__(self, *exc) -> None:
        self._span.end_ns = time.perf_counter_ns()
        self._tracer._pop(self._span)
        return None


class Tracer:
    """Collects a forest of nested spans."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a new span nested under the currently-open one."""
        return _SpanHandle(self, name, attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Close any spans abandoned by an exception below this one, then
        # the span itself; never corrupt the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def graft(self, span: Span) -> Span:
        """Attach an already-completed span subtree to the current span.

        The pooled dispatcher uses this to fold spans recorded by a worker
        process's own tracer into the parent trace: the worker ships its
        finished :class:`Span` tree back (spans are plain picklable data),
        and the parent grafts it under whatever span is open — or as a new
        root when none is.  The subtree is attached as-is; its wall-clock
        timestamps are the worker's.
        """
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> Optional[Span]:
        """First span (depth-first across roots) with this name."""
        for root in self.roots:
            if root.name == name:
                return root
            hit = root.find(name)
            if hit is not None:
                return hit
        return None

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first."""
        stack = list(reversed(self.roots))
        while stack:
            s = stack.pop()
            yield s
            stack.extend(reversed(s.children))

    # -- export ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Whole trace as plain data (JSON-ready)."""
        return {"schema": TRACE_SCHEMA,
                "spans": [r.to_dict() for r in self.roots]}

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (open in chrome://tracing or Perfetto).

        Spans become complete ('X') events; timestamps are microseconds
        relative to the first span so the viewer starts at t=0.  Attributes
        travel in ``args``.
        """
        events: List[Dict[str, Any]] = []
        t0 = min((s.start_ns for s in self.iter_spans()), default=0)
        for s in self.iter_spans():
            end = s.end_ns if s.end_ns is not None else s.start_ns
            events.append({
                "name": s.name,
                "ph": "X",
                "ts": (s.start_ns - t0) / 1000.0,
                "dur": (end - s.start_ns) / 1000.0,
                "pid": 0,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"schema": TRACE_SCHEMA}}

    def tree(self, max_attrs: int = 4) -> str:
        """Indented human-readable view of the span forest."""
        lines: List[str] = []
        for root in self.roots:
            self._render(root, 0, lines, max_attrs)
        return "\n".join(lines)

    def _render(self, span: Span, depth: int, lines: List[str],
                max_attrs: int) -> None:
        shown = list(span.attrs.items())[:max_attrs]
        attrs = " ".join(f"{k}={_fmt(v)}" for k, v in shown)
        extra = "" if len(span.attrs) <= max_attrs else " ..."
        wall = span.duration_ns / 1e6
        lines.append(f"{'  ' * depth}{span.name:<24} "
                     f"{wall:9.3f} ms  {attrs}{extra}".rstrip())
        for child in span.children:
            self._render(child, depth + 1, lines, max_attrs)


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _jsonable(v: Any):
    if isinstance(v, (str, bool)) or v is None:
        return v
    if isinstance(v, (int, float)):
        return v
    try:  # numpy scalars
        return v.item()
    except AttributeError:
        return str(v)


# ----------------------------------------------------------------------
# Module-level active tracer (the instrumented code's entry point)

_ACTIVE: Optional[Tracer] = None


def span(name: str, **attrs: Any):
    """Open a span on the attached tracer, or a shared no-op handle.

    This is the only call instrumented code makes; when no tracer is
    attached the cost is a global load and an ``is`` test.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def attach(tracer: Tracer) -> Tracer:
    """Make ``tracer`` receive all spans until :func:`detach`."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def detach() -> None:
    """Stop tracing (instrumentation reverts to the no-op fast path)."""
    global _ACTIVE
    _ACTIVE = None


def active_tracer() -> Optional[Tracer]:
    """The currently attached tracer, or None."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Attach a tracer for the duration of a ``with`` block.

    Yields the tracer (a fresh one when none is given); restores the
    previously attached tracer, if any, on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
