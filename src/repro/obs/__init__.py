"""Observability for the simulator: tracing spans, metrics, bench emission.

Three layers, one discipline — attribute every cycle:

* :mod:`repro.obs.tracer` — nested spans over execution phases
  (table-build, host->PIM, kernel, PIM->host), exported as Chrome trace
  JSON or a human tree;
* :mod:`repro.obs.metrics` — counters/gauges for cost-path hits, cache
  hits, bytes placed, DMA hiding;
* :mod:`repro.obs.bench` — ``repro bench --emit`` snapshots
  (schema-versioned ``BENCH_*.json``) plus the fig5 artifact staleness
  guard.

Everything is off by default: with no tracer/registry attached, each
instrumentation site costs one global load and an ``is None`` test.
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_summary,
    check_fig5_artifacts,
    emit_bench,
    fig5_artifact_texts,
    regenerate_fig5_artifacts,
    run_bench,
    trace_run,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    active_metrics,
    attach_metrics,
    collecting,
    detach_metrics,
    inc,
    observe,
)
from repro.obs.tracer import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Span,
    Tracer,
    active_tracer,
    attach,
    detach,
    span,
    tracing,
)

__all__ = [
    "Span", "Tracer", "span", "tracing", "attach", "detach",
    "active_tracer", "NULL_SPAN", "TRACE_SCHEMA",
    "MetricsRegistry", "inc", "observe", "collecting",
    "attach_metrics", "detach_metrics", "active_metrics", "METRICS_SCHEMA",
    "run_bench", "emit_bench", "trace_run", "BENCH_SCHEMA", "bench_summary",
    "fig5_artifact_texts", "check_fig5_artifacts",
    "regenerate_fig5_artifacts",
]
