"""The declared metric namespace: every counter and gauge the code emits.

:mod:`repro.obs.metrics` creates metrics on first use, which keeps the
emit sites cheap but means a typo (``plancache.hit`` vs ``plancache.hits``)
silently splits a metric into two series that no dashboard ever joins.
This catalog is the contract the ``obs-contract`` lint pass enforces: every
``inc``/``observe`` call in the instrumented tree must name a metric
declared here with the matching kind, and every declaration must be
emitted somewhere — so the namespace below is, verifiably, the complete
observability surface.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["COUNTERS", "COUNTER_PATTERNS", "GAUGES", "metric_kind",
           "pattern_kind"]

#: Monotonic counters (emitted via :func:`repro.obs.metrics.inc`).
COUNTERS: Dict[str, str] = {
    # batch engine
    "batch.calls": "batch_tally invocations",
    "batch.elements": "elements classified by the batch engine",
    "batch.paths_traced": "distinct cost paths scalar-traced",
    "batch.scalar_fallbacks": "inputs that fell back to the scalar loop",
    "batch.tally_cache.hits": "path tallies served from a plan's cache",
    "batch.tally_cache.misses": "path tallies traced and cached",
    # array-compiled fused evaluators
    "batch.vec.compiles": "fused array evaluators compiled",
    "batch.vec.runs": "fused evaluations served (values + aggregate)",
    "batch.vec.memo.hits": "fused (values, keys, unique) memo hits",
    "batch.vec.memo.misses": "fused array passes computed and memoized",
    "batch.vec.fallbacks": "vec_run calls that fell back to the traced engine",
    "batch.vec.tally_memo.hits":
        "path tallies prefilled into a cold cache from the evaluator memo",
    "batch.vec.tally_memo.stores":
        "path tallies harvested into the evaluator's per-placement memo",
    # per-core simulation
    "dpu.kernel_runs": "DPU.run_kernel invocations",
    "dpu.dma_bytes": "MRAM DMA bytes moved by kernels",
    # sharded dispatch
    "dispatch.runs": "execute_sharded invocations",
    "dispatch.shards": "shard launches across all dispatches",
    "dispatch.rank_aligned": "dispatches split along rank boundaries",
    # multiprocess pool dispatch
    "dispatch.pool.dispatches": "pooled execute_sharded invocations",
    "dispatch.pool.tasks": "shard tasks run on pool workers",
    "dispatch.pool.shipments": "plan payloads shipped to worker pools",
    "dispatch.pool.pinned": "shard tasks run on CPU-pinned workers",
    # topology model
    "topology.subranges": "topology slices carved for shard sub-systems",
    # compiled plans
    "plan.compiles": "ExecutionPlans compiled",
    "plan.executions": "plan.execute launches",
    "plan.launch_memo.hits": "launches served from the result memo",
    "plan.launch_memo.misses": "launches simulated and memoized",
    # plan cache
    "plancache.hits": "compiled plans served from the LRU",
    "plancache.misses": "plan compilations on cache miss",
    "plancache.evictions": "plans evicted from the LRU",
    "plancache.table_hits": "table images reused from the method pool",
    "plancache.table_misses": "table images built into the method pool",
    "plancache.table_evictions": "method-pool evictions",
    # serving sessions
    "session.launches": "PlanSession.launch calls",
    "session.elements": "elements served across session launches",
    "session.streams": "PlanSession.launch_stream calls",
    # async serving front end
    "serve.requests": "requests admitted by the serving front end",
    "serve.requests_shed": "requests shed at the hard queue-depth limit",
    "serve.backpressure_waits": "submits that awaited admission capacity",
    "serve.batches": "coalesced batches dispatched",
    "serve.batch_requests": "requests carried by coalesced batches",
    "serve.elements": "elements dispatched through coalesced batches",
    "serve.singleflight.leaders": "plan builds run as single-flight leaders",
    "serve.singleflight.followers":
        "plan builds avoided by awaiting an in-flight leader",
    # sweep engine
    "sweep.points": "sweep configurations evaluated",
    "sweep.skipped_oversized": "sweep points skipped for table size",
    # table cache
    "tablecache.hits": "built tables served from the cache",
    "tablecache.misses": "table builds on cache miss",
    "tablecache.stores": "tables stored into the cache",
    "tablecache.evictions": "tables evicted for the byte budget",
}

#: Dynamic counter families: names built with one interpolated component
#: (``*``).  The obs-contract pass matches an f-string emit site against
#: these patterns — any other dynamic name is a finding.
COUNTER_PATTERNS: Dict[str, str] = {
    "batch.path[*].count": "per-cost-path element hit count",
    "batch.path[*].slots": "per-cost-path tally x count slot product",
    "memory.*_bytes": "table bytes placed per memory region (wram/mram)",
}

#: Gauges (emitted via :func:`repro.obs.metrics.observe`).
GAUGES: Dict[str, str] = {
    "dispatch.overlap_saving_seconds":
        "simulated seconds hidden by double-buffered dispatch",
    "dispatch.pool.worker_utilization":
        "fraction of pool wall-time the workers spent on shard tasks",
    "session.stream_saving_seconds":
        "simulated seconds hidden by pipelining a launch stream",
    "serve.queue_depth":
        "pending + waiting requests at the latest admission",
    "serve.coalesce_ratio":
        "requests per dispatched batch over a server's lifetime",
    "serve.latency_p50_seconds": "load-generator median request latency",
    "serve.latency_p95_seconds": "load-generator p95 request latency",
    "serve.latency_p99_seconds": "load-generator p99 request latency",
    "dpu.dma_hidden_fraction":
        "fraction of DMA time hidden behind compute",
    "topology.transfer_rank_parallelism":
        "rank fan-out applied to an unbalanced transfer's serialization",
    "tablecache.bytes": "resident bytes in the table cache",
}


def metric_kind(name: str) -> Optional[str]:
    """``"counter"``, ``"gauge"``, or ``None`` when undeclared."""
    if name in COUNTERS:
        return "counter"
    if name in GAUGES:
        return "gauge"
    return None


def pattern_kind(pattern: str) -> Optional[str]:
    """Kind of a declared dynamic-name family, or ``None``.

    ``pattern`` is the emit site's f-string with every interpolated field
    replaced by ``*`` — the exact form the keys above use.
    """
    if pattern in COUNTER_PATTERNS:
        return "counter"
    return None
