"""Bench emission: run the evaluation under the tracer, emit ``BENCH_*.json``.

CI needs a perf trajectory: a schema-versioned JSON snapshot per PR with
wall seconds, simulated cycles, the batch-vs-scalar speedup, and the
per-phase breakdown, so regressions show up as diffs between artifacts
rather than anecdotes.  :func:`run_bench` produces that snapshot;
``repro bench --emit BENCH_obs.json`` writes it.

This module also hosts the Figure 5 staleness guard
(:func:`check_fig5_artifacts`): it re-derives the fig5 sweep with the exact
rendering the benchmark harness uses (shared via :func:`fig5_artifact_texts`)
and diffs the result against ``benchmarks/out/`` — the committed artifacts
can no longer drift silently from the code that claims to produce them.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracer import Tracer, tracing

__all__ = [
    "BENCH_SCHEMA", "FIG5_ARTIFACTS",
    "run_bench", "emit_bench", "trace_run",
    "fig5_artifact_texts", "check_fig5_artifacts",
]

#: Version tag of the emitted bench JSON; bump on breaking layout changes.
BENCH_SCHEMA = "repro-bench/1"

#: The committed Figure 5 artifact files the staleness guard re-derives.
FIG5_ARTIFACTS = ("fig5_cycles.txt", "fig5_cycles.json", "fig5_cycles.csv")

_F32 = np.float32


# ----------------------------------------------------------------------
# Traced single-run harness (powers `repro trace`)


def trace_run(function: str, method: str, n: int = 4096,
              tasklets: int = 16, seed: int = 7,
              params: Optional[Dict[str, int]] = None):
    """Install ``method`` and run it whole-system under tracer + metrics.

    Returns ``(tracer, metrics, system_result)`` — the span tree covers
    table build / host->PIM / kernel / PIM->host, the metrics registry the
    cost-path and cache activity underneath.
    """
    from repro.api import make_method
    from repro.core.functions.registry import get_function
    from repro.pim.host import PIMRuntime

    spec = get_function(function)
    lo, hi = spec.bench_domain
    rng = np.random.default_rng(seed)
    xs = rng.uniform(lo, hi, n).astype(_F32)

    tracer = Tracer()
    registry = MetricsRegistry()
    with tracing(tracer), collecting(registry):
        runtime = PIMRuntime()
        fn = runtime.install(make_method(function, method,
                                         assume_in_range=False,
                                         **(params or {})))
        result = fn.run(xs, tasklets=tasklets)
    return tracer, registry, result


# ----------------------------------------------------------------------
# Bench sections


def _bench_fig5(quick: bool) -> Dict[str, Any]:
    """The fig5 sine sweep: wall time plus every (method, param) row."""
    from repro.analysis.figures import fig5_data
    from repro.analysis.sweep import SINE_SWEEPS, default_inputs, sweep_method

    t0 = time.perf_counter()
    if quick:
        inputs = default_inputs("sin", n=4096)
        points = []
        for method, cfg in SINE_SWEEPS.items():
            cfg = dict(cfg)
            cfg["param_values"] = cfg["param_values"][::2]
            points.extend(sweep_method("sin", method, inputs=inputs,
                                       sample_size=12, **cfg))
    else:
        points = fig5_data()
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "n_points": len(points),
        "rows": [
            {"method": p.method, "placement": p.placement, "param": p.param,
             "rmse": p.rmse, "cycles_per_element": p.cycles_per_element}
            for p in points
        ],
    }


def _bench_fig9(quick: bool) -> Dict[str, Any]:
    """The fig9 workload table: simulated seconds per configuration."""
    from repro.analysis.figures import fig9_data

    t0 = time.perf_counter()
    rows = fig9_data(trace_elements=1000 if quick else 10_000)
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": wall,
        "rows": [{"workload": r.workload, "config": r.config,
                  "simulated_seconds": r.seconds} for r in rows],
    }


def _bench_batch_speedup(quick: bool) -> Dict[str, Any]:
    """Batch-engine vs scalar-loop tracing rate (elements per wall-second).

    The same measurement as the >=10x floor bench in ``benchmarks/``; here
    it feeds the trajectory so the margin itself is tracked over PRs.
    """
    from repro.analysis.sweep import default_inputs
    from repro.api import make_method
    from repro.batch import batch_tally, scalar_tally

    m = make_method("sin", "llut_i", density_log2=12).setup()
    xs = default_inputs("sin", n=(1 << 13) if quick else (1 << 16))
    scalar_n = min(xs.size, 512)

    t0 = time.perf_counter()
    batch_res = batch_tally(m, xs)
    batch_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_tally(m, xs[:scalar_n])
    scalar_wall = time.perf_counter() - t0

    batch_rate = xs.size / batch_wall
    scalar_rate = scalar_n / scalar_wall
    return {
        "batch_elements_per_s": batch_rate,
        "scalar_elements_per_s": scalar_rate,
        "batch_vs_scalar_speedup": batch_rate / scalar_rate,
        "n_cost_paths": len(batch_res.paths),
        "aggregate_slots": int(batch_res.tally.slots),
    }


def _bench_phases(quick: bool) -> Dict[str, Any]:
    """One traced whole-system run: the per-phase breakdown and its checksum.

    ``reconciles`` asserts the observability contract — the sum of the
    phase spans' simulated seconds equals the run's ``total_seconds``
    exactly (same additions, same order).
    """
    tracer, registry, result = trace_run("sin", "llut_i",
                                         n=1024 if quick else 4096,
                                         params={"density_log2": 11})
    run_span = tracer.find("system.run")
    phases = {}
    for child in (run_span.children if run_span is not None else []):
        phases[child.name] = {
            "sim_seconds": child.attrs.get("sim_seconds"),
            "cycles": child.attrs.get("cycles"),
            "wall_ns": child.duration_ns,
        }
    # Sum in the same order SystemRunResult.total_seconds adds its terms,
    # so the reconciliation is exact (not approximate) float equality.
    phase_total = 0.0
    for name in ("kernel", "host_to_pim", "pim_to_host", "launch"):
        phase_total += phases.get(name, {}).get("sim_seconds") or 0.0
    return {
        "phases": phases,
        "total_sim_seconds": result.total_seconds,
        "simulated_cycles": result.per_dpu.cycles,
        "reconciles": phase_total == result.total_seconds,
        "metrics": registry.to_dict()["metrics"],
    }


def run_bench(quick: bool = False) -> Dict[str, Any]:
    """Run every bench section and assemble the schema-versioned snapshot."""
    t0 = time.perf_counter()
    sections = {
        "fig5": _bench_fig5(quick),
        "fig9": _bench_fig9(quick),
        "batch": _bench_batch_speedup(quick),
        "system_phases": _bench_phases(quick),
    }
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "generated_unix": time.time(),  # lint: allow(snapshot metadata, not a simulated number)
        "wall_seconds": time.perf_counter() - t0,
        "sections": sections,
    }


def emit_bench(path, quick: bool = False) -> Dict[str, Any]:
    """Run the bench suite and write the snapshot JSON to ``path``."""
    snapshot = run_bench(quick=quick)
    path = pathlib.Path(path)
    path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def bench_summary(snapshot: Dict[str, Any]) -> str:
    """Terse human summary of an emitted snapshot."""
    s = snapshot["sections"]
    lines = [
        f"bench snapshot ({snapshot['schema']}, "
        f"{'quick' if snapshot['quick'] else 'full'}) "
        f"in {snapshot['wall_seconds']:.2f}s wall:",
        f"  fig5: {s['fig5']['n_points']} points "
        f"in {s['fig5']['wall_seconds']:.2f}s",
        f"  fig9: {len(s['fig9']['rows'])} configs "
        f"in {s['fig9']['wall_seconds']:.2f}s",
        f"  batch vs scalar speedup: "
        f"{s['batch']['batch_vs_scalar_speedup']:.0f}x",
        f"  phase reconciliation: "
        f"{'ok' if s['system_phases']['reconciles'] else 'MISMATCH'}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 5 artifact staleness guard


def fig5_artifact_texts(points: Sequence) -> Dict[str, str]:
    """Render the three committed fig5 artifacts from sweep points.

    This is the single source of truth for their content — the benchmark
    harness (``benchmarks/bench_fig5_cycles.py``) writes these texts and
    the staleness guard re-derives them, so the two cannot disagree about
    formatting.
    """
    from repro.analysis.chart import scatter_chart
    from repro.analysis.export import sweep_to_csv, sweep_to_json
    from repro.analysis.figures import fig5_report

    series: Dict[str, List] = {}
    for p in points:
        if p.placement == "mram":
            series.setdefault(p.method, []).append(
                (p.rmse, p.cycles_per_element))
    chart = scatter_chart(series, x_label="rmse", y_label="cycles/elem")
    return {
        "fig5_cycles.txt": fig5_report(points) + "\n\n" + chart,
        "fig5_cycles.json": sweep_to_json(points),
        "fig5_cycles.csv": sweep_to_csv(points),
    }


def check_fig5_artifacts(out_dir=None) -> Dict[str, str]:
    """Re-derive the fig5 rows and diff them against ``benchmarks/out/``.

    Returns ``{filename: "fresh" | "stale" | "missing"}``.  The comparison
    is line-by-line (robust to newline conventions — the CSV writer emits
    CRLF — and to the trailing newline the bench harness appends) but
    nothing else — a single cycle of drift in any row flags the file.
    """
    from repro.analysis.figures import fig5_data

    if out_dir is None:
        out_dir = pathlib.Path(__file__).resolve().parents[3] \
            / "benchmarks" / "out"
    out_dir = pathlib.Path(out_dir)

    expected = fig5_artifact_texts(fig5_data())
    status: Dict[str, str] = {}
    for name in FIG5_ARTIFACTS:
        path = out_dir / name
        if not path.exists():
            status[name] = "missing"
            continue
        got = [ln for ln in path.read_text().splitlines() if ln]
        want = [ln for ln in expected[name].splitlines() if ln]
        status[name] = "fresh" if got == want else "stale"
    return status


def regenerate_fig5_artifacts(out_dir=None) -> List[str]:
    """Rewrite the committed fig5 artifacts from a fresh sweep."""
    from repro.analysis.figures import fig5_data

    if out_dir is None:
        out_dir = pathlib.Path(__file__).resolve().parents[3] \
            / "benchmarks" / "out"
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, text in fig5_artifact_texts(fig5_data()).items():
        (out_dir / name).write_text(text + "\n")
        written.append(name)
    return written
