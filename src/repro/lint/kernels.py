"""Discovery: kernel function definitions and method instances to verify.

A *kernel* is any ``def`` whose parameter list contains ``ctx`` — the
convention every PIM-side routine in this codebase follows (the ``ctx``
argument is the :class:`~repro.isa.counter.CycleCounter` ISA).  Discovery is
file-based (pure ``ast`` over the package sources, no imports executed), so
the AST pass sees exactly what is on disk.  ``repro.isa`` itself is exempt:
it *implements* the counted ops.

Lint directives are ordinary comments:

``# lint: allow(reason)``
    Suppresses AST findings on that physical line (on the ``def`` line:
    the whole function).  For hardware-free bit reinterpretations and
    host-side geometry folds.
``# lint: const(name, ...)``
    On a ``def`` line: declares those parameters to be host-side constants
    (table geometry, shift amounts), not traced values.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import pkgutil
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_PACKAGES",
    "Directives",
    "KernelDef",
    "iter_kernel_defs",
    "iter_method_instances",
    "iter_module_sources",
]

#: Packages whose kernels the AST pass walks.  ``repro.isa`` implements the
#: ISA and is deliberately absent; ``repro.analysis`` and ``repro.pim`` hold
#: host-side orchestration only (no ``ctx``-parameter defs).
DEFAULT_PACKAGES = ("repro.core", "repro.fixedpoint", "repro.workloads")

_DIRECTIVE_RE = re.compile(r"#\s*lint:\s*(allow|const)\(([^)]*)\)")


@dataclass
class Directives:
    """Per-module lint directives, keyed by 1-based physical line."""

    allow: Dict[int, str] = field(default_factory=dict)
    const: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "Directives":
        d = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            m = _DIRECTIVE_RE.search(line)
            if not m:
                continue
            kind, payload = m.group(1), m.group(2).strip()
            if kind == "allow":
                d.allow[lineno] = payload or "unspecified"
            else:
                names = tuple(p.strip() for p in payload.split(",") if p.strip())
                d.const[lineno] = names
        return d


@dataclass
class KernelDef:
    """One kernel function definition located in a source file."""

    qualname: str           # e.g. "repro.core.lut.llut.LLUT.core_eval"
    file: str               # path as recorded in the module spec
    node: ast.FunctionDef
    directives: Directives

    @property
    def line(self) -> int:
        return self.node.lineno

    def const_params(self) -> Tuple[str, ...]:
        """Parameters declared host constants via ``# lint: const(...)``."""
        names: List[str] = []
        lo = self.node.lineno
        hi = self.node.body[0].lineno if self.node.body else lo
        for lineno, params in self.directives.const.items():
            if lo <= lineno < hi or lineno == lo:
                names.extend(params)
        return tuple(names)

    def allowed(self, lineno: int) -> bool:
        """True when findings at ``lineno`` are suppressed."""
        return lineno in self.directives.allow or self.line in self.directives.allow


def _module_files(packages: Sequence[str],
                  extra_modules: Sequence[str]) -> Iterator[Tuple[str, str]]:
    """Yield ``(module_name, file_path)`` for every module to scan."""
    seen = set()
    for pkg_name in packages:
        spec = importlib.util.find_spec(pkg_name)
        if spec is None or spec.origin is None:
            continue
        if pkg_name not in seen:
            seen.add(pkg_name)
            yield pkg_name, spec.origin
        if spec.submodule_search_locations:
            pkg = importlib.import_module(pkg_name)
            for info in pkgutil.walk_packages(pkg.__path__, pkg_name + "."):
                sub = importlib.util.find_spec(info.name)
                if sub is not None and sub.origin and info.name not in seen:
                    seen.add(info.name)
                    yield info.name, sub.origin
    for name in extra_modules:
        try:
            mod = importlib.import_module(name)
        except ImportError as exc:
            raise ConfigurationError(
                f"cannot import extra lint module {name!r}: {exc}"
            ) from exc
        path = getattr(mod, "__file__", None)
        if path and name not in seen:
            seen.add(name)
            yield name, path


def iter_module_sources(
    packages: Sequence[str],
    extra_modules: Sequence[str] = (),
) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(module_name, file_path, source)`` for every module to scan.

    The file-based counterpart of :func:`_module_files` used by the
    whole-program passes (determinism, obs-contract): packages are walked
    recursively, sources are read from disk, unreadable files are skipped.
    """
    for module_name, path in _module_files(packages, extra_modules):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                yield module_name, path, fh.read()
        except OSError:
            continue


class _DefCollector(ast.NodeVisitor):
    """Collects (qualname, node) for every function def, tracking nesting."""

    def __init__(self, module_name: str):
        self.stack = [module_name]
        self.found: List[Tuple[str, ast.FunctionDef]] = []

    def _visit_def(self, node):
        self.stack.append(node.name)
        self.found.append((".".join(self.stack), node))
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()


def _param_names(node: ast.FunctionDef) -> List[str]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def iter_kernel_defs(
    packages: Sequence[str] = DEFAULT_PACKAGES,
    extra_modules: Sequence[str] = (),
) -> Iterator[KernelDef]:
    """Yield every kernel def (a function with a ``ctx`` parameter)."""
    for module_name, path in _module_files(packages, extra_modules):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue
        directives = Directives.parse(source)
        collector = _DefCollector(module_name)
        collector.visit(ast.parse(source, filename=path))
        for qualname, node in collector.found:
            if "ctx" in _param_names(node):
                yield KernelDef(qualname=qualname, file=path, node=node,
                                directives=directives)


def iter_method_instances(
    methods: Optional[Iterable[str]] = None,
    functions: Optional[Iterable[str]] = None,
    setup: bool = True,
) -> Iterator[object]:
    """Yield configured Method instances for every supported pair.

    Instances are built through :func:`repro.api.make_method` with library
    defaults — the shipped configurations are what the contract, interval and
    memory passes certify.
    """
    from repro.api import ALL_METHOD_NAMES, make_method
    from repro.core.functions.support import METHOD_SUPPORT, supports

    method_names = list(methods) if methods is not None else list(ALL_METHOD_NAMES)
    for method_name in method_names:
        funcs = METHOD_SUPPORT.get(method_name, ())
        if functions is not None:
            funcs = [f for f in funcs if f in set(functions)]
        for func_name in sorted(funcs):
            if not supports(method_name, func_name):
                continue
            m = make_method(func_name, method_name)
            if setup:
                m.setup()
            yield m
