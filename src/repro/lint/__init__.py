"""Static kernel verifier for the paper's cost contracts (``repro lint``).

Every cycle number this reproduction reports assumes that kernels route all
arithmetic through the :class:`~repro.isa.counter.CycleCounter` ISA — one raw
``x * y`` in a kernel body is a free, uncounted softfloat multiply that
silently corrupts the Figure 5 model.  The paper's central claims are
themselves op-count contracts (M-LUT = 1 fp multiply, L-LUT = 0 via ``ldexp``,
interpolation adds exactly one — Section 2.2, Table 1), so this package
machine-checks them with four passes:

``ast``
    Walks every kernel function body (any ``def`` with a ``ctx`` parameter
    under ``repro.core``, ``repro.fixedpoint`` and ``repro.workloads``) and
    flags arithmetic on traced values that bypasses the ISA.
``contracts``
    Declares per-method op budgets (:mod:`repro.core.functions.budgets`) and
    verifies them by tracing each (method, function) pair and diffing the
    :class:`~repro.isa.counter.Tally` counts against the budget.
``intervals``
    An interval abstract interpreter for the s3.28 fixed-point kernels:
    propagates value ranges over each function's declared input domain and
    reports potential overflow / precision loss.
``memory``
    Sizes every method's tables against the
    :class:`~repro.pim.config.DPUConfig` WRAM/MRAM capacities.
"""

from repro.lint.astlint import lint_kernel, run_ast_lint
from repro.lint.contracts import check_contract, run_contracts
from repro.lint.intervals import (
    Interval,
    check_method_intervals,
    fx_mul_interval,
    run_intervals,
)
from repro.lint.kernels import KernelDef, iter_kernel_defs, iter_method_instances
from repro.lint.membudget import check_method_memory, run_memory
from repro.lint.report import LintReport, Violation
from repro.lint.runner import ALL_PASSES, run_lint

__all__ = [
    "ALL_PASSES",
    "Interval",
    "KernelDef",
    "LintReport",
    "Violation",
    "check_contract",
    "check_method_intervals",
    "check_method_memory",
    "fx_mul_interval",
    "iter_kernel_defs",
    "iter_method_instances",
    "lint_kernel",
    "run_ast_lint",
    "run_contracts",
    "run_intervals",
    "run_lint",
    "run_memory",
]
