"""Static kernel verifier for the paper's cost contracts (``repro lint``).

Every cycle number this reproduction reports assumes that kernels route all
arithmetic through the :class:`~repro.isa.counter.CycleCounter` ISA — one raw
``x * y`` in a kernel body is a free, uncounted softfloat multiply that
silently corrupts the Figure 5 model.  The paper's central claims are
themselves op-count contracts (M-LUT = 1 fp multiply, L-LUT = 0 via ``ldexp``,
interpolation adds exactly one — Section 2.2, Table 1), so this package
machine-checks them with four passes:

``ast``
    Walks every kernel function body (any ``def`` with a ``ctx`` parameter
    under ``repro.core``, ``repro.fixedpoint`` and ``repro.workloads``) and
    flags arithmetic on traced values that bypasses the ISA.
``contracts``
    Declares per-method op budgets (:mod:`repro.core.functions.budgets`) and
    verifies them by tracing each (method, function) pair and diffing the
    :class:`~repro.isa.counter.Tally` counts against the budget.
``intervals``
    An interval abstract interpreter for the s3.28 fixed-point kernels:
    propagates value ranges over each function's declared input domain and
    reports potential overflow / precision loss.
``memory``
    Sizes every method's tables against the
    :class:`~repro.pim.config.DPUConfig` WRAM/MRAM capacities.

Four *whole-program* passes extend the verifier from single kernels to the
compiled-plan architecture (``repro.plan`` / ``repro.batch`` /
``repro.obs``) — the static gate for multi-process scale-out (ROADMAP
item 3):

``cache-key``
    Attribute-taint soundness of the :class:`~repro.plan.cache.PlanKey`:
    every plan field read on the execute path is represented in the key
    (no unsound hits) and every key field is read (no needless splits);
    key builders must use typed tuples, not object reprs.
``determinism``
    Flags nondeterminism sources on plan/batch paths: unseeded or shared
    rngs, wall-clock reads, ``id()``-keyed aggregation, raw set iteration.
``parallel-safety``
    Certifies plans, transfer schedules, table images and shard
    descriptors as picklable, lock-free and handle-free — ready for a
    ``multiprocessing`` pool — by structural graph walk plus a pickle
    round-trip.
``obs-contract``
    Every span opens under ``with`` (closed on all paths) and every
    counter/gauge emitted is declared in :mod:`repro.obs.catalog`.

Accepted findings can be recorded in a baseline file
(:mod:`repro.lint.baseline`, ``repro lint --baseline``) so only new
regressions fail CI.
"""

from repro.lint.astlint import lint_kernel, run_ast_lint
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cachekey import (check_cache_key_sources,
                                 check_request_key_sources, run_cache_key)
from repro.lint.contracts import check_contract, run_contracts
from repro.lint.determinism import check_determinism_source, run_determinism
from repro.lint.intervals import (
    Interval,
    check_method_intervals,
    fx_mul_interval,
    run_intervals,
)
from repro.lint.kernels import KernelDef, iter_kernel_defs, iter_method_instances
from repro.lint.membudget import check_method_memory, run_memory
from repro.lint.obscontract import check_obs_contract_source, run_obs_contract
from repro.lint.parallel import check_parallel_safety, run_parallel_safety
from repro.lint.report import LintReport, Violation
from repro.lint.runner import ALL_PASSES, KERNEL_PASSES, PROGRAM_PASSES, run_lint

__all__ = [
    "ALL_PASSES",
    "Interval",
    "KERNEL_PASSES",
    "KernelDef",
    "LintReport",
    "PROGRAM_PASSES",
    "Violation",
    "apply_baseline",
    "check_cache_key_sources",
    "check_request_key_sources",
    "check_contract",
    "check_determinism_source",
    "check_method_intervals",
    "check_method_memory",
    "check_obs_contract_source",
    "check_parallel_safety",
    "fingerprint",
    "fx_mul_interval",
    "iter_kernel_defs",
    "iter_method_instances",
    "lint_kernel",
    "load_baseline",
    "run_ast_lint",
    "run_cache_key",
    "run_contracts",
    "run_determinism",
    "run_intervals",
    "run_lint",
    "run_memory",
    "run_obs_contract",
    "run_parallel_safety",
    "write_baseline",
]
