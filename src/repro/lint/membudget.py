"""Memory pass: size every method's tables against DPU memory capacities.

Each configured method declares where its tables live (``placement`` is
``"wram"`` or ``"mram"``); the pass checks the footprint against the
corresponding :class:`~repro.pim.config.DPUConfig` capacity.  A table that
exceeds its region cannot be deployed at all (error); a WRAM-placed table
that crowds out the tasklet stacks gets a warning.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.kernels import iter_method_instances
from repro.lint.report import Violation
from repro.pim.config import UPMEM_DPU, DPUConfig

__all__ = ["check_method_memory", "run_memory"]

#: Fraction of WRAM a single method's tables may claim before the pass
#: warns: the scratchpad also holds every tasklet's stack and I/O buffers.
_WRAM_WARN_FRACTION = 0.75


def check_method_memory(m, dpu: DPUConfig = UPMEM_DPU) -> List[Violation]:
    """Check one configured instance's table bytes against its region."""
    size = int(m.table_bytes())
    placement = getattr(m, "placement", "mram")
    cap = dpu.wram_bytes if placement == "wram" else dpu.mram_bytes
    where = f"{m.method_name}:{m.spec.name}:{placement}"
    out: List[Violation] = []
    if size > cap:
        out.append(Violation(
            pass_name="memory", rule="budget-exceeded", severity="error",
            message=(
                f"tables need {size} bytes but {placement.upper()} holds "
                f"{cap} bytes per DPU — this configuration cannot deploy"
            ),
            where=where,
        ))
    elif placement == "wram" and size > _WRAM_WARN_FRACTION * cap:
        out.append(Violation(
            pass_name="memory", rule="wram-pressure", severity="warning",
            message=(
                f"tables claim {size} of {cap} WRAM bytes "
                f"(> {int(_WRAM_WARN_FRACTION * 100)}%), leaving little "
                f"room for tasklet stacks and I/O buffers"
            ),
            where=where,
        ))
    return out


def run_memory(
    methods: Optional[Iterable[object]] = None,
    dpu: DPUConfig = UPMEM_DPU,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Size-check every supported (method, function) pair."""
    if methods is None:
        methods = iter_method_instances()
    violations: List[Violation] = []
    n = 0
    for m in methods:
        n += 1
        violations.extend(check_method_memory(m, dpu))
    return violations, {"methods": n}
