"""Obs-contract lint: spans close on all paths, metrics are declared.

The observability layer (``repro.obs``) is the substrate every performance
claim in this repo reports through, so its own discipline is worth machine-
checking:

``span-unclosed`` (error)
    Every ``span(...)`` / ``_span(...)`` / ``*.span(...)`` call must be the
    context expression of a ``with`` statement.  ``with`` guarantees
    ``__exit__`` on *every* path — exceptions included — which is exactly
    the "every span opened is closed on all paths" proof; a span handle
    bound outside ``with`` can leak open on an early raise and corrupt the
    tracer's stack reconciliation.
``undeclared-metric`` (error)
    ``inc``/``observe`` (and registry ``value`` reads) must name a metric
    declared in :mod:`repro.obs.catalog`.  First-use creation means a typo
    silently forks a metric series; the catalog makes the namespace closed.
``metric-kind-mismatch`` (error)
    ``inc`` on a declared gauge or ``observe`` on a declared counter.
``dynamic-metric-name`` (error)
    A non-literal metric name whose shape is not a declared family.  An
    f-string site is reduced to a pattern (interpolations become ``*``)
    and accepted only when :data:`repro.obs.catalog.COUNTER_PATTERNS`
    declares it — any other dynamic name fragments the namespace
    uncheckably.
``unused-metric`` (warning)
    A catalog entry no analyzed module emits: dead declaration (or the
    emit site moved out of the analyzed tree).

``repro.obs.tracer`` and ``repro.obs.metrics`` are exempt — they implement
the primitives being policed.  ``# lint: allow(reason)`` suppresses a
finding on its line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.kernels import Directives, iter_module_sources
from repro.lint.report import Violation

__all__ = ["DEFAULT_PACKAGES", "EXEMPT_MODULES",
           "check_obs_contract_source", "run_obs_contract"]

#: The whole instrumented tree: spans and metrics appear across the plan,
#: batch, pim, core and analysis layers, so the contract covers it all.
DEFAULT_PACKAGES = ("repro",)

#: Implementation modules of the primitives themselves.
EXEMPT_MODULES = {"repro.obs.tracer", "repro.obs.metrics"}

#: Call names that open a span.
_SPAN_NAMES = {"span", "_span"}

#: (attribute/function name, expected kind) of metric emit/read sites.
_METRIC_CALLS = {"inc": "counter", "observe": "gauge", "value": "counter"}


def _span_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _SPAN_NAMES
    if isinstance(func, ast.Attribute):
        return func.attr in _SPAN_NAMES
    return False


def _metric_call(node: ast.Call) -> Optional[str]:
    """The expected metric kind when ``node`` is an emit/read site."""
    func = node.func
    name = None
    if isinstance(func, ast.Attribute):
        # _metrics.inc(...), metrics.observe(...), registry.value(...)
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return _METRIC_CALLS.get(name) if name in _METRIC_CALLS else None


class _ObsLinter(ast.NodeVisitor):
    """One module's span/metric contract scan."""

    def __init__(self, module: str, file: str, directives: Directives,
                 kind_of, pattern_kind_of):
        self.module = module
        self.file = file
        self.directives = directives
        self.kind_of = kind_of
        self.pattern_kind_of = pattern_kind_of
        self.violations: List[Violation] = []
        self.span_sites = 0
        self.metric_sites = 0
        self.used_metrics: Set[str] = set()
        self._with_items: Set[int] = set()

    def _violate(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if lineno in self.directives.allow:
            return
        self.violations.append(Violation(
            pass_name="obs-contract", rule=rule, severity="error",
            message=message, file=self.file, line=lineno, where=self.module,
        ))

    # ------------------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        # First collect every with-item context expression, then check the
        # span calls against that set.
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    self._with_items.add(id(item.context_expr))
        self.visit(tree)

    def visit_Call(self, node: ast.Call) -> None:
        if _span_call(node):
            self.span_sites += 1
            if id(node) not in self._with_items:
                self._violate(
                    node, "span-unclosed",
                    "span opened outside a 'with' statement: only 'with' "
                    "guarantees the span closes on every path, exceptions "
                    "included",
                )
        kind = _metric_call(node)
        if kind is not None and node.args:
            self.metric_sites += 1
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value,
                                                              str):
                name = first.value
                declared = self.kind_of(name)
                if declared is None:
                    self._violate(
                        node, "undeclared-metric",
                        f"metric {name!r} is not declared in "
                        "repro.obs.catalog; first-use creation would fork "
                        "the namespace on a typo",
                    )
                else:
                    self.used_metrics.add(name)
                    if declared != kind:
                        self._violate(
                            node, "metric-kind-mismatch",
                            f"metric {name!r} is declared as a {declared} "
                            f"but emitted as a {kind}",
                        )
            elif isinstance(first, ast.JoinedStr):
                pattern = _fstring_pattern(first)
                declared = self.pattern_kind_of(pattern)
                if declared is None:
                    self._violate(
                        node, "dynamic-metric-name",
                        f"dynamic metric family {pattern!r} is not "
                        "declared in repro.obs.catalog patterns",
                    )
                else:
                    self.used_metrics.add(pattern)
                    if declared != kind:
                        self._violate(
                            node, "metric-kind-mismatch",
                            f"metric family {pattern!r} is declared as a "
                            f"{declared} but emitted as a {kind}",
                        )
            else:
                self._violate(
                    node, "dynamic-metric-name",
                    "metric name is not a string literal or declared "
                    "f-string family; the declaration contract cannot be "
                    "checked statically",
                )
        self.generic_visit(node)


def _fstring_pattern(node: ast.JoinedStr) -> str:
    """An f-string's shape with every interpolated field as ``*``."""
    parts = []
    for v in node.values:
        if isinstance(v, ast.Constant):
            parts.append(str(v.value))
        else:
            parts.append("*")
    return "".join(parts)


def check_obs_contract_source(
    source: str, *, module: str = "<module>", file: str = "<source>",
    kind_of=None, pattern_kind_of=None,
) -> Tuple[List[Violation], Set[str], Dict[str, int]]:
    """Scan one module source; returns (violations, used names, stats)."""
    from repro.obs.catalog import metric_kind, pattern_kind

    linter = _ObsLinter(
        module, file, Directives.parse(source),
        kind_of if kind_of is not None else metric_kind,
        pattern_kind_of if pattern_kind_of is not None else pattern_kind)
    linter.run(ast.parse(source, filename=file))
    stats = {"span_sites": linter.span_sites,
             "metric_sites": linter.metric_sites}
    return linter.violations, linter.used_metrics, stats


def run_obs_contract(
    packages: Sequence[str] = DEFAULT_PACKAGES,
    extra_modules: Sequence[str] = (),
    sources: Optional[Sequence[Tuple[str, str, str]]] = None,
    check_unused: bool = True,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Scan every module in ``packages``; flag undeclared and unused."""
    from repro.obs import catalog

    if sources is None:
        sources = iter_module_sources(tuple(packages) + tuple(extra_modules))
    violations: List[Violation] = []
    used: Set[str] = set()
    span_sites = 0
    metric_sites = 0
    n = 0
    for module, path, source in sources:
        if module in EXEMPT_MODULES:
            continue
        n += 1
        vs, names, stats = check_obs_contract_source(
            source, module=module, file=path)
        violations.extend(vs)
        used.update(names)
        span_sites += stats["span_sites"]
        metric_sites += stats["metric_sites"]

    if check_unused:
        declared = set(catalog.COUNTERS) | set(catalog.GAUGES) \
            | set(catalog.COUNTER_PATTERNS)
        for name in sorted(declared - used):
            violations.append(Violation(
                pass_name="obs-contract", rule="unused-metric",
                severity="warning",
                message=f"metric {name!r} is declared in repro.obs.catalog "
                        "but no analyzed module emits it",
                file=catalog.__file__, where=name,
            ))
    stats = {"obs_modules": n, "span_sites": span_sites,
             "metric_sites": metric_sites}
    return violations, stats
