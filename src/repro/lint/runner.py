"""Orchestrates the lint passes — per-kernel and whole-program — into one report."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.astlint import run_ast_lint
from repro.lint.cachekey import run_cache_key
from repro.lint.contracts import run_contracts
from repro.lint.determinism import run_determinism
from repro.lint.intervals import run_intervals
from repro.lint.kernels import DEFAULT_PACKAGES, iter_method_instances
from repro.lint.membudget import run_memory
from repro.lint.obscontract import run_obs_contract
from repro.lint.parallel import run_parallel_safety
from repro.lint.report import LintReport

__all__ = ["ALL_PASSES", "KERNEL_PASSES", "PROGRAM_PASSES", "run_lint"]

#: Per-kernel verifier passes (PR 1): one method/kernel at a time.
KERNEL_PASSES = ("ast", "contracts", "intervals", "memory")

#: Whole-program analyzer passes over repro.plan / repro.batch / repro.obs:
#: cache-key soundness, nondeterminism sources, multiprocessing readiness,
#: and the span/metric contract.
PROGRAM_PASSES = ("cache-key", "determinism", "parallel-safety",
                  "obs-contract")

ALL_PASSES = KERNEL_PASSES + PROGRAM_PASSES


def run_lint(
    passes: Sequence[str] = ALL_PASSES,
    packages: Sequence[str] = DEFAULT_PACKAGES,
    extra_modules: Sequence[str] = (),
    methods: Optional[Iterable[object]] = None,
) -> LintReport:
    """Run the selected passes and merge their findings.

    ``methods`` injects pre-built method instances (used by the seeded-
    violation tests); by default every supported (method, function) pair is
    built once with library defaults and shared across the instance passes.
    ``extra_modules`` widens the AST, determinism and obs-contract scans to
    additional importable modules.
    """
    unknown = [p for p in passes if p not in ALL_PASSES]
    if unknown:
        raise ConfigurationError(
            f"unknown lint pass(es) {unknown}; choose from {list(ALL_PASSES)}"
        )
    report = LintReport(passes=tuple(passes))

    if "ast" in passes:
        violations, stats = run_ast_lint(packages, extra_modules)
        report.extend(violations)
        report.checked.update(stats)

    instance_passes = [p for p in ("contracts", "intervals", "memory")
                       if p in passes]
    if instance_passes:
        if methods is None:
            methods = list(iter_method_instances())
        else:
            methods = list(methods)
        report.checked["methods"] = len(methods)
        if "contracts" in passes:
            report.extend(run_contracts(methods)[0])
        if "intervals" in passes:
            report.extend(run_intervals(methods)[0])
        if "memory" in passes:
            report.extend(run_memory(methods)[0])

    if "cache-key" in passes:
        violations, stats = run_cache_key()
        report.extend(violations)
        report.checked.update(stats)
    if "determinism" in passes:
        violations, stats = run_determinism(extra_modules=extra_modules)
        report.extend(violations)
        report.checked.update(stats)
    if "parallel-safety" in passes:
        violations, stats = run_parallel_safety()
        report.extend(violations)
        report.checked.update(stats)
    if "obs-contract" in passes:
        violations, stats = run_obs_contract(extra_modules=extra_modules)
        report.extend(violations)
        report.checked.update(stats)
    return report
