"""Parallel-safety: plans and their reachable state must cross processes.

ROADMAP item 3 lifts :func:`~repro.plan.dispatch.execute_sharded` onto a
``multiprocessing`` pool.  That is only safe if everything a shard needs —
the :class:`~repro.plan.plan.ExecutionPlan`, its
:class:`~repro.plan.plan.TransferSchedule`, the built table images, and the
shard descriptors — is built from picklable, lock-free, handle-free types.
This pass certifies that *dynamically but exhaustively*: it compiles
representative plans across the method families, executes them once (so the
tally cache, launch memo and path classifier state are populated, not
empty), then

1. walks the full reachable object graph of each artifact and flags any
   node whose type cannot cross a process boundary, with the exact
   attribute path (``plan:sin:llut_i.system.dpu...``) as attribution;
2. round-trips the artifact through ``pickle`` as the ground truth the
   structural walk approximates.

Rules (pass name ``parallel-safety``):

``lock-held`` (error)
    A thread lock/condition/semaphore in the graph — lock state cannot
    transfer, and its presence implies shared-memory assumptions.
``handle-held`` (error)
    An open file, socket, or mmap — OS handles are process-local.
``unpicklable`` (error)
    A lambda, nested function, generator, coroutine, module, or weakref.
``pickle-failed`` (error)
    ``pickle.dumps``/``loads`` raised; reported with the exception text.
"""

from __future__ import annotations

import inspect
import io
import pickle
import weakref
from types import FunctionType, ModuleType
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.lint.report import Violation

__all__ = ["check_parallel_safety", "default_targets", "run_parallel_safety"]

#: (function, method, knobs) triples compiled into representative plans —
#: one per method family shape: LUT, scaling LUT, CORDIC, composite.
_REPRESENTATIVE = (
    ("sin", "llut_i", {"density_log2": 6}),
    ("exp", "mlut", {}),
    ("sin", "cordic", {"iterations": 8}),
    ("tanh", "dllut_i", {}),
)

#: Graph-walk bound; the real artifacts settle well below this.
_MAX_NODES = 200_000


def _lockish(obj) -> bool:
    tname = type(obj).__name__
    return type(obj).__module__ in ("_thread", "threading") and (
        "lock" in tname.lower() or tname in (
            "Condition", "Event", "Semaphore", "BoundedSemaphore",
            "Barrier"))


def _handleish(obj) -> bool:
    if isinstance(obj, io.IOBase):
        return True
    mod = type(obj).__module__
    return mod in ("socket", "mmap", "ssl") or \
        type(obj).__name__ in ("socket", "mmap")


def _local_callable(obj) -> bool:
    """A function that pickle cannot resolve by module-level name."""
    if isinstance(obj, FunctionType):
        qn = getattr(obj, "__qualname__", "")
        return "<lambda>" in qn or "<locals>" in qn
    return False


def _classify(obj, path: str) -> Optional[Tuple[str, str]]:
    """(rule, message) when ``obj`` cannot cross a process boundary."""
    if _lockish(obj):
        return ("lock-held",
                f"{path} holds a {type(obj).__name__}: lock state cannot "
                "cross a process boundary")
    if _handleish(obj):
        return ("handle-held",
                f"{path} holds a {type(obj).__name__}: OS handles are "
                "process-local")
    if inspect.isgenerator(obj) or inspect.iscoroutine(obj):
        return ("unpicklable",
                f"{path} holds a live {type(obj).__name__}; generators and "
                "coroutines cannot be pickled")
    if isinstance(obj, ModuleType):
        return ("unpicklable", f"{path} holds module {obj.__name__!r}")
    if isinstance(obj, weakref.ref):
        return ("unpicklable", f"{path} holds a weak reference")
    if _local_callable(obj):
        return ("unpicklable",
                f"{path} holds {obj.__qualname__!r}: lambdas and nested "
                "functions cannot be pickled by name")
    return None


def _children(obj) -> List[Tuple[str, object]]:
    """(edge-label, child) pairs for the structural walk."""
    out: List[Tuple[str, object]] = []
    if isinstance(obj, dict):
        for k, v in obj.items():
            label = f"[{k!r}]" if isinstance(k, (str, int, float, bool)) \
                else "[<key>]"
            out.append((label, k))
            out.append((label, v))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for i, v in enumerate(obj):
            out.append((f"[{i}]", v))
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            for i, v in enumerate(obj.flat):
                out.append((f"[{i}]", v))
    elif inspect.ismethod(obj):
        out.append((".__self__", obj.__self__))
        out.append((".__func__", obj.__func__))
    elif isinstance(obj, (str, bytes, bytearray, int, float, complex, bool,
                          type(None), np.generic, FunctionType, type)):
        pass
    else:
        try:
            attrs = vars(obj)
        except TypeError:
            attrs = {}
        for name, v in attrs.items():
            out.append((f".{name}", v))
    return out


def check_parallel_safety(obj, name: str) -> List[Violation]:
    """Structurally walk ``obj`` and pickle round-trip it; all findings."""
    violations: List[Violation] = []
    seen: Set[int] = set()
    stack: List[Tuple[str, object]] = [(name, obj)]
    nodes = 0
    while stack and nodes < _MAX_NODES:
        path, cur = stack.pop()
        if id(cur) in seen:
            continue
        seen.add(id(cur))
        nodes += 1
        hit = _classify(cur, path)
        if hit is not None:
            rule, message = hit
            violations.append(Violation(
                pass_name="parallel-safety", rule=rule, severity="error",
                message=message, where=path,
            ))
            continue  # don't descend into a condemned node
        for label, child in _children(cur):
            stack.append((path + label, child))

    try:
        clone = pickle.loads(pickle.dumps(obj))
        del clone
    except Exception as exc:  # noqa: BLE001 - report any pickling failure
        violations.append(Violation(
            pass_name="parallel-safety", rule="pickle-failed",
            severity="error",
            message=f"{name} does not round-trip through pickle: "
                    f"{type(exc).__name__}: {exc}",
            where=name,
        ))
    return violations


def default_targets() -> List[Tuple[str, object]]:
    """Representative (name, artifact) pairs certified by the default run.

    Compiles one plan per method-family shape on a small system, executes
    each once so runtime caches hold real state, and adds the transfer
    schedule, the built table image arrays, and a sharded dispatch's shard
    descriptors.
    """
    from repro.api import make_method
    from repro.pim.config import SystemConfig
    from repro.pim.system import PIMSystem
    from repro.pim.topology import PAPER_TOPOLOGY, Topology
    from repro.plan.dispatch import (execute_sharded, shard_split,
                                     spawn_shard_rngs)
    from repro.plan.plan import TransferSchedule, compile_plan
    from repro.plan.pool import ShardTask, ship_plan, unlink_shipment

    system = PIMSystem(SystemConfig(n_dpus=8))
    xs = np.linspace(0.1, 0.9, 200, dtype=np.float32)
    # Topology rides in every shipped SystemConfig (plan.system.config and
    # each ShardTask's dpu_range-derived sub-config), so it is a wire
    # artifact in its own right — certify the paper instance, a sliced
    # view (the shape workers actually reconstruct), and a custom one.
    targets: List[Tuple[str, object]] = [
        ("transfer_schedule", TransferSchedule()),
        ("shard_split", shard_split(200, 8, 2)),
        ("topology:paper", PAPER_TOPOLOGY),
        ("topology:subrange", PAPER_TOPOLOGY.subrange(64, 192)),
        ("topology:custom", Topology(channels=2, dimms_per_channel=2,
                                     ranks_per_dimm=2, dpus_per_rank=4,
                                     defective=(3, 17))),
    ]
    for func, meth, knobs in _REPRESENTATIVE:
        m = make_method(func, meth, assume_in_range=False, **knobs)
        plan = compile_plan(system, m)
        plan.execute(xs)
        targets.append((f"plan:{func}:{meth}", plan))
    last_plan = targets[-1][1]
    sharded = execute_sharded(last_plan, xs, n_shards=2)
    targets.append(("shard_results", sharded.shards))
    # The pooled-dispatch wire artifacts: exactly what execute_sharded
    # ships across the process boundary when workers are in play.
    shipment = ship_plan(last_plan)
    try:
        task = ShardTask(
            shipment=shipment, index=0, n_dpus=4, inputs=xs[:100],
            virtual_n=None, imbalance=None,
            rng=spawn_shard_rngs(np.random.default_rng(3), 2)[0],
            batch=True, capture_trace=False, capture_metrics=False,
        )
        targets.append(("pool_shard_task", task))
        targets.append(("pool_shard_task_aligned",
                        ShardTask(
                            shipment=shipment, index=1, n_dpus=4,
                            inputs=xs[100:], virtual_n=None, imbalance=None,
                            rng=spawn_shard_rngs(
                                np.random.default_rng(3), 2)[1],
                            batch=True, capture_trace=False,
                            capture_metrics=False, dpu_range=(4, 8),
                        )))
        targets.append(("pool_shipment", shipment))
    finally:
        unlink_shipment(shipment)
    return targets


def run_parallel_safety(
    targets: Optional[Sequence[Tuple[str, object]]] = None,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Certify every target (the representative set by default)."""
    if targets is None:
        targets = default_targets()
    violations: List[Violation] = []
    for name, obj in targets:
        violations.extend(check_parallel_safety(obj, name))
    return violations, {"parallel_targets": len(targets)}
