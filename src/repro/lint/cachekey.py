"""Cache-key soundness: every field a plan reads is represented in its key.

The :class:`~repro.plan.cache.PlanCache` returns a cached
:class:`~repro.plan.plan.ExecutionPlan` whenever a
:class:`~repro.plan.cache.PlanKey` matches.  That is only sound if the key
covers *every* plan attribute that can influence an ``execute`` result: a
field that changes the numbers but is excluded from the key is an unsound
cache hit (two different launches collapse onto one plan), while a key field
no execute path ever reads is a needless cache split (identical launches
compile twice).

This pass proves the correspondence statically, by attribute taint:

1. parse the plan module, collect every ``self.X`` assigned in
   ``ExecutionPlan.__init__`` and every ``self.X`` *read* on the execute
   path (``execute`` plus every self-method it transitively calls);
2. parse the cache module, collect the ``PlanKey`` dataclass fields;
3. diff the two against the declared :data:`DEFAULT_COVERAGE` contract —
   which plan attribute each key field represents — and the declared
   :data:`DEFAULT_STATE_ATTRS` (mutable runtime state that caches results
   but never changes them, hence legitimately unkeyed).

A fourth rule guards the key *builders* themselves: ``_method_parts`` and
the signature functions must not fold ``repr()`` strings of non-primitive
objects into the digest — an object's repr can change across refactors
(silent cache churn) or collide across distinct values (silent unsound
hits).  Keys must be built from typed primitive tuples.

Rules (pass name ``cache-key``):

``key-missing-field`` (error)
    A plan attribute set in ``__init__`` and read on the execute path is
    neither covered by a key field nor declared state.
``key-unused-field`` (warning)
    A ``PlanKey`` field covers no attribute the execute path reads.
``key-unknown-coverage`` (error)
    The coverage contract names a key field that does not exist.
``key-unstable-component`` (error)
    A key-builder function formats a component with ``repr()`` / ``!r``.

The serving front end adds a second key producer: a normalized
:class:`~repro.serve.keys.RequestSpec` decides which requests may
*coalesce* onto one cached plan, so its identity must flow — totally —
into ``PlanKey``.  The same discipline applies, with its own rules:

``request-key-unmapped-field`` (error)
    A ``RequestSpec`` field is missing from the request coverage
    contract: requests differing in it could coalesce onto one plan.
``request-key-unknown-field`` (error)
    The request coverage contract names a spec field that does not exist
    (a stale contract proves nothing).
``request-key-unknown-coverage`` (error)
    The request coverage maps into a ``PlanKey`` field that does not
    exist.

``key-unstable-component`` also runs over the serve key builders
(:data:`SERVE_KEY_BUILDERS`).
"""

from __future__ import annotations

import ast
import importlib.util
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.lint.report import Violation

__all__ = [
    "DEFAULT_COVERAGE",
    "DEFAULT_STATE_ATTRS",
    "REQUEST_COVERAGE",
    "SERVE_KEY_BUILDERS",
    "check_cache_key_sources",
    "check_request_key_sources",
    "run_cache_key",
]

#: ExecutionPlan attribute -> PlanKey field(s) that represent it.  ``method``
#: folds into the table signature *and* the placement; ``system`` carries
#: the system config, the op-cost table, and the config's channel/rank
#: topology signature.
DEFAULT_COVERAGE: Dict[str, Tuple[str, ...]] = {
    "method": ("table_key", "placement"),
    "kernel": ("table_key",),
    "placement": ("placement",),
    "system": ("system", "costs", "topology"),
    "tasklets": ("tasklets",),
    "sample_size": ("sample_size",),
    "transfers": ("transfers",),
    "imbalance": ("imbalance",),
    "vec_enabled": ("vec",),
}

#: Mutable runtime state: read (and written) during execute, but a cache of
#: exact results or bookkeeping — never an input that changes the numbers.
DEFAULT_STATE_ATTRS: Set[str] = {
    "tally_cache", "memo", "executions", "signature", "_launch_memo",
}

#: Functions in the cache module whose bodies build key components.
DEFAULT_KEY_BUILDERS: Tuple[str, ...] = (
    "_method_parts", "table_signature", "plan_signature", "key_for",
)

#: RequestSpec field -> PlanKey field(s) its identity flows into.  The
#: function/method names, constructor knobs, and range assumption all fold
#: into the table signature (via ``make_method`` + ``table_signature``);
#: placement is the plan key's own placement field.
REQUEST_COVERAGE: Dict[str, Tuple[str, ...]] = {
    "function": ("table_key",),
    "method": ("table_key",),
    "params": ("table_key",),
    "placement": ("placement",),
    "assume_in_range": ("table_key",),
}

#: Functions in the serve key module whose bodies build key components.
SERVE_KEY_BUILDERS: Tuple[str, ...] = (
    "_param_pairs", "normalize_request", "spec_method", "request_key",
)


def _module_source(module: str) -> Tuple[str, str]:
    spec = importlib.util.find_spec(module)
    if spec is None or spec.origin is None:
        raise ConfigurationError(f"cannot locate module {module!r} to lint")
    with open(spec.origin, "r", encoding="utf-8") as fh:
        return spec.origin, fh.read()


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _key_fields(cls: ast.ClassDef) -> List[str]:
    """Dataclass field names, in declaration order."""
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            fields.append(stmt.target.id)
    return fields


def _init_attrs(cls: ast.ClassDef) -> Set[str]:
    """Every ``self.X`` assigned in ``__init__``."""
    attrs: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for tgt in targets:
                        if isinstance(tgt, ast.Attribute) \
                                and isinstance(tgt.value, ast.Name) \
                                and tgt.value.id == "self":
                            attrs.add(tgt.attr)
    return attrs


def _methods_of(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)}


def _execute_path_reads(
    cls: ast.ClassDef, entry: str = "execute",
) -> Tuple[Dict[str, int], Set[str]]:
    """``self.X`` reads reachable from ``entry``, with first-read lines.

    The closure follows ``self.m(...)`` calls and ``self.p`` property reads
    into other methods of the class, so indirection like
    ``_bind_placement`` cannot hide a read from the analysis.
    """
    methods = _methods_of(cls)
    reads: Dict[str, int] = {}
    visited: Set[str] = set()
    frontier = [entry]
    while frontier:
        name = frontier.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                if node.attr in methods:
                    frontier.append(node.attr)
                else:
                    reads.setdefault(node.attr, node.lineno)
    return reads, visited


def _unstable_components(
    tree: ast.Module, file: str, builders: Sequence[str],
) -> List[Violation]:
    """repr()/``!r`` folded into key components inside the builders."""
    violations: List[Violation] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name in builders):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.FormattedValue) and sub.conversion == \
                    ord("r"):
                violations.append(Violation(
                    pass_name="cache-key", rule="key-unstable-component",
                    severity="error",
                    message=f"{node.name} folds a '!r' repr string into a "
                            "cache key; reprs churn across refactors and "
                            "can collide — use typed primitive tuples",
                    file=file, line=sub.lineno, where=node.name,
                ))
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                    and sub.func.id == "repr":
                violations.append(Violation(
                    pass_name="cache-key", rule="key-unstable-component",
                    severity="error",
                    message=f"{node.name} calls repr() on a key component; "
                            "use typed primitive tuples",
                    file=file, line=sub.lineno, where=node.name,
                ))
    return violations


def check_cache_key_sources(
    plan_source: str,
    cache_source: str,
    *,
    plan_file: str = "<plan>",
    cache_file: str = "<cache>",
    plan_class: str = "ExecutionPlan",
    key_class: str = "PlanKey",
    entry: str = "execute",
    coverage: Optional[Dict[str, Tuple[str, ...]]] = None,
    state_attrs: Optional[Set[str]] = None,
    key_builders: Sequence[str] = DEFAULT_KEY_BUILDERS,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Run the soundness analysis over explicit sources (test injection)."""
    coverage = DEFAULT_COVERAGE if coverage is None else coverage
    state_attrs = DEFAULT_STATE_ATTRS if state_attrs is None else state_attrs

    plan_tree = ast.parse(plan_source, filename=plan_file)
    cache_tree = ast.parse(cache_source, filename=cache_file)
    violations: List[Violation] = []

    plan_cls = _find_class(plan_tree, plan_class)
    key_cls = _find_class(cache_tree, key_class)
    if plan_cls is None:
        raise ConfigurationError(
            f"class {plan_class!r} not found in {plan_file}")
    if key_cls is None:
        raise ConfigurationError(
            f"class {key_class!r} not found in {cache_file}")

    key_fields = _key_fields(key_cls)
    init_attrs = _init_attrs(plan_cls)
    reads, _ = _execute_path_reads(plan_cls, entry)

    # Coverage contract must reference real key fields.
    for attr, fields in sorted(coverage.items()):
        for f in fields:
            if f not in key_fields:
                violations.append(Violation(
                    pass_name="cache-key", rule="key-unknown-coverage",
                    severity="error",
                    message=f"coverage maps plan attribute {attr!r} to key "
                            f"field {f!r}, which {key_class} does not "
                            "declare",
                    file=cache_file, line=key_cls.lineno,
                    where=f"{key_class}.{f}",
                ))

    # Unsound hits: influencing attribute absent from the key.
    for attr in sorted(set(init_attrs) & set(reads)):
        if attr in coverage or attr in state_attrs:
            continue
        violations.append(Violation(
            pass_name="cache-key", rule="key-missing-field",
            severity="error",
            message=f"{plan_class}.{attr} is set at compile time and read "
                    f"on the {entry}() path but is neither represented in "
                    f"{key_class} nor declared runtime state: equal keys "
                    "could return plans with different numbers",
            file=plan_file, line=reads[attr],
            where=f"{plan_class}.{attr}",
        ))

    # Needless splits: key field covering nothing the execute path reads.
    covered_by = {attr: fields for attr, fields in coverage.items()
                  if attr in reads}
    used_fields = {f for fields in covered_by.values() for f in fields}
    for f in key_fields:
        if f not in used_fields:
            violations.append(Violation(
                pass_name="cache-key", rule="key-unused-field",
                severity="warning",
                message=f"{key_class}.{f} covers no plan attribute the "
                        f"{entry}() path reads: identical launches split "
                        "into separate cache entries",
                file=cache_file, line=key_cls.lineno,
                where=f"{key_class}.{f}",
            ))

    violations.extend(
        _unstable_components(cache_tree, cache_file, key_builders))

    stats = {"plan_attrs": len(init_attrs), "key_fields": len(key_fields),
             "execute_reads": len(reads)}
    return violations, stats


def check_request_key_sources(
    serve_source: str,
    cache_source: str,
    *,
    serve_file: str = "<serve>",
    cache_file: str = "<cache>",
    spec_class: str = "RequestSpec",
    key_class: str = "PlanKey",
    coverage: Optional[Dict[str, Tuple[str, ...]]] = None,
    key_builders: Sequence[str] = SERVE_KEY_BUILDERS,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Prove the serving request key maps totally into the plan key.

    A spec field outside the coverage contract is a potential unsound
    *coalesce*: two requests that differ in it would share one batch and
    one cached plan.  The builders are also held to the no-repr rule.
    """
    coverage = REQUEST_COVERAGE if coverage is None else coverage

    serve_tree = ast.parse(serve_source, filename=serve_file)
    cache_tree = ast.parse(cache_source, filename=cache_file)
    violations: List[Violation] = []

    spec_cls = _find_class(serve_tree, spec_class)
    key_cls = _find_class(cache_tree, key_class)
    if spec_cls is None:
        raise ConfigurationError(
            f"class {spec_class!r} not found in {serve_file}")
    if key_cls is None:
        raise ConfigurationError(
            f"class {key_class!r} not found in {cache_file}")

    spec_fields = _key_fields(spec_cls)
    key_fields = _key_fields(key_cls)

    for attr, fields in sorted(coverage.items()):
        if attr not in spec_fields:
            violations.append(Violation(
                pass_name="cache-key", rule="request-key-unknown-field",
                severity="error",
                message=f"request coverage names spec field {attr!r}, which "
                        f"{spec_class} does not declare — a stale contract "
                        "proves nothing",
                file=serve_file, line=spec_cls.lineno,
                where=f"{spec_class}.{attr}",
            ))
        for f in fields:
            if f not in key_fields:
                violations.append(Violation(
                    pass_name="cache-key", rule="request-key-unknown-coverage",
                    severity="error",
                    message=f"request coverage maps spec field {attr!r} to "
                            f"key field {f!r}, which {key_class} does not "
                            "declare",
                    file=cache_file, line=key_cls.lineno,
                    where=f"{key_class}.{f}",
                ))

    for attr in spec_fields:
        if attr not in coverage:
            violations.append(Violation(
                pass_name="cache-key", rule="request-key-unmapped-field",
                severity="error",
                message=f"{spec_class}.{attr} does not flow into "
                        f"{key_class}: requests that differ in it could "
                        "coalesce onto one batch and one cached plan",
                file=serve_file, line=spec_cls.lineno,
                where=f"{spec_class}.{attr}",
            ))

    violations.extend(
        _unstable_components(serve_tree, serve_file, key_builders))

    stats = {"request_fields": len(spec_fields)}
    return violations, stats


def run_cache_key(
    plan_module: str = "repro.plan.plan",
    cache_module: str = "repro.plan.cache",
    serve_module: str = "repro.serve.keys",
) -> Tuple[List[Violation], Dict[str, int]]:
    """Verify the shipped plan/cache/serve triple (the whole-program run)."""
    plan_file, plan_source = _module_source(plan_module)
    cache_file, cache_source = _module_source(cache_module)
    violations, stats = check_cache_key_sources(
        plan_source, cache_source,
        plan_file=plan_file, cache_file=cache_file,
    )
    serve_file, serve_source = _module_source(serve_module)
    serve_violations, serve_stats = check_request_key_sources(
        serve_source, cache_source,
        serve_file=serve_file, cache_file=cache_file,
    )
    violations.extend(serve_violations)
    stats.update(serve_stats)
    return violations, stats
