"""Violation records and the aggregate lint report (text + JSON)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LintReport", "SEVERITIES", "Violation"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One finding from a lint pass.

    Attribution is either ``file``/``line`` (AST pass) or ``where`` — a
    ``method:function`` pair plus the offending op (contract, interval and
    memory passes).
    """

    pass_name: str          # "ast" | "contracts" | "intervals" | "memory"
    rule: str               # e.g. "uncounted-op", "budget-exceeded"
    severity: str           # "error" | "warning"
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    where: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """Human-readable attribution: path:line or method:function:op."""
        if self.file is not None:
            loc = self.file if self.line is None else f"{self.file}:{self.line}"
        else:
            loc = self.where or "<unknown>"
        return loc

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable dict form of this finding."""
        return {
            "pass": self.pass_name,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "where": self.where,
        }


@dataclass
class LintReport:
    """All violations from one lint run plus coverage statistics."""

    violations: List[Violation] = field(default_factory=list)
    #: What was covered, e.g. ``{"kernels": 70, "methods": 265}``.
    checked: Dict[str, int] = field(default_factory=dict)
    passes: List[str] = field(default_factory=list)
    #: Findings removed by an accepted-findings baseline file.
    suppressed: int = 0

    def extend(self, violations: List[Violation]) -> None:
        """Append the findings of one pass."""
        self.violations.extend(violations)

    @property
    def errors(self) -> List[Violation]:
        """All error-severity findings."""
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> List[Violation]:
        """All warning-severity findings."""
        return [v for v in self.violations if v.severity == "warning"]

    def has_errors(self) -> bool:
        """True when at least one error-severity finding exists."""
        return bool(self.errors)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on any error, or on any warning under ``strict``."""
        if self.errors or (strict and self.warnings):
            return 1
        return 0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable dict: passes, coverage, counts, violations."""
        return {
            "passes": list(self.passes),
            "checked": dict(self.checked),
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "suppressed": self.suppressed,
            },
            "violations": [v.to_json() for v in self.violations],
        }

    def to_text(self) -> str:
        """Plain-text report, errors first, ending with a summary line."""
        lines: List[str] = []
        order = {"error": 0, "warning": 1}
        for v in sorted(
            self.violations,
            key=lambda v: (order[v.severity], v.pass_name, v.location()),
        ):
            lines.append(
                f"{v.severity}: [{v.pass_name}/{v.rule}] "
                f"{v.location()}: {v.message}"
            )
        coverage = ", ".join(f"{n} {k}" for k, n in sorted(self.checked.items()))
        ran = ",".join(self.passes) or "none"
        baselined = f", {self.suppressed} baselined" if self.suppressed else ""
        lines.append(
            f"lint: {len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s){baselined} across passes [{ran}] "
            f"({coverage or 'nothing checked'})"
        )
        return "\n".join(lines)
