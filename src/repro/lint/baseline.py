"""Accepted-findings baseline: old findings don't block CI, new ones do.

A whole-program pass landing on an existing tree may surface findings that
are understood and accepted (or queued for a later fix).  Rather than
sprinkling ``allow`` directives for them or blocking CI, the accepted set
is recorded in a committed baseline file; ``repro lint --baseline FILE``
subtracts it from the report, so only *new* findings fail the build.

Fingerprints are deliberately line-insensitive — ``pass/rule/where-or-file
basename/message`` — so unrelated edits shifting line numbers don't
invalidate the baseline, while any change to the finding itself (different
rule, different message, different location) registers as new.

File format (``repro-lint-baseline/1``)::

    {
      "schema": "repro-lint-baseline/1",
      "accepted": ["determinism/wall-clock/bench.py/...", ...]
    }

``--write-baseline FILE`` snapshots the current report's findings.
"""

from __future__ import annotations

import json
import os.path
from typing import List, Set

from repro.errors import ConfigurationError
from repro.lint.report import LintReport, Violation

__all__ = ["BASELINE_SCHEMA", "apply_baseline", "fingerprint",
           "load_baseline", "write_baseline"]

BASELINE_SCHEMA = "repro-lint-baseline/1"


def fingerprint(v: Violation) -> str:
    """Stable, line-insensitive identity of one finding."""
    if v.file is not None:
        loc = os.path.basename(v.file)
    else:
        loc = v.where or "<unknown>"
    return f"{v.pass_name}/{v.rule}/{loc}/{v.message}"


def load_baseline(path: str) -> Set[str]:
    """The accepted fingerprints recorded in ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            blob = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read lint baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"lint baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(blob, dict) or blob.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"lint baseline {path!r} is not a {BASELINE_SCHEMA} file")
    accepted = blob.get("accepted", [])
    if not isinstance(accepted, list) or \
            not all(isinstance(a, str) for a in accepted):
        raise ConfigurationError(
            f"lint baseline {path!r}: 'accepted' must be a list of strings")
    return set(accepted)


def write_baseline(report: LintReport, path: str) -> int:
    """Snapshot every finding in ``report`` as the accepted set."""
    accepted = sorted({fingerprint(v) for v in report.violations})
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"schema": BASELINE_SCHEMA, "accepted": accepted}, fh,
                  indent=2)
        fh.write("\n")
    return len(accepted)


def apply_baseline(report: LintReport, accepted: Set[str]) -> int:
    """Remove accepted findings from ``report``; returns how many."""
    kept: List[Violation] = []
    suppressed = 0
    for v in report.violations:
        if fingerprint(v) in accepted:
            suppressed += 1
        else:
            kept.append(v)
    report.violations = kept
    report.suppressed += suppressed
    return suppressed
