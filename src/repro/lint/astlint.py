"""AST pass: flag arithmetic on traced values that bypasses the ISA.

The analysis is a flow-insensitive taint propagation over each kernel body.
*Tainted* names hold traced values — results of ``ctx.*`` ISA calls, kernel
parameters (unless declared ``# lint: const(...)``), and anything derived
from them.  Python-level arithmetic (``BinOp``/``AugAssign``/unary
``-``/``~``), comparisons, and direct ``math.*``/``np.*`` calls on tainted
values are uncounted on the simulated DPU and get flagged.

Deliberately *not* flagged, matching the codebase's charging conventions:

- truthiness tests (``if flag:``) — branches are charged via explicit
  ``ctx.branch()`` calls at the taken-branch site;
- comparisons against results of ``ctx.icmp``/``ctx.fcmp`` — those results
  are condition-code flags, and the Python-level ``< 0`` merely decodes the
  flag the hardware compare already set;
- ``is``/``is not`` — host-level identity, no data computation;
- subscripts, slices and tuple packing — address selection is charged by the
  explicit ``wram_read``/``mram_read`` at the load site;
- calls that receive ``ctx`` — the callee is a kernel and is linted
  separately.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.kernels import DEFAULT_PACKAGES, KernelDef, iter_kernel_defs
from repro.lint.report import Violation

__all__ = ["lint_kernel", "run_ast_lint"]

#: Parameters never considered traced values.
_UNTAINTED_PARAMS = {"self", "cls", "ctx", "fmt"}

#: ``ctx`` methods whose result is a condition-code flag, not a data word.
_FLAG_RESULTS = {"icmp", "fcmp"}

#: Builtins/casts that pass taint through without computing.
_TRANSPARENT_CALLS = {"int", "float", "bool", "_F32", "_F64"}

#: Module aliases whose attribute calls are host math, forbidden in kernels.
_MATH_MODULES = {"math", "np", "numpy"}

#: Attribute calls on math modules that are pure type casts, hence allowed.
_CAST_ATTRS = {"float32", "float64", "int32", "int64", "uint32", "asarray"}

_BINOP_NAMES = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Pow: "**", ast.LShift: "<<",
    ast.RShift: ">>", ast.BitOr: "|", ast.BitXor: "^", ast.BitAnd: "&",
    ast.MatMult: "@",
}
_UNARY_NAMES = {ast.USub: "-", ast.UAdd: "+", ast.Invert: "~"}


class _KernelLinter:
    """Taint analysis over one kernel body."""

    def __init__(self, kernel: KernelDef):
        self.kernel = kernel
        self.tainted: Set[str] = set()
        self.collect = False
        self.violations: List[Violation] = []
        self._reported: Set[Tuple[int, int, str]] = set()

        const = set(kernel.const_params())
        node = kernel.node
        args = node.args
        params = [a.arg for a in getattr(args, "posonlyargs", [])]
        params += [a.arg for a in args.args] + [a.arg for a in args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        for p in params:
            if p not in _UNTAINTED_PARAMS and p not in const:
                self.tainted.add(p)

    # ------------------------------------------------------------------

    def run(self) -> List[Violation]:
        # Fixpoint: taint only grows, so iterate to stability, then do one
        # reporting pass.  Bounded for safety; real kernels settle in 2-3.
        for _ in range(16):
            before = len(self.tainted)
            self._exec_block(self.kernel.node.body)
            if len(self.tainted) == before:
                break
        self.collect = True
        self._exec_block(self.kernel.node.body)
        return self.violations

    def _violate(self, node: ast.AST, rule: str, message: str) -> None:
        if not self.collect:
            return
        lineno = getattr(node, "lineno", self.kernel.line)
        if self.kernel.allowed(lineno):
            return
        key = (lineno, getattr(node, "col_offset", 0), rule)
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(Violation(
            pass_name="ast", rule=rule, severity="error", message=message,
            file=self.kernel.file, line=lineno, where=self.kernel.qualname,
        ))

    # ------------------------------------------------------------------
    # statements

    def _exec_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            vt = self._eval(stmt.value)
            tt = (isinstance(stmt.target, ast.Name)
                  and stmt.target.id in self.tainted) or \
                 (not isinstance(stmt.target, ast.Name)
                  and self._eval(stmt.target))
            if vt or tt:
                op = _BINOP_NAMES.get(type(stmt.op), "?")
                self._violate(
                    stmt, "uncounted-op",
                    f"augmented '{op}=' on a traced value bypasses the "
                    f"CycleCounter ISA",
                )
            if isinstance(stmt.target, ast.Name):
                self.tainted.add(stmt.target.id)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.For):
            it = self._eval(stmt.iter)
            if it:
                self._taint_target(stmt.target)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes, pass, break, continue: nothing to do — nested
        # defs with a ctx parameter are discovered and linted independently.

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        # Elementwise tuple-to-tuple assignment keeps taint precise for the
        # pervasive `a, b = ctx.op(...), host_const` idiom.
        if (len(targets) == 1 and isinstance(targets[0], (ast.Tuple, ast.List))
                and isinstance(value, (ast.Tuple, ast.List))
                and len(targets[0].elts) == len(value.elts)):
            for tgt, val in zip(targets[0].elts, value.elts):
                t = self._eval(val)
                if t:
                    self._taint_target(tgt)
            return
        taint = self._eval(value)
        if taint:
            for tgt in targets:
                self._taint_target(tgt)

    def _taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._taint_target(elt)
        elif isinstance(target, ast.Starred):
            self._taint_target(target.value)
        # Subscript/attribute targets don't bind local names.

    # ------------------------------------------------------------------
    # expressions: returns True when the value is traced (tainted)

    def _eval(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Constant):
            return False
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.BinOp):
            lt = self._eval(node.left)
            rt = self._eval(node.right)
            if lt or rt:
                op = _BINOP_NAMES.get(type(node.op), "?")
                self._violate(
                    node, "uncounted-op",
                    f"'{op}' on a traced value bypasses the CycleCounter ISA",
                )
            return lt or rt
        if isinstance(node, ast.UnaryOp):
            t = self._eval(node.operand)
            if isinstance(node.op, (ast.USub, ast.UAdd, ast.Invert)):
                if t:
                    op = _UNARY_NAMES[type(node.op)]
                    self._violate(
                        node, "uncounted-op",
                        f"unary '{op}' on a traced value bypasses the "
                        f"CycleCounter ISA",
                    )
                return t
            return False  # `not` yields a host bool
        if isinstance(node, ast.BoolOp):
            return any([self._eval(v) for v in node.values])
        if isinstance(node, ast.Compare):
            taints = [self._eval(node.left)]
            taints += [self._eval(c) for c in node.comparators]
            identity_only = all(isinstance(op, (ast.Is, ast.IsNot))
                                for op in node.ops)
            if any(taints) and not identity_only \
                    and not self._is_flag_compare(node):
                self._violate(
                    node, "uncounted-compare",
                    "comparison on a traced value bypasses ctx.icmp/ctx.fcmp",
                )
            return False  # compare results are host flags
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            bt = self._eval(node.body)
            ot = self._eval(node.orelse)
            return bt or ot
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any([self._eval(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            taint = False
            for k in node.keys:
                if k is not None:
                    taint = self._eval(k) or taint
            for v in node.values:
                taint = self._eval(v) or taint
            return taint
        if isinstance(node, ast.Subscript):
            vt = self._eval(node.value)
            st = self._eval_slice(node.slice)
            return vt or st
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            taint = False
            for gen in node.generators:
                if self._eval(gen.iter):
                    self._taint_target(gen.target)
                    taint = True
                for cond in gen.ifs:
                    self._eval(cond)
            return self._eval(node.elt) or taint
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value)
            return False
        if isinstance(node, ast.Lambda):
            return False  # host-side closure; called kernels lint separately
        if isinstance(node, ast.Slice):
            return self._eval_slice(node)
        return False

    def _eval_slice(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Slice):
            taint = False
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    taint = self._eval(part) or taint
            return taint
        return self._eval(node)

    def _is_flag_compare(self, node: ast.Compare) -> bool:
        """True for ``ctx.icmp(a, b) < 0``-style flag decodes."""
        def is_flag(e: ast.expr) -> bool:
            return (isinstance(e, ast.Call)
                    and isinstance(e.func, ast.Attribute)
                    and isinstance(e.func.value, ast.Name)
                    and e.func.value.id == "ctx"
                    and e.func.attr in _FLAG_RESULTS)
        return is_flag(node.left) or any(is_flag(c) for c in node.comparators)

    def _eval_call(self, node: ast.Call) -> bool:
        args_taint = any([self._eval(a) for a in node.args])
        args_taint = any([self._eval(kw.value) for kw in node.keywords]) \
            or args_taint
        func = node.func

        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "ctx":
                # ISA call: the counted path.  Flag results are host bools.
                return attr not in _FLAG_RESULTS
            if base in _MATH_MODULES and base not in self.tainted:
                if attr not in _CAST_ATTRS:
                    self._violate(
                        node, "uncounted-call",
                        f"direct {base}.{attr}() call inside a kernel is "
                        f"uncounted host math",
                    )
                    return True
                return args_taint
            if attr == "append":
                # X.append(traced) taints the container.
                if args_taint:
                    self.tainted.add(base)
                return False

        if isinstance(func, ast.Name) and func.id in _TRANSPARENT_CALLS:
            return args_taint

        if not isinstance(func, (ast.Name, ast.Attribute)):
            self._eval(func)
        elif isinstance(func, ast.Attribute):
            self._eval(func.value)

        # A callee that receives ctx is itself a traced kernel: its result
        # is traced, and it is linted separately.
        passes_ctx = any(isinstance(a, ast.Name) and a.id == "ctx"
                         for a in node.args)
        return args_taint or passes_ctx


def lint_kernel(kernel: KernelDef) -> List[Violation]:
    """Run the taint analysis over one kernel definition."""
    return _KernelLinter(kernel).run()


def run_ast_lint(
    packages: Sequence[str] = DEFAULT_PACKAGES,
    extra_modules: Sequence[str] = (),
    kernels: Iterable[KernelDef] = None,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Lint every discovered kernel; returns (violations, coverage stats)."""
    if kernels is None:
        kernels = iter_kernel_defs(packages, extra_modules)
    violations: List[Violation] = []
    n = 0
    for kernel in kernels:
        n += 1
        violations.extend(lint_kernel(kernel))
    return violations, {"kernels": n}
