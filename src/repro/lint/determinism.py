"""Determinism lint: flag nondeterminism sources on plan/batch/obs paths.

Multi-process scale-out (ROADMAP item 3) and the plan-level launch memo both
rest on one property: an ``ExecutionPlan.execute`` with equal inputs is
bit-identical, run to run and shard to shard.  This pass walks the analyzed
module sources (pure AST, nothing imported or executed) and flags the
constructs that silently break that property:

``unseeded-rng`` (error)
    ``np.random.default_rng()`` with no seed, legacy global-state draws
    (``np.random.uniform`` ...), or ``random.*`` module calls.  Every
    generator on a simulated path must be derived from an explicit seed.
``wall-clock`` (error)
    ``time.time``/``time.time_ns``, ``datetime.now``/``utcnow``/``today``,
    ``date.today``.  Measurement clocks (``perf_counter``, ``monotonic``)
    are exempt: they attribute *wall* durations to spans and never feed a
    simulated number.
``id-keyed`` (error)
    ``id()`` — addresses vary run to run, so ``id``-keyed or ``id``-ordered
    aggregation is unstable.
``set-iteration`` (error)
    Iterating a set literal, set comprehension, or ``set()``/``frozenset()``
    call directly: with ``PYTHONHASHSEED`` randomization the order changes
    across runs.  Wrap in ``sorted(...)``.
``unthreaded-rng`` (error)
    Forwarding a function's ``rng`` parameter verbatim into a call inside a
    loop: every iteration consumes shared generator state, so per-iteration
    results depend on execution order — exactly what a multiprocessing pool
    does not preserve.  Spawn per-iteration child generators up front
    (:func:`repro.plan.dispatch.spawn_shard_rngs`).

``# lint: allow(reason)`` on the offending line suppresses a finding, same
mechanism as the kernel AST pass.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.kernels import Directives, iter_module_sources
from repro.lint.report import Violation

__all__ = ["DEFAULT_MODULES", "check_determinism_source", "run_determinism"]

#: Packages the whole-program run analyzes: everything on the compiled-plan
#: execution path plus the observability layer it reports through.
DEFAULT_MODULES = ("repro.plan", "repro.batch", "repro.obs")

#: Legacy numpy global-state draws (module-level ``np.random.*``).
_NP_LEGACY = {
    "random", "rand", "randn", "randint", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "seed",
}

#: ``random`` stdlib module calls (any draw or reseed).
_PY_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate",
}

#: Wall-clock reads that leak real time into results.
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


class _DeterminismLinter(ast.NodeVisitor):
    """One module's nondeterminism scan."""

    def __init__(self, module: str, file: str, directives: Directives):
        self.module = module
        self.file = file
        self.directives = directives
        self.violations: List[Violation] = []
        #: Stack of (function name, has-rng-param) frames.
        self._funcs: List[Tuple[str, bool]] = []
        self._loop_depth = 0

    # ------------------------------------------------------------------

    def _violate(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if lineno in self.directives.allow:
            return
        where = ".".join([self.module] + [n for n, _ in self._funcs])
        self.violations.append(Violation(
            pass_name="determinism", rule=rule, severity="error",
            message=message, file=self.file, line=lineno, where=where,
        ))

    # ------------------------------------------------------------------

    def _visit_func(self, node) -> None:
        params = [a.arg for a in node.args.args]
        params += [a.arg for a in node.args.kwonlyargs]
        params += [a.arg for a in getattr(node.args, "posonlyargs", [])]
        self._funcs.append((node.name, "rng" in params))
        depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = depth
        self._funcs.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _visit_loop(self, node) -> None:
        if isinstance(node, ast.For):
            self._check_iterable(node.iter)
            self.visit(node.target)
            self.visit(node.iter)
        else:
            self.visit(node.test)
        self._loop_depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _check_iterable(self, it: ast.expr) -> None:
        if isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")):
            self._violate(
                it, "set-iteration",
                "iterating a set directly: order varies with hash "
                "randomization across runs; wrap in sorted(...)",
            )

    # ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                self._violate(
                    node, "id-keyed",
                    "id() varies run to run; id-keyed or id-ordered "
                    "aggregation is nondeterministic",
                )
            elif func.id == "default_rng" and not node.args \
                    and not node.keywords:
                self._violate(
                    node, "unseeded-rng",
                    "default_rng() without a seed draws entropy from the "
                    "OS; thread an explicit seed",
                )
        elif isinstance(func, ast.Attribute):
            self._check_attr_call(node, func)
        self._check_rng_forwarding(node)
        self.generic_visit(node)

    def _check_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        base = func.value
        if attr == "default_rng" and not node.args and not node.keywords:
            self._violate(
                node, "unseeded-rng",
                "np.random.default_rng() without a seed draws entropy "
                "from the OS; thread an explicit seed",
            )
            return
        if isinstance(base, ast.Attribute) and base.attr == "random" \
                and isinstance(base.value, ast.Name) \
                and base.value.id in ("np", "numpy") and attr in _NP_LEGACY:
            self._violate(
                node, "unseeded-rng",
                f"np.random.{attr}() uses hidden global generator state; "
                "use an explicitly seeded Generator",
            )
            return
        if isinstance(base, ast.Name):
            if base.id == "random" and attr in _PY_RANDOM:
                self._violate(
                    node, "unseeded-rng",
                    f"random.{attr}() uses hidden global generator state; "
                    "use an explicitly seeded Generator",
                )
            elif (base.id, attr) in _WALL_CLOCK:
                self._violate(
                    node, "wall-clock",
                    f"{base.id}.{attr}() reads the wall clock on a "
                    "simulated path; results must not depend on real time",
                )

    def _check_rng_forwarding(self, node: ast.Call) -> None:
        """``f(..., rng=rng)`` inside a loop, with ``rng`` a parameter."""
        if self._loop_depth == 0 or not (self._funcs and self._funcs[-1][1]):
            return
        for kw in node.keywords:
            if kw.arg == "rng" and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "rng":
                self._violate(
                    node, "unthreaded-rng",
                    "the shared rng generator is forwarded into a loop "
                    "iteration: results depend on iteration order, which "
                    "a process pool does not preserve; spawn per-"
                    "iteration child generators before the loop",
                )


def check_determinism_source(
    source: str, *, module: str = "<module>", file: str = "<source>",
) -> List[Violation]:
    """Scan one module's source text (test injection point)."""
    linter = _DeterminismLinter(module, file, Directives.parse(source))
    linter.visit(ast.parse(source, filename=file))
    return linter.violations


def run_determinism(
    packages: Sequence[str] = DEFAULT_MODULES,
    extra_modules: Sequence[str] = (),
    sources: Optional[Sequence[Tuple[str, str, str]]] = None,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Scan every module in ``packages`` (plus extras); returns stats too."""
    if sources is None:
        sources = iter_module_sources(tuple(packages) + tuple(extra_modules))
    violations: List[Violation] = []
    n = 0
    for module, path, source in sources:
        n += 1
        violations.extend(
            check_determinism_source(source, module=module, file=path))
    return violations, {"determinism_modules": n}
