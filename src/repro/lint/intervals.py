"""Interval pass: abstract interpretation of the s3.28 fixed-point kernels.

Fixed-point words wrap silently in two's complement, so a method whose
function *values* leave the s3.28 range over its declared input domain
returns garbage without any runtime error.  This pass propagates value
ranges (as integer intervals over raw words) through the fixed-point
kernels' arithmetic — address generation, interpolation multiplies, CORDIC
vector growth — over each function's declared domain from
:mod:`repro.core.functions.registry`, and reports potential overflow and
precision loss.  Attribution is ``method:function`` plus the offending op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.lint.kernels import iter_method_instances
from repro.lint.report import Violation

__all__ = ["Interval", "check_method_intervals", "fx_mul_interval",
           "run_intervals"]

#: Headroom of the emulated widening multiply (signed 64-bit accumulator).
_WIDE_MIN, _WIDE_MAX = -(1 << 63), (1 << 63) - 1

#: Grid resolution for bounding a function over its declared domain.
_DOMAIN_GRID = 4097


@dataclass(frozen=True)
class Interval:
    """Closed integer interval ``[lo, hi]`` over fixed-point raw words."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @classmethod
    def from_floats(cls, fmt, lo: float, hi: float) -> "Interval":
        """Quantize a float range to raw words of format ``fmt``."""
        return cls(int(round(lo * fmt.scale)), int(round(hi * fmt.scale)))

    def add(self, other: "Interval") -> "Interval":
        """Exact interval sum."""
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        """Exact interval difference."""
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        """Negation (endpoints swap)."""
        return Interval(-self.hi, -self.lo)

    def shl(self, n: int) -> "Interval":
        """Left shift of both endpoints (monotone)."""
        return Interval(self.lo << n, self.hi << n)

    def shr(self, n: int) -> "Interval":
        """Arithmetic right shift of both endpoints (monotone)."""
        return Interval(self.lo >> n, self.hi >> n)

    def mul(self, other: "Interval") -> "Interval":
        """Interval product: the extremes are among the four corners."""
        corners = (self.lo * other.lo, self.lo * other.hi,
                   self.hi * other.lo, self.hi * other.hi)
        return Interval(min(corners), max(corners))

    def offset(self, k: int) -> "Interval":
        """Translate by the constant ``k``."""
        return Interval(self.lo + k, self.hi + k)

    def abs_max(self) -> int:
        """Largest absolute value any element can take."""
        return max(abs(self.lo), abs(self.hi))

    def fits(self, fmt) -> bool:
        """True when every value fits the format's raw-word range."""
        return self.lo >= fmt.min_raw and self.hi <= fmt.max_raw

    def fits_word(self, bits: int = 32) -> bool:
        """True when every value fits a signed ``bits``-wide register."""
        return self.lo >= -(1 << (bits - 1)) and self.hi < (1 << (bits - 1))


def fx_mul_interval(fmt, a: Interval, b: Interval
                    ) -> Tuple[Interval, bool]:
    """Interval twin of :func:`repro.fixedpoint.ops.fx_mul`.

    Returns the result interval and an overflow flag covering both the wide
    64-bit product and the post-shift result leaving the format's range.
    """
    wide = a.mul(b)
    overflow = wide.lo < _WIDE_MIN or wide.hi > _WIDE_MAX
    res = wide.shr(fmt.frac_bits)
    overflow = overflow or not res.fits(fmt)
    return res, overflow


# ----------------------------------------------------------------------
# per-family checks


def _v(m, rule: str, severity: str, op: str, message: str) -> Violation:
    return Violation(
        pass_name="intervals", rule=rule, severity=severity, message=message,
        where=f"{m.method_name}:{m.spec.name}:{op}",
    )


def _domain_range(m, lo: float, hi: float) -> Tuple[float, float]:
    """Bound the reference function over ``[lo, hi)`` on a dense grid."""
    grid = np.linspace(lo, hi, _DOMAIN_GRID, endpoint=False)
    with np.errstate(all="ignore"):
        vals = np.asarray(m.spec.reference(grid), dtype=np.float64)
    finite = vals[np.isfinite(vals)]
    if finite.size == 0:
        return 0.0, 0.0
    return float(finite.min()), float(finite.max())


def _check_fixed_lut(m) -> List[Violation]:
    """LLUTFixed / LLUTInterpolatedFixed: domain, addresses, interpolation."""
    out: List[Violation] = []
    g = m.geom
    fmt = g.fmt

    # 1. Function values over the declared domain must be representable —
    # table entries are raw words, and two's-complement wrap is silent.
    vmin, vmax = _domain_range(m, g.lo, g.hi)
    val_iv = Interval(int(np.floor(vmin * fmt.scale)),
                      int(np.ceil(vmax * fmt.scale)))
    if not val_iv.fits(fmt):
        out.append(_v(
            m, "value-overflow", "error", "table",
            f"function values span [{vmin:.6g}, {vmax:.6g}] over the "
            f"declared domain [{g.lo:.6g}, {g.hi:.6g}), outside the "
            f"s{fmt.int_bits}.{fmt.frac_bits} range "
            f"[{fmt.to_float(fmt.min_raw):.6g}, {fmt.max_value:.6g}] — "
            f"table words would wrap",
        ))

    # 2. Address generation: input word, offset subtract, index rounding.
    # The non-interpolated kernel rounds via floor-shift + half bit, which
    # cannot carry past the word; the intervals below cover both variants.
    a = Interval(int(round(g.lo * fmt.scale)),
                 min(int(round(g.hi * fmt.scale)), fmt.max_raw))
    r = a.offset(-g.p_raw)
    idx = r.shr(g.shift).add(Interval(0, 1 if g.shift > 0 else 0))
    for op, iv in (("input", a), ("index-sub", r), ("index", idx)):
        if not iv.fits_word(fmt.word_bits):
            out.append(_v(
                m, "address-overflow", "error", op,
                f"address arithmetic interval [{iv.lo}, {iv.hi}] exceeds "
                f"the {fmt.word_bits}-bit register",
            ))

    # 3. Interpolation: the wide multiply and the reconstructed value.
    if getattr(m, "interpolated", False) and m.entries >= 2:
        table = np.asarray(m._table, dtype=np.int64)
        diffs = np.diff(table)
        diff_iv = Interval(int(diffs.min()), int(diffs.max()))
        delta_iv = Interval(0, ((1 << g.shift) - 1) << g.n if g.shift > 0
                            else 0)
        wide = diff_iv.mul(delta_iv)
        if wide.lo < _WIDE_MIN or wide.hi > _WIDE_MAX:
            out.append(_v(
                m, "mul-overflow", "error", "interp-mul",
                f"interpolation product interval [{wide.lo}, {wide.hi}] "
                f"overflows the 64-bit widening multiply",
            ))
        if g.shift == 0:
            out.append(_v(
                m, "precision-loss", "warning", "interp-mul",
                f"density 2^-{g.n} equals the format resolution: the "
                f"interpolation weight is always zero (dead multiply)",
            ))

    # 4. Resolution: a function whose entire range sits below the format's
    # resolution quantizes to a constant table.
    if max(abs(vmin), abs(vmax)) < 2.0 * fmt.resolution:
        out.append(_v(
            m, "precision-loss", "warning", "table",
            f"function magnitude peaks at {max(abs(vmin), abs(vmax)):.3g}, "
            f"below 2x the s{fmt.int_bits}.{fmt.frac_bits} resolution "
            f"({fmt.resolution:.3g}) — the table quantizes to ~0",
        ))
    return out


def _check_cordic_fixed(m) -> List[Violation]:
    """CordicCircularFixed: vector growth and angle-accumulator bounds."""
    out: List[Violation] = []
    word_max = (1 << 31) - 1

    # Rotation vector: each iteration is multiplication by
    # [[1, -s*2^-i], [s*2^-i, 1]], which scales the Euclidean norm by exactly
    # sqrt(1 + 4^-i); max |coordinate| <= norm.  The per-coordinate interval
    # bound B' = B + B>>i compounds to x4.77 and is uselessly loose here, so
    # we track the norm (plus 1 LSB per iteration for shift rounding).
    import math
    bound = float(abs(int(m._x0_raw)))
    for i in range(m.iterations):
        bound = bound * math.sqrt(1.0 + 4.0 ** (-i)) + 1.0
        if bound > word_max:
            out.append(_v(
                m, "value-overflow", "error", f"rotate[{i}]",
                f"rotation vector norm bound {bound:.4g} exceeds the signed "
                f"32-bit word after iteration {i} (s1.30 headroom exhausted)",
            ))
            break

    # Angle accumulator: starts below one quarter-turn, then walks by the
    # table angles; interval covers whichever branch each iteration takes.
    from repro.core.cordic.tables import CIRCULAR_ANGLE_FRAC_BITS
    z = Interval(0, (1 << CIRCULAR_ANGLE_FRAC_BITS) - 1)
    for i in range(min(m.iterations, len(m._angles))):
        t = int(m._angles[i])
        z = Interval(z.lo - t, z.hi + t)
    if not z.fits_word(32):
        out.append(_v(
            m, "value-overflow", "error", "angle-acc",
            f"angle accumulator interval [{z.lo}, {z.hi}] exceeds the "
            f"signed 32-bit word",
        ))
    return out


def _check_quadrant_split(m) -> List[Violation]:
    """CordicCircular & subclasses: the one s3.28 quadrant multiply."""
    out: List[Violation] = []
    from repro.core.cordic.circular import _TWO_OVER_PI_RAW
    from repro.fixedpoint import Q3_28

    lo, hi = m.spec.natural_range
    a = Interval.from_floats(Q3_28, min(lo, 0.0), hi)
    if not a.fits(Q3_28):
        out.append(_v(
            m, "value-overflow", "error", "quadrant-split",
            f"input domain [{lo:.6g}, {hi:.6g}) is not representable in "
            f"s3.28 for the quadrant multiply",
        ))
        return out
    _, overflow = fx_mul_interval(Q3_28, a,
                                  Interval(_TWO_OVER_PI_RAW, _TWO_OVER_PI_RAW))
    # The product feeds a shift/mask, not a stored s3.28 word, so only the
    # wide multiply must stay inside the 64-bit accumulator.
    wide = a.mul(Interval(_TWO_OVER_PI_RAW, _TWO_OVER_PI_RAW))
    if wide.lo < _WIDE_MIN or wide.hi > _WIDE_MAX:
        out.append(_v(
            m, "mul-overflow", "error", "quadrant-split",
            f"quadrant multiply interval [{wide.lo}, {wide.hi}] overflows "
            f"the 64-bit widening multiply",
        ))
    return out


def check_method_intervals(m) -> List[Violation]:
    """Dispatch the interval checks appropriate for one method instance."""
    from repro.core.cordic.circular import CordicCircular
    from repro.core.cordic.fixed import CordicCircularFixed
    from repro.core.lut.llut import LLUTFixed, LLUTInterpolatedFixed
    from repro.core.lut.tan import TanQuotientLUT

    out: List[Violation] = []
    if isinstance(m, TanQuotientLUT):
        out.extend(check_method_intervals(m.sin_m))
        out.extend(check_method_intervals(m.cos_m))
        return out
    if isinstance(m, (LLUTFixed, LLUTInterpolatedFixed)):
        out.extend(_check_fixed_lut(m))
    if isinstance(m, CordicCircularFixed):
        out.extend(_check_cordic_fixed(m))
    if isinstance(m, CordicCircular):
        out.extend(_check_quadrant_split(m))
    return out


def run_intervals(
    methods: Optional[Iterable[object]] = None,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Interval-check every fixed-point-bearing method instance."""
    if methods is None:
        methods = iter_method_instances()
    violations: List[Violation] = []
    n = 0
    for m in methods:
        n += 1
        violations.extend(check_method_intervals(m))
    return violations, {"methods": n}
