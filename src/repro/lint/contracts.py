"""Contract pass: trace each kernel and diff Tally counts against budgets.

For every configured (method, function) pair the checker traces the core
evaluation (``Method.evaluate`` with the library-default identity reducer)
at several deterministic points spread across the function's declared input
domain, folds the resulting :class:`~repro.isa.counter.Tally` counts into
the contract categories, and reports any category outside its declared
``(lo, hi)`` budget from :mod:`repro.core.functions.budgets`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.functions.budgets import budget_for, tally_categories
from repro.lint.kernels import iter_method_instances
from repro.lint.report import Violation

__all__ = ["check_contract", "run_contracts", "sample_points"]

#: Fractions of the declared domain the tracer samples — interior points
#: (the upper bound is open) chosen to land on both sides of every
#: branch in the shipped kernels (e.g. hyperbolic ROTATION_BOUND).
_SAMPLE_FRACTIONS = (0.02, 0.17, 0.42, 0.63, 0.88)


def sample_points(m) -> List[float]:
    """Deterministic trace inputs inside the method's declared domain."""
    lo, hi = m.spec.natural_range
    return [lo + f * (hi - lo) for f in _SAMPLE_FRACTIONS]


def _where(m) -> str:
    return f"{m.method_name}:{m.spec.name}"


def check_contract(m, points: Optional[Iterable[float]] = None
                   ) -> List[Violation]:
    """Diff one instance's traced op counts against its declared budget."""
    budget = budget_for(m)
    if budget is None:
        return [Violation(
            pass_name="contracts", rule="no-contract", severity="warning",
            message=f"method {m.method_name!r} has no declared op budget",
            where=_where(m),
        )]
    violations: List[Violation] = []
    reported: set = set()
    if points is None:
        points = sample_points(m)
    for x in points:
        got = tally_categories(m.element_tally(x).counts)
        for cat, (lo, hi) in budget.items():
            n = got.get(cat, 0)
            if lo <= n <= hi or cat in reported:
                continue
            reported.add(cat)
            want = str(lo) if lo == hi else f"[{lo}, {hi}]"
            violations.append(Violation(
                pass_name="contracts", rule="budget-exceeded",
                severity="error",
                message=(
                    f"op budget violated for {cat}: traced {n} at "
                    f"x={x:.6g}, contract declares {want} "
                    f"(paper Table 1 envelope for {m.method_name!r})"
                ),
                where=f"{_where(m)}:{cat}",
            ))
    return violations


def run_contracts(
    methods: Optional[Iterable[object]] = None,
) -> Tuple[List[Violation], Dict[str, int]]:
    """Check every supported (method, function) pair against its budget."""
    if methods is None:
        methods = iter_method_instances()
    violations: List[Violation] = []
    n = 0
    for m in methods:
        n += 1
        violations.extend(check_contract(m))
    return violations, {"methods": n}
