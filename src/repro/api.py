"""High-level public API: build any (function, method) pair by name.

This is the reproduction's equivalent of TransPimLib's include-and-call
interface: pick a function (``"sin"``), a method (``"llut_i"``), tune its
precision knob, and get an object with a host-side :meth:`~repro.core.method.Method.setup`
and a PIM-side evaluate.

Example::

    from repro import make_method
    sin = make_method("sin", "llut_i", density_log2=12).setup()
    values = sin.evaluate_vec(inputs)          # accuracy path
    slots = sin.mean_slots(inputs[:64])        # performance path
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.cordic.circular import CordicCircular
from repro.core.cordic.fixed import CordicCircularFixed
from repro.core.cordic.hyperbolic import CordicHyperbolic
from repro.core.cordic.vectoring import CordicArctan
from repro.core.functions.registry import get_function
from repro.core.functions.support import check_support
from repro.core.hybrid import HybridCircular, HybridHyperbolic
from repro.core.lut import (
    DLLUT,
    DLUT,
    LLUT,
    MLUT,
    DLLUTInterpolated,
    DLUTInterpolated,
    LLUTFixed,
    LLUTInterpolated,
    LLUTInterpolatedFixed,
    MLUTInterpolated,
)
from repro.core.method import Method

__all__ = ["make_method", "LUT_METHODS", "ALL_METHOD_NAMES"]

_TRIG = ("sin", "cos", "tan")

LUT_METHODS: Dict[str, Type[Method]] = {
    "mlut": MLUT,
    "mlut_i": MLUTInterpolated,
    "llut": LLUT,
    "llut_i": LLUTInterpolated,
    "llut_fx": LLUTFixed,
    "llut_i_fx": LLUTInterpolatedFixed,
    "dlut": DLUT,
    "dlut_i": DLUTInterpolated,
    "dllut": DLLUT,
    "dllut_i": DLLUTInterpolated,
}

ALL_METHOD_NAMES = ("cordic", "cordic_lut", "cordic_fx", "poly",
                    "slut_i") + tuple(LUT_METHODS)


def make_method(function: str, method: str, **params) -> Method:
    """Instantiate ``method`` for ``function`` (validated against Table 2).

    Remaining keyword arguments go to the method constructor: precision knobs
    (``iterations``, ``density_log2``, ``size``, ``mant_bits``, ``lut_bits``)
    and common options (``placement``, ``assume_in_range``, ``costs``).
    The returned method still needs :meth:`setup` before evaluation.
    """
    check_support(method, function)
    spec = get_function(function)
    if method == "cordic":
        if function == "atan":
            return CordicArctan(spec, **params)
        cls = CordicCircular if function in _TRIG else CordicHyperbolic
        return cls(spec, **params)
    if method == "cordic_fx":
        return CordicCircularFixed(spec, **params)
    if method == "poly":
        from repro.core.polymethod import MinimaxPolyMethod
        return MinimaxPolyMethod(spec, **params)
    if method == "cordic_lut":
        cls = HybridCircular if function in _TRIG else HybridHyperbolic
        return cls(spec, **params)
    if method == "slut_i":
        from repro.core.lut.slut import SegmentedLLUT
        return SegmentedLLUT(spec, **params)
    if function == "tan":
        # Tangent cannot be tabulated directly (unbounded slope at the
        # poles); it is sine and cosine lookups plus a divide (Section 4.2.4).
        from repro.core.lut.tan import TanQuotientLUT
        return TanQuotientLUT(LUT_METHODS[method], spec, **params)
    return LUT_METHODS[method](spec, **params)
