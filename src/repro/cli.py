"""Command-line interface: regenerate the paper's evaluation from a shell.

Usage::

    python -m repro table2
    python -m repro fig5 [--quick]
    python -m repro fig6 [--quick]
    python -m repro fig7 [--quick]
    python -m repro fig8
    python -m repro fig9
    python -m repro explore FUNCTION
    python -m repro recommend FUNCTION [--rmse 1e-6] [--evals N] [--memory B]
    python -m repro breakdown FUNCTION METHOD [knob=value ...]
    python -m repro lint [--json] [--strict] [--passes ast,contracts]
    python -m repro trace FUNCTION METHOD [knob=value ...] [--json FILE]
    python -m repro bench [--emit FILE] [--quick] [--check-fig5]
    python -m repro plan FUNCTION METHOD [knob=value ...] [--n N --shards S]
                        [--ranks R --dimms D]
    python -m repro run FUNCTION METHOD [--n N --repeat R --shards S --overlap]
                        [--workers W --start-method fork|spawn --timeout S]
                        [--ranks R --dimms D --rank-aligned]
    python -m repro serve FUNCTION METHOD [--requests R --max-batch B
                        --max-wait S] [--ranks R --dimms D --rank-aligned]
    python -m repro loadgen [--profile mixed|fast --clients C --requests R
                        --seed N --verify]
    python -m repro topology [--channels C --dimms D --ranks R
                        --dpus-per-rank N]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _sweep_points(quick: bool, batch: bool = True):
    from repro.analysis.figures import fig5_data
    from repro.analysis.sweep import SINE_SWEEPS, default_inputs, sweep_method
    if not quick:
        return fig5_data(batch=batch)
    inputs = default_inputs("sin", n=4096)
    points = []
    for method, cfg in SINE_SWEEPS.items():
        cfg = dict(cfg)
        cfg["param_values"] = cfg["param_values"][::2]
        points.extend(sweep_method("sin", method, inputs=inputs,
                                   sample_size=12, batch=batch, **cfg))
    return points


def _cmd_fig(args) -> int:
    from repro.analysis import figures
    if args.command == "fig8":
        print(figures.fig8_report(figures.fig8_data()))
        return 0
    if args.command == "fig9":
        print(figures.fig9_report(figures.fig9_data(
            trace_elements=2000, batch=not args.no_batch)))
        return 0
    points = _sweep_points(args.quick, batch=not args.no_batch)
    report = {
        "fig5": figures.fig5_report,
        "fig6": figures.fig6_report,
        "fig7": figures.fig7_report,
    }[args.command](points)
    print(report)
    return 0


def _cmd_pareto(args) -> int:
    from repro.analysis.pareto import frontier_report
    points = _sweep_points(args.quick, batch=not args.no_batch)
    print(frontier_report([p for p in points if p.placement == "mram"]))
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis.report import format_table
    from repro.api import make_method
    from repro.isa.counter import CycleCounter, Tally
    from repro.pim.config import UPMEM_DPU
    from repro.pim.exec import simulate, trace_to_program
    from repro.pim.pipeline import PipelineModel

    m = make_method("sin", "llut_i", density_log2=10).setup()
    trace = []
    ctx = CycleCounter(trace_ops=trace)
    for x in (0.3, 1.1, 2.2, 3.3, 4.4, 5.5):
        m.evaluate(ctx, x)
    prog = trace_to_program(trace)
    tally = ctx.reset()
    model = PipelineModel(UPMEM_DPU)
    rows = []
    for t in (1, 4, 11, 16):
        sim = simulate([list(prog)] * t)
        analytic = model.cycles(
            Tally(slots=tally.slots * t, dma_latency=tally.dma_latency * t), t
        )
        rows.append((t, sim.cycles, f"{analytic:.0f}",
                     f"{(analytic / sim.cycles - 1) * 100:+.2f}%"))
    print("analytic pipeline model vs cycle-accurate simulation")
    print(format_table(["tasklets", "simulated", "analytic", "error"], rows))
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.figures import table2_report
    print(table2_report())
    return 0


def _cmd_explore(args) -> int:
    import importlib
    explorer = importlib.import_module("examples.method_explorer")
    explorer.main(args.function)
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis.recommend import Requirements, recommend
    from repro.analysis.report import format_table
    recs = recommend(args.function, Requirements(
        rmse_target=args.rmse,
        evaluations=args.evals,
        memory_budget=args.memory,
    ))
    rows = [
        (i + 1, r.method, r.param, f"{r.rmse:.2e}",
         f"{r.cycles_per_element:.0f}", f"{r.total_seconds * 1e3:.3f} ms",
         r.rationale)
        for i, r in enumerate(recs)
    ]
    print(f"recommended methods for {args.function!r} "
          f"(rmse<={args.rmse:g}, {args.evals} evals, "
          f"{args.memory} B budget):")
    print(format_table(
        ["#", "method", "param", "rmse", "cycles/elem", "total", "why"], rows
    ))
    return 0


def _cmd_profile(args) -> int:
    from repro.analysis.profile import profile_report
    from repro.api import make_method
    params = {}
    for item in args.knobs:
        key, _, value = item.partition("=")
        params[key] = int(value)
    m = make_method(args.function, args.method, assume_in_range=False,
                    **params).setup()
    print(profile_report(m, n_bins=args.bins))
    return 0


def _cmd_listing(args) -> int:
    from repro.analysis.listing import listing_report
    from repro.api import make_method
    params = {}
    for item in args.knobs:
        key, _, value = item.partition("=")
        params[key] = int(value)
    m = make_method(args.function, args.method, assume_in_range=False,
                    **params).setup()
    print(listing_report(m, args.x))
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.errors import ConfigurationError
    from repro.lint import (
        ALL_PASSES,
        apply_baseline,
        load_baseline,
        run_lint,
        write_baseline,
    )

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip()) \
        if args.passes else ALL_PASSES
    try:
        report = run_lint(passes=passes,
                          extra_modules=tuple(args.extra_module))
        if args.baseline:
            apply_baseline(report, load_baseline(args.baseline))
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        n = write_baseline(report, args.write_baseline)
        print(f"repro lint: wrote {n} accepted fingerprint(s) to "
              f"{args.write_baseline}")
        return 0
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.to_text())
    return report.exit_code(strict=args.strict)


def _cmd_trace(args) -> int:
    import json

    from repro.obs import trace_run

    params = {}
    for item in args.knobs:
        key, _, value = item.partition("=")
        params[key] = int(value)
    tracer, registry, result = trace_run(
        args.function, args.method, n=args.n, tasklets=args.tasklets,
        params=params,
    )
    print(f"traced whole-system run: {args.function}:{args.method} "
          f"over {result.n_elements} elements "
          f"({result.n_dpus_used} cores x {result.tasklets} tasklets, "
          f"{result.total_seconds * 1e3:.3f} ms simulated)")
    print()
    print(tracer.tree())
    print()
    print("metrics:")
    print(registry.report())
    if args.json:
        with open(args.json, "w") as f:
            json.dump(tracer.to_chrome_trace(), f, indent=2)
        print(f"\nChrome trace written to {args.json} "
              f"(open in chrome://tracing or Perfetto)")
    return 0


def _cmd_bench(args) -> int:
    from repro.obs import bench_summary, check_fig5_artifacts, emit_bench, \
        run_bench

    code = 0
    if args.check_fig5:
        status = check_fig5_artifacts()
        for name, state in status.items():
            print(f"fig5 artifact {name}: {state}")
        if any(state != "fresh" for state in status.values()):
            print("stale fig5 artifacts — regenerate with "
                  "`pytest benchmarks/bench_fig5_cycles.py` or "
                  "repro.obs.regenerate_fig5_artifacts()", file=sys.stderr)
            code = 1
        if not args.emit:
            return code
    if args.emit:
        snapshot = emit_bench(args.emit, quick=args.quick)
        print(bench_summary(snapshot))
        print(f"snapshot written to {args.emit}")
    elif not args.check_fig5:
        print(bench_summary(run_bench(quick=args.quick)))
    return code


def _parse_knobs(items) -> dict:
    params = {}
    for item in items:
        key, _, value = item.partition("=")
        params[key] = int(value)
    return params


def _topology_from_args(args):
    """The hierarchy override from --channels/--dimms/--ranks, or None.

    Unset dimensions fall back to the paper topology's shape; an override
    models a clean machine (no defective DPUs), since the defect mask is
    specific to the paper's physical system.
    """
    dims = (getattr(args, "channels", None), getattr(args, "dimms", None),
            getattr(args, "ranks", None), getattr(args, "dpus_per_rank", None))
    if all(d is None for d in dims):
        return None
    from repro.pim.topology import Topology
    channels, dimms, ranks, dpus = dims
    return Topology(
        channels=channels if channels is not None else 2,
        dimms_per_channel=dimms if dimms is not None else 10,
        ranks_per_dimm=ranks if ranks is not None else 2,
        dpus_per_rank=dpus if dpus is not None else 64,
    )


def _system_from_args(args):
    """A PIMSystem honoring any topology overrides on the command line."""
    from repro.pim.config import SystemConfig
    from repro.pim.system import PIMSystem
    topo = _topology_from_args(args)
    if topo is None:
        return PIMSystem()
    return PIMSystem(SystemConfig(topology=topo))


def _add_topology_args(p) -> None:
    p.add_argument("--channels", type=int, default=None,
                   help="memory channels (default: paper topology's 2)")
    p.add_argument("--dimms", type=int, default=None,
                   help="DIMMs per channel (default: 10)")
    p.add_argument("--ranks", type=int, default=None,
                   help="ranks per DIMM (default: 2)")
    p.add_argument("--dpus-per-rank", type=int, default=None,
                   help="DPUs per rank (default: 64)")


def _cmd_topology(args) -> int:
    from repro.pim.topology import PAPER_TOPOLOGY
    topo = _topology_from_args(args)
    if topo is None:
        topo = PAPER_TOPOLOGY
    print(topo.describe())
    return 0


def _cmd_plan(args) -> int:
    from repro.api import make_method
    from repro.plan.cache import PlanCache

    m = make_method(args.function, args.method, assume_in_range=False,
                    placement=args.placement, **_parse_knobs(args.knobs))
    cache = PlanCache()
    plan = cache.plan(_system_from_args(args), m, tasklets=args.tasklets,
                      vec=not args.no_vec)
    print(plan.describe(n_elements=args.n, shards=args.shards))
    return 0


def _cmd_run(args) -> int:
    from repro.analysis.report import format_table
    from repro.api import make_method
    from repro.core.functions.registry import get_function
    from repro.plan.cache import PlanCache
    from repro.plan.dispatch import execute_sharded

    m = make_method(args.function, args.method, assume_in_range=False,
                    placement=args.placement, **_parse_knobs(args.knobs))
    lo, hi = get_function(args.function).bench_domain
    xs = np.random.default_rng(0).uniform(lo, hi, args.n).astype(np.float32)

    system = _system_from_args(args)
    cache = PlanCache()
    plan = cache.plan(system, m, tasklets=args.tasklets,
                      vec=not args.no_vec)
    pool = None
    if args.shards > 1 and args.workers is not None and args.workers > 1:
        # One pool for every --repeat launch: the plan ships to the
        # workers once, later launches reuse the warm worker caches.
        from repro.plan.pool import ShardPool
        pool = ShardPool(args.workers, start_method=args.start_method,
                         timeout=args.timeout)
    rows = []
    try:
        for i in range(args.repeat):
            if args.shards > 1:
                r = execute_sharded(plan, xs, n_shards=args.shards,
                                    overlap=args.overlap, pool=pool,
                                    timeout=args.timeout,
                                    rank_aligned=args.rank_aligned)
                extra = (f"{r.n_shards} shards"
                         + (" rank-aligned" if args.rank_aligned else "")
                         + (f" x {args.workers} workers" if pool else "")
                         + (f", saved {r.overlap_saving_seconds * 1e3:.3f} ms"
                            if args.overlap else ""))
            else:
                r = plan.execute(xs)
                extra = ""
            rows.append((i, f"{r.total_seconds * 1e3:.3f} ms",
                         f"{r.kernel_seconds * 1e3:.3f} ms",
                         r.n_dpus_used, extra))
    finally:
        if pool is not None:
            pool.close()
    print(f"{args.function}:{args.method} over {args.n} elements, "
          f"{args.repeat} launch(es) on one compiled plan "
          f"({len(plan.tally_cache)} cached cost paths)")
    print(format_table(["launch", "total", "kernel", "dpus", "notes"], rows))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.core.functions.registry import get_function
    from repro.serve import ServeConfig, Server, normalize_request

    spec = normalize_request(args.function, args.method,
                             _parse_knobs(args.knobs),
                             placement=args.placement)
    lo, hi = get_function(args.function).natural_range
    rng = np.random.default_rng(args.seed)
    requests = [
        (spec, rng.uniform(lo, hi,
                           int(rng.integers(8, args.n + 1))
                           ).astype(np.float32))
        for _ in range(args.requests)
    ]

    async def drive():
        from repro.pim.host import PIMRuntime
        from repro.plan.session import PlanSession
        session = PlanSession(PIMRuntime(system=_system_from_args(args)))
        server = Server(session=session, config=ServeConfig(
            max_batch=args.max_batch, max_wait=args.max_wait,
            shards=args.shards, rank_aligned=args.rank_aligned))
        results = await server.submit_many(requests)
        await server.close()
        return server, results

    server, results = asyncio.run(drive())
    stats = server.stats()
    total = sum(r.n_elements for r in results)
    print(f"served {len(results)} concurrent {spec.label} requests "
          f"({total} elements) in {server.batches} coalesced batch(es)")
    print(f"  coalesce ratio {server.coalesce_ratio:.1f} req/batch; "
          f"plan builds {server.session.plans.misses} "
          f"(single-flight {stats['singleflight']['leaders']} leaders / "
          f"{stats['singleflight']['followers']} followers)")
    print(f"  simulated batch time "
          f"{sum(r.simulated_seconds for r in results[:1]) * 1e3:.3f} ms; "
          f"session: {server.session.launches[-1].n_elements} elements "
          f"in last launch")
    return 0


def _cmd_loadgen(args) -> int:
    from repro.serve import ServeConfig
    from repro.serve.loadgen import FAST_PROFILE, MIXED_PROFILE, run_load

    profile = {"mixed": MIXED_PROFILE, "fast": FAST_PROFILE}[args.profile]
    report = run_load(
        profile,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        config=ServeConfig(max_batch=args.max_batch,
                           max_wait=args.max_wait,
                           max_pending=args.max_pending,
                           hard_limit=args.hard_limit),
        verify=args.verify,
    )
    print(report.summary())
    if args.verify and report.mismatches:
        print(f"repro loadgen: {report.mismatches} served slices were NOT "
              "bit-identical to direct evaluation", file=sys.stderr)
        return 1
    return 0


def _cmd_breakdown(args) -> int:
    from repro.analysis.breakdown import breakdown_report
    from repro.api import make_method
    from repro.core.functions.registry import get_function
    params = {}
    for item in args.knobs:
        key, _, value = item.partition("=")
        params[key] = int(value)
    m = make_method(args.function, args.method, assume_in_range=False,
                    **params).setup()
    spec = get_function(args.function)
    lo, hi = spec.bench_domain
    xs = np.random.default_rng(0).uniform(lo, hi, 64).astype(np.float32)
    print(breakdown_report(m, xs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TransPimLib reproduction: regenerate the evaluation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in ("fig5", "fig6", "fig7"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        p.add_argument("--quick", action="store_true",
                       help="coarser sweep for a faster run")
        p.add_argument("--no-batch", action="store_true",
                       help="trace every sampled element individually "
                            "instead of the batched path engine")
        p.set_defaults(func=_cmd_fig)
    for fig in ("fig8", "fig9"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        p.add_argument("--no-batch", action="store_true",
                       help="disable the batched path engine")
        p.set_defaults(func=_cmd_fig)

    p = sub.add_parser("table2", help="print the support matrix")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("pareto", help="Pareto frontier of the sine sweep")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--no-batch", action="store_true",
                   help="disable the batched path engine")
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("validate",
                       help="pipeline model vs cycle-accurate simulation")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("explore", help="method tradeoffs for a function")
    p.add_argument("function")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("recommend", help="pick a method for requirements")
    p.add_argument("function")
    p.add_argument("--rmse", type=float, default=1e-6)
    p.add_argument("--evals", type=int, default=1_000_000)
    p.add_argument("--memory", type=int, default=1 << 20)
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser("breakdown", help="instruction breakdown of a method")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("knobs", nargs="*", help="precision knobs, e.g. density_log2=12")
    p.set_defaults(func=_cmd_breakdown)

    p = sub.add_parser("profile", help="binned error profile of a method")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("--bins", type=int, default=16)
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("lint",
                       help="statically verify kernel cost contracts and "
                            "whole-program plan/obs invariants")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--strict", action="store_true",
                   help="treat warnings as failures")
    p.add_argument("--passes", default="",
                   help="comma-separated subset of passes "
                        "(ast,contracts,intervals,memory,cache-key,"
                        "determinism,parallel-safety,obs-contract)")
    p.add_argument("--extra-module", action="append", default=[],
                   metavar="MODULE",
                   help="also lint kernels in this importable module "
                        "(repeatable)")
    p.add_argument("--baseline", metavar="FILE",
                   help="subtract the accepted findings recorded in FILE; "
                        "only new findings affect the exit code")
    p.add_argument("--write-baseline", metavar="FILE",
                   help="snapshot the current findings to FILE as the "
                        "accepted set, then exit 0")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("trace",
                       help="span tree + metrics of one whole-system run")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.add_argument("--n", type=int, default=4096,
                   help="number of input elements")
    p.add_argument("--tasklets", type=int, default=16)
    p.add_argument("--json", metavar="FILE",
                   help="also write Chrome trace-event JSON to FILE")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("bench",
                       help="emit a schema-versioned perf snapshot "
                            "(BENCH_*.json)")
    p.add_argument("--emit", metavar="FILE",
                   help="write the snapshot JSON to FILE")
    p.add_argument("--quick", action="store_true",
                   help="smaller sweeps for a faster run")
    p.add_argument("--check-fig5", action="store_true",
                   help="re-derive the fig5 rows and fail if the "
                        "committed benchmarks/out/ artifacts are stale")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("plan",
                       help="compile and describe an execution plan")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.add_argument("--placement", choices=("mram", "wram"), default="mram")
    p.add_argument("--tasklets", type=int, default=16)
    p.add_argument("--n", type=int, default=None,
                   help="also show the shard split for N elements")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--no-vec", action="store_true",
                   help="compile without the array-compiled fused "
                        "evaluator (bit-identical, traced engine only)")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("run",
                       help="repeated launches through one compiled plan")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.add_argument("--placement", choices=("mram", "wram"), default="mram")
    p.add_argument("--n", type=int, default=1 << 16,
                   help="number of input elements")
    p.add_argument("--repeat", type=int, default=1,
                   help="how many launches to run on the plan")
    p.add_argument("--tasklets", type=int, default=16)
    p.add_argument("--shards", type=int, default=1,
                   help="dispatch across this many disjoint DPU groups")
    p.add_argument("--overlap", action="store_true",
                   help="double-buffer: overlap transfers across shards")
    p.add_argument("--workers", type=int, default=None,
                   help="run the shards on a multiprocess pool of this "
                        "many workers (bit-identical to inline)")
    p.add_argument("--start-method", default=None,
                   choices=("fork", "spawn", "forkserver"),
                   help="worker start method (default: platform default)")
    p.add_argument("--timeout", type=float, default=None,
                   help="pooled dispatch deadline in wall seconds")
    p.add_argument("--no-vec", action="store_true",
                   help="launch through the traced engine only "
                        "(bit-identical; disables the fused evaluator)")
    p.add_argument("--rank-aligned", action="store_true",
                   help="split shards along rank boundaries (no shard "
                        "straddles a rank of the topology)")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("serve",
                       help="demonstrate the async serving front end: "
                            "coalesce concurrent requests onto one plan")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.add_argument("--placement", choices=("mram", "wram"), default="mram")
    p.add_argument("--requests", type=int, default=32,
                   help="concurrent requests to submit")
    p.add_argument("--n", type=int, default=256,
                   help="max elements per request")
    p.add_argument("--max-batch", type=int, default=256,
                   help="most requests one coalesced batch may carry")
    p.add_argument("--max-wait", type=float, default=0.0,
                   help="micro-batching window in seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1,
                   help="shards per dispatched batch")
    p.add_argument("--rank-aligned", action="store_true",
                   help="split sharded batches along rank boundaries")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("loadgen",
                       help="seeded mixed-kernel load generation against "
                            "the serving front end")
    p.add_argument("--profile", choices=("mixed", "fast"), default="mixed")
    p.add_argument("--clients", type=int, default=64,
                   help="concurrent logical clients")
    p.add_argument("--requests", type=int, default=8,
                   help="requests per client")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--max-batch", type=int, default=256)
    p.add_argument("--max-wait", type=float, default=0.0,
                   help="micro-batching window in seconds")
    p.add_argument("--max-pending", type=int, default=1024,
                   help="soft pending bound (backpressure above)")
    p.add_argument("--hard-limit", type=int, default=4096,
                   help="hard pending bound (shed at)")
    p.add_argument("--verify", action="store_true",
                   help="re-evaluate served slices directly and fail on "
                        "any bitwise mismatch")
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser("topology",
                       help="describe the modeled channel/DIMM/rank "
                            "hierarchy (paper system by default)")
    _add_topology_args(p)
    p.set_defaults(func=_cmd_topology)

    p = sub.add_parser("listing",
                       help="pseudo-assembly listing of one evaluation")
    p.add_argument("function")
    p.add_argument("method")
    p.add_argument("--x", type=float, default=1.0)
    p.add_argument("knobs", nargs="*", help="precision knobs")
    p.set_defaults(func=_cmd_listing)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # piping into head etc. is fine
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
