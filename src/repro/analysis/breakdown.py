"""Instruction breakdown: where a method's cycles actually go.

For any configured method this reports, per operation class, how many times
it executes per element and what share of the per-element slots it costs —
making the paper's arguments ("the number of floating-point multiplications
determines the cycle count", Section 4.2.1) directly inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.report import format_table
from repro.core.method import Method
from repro.isa.counter import CycleCounter, Tally

__all__ = ["OpShare", "breakdown", "breakdown_report"]

#: Maps op names recorded by the counter to their OpCosts field.
_COST_FIELD = {
    "iadd": "int_alu", "isub": "int_alu", "iand": "int_alu",
    "ior": "int_alu", "ixor": "int_alu", "shl": "int_alu",
    "shr": "int_alu", "icmp": "int_alu", "bitcast": "int_alu",
    "imul": "int_mul", "imul64": "int_mul64",
    "idiv": "int_div", "idiv64": "int_div64",
    "fadd": "fp_add", "fsub": "fp_add",
    "fmul": "fp_mul", "fdiv": "fp_div", "fcmp": "fp_cmp",
    "fneg": "fp_neg", "fabs": "fp_abs",
    "f2i": "fp_to_int", "i2f": "int_to_fp",
    "ffloor": "fp_floor", "fround": "fp_round",
    "f2fx": "float_to_fixed", "fx2f": "fixed_to_float",
    "ldexp": "ldexp", "frexp": "frexp",
    "wram_read": "wram_access", "wram_write": "wram_access",
    "mram_read": "mram_dma_setup",
    "branch": "branch",
}


@dataclass(frozen=True)
class OpShare:
    """One operation class's contribution to the per-element cost."""

    op: str
    count_per_element: float
    slots_per_element: float
    share: float


def _mean_tally(method: Method, inputs: np.ndarray) -> Tally:
    total = Tally()
    for x in inputs:
        ctx = CycleCounter(method.costs)
        method.evaluate(ctx, float(x))
        total.add(ctx.reset())
    scale = 1.0 / len(inputs)
    mean = Tally(slots=total.slots * scale)
    mean.counts = {k: v * scale for k, v in total.counts.items()}
    return mean


def breakdown(method: Method, inputs: np.ndarray) -> List[OpShare]:
    """Per-op cost shares for evaluating ``method`` (most expensive first)."""
    inputs = np.asarray(inputs, dtype=np.float32)
    mean = _mean_tally(method, inputs)
    shares: List[OpShare] = []
    for op, count in mean.counts.items():
        cost = getattr(method.costs, _COST_FIELD[op])
        slots = count * cost
        shares.append(OpShare(
            op=op,
            count_per_element=count,
            slots_per_element=slots,
            share=slots / mean.slots if mean.slots else 0.0,
        ))
    shares.sort(key=lambda s: s.slots_per_element, reverse=True)
    return shares


def breakdown_report(method: Method, inputs: np.ndarray) -> str:
    """Readable table of the breakdown, headed by the method description."""
    shares = breakdown(method, inputs)
    total = sum(s.slots_per_element for s in shares)
    rows = [
        (s.op, f"{s.count_per_element:.2f}", f"{s.slots_per_element:.1f}",
         f"{s.share * 100:.1f}%")
        for s in shares
    ]
    rows.append(("total", "", f"{total:.1f}", "100%"))
    return (f"instruction breakdown: {method.describe()}\n"
            + format_table(["op", "count/elem", "slots/elem", "share"], rows))
