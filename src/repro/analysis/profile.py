"""Error profiles: where in its domain a method errs, and by how much.

RMSE is one number; diagnosing a table needs the error as a function of the
input — is it the pole region, a segment boundary, the clamp at the domain
edge?  ``error_profile`` bins the domain and reports per-bin RMS and max
error; ``profile_report`` renders it with a bar column so hotspots stand
out in plain text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.core.method import Method

__all__ = ["ErrorBin", "error_profile", "profile_report"]


@dataclass(frozen=True)
class ErrorBin:
    """Error statistics over one sub-interval of the domain."""

    lo: float
    hi: float
    rms: float
    peak: float
    peak_x: float


def error_profile(
    method: Method,
    n_bins: int = 16,
    n_points: int = 1 << 15,
    domain: Optional[Tuple[float, float]] = None,
    seed: int = 3,
) -> List[ErrorBin]:
    """Binned error of ``method`` against its float64 reference."""
    lo, hi = domain if domain is not None else method.spec.bench_domain
    rng = np.random.default_rng(seed)
    xs = rng.uniform(lo, hi, n_points).astype(np.float32)
    approx = method.evaluate_vec(xs).astype(np.float64)
    exact = method.spec.reference(xs.astype(np.float64))
    err = np.abs(approx - exact)

    edges = np.linspace(lo, hi, n_bins + 1)
    which = np.clip(np.digitize(xs, edges) - 1, 0, n_bins - 1)
    bins: List[ErrorBin] = []
    for b in range(n_bins):
        mask = which == b
        if not np.any(mask):
            bins.append(ErrorBin(edges[b], edges[b + 1], 0.0, 0.0,
                                 float(edges[b])))
            continue
        seg_err = err[mask]
        peak_i = int(np.argmax(seg_err))
        bins.append(ErrorBin(
            lo=float(edges[b]),
            hi=float(edges[b + 1]),
            rms=float(np.sqrt(np.mean(np.square(seg_err)))),
            peak=float(seg_err[peak_i]),
            peak_x=float(xs[mask][peak_i]),
        ))
    return bins


def profile_report(method: Method, n_bins: int = 16, **kwargs) -> str:
    """Render the profile with a log-scaled bar per bin."""
    bins = error_profile(method, n_bins=n_bins, **kwargs)
    worst = max((b.rms for b in bins), default=0.0) or 1e-300
    floor = worst / 1e4
    rows = []
    for b in bins:
        frac = 0.0
        if b.rms > floor:
            frac = 1.0 + np.log10(b.rms / worst) / 4.0  # 4 decades of bar
        bar = "#" * max(0, int(round(frac * 30)))
        rows.append((f"[{b.lo:+.3g}, {b.hi:+.3g})", f"{b.rms:.2e}",
                     f"{b.peak:.2e}", f"{b.peak_x:+.4g}", bar))
    return (f"error profile: {method.describe()}\n"
            + format_table(["bin", "rms", "peak", "peak at", "rms (log bar)"],
                           rows))
