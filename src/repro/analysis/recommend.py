"""Method selection: the paper's key takeaways as an executable policy.

Given a target function, an accuracy requirement, the number of evaluations
per setup (the amortization count from Key Takeaway 2), and a PIM memory
budget (Key Takeaway 3), rank every supporting method configuration by its
total cost

    total = setup_seconds + evaluations * cycles_per_element / f_PIM

over *measured* sweep points (each candidate configuration is actually
built and its RMSE measured, exactly like the Figure 5-7 harness).

The rationale strings connect the winner back to the paper's takeaways:
few evaluations favor CORDIC's flat setup; high accuracy under a memory
budget favors interpolated L-LUTs; activation-shaped functions favor the
D-LUT family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sweep import WRAM_TABLE_BUDGET, sweep_method
from repro.core.functions.registry import get_function
from repro.core.functions.support import supported_methods
from repro.errors import ConfigurationError
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.config import DPUConfig, UPMEM_DPU

__all__ = ["Requirements", "Recommendation", "recommend"]

#: Search grids per method (precision knob values tried).
_GRIDS: Dict[str, Tuple[str, Sequence[int], Optional[Dict[str, int]]]] = {
    "cordic": ("iterations", (8, 12, 16, 20, 24, 28, 32), None),
    "cordic_fx": ("iterations", (8, 12, 16, 20, 24, 28, 32), None),
    "poly": ("degree", (4, 6, 8, 10, 12, 16), None),
    "slut_i": ("seg_bits", (3, 4, 5), None),
    "cordic_lut": ("iterations", (12, 16, 20, 24, 28, 32), {"lut_bits": 8}),
    "mlut": ("size", tuple((1 << k) for k in range(10, 23, 2)), None),
    "mlut_i": ("size", tuple((1 << k) + 1 for k in range(5, 16, 2)), None),
    "llut": ("density_log2", tuple(range(8, 24, 2)), None),
    "llut_i": ("density_log2", tuple(range(4, 15, 2)), None),
    "llut_fx": ("density_log2", tuple(range(8, 25, 2)), None),
    "llut_i_fx": ("density_log2", tuple(range(4, 15, 2)), None),
    "dlut": ("mant_bits", tuple(range(4, 15, 2)), None),
    "dlut_i": ("mant_bits", tuple(range(4, 13, 2)), None),
    "dllut": ("mant_bits", tuple(range(4, 15, 2)), None),
    "dllut_i": ("mant_bits", tuple(range(4, 13, 2)), None),
}


@dataclass(frozen=True)
class Requirements:
    """What the kernel needs from its transcendental function."""

    rmse_target: float = 1e-6
    #: Evaluations between setups (amortization count, Key Takeaway 2).
    evaluations: int = 1_000_000
    #: PIM memory available for tables, bytes (Key Takeaway 3).
    memory_budget: int = 1 << 20
    #: Restrict tables to the scratchpad (WRAM)?
    wram_only: bool = False
    #: Inputs guaranteed inside the natural range (skips range extension)?
    in_natural_range: bool = True


@dataclass(frozen=True)
class Recommendation:
    """One ranked candidate configuration."""

    method: str
    param: str
    rmse: float
    cycles_per_element: float
    setup_seconds: float
    table_bytes: int
    total_seconds: float
    rationale: str


def _rationale(method: str, req: Requirements) -> str:
    if method.startswith("cordic"):
        if req.evaluations < 1000:
            return ("flat setup amortizes immediately for few evaluations "
                    "(Key Takeaway 2)")
        return "minimal memory footprint at the required accuracy"
    if method.startswith("dlut") or method.startswith("dllut"):
        return ("float-grid spacing fits this saturating function "
                "(Key Takeaway 4)")
    if method.endswith("_fx"):
        return ("fixed-point arithmetic replaces softfloat multiplies "
                "(Figure 5, fixed-vs-float)")
    if "llut" in method:
        return ("ldexp-based addressing avoids the float multiply "
                "(Key Takeaway 1)")
    if method == "poly":
        return "coefficient-only footprint; pays a multiply-add per term"
    return "uniform table with multiply-based addressing"


def recommend(
    function: str,
    requirements: Requirements = Requirements(),
    top_k: int = 3,
    costs: OpCosts = UPMEM_COSTS,
    dpu: DPUConfig = UPMEM_DPU,
    n_accuracy_points: int = 4096,
) -> List[Recommendation]:
    """Rank supporting method configurations for ``function``.

    Returns up to ``top_k`` recommendations, cheapest total time first.
    Raises :class:`ConfigurationError` when no configuration meets the
    requirements (e.g. an unreachable accuracy under a tiny memory budget).
    """
    spec = get_function(function)
    rng = np.random.default_rng(17)
    lo, hi = spec.natural_range if requirements.in_natural_range \
        else spec.bench_domain
    inputs = rng.uniform(lo, hi, n_accuracy_points).astype(np.float32)

    placement = "wram" if requirements.wram_only else "mram"
    budget = min(requirements.memory_budget,
                 WRAM_TABLE_BUDGET if requirements.wram_only else 1 << 62)

    candidates: List[Recommendation] = []
    for method in supported_methods(function):
        if method not in _GRIDS:
            continue
        param_name, values, extra = _GRIDS[method]
        if method == "slut_i":
            # The segmented LUT sizes itself from the accuracy target.
            extra = {"target_rmse": requirements.rmse_target}
        points = sweep_method(
            function, method, param_name, values,
            placement=placement,
            assume_in_range=requirements.in_natural_range,
            inputs=inputs, sample_size=12, costs=costs, extra_params=extra,
        )
        feasible = [p for p in points
                    if p.rmse <= requirements.rmse_target
                    and p.table_bytes <= budget]
        if not feasible:
            continue
        best = min(feasible, key=lambda p: p.cycles_per_element)
        total = best.setup_seconds + (
            requirements.evaluations * best.cycles_per_element
            / dpu.frequency_hz
        )
        candidates.append(Recommendation(
            method=method,
            param=best.param,
            rmse=best.rmse,
            cycles_per_element=best.cycles_per_element,
            setup_seconds=best.setup_seconds,
            table_bytes=best.table_bytes,
            total_seconds=total,
            rationale=_rationale(method, requirements),
        ))

    if not candidates:
        raise ConfigurationError(
            f"no method configuration for {function!r} reaches RMSE "
            f"{requirements.rmse_target:g} within {requirements.memory_budget} "
            f"bytes"
        )
    candidates.sort(key=lambda r: r.total_seconds)
    return candidates[:top_k]
