"""Ablation studies beyond the paper's figures.

These probe which conclusions are robust to the reproduction's modeling
choices (DESIGN.md Section 5):

* **cost-model sensitivity** — rescale the softfloat costs and check that the
  method ordering of Figure 5 (L-LUT < M-LUT; interpolated fixed < float;
  CORDIC slowest at high accuracy) survives;
* **tasklet scaling** — cycles per element as the tasklet count grows,
  showing pipeline saturation at 11 tasklets and that MRAM-resident LUTs
  match WRAM ones once DMA latency is hidden (Observation 4);
* **idealized FP hardware** — with single-cycle float ops (a hypothetical
  PIM core with an FPU), how much of TransPimLib's advantage remains.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.isa.opcosts import IDEALIZED_COSTS, OpCosts, UPMEM_COSTS
from repro.pim.dpu import DPU

__all__ = [
    "method_ordering",
    "cost_sensitivity",
    "tasklet_scaling",
    "idealized_comparison",
]

_F32 = np.float32

#: (method, params) pairs compared at roughly matched accuracy (~1e-7).
_MATCHED = (
    ("mlut", {"size": (1 << 22)}),
    ("mlut_i", {"size": (1 << 11) + 1}),
    ("llut", {"density_log2": 20}),
    ("llut_i", {"density_log2": 11}),
    ("llut_fx", {"density_log2": 20}),
    ("llut_i_fx", {"density_log2": 11}),
    ("cordic", {"iterations": 26}),
    ("cordic_lut", {"iterations": 26, "lut_bits": 8}),
)


def method_ordering(costs: OpCosts = UPMEM_COSTS,
                    tasklets: int = 16) -> Dict[str, float]:
    """Cycles/element for every sine method at matched (~1e-7) accuracy."""
    inputs = default_inputs("sin", n=1 << 10)
    dpu = DPU(costs=costs)
    out: Dict[str, float] = {}
    for method, params in _MATCHED:
        m = make_method("sin", method, placement="mram",
                        assume_in_range=True, costs=costs, **params).setup()
        r = dpu.run_kernel(m.evaluate, inputs, tasklets=tasklets,
                           sample_size=24)
        out[method] = r.cycles_per_element
    return out


#: Orderings Figure 5's takeaways rest on, as (faster, slower) pairs.
EXPECTED_ORDERINGS: Tuple[Tuple[str, str], ...] = (
    ("llut", "mlut"),
    ("llut_i", "mlut_i"),
    ("llut_i_fx", "llut_i"),
    ("llut_i", "cordic"),
    ("cordic_lut", "cordic"),
)


def cost_sensitivity(scales: Sequence[float] = (0.5, 1.0, 2.0)) -> List[dict]:
    """Rescale softfloat costs and report which orderings survive."""
    results = []
    for scale in scales:
        costs = UPMEM_COSTS.replace(
            fp_add=int(UPMEM_COSTS.fp_add * scale),
            fp_mul=int(UPMEM_COSTS.fp_mul * scale),
            fp_div=int(UPMEM_COSTS.fp_div * scale),
        )
        cycles = method_ordering(costs)
        holds = {
            f"{a}<{b}": cycles[a] < cycles[b] for a, b in EXPECTED_ORDERINGS
        }
        results.append({"scale": scale, "cycles": cycles, "orderings": holds})
    return results


def tasklet_scaling(
    tasklet_counts: Sequence[int] = (1, 2, 4, 8, 11, 16, 24),
    density_log2: int = 11,
    costs: OpCosts = UPMEM_COSTS,
) -> List[dict]:
    """Interpolated L-LUT cycles/element vs tasklets, WRAM vs MRAM tables."""
    inputs = default_inputs("sin", n=1 << 10)
    dpu = DPU(costs=costs)
    rows = []
    for placement in ("wram", "mram"):
        m = make_method("sin", "llut_i", density_log2=density_log2,
                        placement=placement, assume_in_range=True,
                        costs=costs).setup()
        for t in tasklet_counts:
            r = dpu.run_kernel(m.evaluate, inputs, tasklets=t, sample_size=24)
            rows.append({
                "placement": placement,
                "tasklets": t,
                "cycles_per_element": r.cycles_per_element,
            })
    return rows


def idealized_comparison() -> Dict[str, Dict[str, float]]:
    """Method costs under UPMEM-like vs idealized single-cycle-FP cores."""
    return {
        "upmem": method_ordering(UPMEM_COSTS),
        "idealized_fp": method_ordering(IDEALIZED_COSTS),
    }
