"""Dependency-free ASCII scatter charts for figure reports.

The paper's figures are log-log scatter plots; this renders the same view
in plain text so benchmark output conveys the *shape* (flat LUT lines,
CORDIC's climb, the crossovers) at a glance, without plotting libraries.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["scatter_chart"]

#: Series markers assigned in order of first appearance.
_MARKERS = "ox+*#@%&$govz"


def _ticks(lo: float, hi: float, log: bool) -> Tuple[float, float]:
    if log:
        if lo <= 0 or hi <= 0:
            raise ConfigurationError("log axes need positive values")
        return math.log10(lo), math.log10(hi)
    return lo, hi


def scatter_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
    log_y: bool = True,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series as an ASCII scatter plot.

    ``series`` maps a name to (x, y) points.  Collisions render the later
    series' marker.  Returns the chart followed by a marker legend.
    """
    if not series or all(not pts for pts in series.values()):
        raise ConfigurationError("scatter_chart needs at least one point")
    if width < 16 or height < 6:
        raise ConfigurationError("chart too small to render")

    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = _ticks(min(xs), max(xs), log_x)
    y_lo, y_hi = _ticks(min(ys), max(ys), log_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        fx = (_ticks(x, x, log_x)[0] - x_lo) / x_span
        fy = (_ticks(y, y, log_y)[0] - y_lo) / y_span
        col = min(width - 1, max(0, int(round(fx * (width - 1)))))
        row = min(height - 1, max(0, int(round((1.0 - fy) * (height - 1)))))
        grid[row][col] = marker

    legend = []
    for i, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        for x, y in pts:
            place(x, y, marker)

    top = f"{max(ys):.2e}"
    bottom = f"{min(ys):.2e}"
    lines = []
    for r, row in enumerate(grid):
        label = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{label:>9s} |{''.join(row)}")
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':9s}  {min(xs):.2e}{'':^{max(1, width - 20)}}{max(xs):.2e}")
    lines.append(f"x: {x_label} ({'log' if log_x else 'lin'}), "
                 f"y: {y_label} ({'log' if log_y else 'lin'})")
    lines.extend(legend)
    return "\n".join(lines)
