"""Evaluation harnesses: sweeps, figures, tables, crossovers, ablations."""

from repro.analysis.breakdown import breakdown, breakdown_report
from repro.analysis.chart import scatter_chart
from repro.analysis.listing import kernel_listing, listing_report
from repro.analysis.profile import error_profile, profile_report
from repro.analysis.export import sweep_to_csv, sweep_to_json, write_csv, write_json
from repro.analysis.crossover import CrossoverResult, amortization_crossover
from repro.analysis.pareto import dominates, frontier_report, pareto_frontier
from repro.analysis.recommend import Recommendation, Requirements, recommend
from repro.analysis.figures import (
    fig5_data,
    fig5_report,
    fig6_report,
    fig7_report,
    fig8_data,
    fig8_report,
    fig9_data,
    fig9_report,
    table2_report,
)
from repro.analysis.report import format_series, format_table
from repro.analysis.sweep import SweepPoint, default_inputs, sweep_method

__all__ = [
    "SweepPoint",
    "sweep_method",
    "default_inputs",
    "fig5_data",
    "fig5_report",
    "fig6_report",
    "fig7_report",
    "fig8_data",
    "fig8_report",
    "fig9_data",
    "fig9_report",
    "table2_report",
    "amortization_crossover",
    "CrossoverResult",
    "breakdown",
    "breakdown_report",
    "recommend",
    "Requirements",
    "Recommendation",
    "pareto_frontier",
    "frontier_report",
    "dominates",
    "scatter_chart",
    "kernel_listing",
    "listing_report",
    "error_profile",
    "profile_report",
    "sweep_to_json",
    "sweep_to_csv",
    "write_json",
    "write_csv",
    "format_table",
    "format_series",
]
