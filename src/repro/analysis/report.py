"""Plain-text reporting helpers for figure/table harnesses.

Benchmarks print the same rows/series the paper's figures plot, as aligned
ASCII tables — no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table with a header rule."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as ``name: (x, y) ...`` lines."""
    parts = [f"{name} [{x_label} -> {y_label}]"]
    for x, y in points:
        parts.append(f"    {_cell(x)} -> {_cell(y)}")
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
