"""Pareto-frontier extraction over the accuracy/cycles/memory space.

Figures 5-7 plot three projections of one three-dimensional tradeoff.  This
module finds the configurations that are not dominated in (RMSE, cycles,
bytes) — the set a user should ever consider — and labels which methods
populate the frontier at which accuracy regimes, quantifying Key Takeaways
1 and 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import format_table
from repro.analysis.sweep import SweepPoint

__all__ = ["dominates", "pareto_frontier", "frontier_report",
           "frontier_methods_by_accuracy"]


def dominates(a: SweepPoint, b: SweepPoint, tolerance: float = 0.0) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and strictly
    better somewhere (lower RMSE, fewer cycles, fewer bytes).

    ``tolerance`` enables epsilon-dominance: ``a`` may be worse than ``b``
    by up to that relative slack on some axes and still dominate, provided
    it is better by *more* than the slack somewhere.  This absorbs the
    +-1-entry rounding noise between methods with matched spacing.
    """
    slack = 1.0 + tolerance

    def leq(x, y):
        return x <= y * slack

    def lt(x, y):
        return x * slack < y

    at_least = (leq(a.rmse, b.rmse)
                and leq(a.cycles_per_element, b.cycles_per_element)
                and leq(a.table_bytes, b.table_bytes))
    strictly = (lt(a.rmse, b.rmse)
                or lt(a.cycles_per_element, b.cycles_per_element)
                or lt(a.table_bytes, b.table_bytes))
    return at_least and strictly


def pareto_frontier(points: Sequence[SweepPoint],
                    tolerance: float = 0.0) -> List[SweepPoint]:
    """Non-dominated subset, sorted by RMSE (most accurate last)."""
    frontier = [
        p for p in points
        if not any(dominates(q, p, tolerance) for q in points if q is not p)
    ]
    frontier.sort(key=lambda p: (-p.rmse, p.cycles_per_element))
    return frontier


def frontier_methods_by_accuracy(
    points: Sequence[SweepPoint],
    bands: Sequence[Tuple[float, float]] = (
        (1e-3, 1e-4), (1e-4, 1e-6), (1e-6, 1e-7), (1e-7, 0.0),
    ),
) -> Dict[str, List[str]]:
    """Which methods appear on the frontier within each accuracy band."""
    frontier = pareto_frontier(points)
    out: Dict[str, List[str]] = {}
    for hi, lo in bands:
        label = f"[{lo:g}, {hi:g})"
        methods = sorted({p.method for p in frontier if lo <= p.rmse < hi})
        out[label] = methods
    return out


def frontier_report(points: Sequence[SweepPoint]) -> str:
    """Readable frontier table plus the per-band method summary."""
    frontier = pareto_frontier(points)
    rows = [
        (p.method, p.placement, p.param, f"{p.rmse:.2e}",
         f"{p.cycles_per_element:.0f}", p.table_bytes)
        for p in frontier
    ]
    table = format_table(
        ["method", "placement", "param", "rmse", "cycles/elem", "bytes"],
        rows,
    )
    bands = frontier_methods_by_accuracy(points)
    band_rows = [(band, ", ".join(methods) or "-")
                 for band, methods in bands.items()]
    band_table = format_table(["rmse band", "frontier methods"], band_rows)
    return ("Pareto frontier over (rmse, cycles, bytes)\n" + table
            + "\n\nfrontier membership by accuracy band\n" + band_table)
