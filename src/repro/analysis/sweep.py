"""Accuracy/performance parameter sweeps (the engine behind Figures 5-7).

For each (function, method, precision parameter) configuration the sweep
measures, exactly as the paper's microbenchmarks do (Section 4.1.1):

* RMSE / max error against the host libm over 2^16 uniform random inputs
  (vectorized float32 path — a genuine measurement, not a model);
* execution cycles per element on one PIM core with 16 tasklets, through the
  traced path and the pipeline model, including the streaming loop;
* modeled host setup time;
* PIM memory consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.api import make_method
from repro.core.accuracy import max_abs_error, rmse
from repro.core.functions.registry import get_function
from repro.core.setup_model import DEFAULT_SETUP_MODEL, SetupTimeModel
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.cache import PlanCache

__all__ = ["SweepPoint", "sweep_method", "SINE_SWEEPS", "default_inputs"]

_F32 = np.float32

#: Usable WRAM for tables after operand buffers and stack (of 64 KB total).
WRAM_TABLE_BUDGET = 48 * 1024


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration of one method."""

    function: str
    method: str
    placement: str
    param: str
    rmse: float
    max_error: float
    cycles_per_element: float
    setup_seconds: float
    table_bytes: int

    def row(self) -> tuple:
        """Cells for tabular reports."""
        return (
            self.method, self.placement, self.param, self.rmse,
            self.cycles_per_element, self.setup_seconds, self.table_bytes,
        )


def default_inputs(function: str, n: int = 1 << 16, seed: int = 7,
                   in_natural_range: bool = True) -> np.ndarray:
    """The paper's microbenchmark input array: 2^16 uniform random floats."""
    spec = get_function(function)
    lo, hi = spec.natural_range if in_natural_range else spec.bench_domain
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, n).astype(_F32)


def sweep_method(
    function: str,
    method: str,
    param_name: str,
    param_values: Sequence[int],
    placement: str = "mram",
    assume_in_range: bool = True,
    inputs: Optional[np.ndarray] = None,
    tasklets: int = 16,
    sample_size: int = 32,
    costs: OpCosts = UPMEM_COSTS,
    setup_model: SetupTimeModel = DEFAULT_SETUP_MODEL,
    extra_params: Optional[Dict[str, int]] = None,
    skip_oversized_wram: bool = True,
    batch: bool = True,
    plan_cache: Optional[PlanCache] = None,
) -> List[SweepPoint]:
    """Sweep one method's precision parameter and measure every point.

    ``batch`` routes the cycle trace through the batched path-classification
    engine (:mod:`repro.batch`) — bit-identical numbers, one trace per cost
    path instead of one per sampled element.

    Every point compiles through a :class:`~repro.plan.cache.PlanCache`
    (``plan_cache`` when given, a sweep-local one otherwise).  The cache's
    method pool reuses built tables and RMSE evaluations across placements
    and calls: table contents are placement-independent, only the traced
    load cost differs, so a pool hit retargets the method with
    :meth:`Method.set_placement` instead of rebuilding.  Callers sharing
    one cache across calls must pass identical ``inputs``.
    """
    if inputs is None:
        inputs = default_inputs(function)
    reference = get_function(function).reference(inputs.astype(np.float64))

    cache = plan_cache if plan_cache is not None else PlanCache(maxsize=256)
    # One representative core: sweeps measure per-element cycles, so the
    # rest of the system (DPU count, host links) never enters the numbers.
    system = PIMSystem(SystemConfig(n_dpus=1), costs)
    points: List[SweepPoint] = []
    for value in param_values:
        params = dict(extra_params or {})
        params[param_name] = value
        with _span("sweep.point", function=function, method=method,
                   placement=placement,
                   param=f"{param_name}={value}") as point_sp:
            with _span("sweep.build"):
                m = make_method(
                    function, method,
                    placement=placement,
                    assume_in_range=assume_in_range,
                    costs=costs,
                    **params,
                )
                planned = m.planned_table_bytes()
                if (placement == "wram" and skip_oversized_wram
                        and planned is not None
                        and planned > WRAM_TABLE_BUDGET):
                    # known oversized before building: skip the build
                    _metrics.inc("sweep.skipped_oversized")
                    point_sp.set(skipped="oversized_wram")
                    continue
                # Compile (pool hit: an equivalent built table — any
                # placement — is retargeted; miss: the table builds here).
                plan = cache.plan(system, m, tasklets=tasklets,
                                  sample_size=sample_size)
                m = plan.method
            if (placement == "wram" and skip_oversized_wram
                    and plan.table_bytes > WRAM_TABLE_BUDGET):
                # the paper's WRAM curves stop where tables no longer fit
                _metrics.inc("sweep.skipped_oversized")
                point_sp.set(skipped="oversized_wram")
                continue
            approx = plan.memo.get("sweep_rmse_approx")
            if approx is None:
                with _span("sweep.rmse"):
                    approx = plan.values(inputs).astype(np.float64)
                plan.memo["sweep_rmse_approx"] = approx
            result = plan.execute(inputs, batch=batch).per_dpu
            _metrics.inc("sweep.points")
            point_sp.set(cycles_per_element=result.cycles_per_element)
        points.append(SweepPoint(
            function=function,
            method=method,
            placement=placement,
            param=f"{param_name}={value}",
            rmse=rmse(approx, reference),
            max_error=max_abs_error(approx, reference),
            cycles_per_element=result.cycles_per_element,
            setup_seconds=setup_model.seconds(m.host_entries(), m.table_bytes()),
            table_bytes=m.table_bytes(),
        ))
    return points


#: The Figure 5-7 sine sweep: every implementation method, float and fixed,
#: with the precision knob swept to span RMSE ~1e-4 .. ~1e-9.
SINE_SWEEPS: Dict[str, dict] = {
    "cordic": dict(param_name="iterations",
                   param_values=(8, 12, 16, 20, 24, 28, 32)),
    "cordic_lut": dict(param_name="iterations",
                       param_values=(12, 16, 20, 24, 28, 32),
                       extra_params={"lut_bits": 8}),
    "mlut": dict(param_name="size",
                 param_values=tuple((1 << k) for k in (12, 14, 16, 18, 20, 22))),
    "mlut_i": dict(param_name="size",
                   param_values=tuple((1 << k) + 1 for k in (5, 7, 9, 11, 13, 15))),
    "llut": dict(param_name="density_log2",
                 param_values=(10, 12, 14, 16, 18, 20, 22)),
    "llut_i": dict(param_name="density_log2",
                   param_values=(3, 5, 7, 9, 11, 13)),
    "llut_fx": dict(param_name="density_log2",
                    param_values=(10, 12, 14, 16, 18, 20, 22)),
    "llut_i_fx": dict(param_name="density_log2",
                      param_values=(3, 5, 7, 9, 11, 13)),
    "poly": dict(param_name="degree",
                 param_values=(6, 8, 10, 12, 14, 16)),
}


def sine_sweep(placements: Iterable[str] = ("mram", "wram"),
               costs: OpCosts = UPMEM_COSTS,
               batch: bool = True) -> List[SweepPoint]:
    """Run the full Figure 5-7 sweep for the sine function."""
    inputs = default_inputs("sin")
    points: List[SweepPoint] = []
    cache = PlanCache(maxsize=256)
    for method, cfg in SINE_SWEEPS.items():
        for placement in placements:
            points.extend(sweep_method(
                "sin", method, placement=placement, inputs=inputs,
                costs=costs, batch=batch, plan_cache=cache, **cfg,
            ))
    return points
