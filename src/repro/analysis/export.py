"""Machine-readable export of sweep and figure data (JSON / CSV).

Benchmark reports are human text; downstream plotting or regression
tracking wants structured data.  Exporters accept the same objects the
report functions do.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Sequence

from repro.analysis.figures import Fig9Row
from repro.analysis.sweep import SweepPoint

__all__ = ["sweep_to_json", "sweep_to_csv", "fig9_to_json",
           "write_json", "write_csv"]


def sweep_to_json(points: Sequence[SweepPoint]) -> str:
    """Sweep points as a JSON array of objects."""
    return json.dumps([dataclasses.asdict(p) for p in points], indent=2)


def sweep_to_csv(points: Sequence[SweepPoint]) -> str:
    """Sweep points as CSV with a header row."""
    if not points:
        return ""
    fields = [f.name for f in dataclasses.fields(SweepPoint)]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for p in points:
        writer.writerow(dataclasses.asdict(p))
    return buf.getvalue()


def fig9_to_json(rows: Sequence[Fig9Row]) -> str:
    """Figure 9 rows as JSON."""
    return json.dumps([dataclasses.asdict(r) for r in rows], indent=2)


def write_json(path, points: Sequence[SweepPoint]) -> None:
    """Write sweep points to a JSON file."""
    with open(path, "w") as f:
        f.write(sweep_to_json(points))


def write_csv(path, points: Sequence[SweepPoint]) -> None:
    """Write sweep points to a CSV file."""
    with open(path, "w", newline="") as f:
        f.write(sweep_to_csv(points))
