"""Harnesses that regenerate every figure and table of the paper's evaluation.

Each ``figN_data()`` returns the figure's rows/series as plain data; each
``figN_report()`` renders them as text.  The benchmark targets in
``benchmarks/`` call these and print the result, so running the benchmark
suite regenerates the paper's evaluation section end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sweep import SweepPoint, sine_sweep
from repro.core.functions.registry import FUNCTIONS, get_function
from repro.core.functions.support import METHOD_SUPPORT, supports
from repro.core.range_reduction import make_reducer
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import OpCosts, UPMEM_COSTS
from repro.pim.config import UPMEM_SYSTEM
from repro.pim.system import PIMSystem
from repro.workloads.blackscholes import Blackscholes, generate_options
from repro.workloads.cpu_model import CPU_BLACKSCHOLES, CPU_SIGMOID, CPU_SOFTMAX
from repro.workloads.sigmoid import Sigmoid
from repro.workloads.sigmoid import generate_inputs as sigmoid_inputs
from repro.workloads.softmax import Softmax
from repro.workloads.softmax import generate_inputs as softmax_inputs

__all__ = [
    "fig5_data", "fig5_report",
    "fig6_report", "fig7_report",
    "fig8_data", "fig8_report",
    "fig9_data", "fig9_report", "Fig9Row",
    "table2_report",
]

_F32 = np.float32


# ----------------------------------------------------------------------
# Figures 5-7: one shared sweep, three projections


def fig5_data(costs: OpCosts = UPMEM_COSTS,
              batch: bool = True) -> List[SweepPoint]:
    """Figure 5/6/7 source data: the full sine method sweep."""
    return sine_sweep(costs=costs, batch=batch)


def _sweep_table(points: Sequence[SweepPoint], value_header: str,
                 value_fn) -> str:
    rows = [
        (p.method, p.placement, p.param, f"{p.rmse:.3e}", value_fn(p))
        for p in points
    ]
    return format_table(
        ["method", "placement", "param", "rmse", value_header], rows
    )


def fig5_report(points: Sequence[SweepPoint]) -> str:
    """Figure 5: execution cycles per element vs RMSE."""
    return "Figure 5: PIM execution cycles/element vs RMSE (sine)\n" + \
        _sweep_table(points, "cycles/elem", lambda p: f"{p.cycles_per_element:.1f}")


def fig6_report(points: Sequence[SweepPoint]) -> str:
    """Figure 6: host setup seconds vs RMSE."""
    return "Figure 6: host setup time vs RMSE (sine)\n" + \
        _sweep_table(points, "setup_s", lambda p: f"{p.setup_seconds:.3e}")


def fig7_report(points: Sequence[SweepPoint]) -> str:
    """Figure 7: PIM memory bytes vs RMSE."""
    return "Figure 7: memory consumption vs RMSE (sine)\n" + \
        _sweep_table(points, "bytes", lambda p: p.table_bytes)


# ----------------------------------------------------------------------
# Figure 8: range reduction / extension cycles


def fig8_data(costs: OpCosts = UPMEM_COSTS,
              n_samples: int = 256) -> Dict[str, float]:
    """Cycles per element spent in range reduction+reconstruction.

    Measured by tracing each function's reducer over its bench domain
    (sin: fold to [0, 2pi); exp: exponent split; log/sqrt: mantissa split).
    """
    out: Dict[str, float] = {}
    rng = np.random.default_rng(11)
    for name in ("sin", "exp", "log", "sqrt"):
        spec = get_function(name)
        reducer = make_reducer(spec, assume_in_range=False)
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, n_samples).astype(_F32)
        total = 0
        for x in xs:
            ctx = CycleCounter(costs)
            u, state = reducer.reduce(ctx, x)
            reducer.reconstruct(ctx, _F32(u), state)
            total += ctx.slots
        out[name] = total / n_samples
    return out


def fig8_report(data: Dict[str, float]) -> str:
    """Render Figure 8's per-function reduction costs."""
    rows = [(name, f"{cycles:.1f}") for name, cycles in data.items()]
    return ("Figure 8: range reduction/extension cycles per element\n"
            + format_table(["function", "cycles/elem"], rows))


# ----------------------------------------------------------------------
# Figure 9: full workloads


@dataclass(frozen=True)
class Fig9Row:
    """One bar of Figure 9."""

    workload: str
    config: str
    seconds: float

    def row(self) -> Tuple[str, str, str]:
        """Formatted (workload, config, time) cells."""
        return (self.workload, self.config, f"{self.seconds * 1e3:.1f} ms")


def fig9_data(
    n_blackscholes: int = 10_000_000,
    n_vector: int = 30_000_000,
    costs: OpCosts = UPMEM_COSTS,
    trace_elements: int = 10_000,
    batch: bool = True,
) -> List[Fig9Row]:
    """Execution times of all Figure 9 configurations.

    The PIM timing model is independent of the element count (a traced
    sample is extrapolated), so the full 10M/30M sizes cost nothing extra:
    ``trace_elements`` bounds the materialized sample array and ``virtual_n``
    sizing makes the simulated run reflect the paper's full sizes.
    """
    system = PIMSystem(UPMEM_SYSTEM, costs)
    rows: List[Fig9Row] = []

    # Blackscholes ----------------------------------------------------
    options = generate_options(trace_elements)
    rows.append(Fig9Row("blackscholes", "cpu_1t",
                        CPU_BLACKSCHOLES.seconds(n_blackscholes, 1)))
    rows.append(Fig9Row("blackscholes", "cpu_32t",
                        CPU_BLACKSCHOLES.seconds(n_blackscholes, 32)))
    for variant in ("poly", "mlut_i", "llut_i", "llut_i_fx"):
        bs = Blackscholes(variant, costs).setup()
        res = bs.run(options, system, virtual_n=n_blackscholes,
                     use_batch=batch)
        rows.append(Fig9Row("blackscholes", f"pim_{variant}",
                            res.total_seconds))

    # Sigmoid ----------------------------------------------------------
    xs = sigmoid_inputs(trace_elements)
    rows.append(Fig9Row("sigmoid", "cpu_1t", CPU_SIGMOID.seconds(n_vector, 1)))
    rows.append(Fig9Row("sigmoid", "cpu_32t", CPU_SIGMOID.seconds(n_vector, 32)))
    for variant in ("poly", "mlut_i", "llut_i"):
        sg = Sigmoid(variant, costs).setup()
        res = sg.run(xs, system, virtual_n=n_vector, use_batch=batch)
        rows.append(Fig9Row("sigmoid", f"pim_{variant}", res.total_seconds))

    # Softmax ----------------------------------------------------------
    xm = softmax_inputs(trace_elements)
    rows.append(Fig9Row("softmax", "cpu_1t", CPU_SOFTMAX.seconds(n_vector, 1)))
    rows.append(Fig9Row("softmax", "cpu_32t", CPU_SOFTMAX.seconds(n_vector, 32)))
    for variant in ("poly", "mlut_i", "llut_i"):
        sm = Softmax(variant, costs).setup()
        res = sm.run(xm, system, virtual_n=n_vector, use_batch=batch)
        rows.append(Fig9Row("softmax", f"pim_{variant}", res.total_seconds))
    return rows


def fig9_report(rows: Sequence[Fig9Row]) -> str:
    """Render Figure 9's workload-time table."""
    return ("Figure 9: full-workload execution time "
            "(10M options / 30M elements; 2545 PIM cores x 16 threads)\n"
            + format_table(["workload", "configuration", "time"],
                           [r.row() for r in rows]))


# ----------------------------------------------------------------------
# Table 2: support matrix


def table2_report() -> str:
    """Render the method-by-function support matrix (Table 2)."""
    functions = sorted(FUNCTIONS)
    rows = []
    for method in METHOD_SUPPORT:
        rows.append([method] + [
            "x" if supports(method, f) else "." for f in functions
        ])
    return ("Table 2: implementation methods and supported functions\n"
            + format_table(["method"] + functions, rows))
