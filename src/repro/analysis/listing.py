"""Kernel listings: a traced evaluation rendered as DPU-style pseudo-assembly.

Prints the exact operation sequence a method executes for one input — the
closest thing the simulator has to reading the compiled tasklet code.  Each
line shows the running slot offset, the operation, its slot cost, and any
DMA latency, making statements like "the interpolated L-LUT is one fadd,
two integer ops, two loads, three subtracts, one multiply and one add"
directly checkable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.core.method import Method
from repro.isa.counter import CycleCounter

__all__ = ["kernel_listing", "listing_report"]


def kernel_listing(method: Method, x: float) -> List[Tuple[str, int, int]]:
    """Trace one evaluation; returns (op, slots, dma_cycles) in order."""
    trace: List[Tuple[str, int, int]] = []
    ctx = CycleCounter(method.costs, trace_ops=trace)
    method.evaluate(ctx, np.float32(x))
    return trace


def listing_report(method: Method, x: float, max_rows: int = 120) -> str:
    """Render the listing with running offsets and a totals line."""
    trace = kernel_listing(method, x)
    rows = []
    offset = 0
    for i, (op, slots, dma) in enumerate(trace):
        if i < max_rows:
            dma_str = f"+{dma} dma" if dma else ""
            rows.append((f"{offset:6d}", op, slots, dma_str))
        offset += slots
    if len(trace) > max_rows:
        rows.append(("...", f"({len(trace) - max_rows} more ops)", "", ""))
    total_dma = sum(d for _, _, d in trace)
    rows.append(("total", f"{len(trace)} ops", offset,
                 f"+{total_dma} dma" if total_dma else ""))
    header = (f"kernel listing: {method.describe()} at x={x!r}\n")
    return header + format_table(["slot", "op", "cost", "dma"], rows)
