"""The CORDIC-vs-LUT amortization crossover (Section 4.2.2, Key Takeaway 2).

CORDIC's setup is flat (a tiny angle table) while L-LUT's grows with the
table; L-LUT is far faster per element.  The break-even element count is

    n* = (setup_LLUT - setup_CORDIC) * f_PIM / (cycles_CORDIC - cycles_LLUT)

The paper reports ~40 sine operations at RMSE 1e-9; this module recomputes
the same quantity from the measured sweep so the benchmark can report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.sweep import SweepPoint
from repro.pim.config import DPUConfig, UPMEM_DPU

__all__ = ["CrossoverResult", "amortization_crossover"]


@dataclass(frozen=True)
class CrossoverResult:
    """Break-even operation count between two methods at matched accuracy."""

    fast_method: str
    flat_method: str
    rmse_level: float
    cycles_fast: float
    cycles_flat: float
    setup_fast_s: float
    setup_flat_s: float
    elements_to_amortize: float


def _best_at_accuracy(points: Sequence[SweepPoint], method: str,
                      rmse_target: float) -> Optional[SweepPoint]:
    """Cheapest configuration of ``method`` reaching ``rmse_target``."""
    ok = [p for p in points
          if p.method == method and p.placement == "mram"
          and p.rmse <= rmse_target]
    if not ok:
        return None
    return min(ok, key=lambda p: p.cycles_per_element)


def amortization_crossover(
    points: Sequence[SweepPoint],
    rmse_target: float = 3e-8,
    fast_method: str = "llut_i",
    flat_method: str = "cordic",
    dpu: DPUConfig = UPMEM_DPU,
) -> Optional[CrossoverResult]:
    """Compute the element count at which the LUT's setup pays for itself."""
    fast = _best_at_accuracy(points, fast_method, rmse_target)
    flat = _best_at_accuracy(points, flat_method, rmse_target)
    if fast is None or flat is None:
        return None
    cycle_gap = flat.cycles_per_element - fast.cycles_per_element
    setup_gap = fast.setup_seconds - flat.setup_seconds
    if cycle_gap <= 0:
        return None
    elements = max(0.0, setup_gap) * dpu.frequency_hz / cycle_gap
    return CrossoverResult(
        fast_method=fast_method,
        flat_method=flat_method,
        rmse_level=rmse_target,
        cycles_fast=fast.cycles_per_element,
        cycles_flat=flat.cycles_per_element,
        setup_fast_s=fast.setup_seconds,
        setup_flat_s=flat.setup_seconds,
        elements_to_amortize=elements,
    )
