"""Batched traced execution: one scalar trace per distinct cost path.

Every kernel in this library is *data-oblivious up to branch direction*: its
instruction tally depends only on which traced branches fire, never on the
arithmetic values flowing through them (each ISA op charges a fixed slot
cost).  A method that can name the branch set an input takes — via
``Method.classify_paths`` — therefore only needs ONE scalar trace per
distinct path; every other element on that path charges the bit-identical
tally.  The aggregate over an array is the exact integer sum

    total = sum over paths of (path_tally * path_count)

with no sampling and no floating-point scaling, and the per-element slots
array falls out of the same classification for free.

When a method (or a custom kernel) cannot classify, :func:`batch_tally`
falls back to an element-by-element scalar loop that reuses a single
:class:`~repro.isa.CycleCounter` — same results, no speedup.  The
differential harness in ``tests/batch/`` asserts bit-equality of the two
paths for every registered (function, method) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.isa.counter import CycleCounter, Tally
from repro.obs import metrics as _metrics

__all__ = [
    "CostPath",
    "BatchResult",
    "scale_tally_int",
    "enumerate_paths",
    "batch_tally",
    "tally_from_keys",
    "scalar_tally",
]

_F32 = np.float32


@dataclass(frozen=True)
class CostPath:
    """One distinct traced control-flow path through a method."""

    key: int                 # opaque classification key
    representative: float    # one input that takes this path
    count: int               # elements of the batch on this path
    tally: Tally             # traced tally of the representative


@dataclass
class BatchResult:
    """Aggregate traced cost of a method over an input array."""

    n: int                   # number of elements
    tally: Tally             # exact aggregate (integer fields)
    slots: np.ndarray        # per-element instruction slots (int64)
    paths: List[CostPath]    # distinct paths, by first occurrence
    batched: bool            # False when the scalar fallback ran


def scale_tally_int(tally: Tally, count: int) -> Tally:
    """``tally`` replicated ``count`` times — exact integer scaling."""
    scaled = Tally(
        slots=tally.slots * count,
        dma_transactions=tally.dma_transactions * count,
        dma_bytes=tally.dma_bytes * count,
        dma_latency=tally.dma_latency * count,
    )
    scaled.counts = {name: n * count for name, n in tally.counts.items()}
    return scaled


def enumerate_paths(method, xs: np.ndarray,
                    keys: np.ndarray) -> List[CostPath]:
    """Trace one representative per distinct key; return the path list."""
    uniq, first, counts = np.unique(keys, return_index=True,
                                    return_counts=True)
    ctx = CycleCounter(method.costs)
    paths = []
    for key, idx, count in zip(uniq, first, counts):
        rep = float(xs[idx])
        method.evaluate(ctx, rep)
        paths.append(CostPath(key=int(key), representative=rep,
                              count=int(count), tally=ctx.reset()))
    return paths


def scalar_tally(method, xs: np.ndarray) -> BatchResult:
    """Element-by-element traced fallback (one reused CycleCounter)."""
    ctx = CycleCounter(method.costs)
    total = Tally()
    slots = np.empty(xs.size, dtype=np.int64)
    for i, x in enumerate(xs):
        method.evaluate(ctx, float(x))
        tally = ctx.reset()
        slots[i] = tally.slots
        total.add(tally)
    _metrics.inc("batch.scalar_fallbacks")
    _metrics.inc("batch.elements", int(xs.size))
    return BatchResult(n=int(xs.size), tally=total, slots=slots,
                       paths=[], batched=False)


def batch_tally(method, xs: np.ndarray, batch: bool = True,
                tally_cache: Optional[Dict[int, Tally]] = None) -> BatchResult:
    """Exact aggregate tally of ``method.evaluate`` over ``xs``.

    Classifies the array into cost paths, scalar-traces one representative
    per path, and sums ``path_tally * path_count`` — bit-identical to
    tracing every element, at a cost proportional to the number of distinct
    paths (typically < 10) instead of the array length.  ``batch=False``
    (or an unclassifiable method) runs the scalar loop instead.

    ``tally_cache`` maps path key -> traced Tally across calls (an
    :class:`~repro.plan.plan.ExecutionPlan` owns one per compiled method):
    equal key implies a bit-identical tally — the invariant the batch
    differential harness enforces — so cache hits skip scalar tracing
    entirely without changing any reported number.
    """
    xs = np.asarray(xs, dtype=_F32).ravel()
    if xs.size == 0:
        # An empty batch is a valid boundary case (sharded dispatch splits,
        # coalesced serving batches): zero elements, zero cost, no paths.
        return BatchResult(n=0, tally=Tally(),
                           slots=np.empty(0, dtype=np.int64),
                           paths=[], batched=True)
    keys: Optional[np.ndarray] = None
    if batch:
        keys = method.classify_paths(xs)
    if keys is None:
        return scalar_tally(method, xs)
    return tally_from_keys(method, xs, keys, tally_cache=tally_cache)


def tally_from_keys(method, xs: np.ndarray, keys: np.ndarray,
                    tally_cache: Optional[Dict[int, Tally]] = None,
                    unique: Optional[tuple] = None) -> BatchResult:
    """The engine's back half: a BatchResult from precomputed path keys.

    Split out of :func:`batch_tally` so the array-compiled evaluator
    (:mod:`repro.batch.vec`) aggregates its fused keys through the exact
    same code path — bit-identity with the traced engine by construction.
    ``unique`` optionally carries a precomputed
    ``np.unique(keys, return_index/inverse/counts)`` tuple so memoized
    launches skip the sort as well.
    """
    if unique is None:
        unique = np.unique(keys, return_index=True, return_inverse=True,
                           return_counts=True)
    uniq, first, inverse, counts = unique

    ctx = CycleCounter(method.costs)
    total = Tally()
    paths: List[CostPath] = []
    path_slots = np.empty(uniq.size, dtype=np.int64)
    traced = 0
    for j, (key, count) in enumerate(zip(uniq, counts)):
        rep = float(xs[first[j]])
        tally = None if tally_cache is None else tally_cache.get(int(key))
        if tally is None:
            method.evaluate(ctx, rep)
            tally = ctx.reset()
            traced += 1
            if tally_cache is not None:
                tally_cache[int(key)] = tally
                _metrics.inc("batch.tally_cache.misses")
        else:
            _metrics.inc("batch.tally_cache.hits")
        path_slots[j] = tally.slots
        total.add(scale_tally_int(tally, int(count)))
        paths.append(CostPath(key=int(key), representative=rep,
                              count=int(count), tally=tally))
    if _metrics.active_metrics() is not None:
        # Per-path cycle attribution: hit counts and the exact
        # path_tally x path_count slot products the aggregate is built of.
        _metrics.inc("batch.calls")
        _metrics.inc("batch.elements", int(xs.size))
        _metrics.inc("batch.paths_traced", traced)
        for p in paths:
            _metrics.inc(f"batch.path[{p.key}].count", p.count)
            _metrics.inc(f"batch.path[{p.key}].slots",
                         p.tally.slots * p.count)
    return BatchResult(n=int(xs.size), tally=total,
                       slots=path_slots[inverse], paths=paths, batched=True)
