"""Array-compiled plan bodies: fused value + cost-path evaluation.

The traced batch engine (:mod:`repro.batch.engine`) already collapses cost
aggregation to one scalar trace per distinct path, but a plan execution
still walks the input twice on the array side: once through
``Method.evaluate_vec`` for values and once through
``Method.classify_paths`` for path keys — and both walks repeat the
reducer's range reduction.  A :class:`VecEvaluator` compiles one
structure-of-arrays pass per ``(method, params)`` at plan-compile time:

* **one** range reduction feeds both the value kernel and the path key
  (``Method.classify_paths`` and ``Method.evaluate_vec`` each run their
  own otherwise);
* method families with heavy shared intermediates get *fused* core
  kernels — circular CORDIC computes the rotation values and the
  direction count in a single recurrence
  (:meth:`~repro.core.cordic.circular.CordicCircular._rotate_full_vec`),
  the L-LUT variants share the magic-add/bit-view address generation
  between lookup and clamp-zone classification;
* the ``(values, keys, unique)`` triple is memoized by input digest.
  All three are *placement-independent* (placement only affects traced
  load costs), so a plan pool re-executing one batch across WRAM/MRAM
  placements or repeated launches pays the array passes once and only
  re-derives the handful of per-path tallies.

Everything here is bit-identical to the unfused paths by construction:
values replicate ``evaluate_vec`` expression for expression, keys
replicate ``classify_paths``, and the aggregation is *the same code* —
:func:`~repro.batch.engine.tally_from_keys`.  The differential harness in
``tests/batch/test_vec_differential.py`` asserts equality over the full
``METHOD_SUPPORT`` matrix.

Fallback order is ``vec -> traced-batch -> scalar``: when a method
abstains from classification (:func:`VecEvaluator.run` returns ``None``),
:func:`vec_run` falls back to ``evaluate_vec`` + :func:`batch_tally`,
which itself falls back to the scalar loop for unclassifiable kernels.

Evaluators ship with plans to worker pools, so this module is written
closure-free: dispatch is by a plain mode string over instance methods,
and pickling drops the memo (``__getstate__``) — workers rebuild their
own locality.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.batch.engine import BatchResult, batch_tally, tally_from_keys
from repro.batch.keys import (
    clamp_zone,
    ffloor_index_vec,
    fround_index_vec,
    pack_fields,
    raw_index_clip,
    wrap32_vec,
)
from repro.core.cordic import circular as _cordic
from repro.core.ldexp import ldexpf_vec
from repro.core.lut.dlut import DLUT, DLUTInterpolated
from repro.core.lut.llut import (
    LLUT,
    LLUTFixed,
    LLUTInterpolated,
    LLUTInterpolatedFixed,
)
from repro.core.lut.mlut import MLUT, MLUTInterpolated
from repro.isa.counter import Tally
from repro.obs import metrics as _metrics

__all__ = ["VecResult", "VecEvaluator", "compile_vec", "vec_run"]

_F32 = np.float32
_MASK22 = (1 << 22) - 1


@dataclass
class VecResult:
    """One fused array evaluation: values plus the exact traced aggregate."""

    values: np.ndarray       # evaluate_vec-identical outputs
    batch: BatchResult       # batch_tally-identical cost aggregate


def _mode_for(method) -> str:
    """Pick the fused core kernel for a method.

    Exact-type checks on purpose: hybrids and composites may *subclass*
    or wrap these families with different core semantics, and the generic
    composition (``core_path_vec`` + ``core_eval_vec`` over one shared
    reduction) is always correct for them.
    """
    t = type(method)
    if t is _cordic.CordicCircular:
        return "cordic"
    if t is LLUT:
        return "llut"
    if t is LLUTInterpolated:
        return "llut_i"
    if t is LLUTFixed:
        return "llut_fx"
    if t is LLUTInterpolatedFixed:
        return "llut_i_fx"
    if t is DLUT:
        return "dlut"
    if t is DLUTInterpolated:
        return "dlut_i"
    if t is MLUT:
        return "mlut"
    if t is MLUTInterpolated:
        return "mlut_i"
    return "generic"


class VecEvaluator:
    """A compiled structure-of-arrays evaluator for one built method.

    ``run`` returns values bit-identical to ``method.evaluate_vec`` and a
    :class:`~repro.batch.engine.BatchResult` bit-identical to
    :func:`~repro.batch.engine.batch_tally`, or ``None`` when the method
    abstains from path classification (callers fall back to the traced
    engine).  The per-digest memo caches the placement-independent
    ``(values, keys, unique)`` triple; per-path tallies always go through
    the caller's ``tally_cache`` so placement-specific costs stay exact.
    """

    #: Bound on memoized path tallies per placement — far above any real
    #: path population (keys carry a handful of zone/flag bits), present
    #: only so a pathological key space cannot grow without limit.
    TALLY_MEMO_CAP = 4096

    def __init__(self, method, memo_size: int = 8):
        self.method = method
        self.mode = _mode_for(method)
        self.memo_size = int(memo_size)
        self._memo: OrderedDict = OrderedDict()
        #: placement -> {path key -> Tally}.  Tallies depend on the
        #: method *and* its placement (traced load costs), nothing else —
        #: so the evaluator can re-seed a brand-new plan's cold
        #: ``tally_cache`` with paths it already traced for that
        #: placement, and a cache-cold launch of a repeated input skips
        #: re-tracing entirely.
        self._tally_memo: Dict[object, Dict[int, Tally]] = {}
        _metrics.inc("batch.vec.compiles")

    # ------------------------------------------------------------------
    # pool shipping: the memo is pure locality, never semantics — drop it
    # so pickled plans stay small and workers build their own.

    def __getstate__(self):
        return {"method": self.method, "mode": self.mode,
                "memo_size": self.memo_size}

    def __setstate__(self, state):
        self.method = state["method"]
        self.mode = state["mode"]
        self.memo_size = state["memo_size"]
        self._memo = OrderedDict()
        self._tally_memo = {}

    # ------------------------------------------------------------------

    def run(self, xs: np.ndarray,
            tally_cache: Optional[Dict[int, Tally]] = None
            ) -> Optional[VecResult]:
        """Fused evaluation of ``xs``; ``None`` means fall back."""
        m = self.method
        m._require_ready()
        xs = np.asarray(xs, dtype=_F32).ravel()
        if xs.size == 0:
            return VecResult(
                values=np.empty(0, dtype=_F32),
                batch=BatchResult(n=0, tally=Tally(),
                                  slots=np.empty(0, dtype=np.int64),
                                  paths=[], batched=True))
        entry = self._entry(xs)
        if entry is None:
            # Memoized abstain: repeated unclassifiable batches skip the
            # array passes and go straight to the fallback chain.
            return None
        values, keys, unique = entry
        memo = self._tally_memo.setdefault(m.placement, {})
        ukeys = [int(k) for k in unique[0]]
        known = [k for k in ukeys if k in memo]
        external = tally_cache is not None
        if not external:
            # Cache-cold launch (no plan cache attached): serve and
            # extend the memo directly — repeated inputs never re-trace.
            tally_cache = memo
        else:
            for k in known:
                if k not in tally_cache:
                    tally_cache[k] = memo[k]
        if known:
            _metrics.inc("batch.vec.tally_memo.hits", len(known))
        batch = tally_from_keys(m, xs, keys, tally_cache=tally_cache,
                                unique=unique)
        if external:
            stored = 0
            for k in ukeys:
                if k not in memo and k in tally_cache:
                    if len(memo) >= self.TALLY_MEMO_CAP:
                        break
                    memo[k] = tally_cache[k]
                    stored += 1
        else:
            stored = len(ukeys) - len(known)
        if stored:
            _metrics.inc("batch.vec.tally_memo.stores", stored)
        _metrics.inc("batch.vec.runs")
        return VecResult(values=values, batch=batch)

    def values(self, xs: np.ndarray) -> Optional[np.ndarray]:
        """Just the fused values (no cost aggregation), or None (abstain).

        The value side of the memoized triple — accuracy sweeps re-reading
        the same inputs pay no array pass and no path tracing.  May return
        a read-only view of the memoized array.
        """
        self.method._require_ready()
        xs = np.asarray(xs, dtype=_F32).ravel()
        if xs.size == 0:
            return np.empty(0, dtype=_F32)
        entry = self._entry(xs)
        return None if entry is None else entry[0]

    def _entry(self, xs: np.ndarray) -> Optional[tuple]:
        """Digest-memoized (values, keys, unique); None means abstain.

        sha256 over the raw float32 buffer: typically hardware-accelerated,
        it halves the steady-state cost of a memo hit vs blake2b — the
        digest *is* the warm path, so its speed is the evaluator's speed.
        """
        digest = hashlib.sha256(np.ascontiguousarray(xs)).digest()
        if digest in self._memo:
            entry = self._memo[digest]
            self._memo.move_to_end(digest)
            _metrics.inc("batch.vec.memo.hits")
        else:
            _metrics.inc("batch.vec.memo.misses")
            entry = self._compute(xs)
            self._memo[digest] = entry
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return entry

    def _compute(self, xs: np.ndarray) -> Optional[tuple]:
        """One full fused pass: (values, keys, unique) or None (abstain)."""
        m = self.method
        rkey = m.reducer.path_key_vec(xs)
        if rkey is None:
            return None
        # ONE range reduction for both sides — classify_paths and
        # evaluate_vec each run their own when called separately.
        u, state = m.reducer.reduce_vec(xs)
        core = self._core_fused(u)
        if core is None:
            return None
        yc, ckey = core
        values = m.reducer.reconstruct_vec(yc, state)
        keys = (np.asarray(rkey, dtype=np.int64) << m.CORE_KEY_BITS) | \
            np.asarray(ckey, dtype=np.int64)
        unique = np.unique(keys, return_index=True, return_inverse=True,
                           return_counts=True)
        values = np.asarray(values)
        values.flags.writeable = False   # memoized: guard cache integrity
        keys.flags.writeable = False
        return values, keys, unique

    # ------------------------------------------------------------------
    # fused core kernels (mode dispatch; no closures — plans pickle)

    def _core_fused(self, u: np.ndarray) -> Optional[Tuple[np.ndarray,
                                                           np.ndarray]]:
        """(core values, core path keys) for reduced inputs, or None."""
        mode = self.mode
        if mode == "cordic":
            return self._core_cordic(u)
        if mode == "llut":
            return self._core_llut(u)
        if mode == "llut_i":
            return self._core_llut_i(u)
        if mode == "llut_fx":
            return self._core_llut_fx(u)
        if mode == "llut_i_fx":
            return self._core_llut_i_fx(u)
        if mode == "dlut":
            return self._core_dlut(u)
        if mode == "dlut_i":
            return self._core_dlut_i(u)
        if mode == "mlut":
            return self._core_mlut(u)
        if mode == "mlut_i":
            return self._core_mlut_i(u)
        return self._core_generic(u)

    def _core_generic(self, u: np.ndarray):
        """Composition fallback: correct for every method that classifies.

        Still saves one full range reduction over calling classify_paths
        and evaluate_vec separately; the core passes are unfused.
        """
        m = self.method
        ckey = m.core_path_vec(u)
        if ckey is None:
            return None
        return m.core_eval_vec(u), np.asarray(ckey, dtype=np.int64)

    def _core_cordic(self, u: np.ndarray):
        """Circular CORDIC: values and direction count in one recurrence.

        Value side replicates ``_split_quadrant_vec`` + ``_rotate_vec``
        exactly; key side replicates ``core_path_vec``.  They share the
        scaled conversion, and — the expensive part — the z recurrence:
        for every lane where the exact raw word and the wrapped key word
        agree (all finite lanes below the 2^35 abstain bound, since the
        32-bit wrap preserves bits 0..31 and quad/z only read bits 0..29),
        the direction count from the fused rotation IS the key count.
        Non-finite lanes (key word forced to 0, value word left to the
        cast like the scalar trace) get their count patched from the
        key-side z alone.
        """
        m = self.method
        frac = _cordic._FRAC
        two_over_pi = np.int64(_cordic._TWO_OVER_PI_RAW)
        mask = np.int64(_cordic._FRAC_MASK)
        u = np.asarray(u, dtype=_F32)
        scaled = u.astype(np.float64) * (1 << frac)
        finite = np.isfinite(scaled)
        a_f = np.where(finite, np.round(scaled), 0.0)
        if bool(np.any(np.abs(a_f) >= 2.0 ** 35)):
            return None   # scalar fx_mul would overflow: abstain like core_path_vec
        # Value side — _split_quadrant_vec expression for expression.
        a_v = np.round(scaled).astype(np.int64)
        q_v = (a_v * two_over_pi) >> np.int64(frac)
        quad_v = (q_v >> np.int64(frac)) & np.int64(3)
        z_v = q_v & mask
        c, s, n = m._rotate_full_vec(z_v)
        name = m.spec.name
        if name == "sin":
            choices = [s, c, (-s).astype(_F32), (-c).astype(_F32)]
            yc = np.select([quad_v == 0, quad_v == 1,
                            quad_v == 2, quad_v == 3], choices)
        elif name == "cos":
            choices = [c, (-s).astype(_F32), (-c).astype(_F32), s]
            yc = np.select([quad_v == 0, quad_v == 1,
                            quad_v == 2, quad_v == 3], choices)
        else:  # tan
            even = (s / c).astype(_F32)
            odd = ((-c).astype(_F32) / s).astype(_F32)
            yc = np.where(quad_v & 1 == 0, even, odd).astype(_F32)
        # Key side — core_path_vec expression for expression.
        a_k = a_f.astype(np.int64)
        q_k = wrap32_vec((a_k * two_over_pi) >> np.int64(frac))
        quad_k = (q_k >> np.int64(frac)) & np.int64(3)
        z_k = q_k & mask
        n_key = n
        if not bool(np.all(finite)):
            n_key = n.copy()
            bad = ~finite
            n_key[bad] = m._rotate_pos_vec(z_k[bad])
        if name == "tan":
            parity = (quad_k & 1).astype(np.int64)
        else:
            parity = np.zeros(u.shape, dtype=np.int64)
        return yc, pack_fields([(parity, 1), (n_key, 16)])

    def _core_llut(self, u: np.ndarray):
        """Non-interpolated float L-LUT: one address generation, shared."""
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits0 = t.view(np.int32).astype(np.int64)   # signed view
            b_lo = bits0 < g.lo_bits
            b_hi = (~b_lo) & (bits0 >= g.hi_bits)
            idx = np.clip(bits0, g.lo_bits, g.hi_bits - 1) & _MASK22
            key = pack_fields([
                (b_lo, 1), (b_hi, 1),
                (clamp_zone(idx, m.entries - 1), 2),
            ])
            yc = m._table[np.clip(idx, 0, m.entries - 1)]
            return yc, key
        v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
        w = ldexpf_vec(v, g.n)
        idx = np.floor(w.astype(np.float64) + 0.5).astype(np.int64)
        yc = m._table[np.clip(idx, 0, m.entries - 1)]
        return yc, clamp_zone(fround_index_vec(w), m.entries - 1)

    def _core_llut_i(self, u: np.ndarray):
        """Interpolated float L-LUT: address + weight shared end to end."""
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        if g.magic_ok:
            t = (u + g.c).astype(_F32)
            bits0 = t.view(np.int32).astype(np.int64)   # signed view
            b_lo = bits0 < g.lo_bits
            b_hi = (~b_lo) & (bits0 >= g.hi_bits)
            bits = np.clip(bits0, g.lo_bits, g.hi_bits - 1)
            t = bits.astype(np.uint32).view(_F32)
            uu = np.where(b_lo, _F32(g.p), u)
            idx = bits & _MASK22
            grid = (t - g.c).astype(_F32)
            d = (uu - grid).astype(_F32)
            delta = ldexpf_vec(d, g.n)
            neg = delta < 0            # fcmp(delta, 0) < 0: NaN is not-neg
            idx = idx - neg
            delta = np.where(neg, (delta + _F32(1.0)).astype(_F32), delta)
            gt1 = delta > _F32(1.0)    # fcmp(delta, 1) > 0: NaN is not-gt
            key = pack_fields([
                (b_lo, 1), (b_hi, 1), (neg, 1), (gt1, 1),
                (clamp_zone(idx, m.entries - 2), 2),
            ])
            delta = np.minimum(delta, _F32(1.0))
        else:
            v = u if g.p == 0 else (u - _F32(g.p)).astype(_F32)
            w = ldexpf_vec(v, g.n)
            idx = np.floor(w).astype(np.int64)
            delta = (w - idx.astype(_F32)).astype(_F32)
            key = clamp_zone(ffloor_index_vec(w), m.entries - 2)
        idx = np.clip(idx, 0, m.entries - 2)
        l0 = m._table[idx]
        l1 = m._table[idx + 1]
        yc = (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)
        return yc, key

    def _core_dlut(self, u: np.ndarray):
        """Non-interpolated D-LUT: the bit pattern *is* the address.

        One bitcast + shift + subtract feeds both the table gather and
        the clamp-zone key — the generic composition runs that address
        generation twice (once in ``core_eval_vec``, once in
        ``core_path_vec``).
        """
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        yc = m._table[np.clip(idx, 0, g.cells - 1)]
        return yc, clamp_zone(idx, g.cells - 1)

    def _core_dlut_i(self, u: np.ndarray):
        """Interpolated D-LUT: shared address and low-mantissa weight.

        The interpolation weight comes straight from the low mantissa
        bits of the one shared bitcast; the key is the clamp zone of the
        *unclipped* index, exactly as ``core_path_vec`` computes it.
        """
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        bits = u.view(np.uint32).astype(np.int64)
        idx = (bits >> g.shift) - g.offset
        low = (bits & ((1 << g.shift) - 1)).astype(_F32)
        delta = ldexpf_vec(low, -g.shift)
        key = clamp_zone(idx, g.cells)
        idx = np.clip(idx, 0, g.cells)
        l0 = m._table[idx]
        l1 = m._table[idx + 1]
        yc = (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)
        return yc, key

    def _core_mlut(self, u: np.ndarray):
        """Non-interpolated M-LUT: one scaled address, shared both ways.

        The subtract + multiply that turns a reduced input into a table
        coordinate is the whole address generation — the generic
        composition runs it twice (once in ``core_eval_vec``, once in
        ``core_path_vec``).
        """
        m = self.method
        u = np.asarray(u, dtype=_F32)
        v = u if m.p == 0 else (u - m.p).astype(_F32)
        v = (v * m.k).astype(_F32)
        idx = np.floor(v.astype(np.float64) + 0.5).astype(np.int64)
        yc = m._table[np.clip(idx, 0, m.entries - 1)]
        return yc, clamp_zone(fround_index_vec(v), m.entries - 1)

    def _core_mlut_i(self, u: np.ndarray):
        """Interpolated M-LUT: shared scaled address and floor weight."""
        m = self.method
        u = np.asarray(u, dtype=_F32)
        v = u if m.p == 0 else (u - m.p).astype(_F32)
        v = (v * m.k).astype(_F32)
        idx = np.clip(np.floor(v).astype(np.int64), 0, m.entries - 2)
        delta = (v - idx.astype(_F32)).astype(_F32)
        l0 = m._table[idx]
        l1 = m._table[idx + 1]
        yc = (l0 + ((l1 - l0).astype(_F32) * delta).astype(_F32)).astype(_F32)
        return yc, clamp_zone(ffloor_index_vec(v), m.entries - 2)

    def _core_llut_fx(self, u: np.ndarray):
        """Fixed-point L-LUT: one exact scaled conversion feeds both sides."""
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        scaled = u.astype(np.float64) * g.fmt.scale
        rounded = np.round(scaled)
        # Value side: the raw cast exactly as core_eval_vec performs it.
        a_v = rounded.astype(np.int64)
        yc = (m.core_eval_raw_vec(a_v) / g.fmt.scale).astype(_F32)
        # Key side: f2fx_exact semantics (non-finite -> 0, huge flagged).
        a_f = np.where(np.isfinite(scaled), rounded, 0.0)
        a_k, huge_pos, huge_neg = raw_index_clip(a_f)
        r = a_k - g.p_raw
        if g.shift == 0:
            idx = r
        else:
            idx = (r >> g.shift) + ((r >> (g.shift - 1)) & 1)
        zone = clamp_zone(idx, m.entries - 1)
        zone = np.where(huge_neg, np.int64(1), zone)
        zone = np.where(huge_pos, np.int64(2), zone)
        return yc, zone

    def _core_llut_i_fx(self, u: np.ndarray):
        """Interpolated fixed-point L-LUT: shared conversion, fused zones."""
        m = self.method
        g = m.geom
        u = np.asarray(u, dtype=_F32)
        scaled = u.astype(np.float64) * g.fmt.scale
        rounded = np.round(scaled)
        a_v = rounded.astype(np.int64)
        yc = (m.core_eval_raw_vec(a_v) / g.fmt.scale).astype(_F32)
        a_f = np.where(np.isfinite(scaled), rounded, 0.0)
        a_k, huge_pos, huge_neg = raw_index_clip(a_f)
        idx = (a_k - g.p_raw) >> g.shift
        zone = clamp_zone(idx, m.entries - 2)
        zone = np.where(huge_neg, np.int64(1), zone)
        zone = np.where(huge_pos, np.int64(2), zone)
        return yc, zone


def compile_vec(method, memo_size: int = 8) -> VecEvaluator:
    """Compile a fused array evaluator for a built method."""
    return VecEvaluator(method, memo_size=memo_size)


def vec_run(method, xs: np.ndarray, batch: bool = True,
            tally_cache: Optional[Dict[int, Tally]] = None,
            evaluator: Optional[VecEvaluator] = None
            ) -> Tuple[np.ndarray, BatchResult]:
    """Values + exact cost aggregate with the full fallback chain.

    ``vec -> traced-batch -> scalar``: the compiled evaluator when it
    classifies, :func:`batch_tally` (which itself falls back to the
    scalar loop) plus a plain ``evaluate_vec`` otherwise.  Every tier
    returns bit-identical numbers; only the wall-clock differs.
    """
    xs = np.asarray(xs, dtype=_F32).ravel()
    if batch:
        if evaluator is None:
            evaluator = VecEvaluator(method)
        result = evaluator.run(xs, tally_cache=tally_cache)
        if result is not None:
            return result.values, result.batch
        _metrics.inc("batch.vec.fallbacks")
    values = method.evaluate_vec(xs)
    return values, batch_tally(method, xs, batch=batch,
                               tally_cache=tally_cache)
