"""Batched traced-execution engine (see :mod:`repro.batch.engine`) and
the array-compiled fused evaluators layered on it (:mod:`repro.batch.vec`)."""

from repro.batch.engine import (
    BatchResult,
    CostPath,
    batch_tally,
    enumerate_paths,
    scalar_tally,
    scale_tally_int,
    tally_from_keys,
)
from repro.batch.vec import VecEvaluator, VecResult, compile_vec, vec_run

__all__ = [
    "BatchResult",
    "CostPath",
    "VecEvaluator",
    "VecResult",
    "batch_tally",
    "compile_vec",
    "enumerate_paths",
    "scalar_tally",
    "scale_tally_int",
    "tally_from_keys",
    "vec_run",
]
