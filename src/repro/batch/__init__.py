"""Batched traced-execution engine (see :mod:`repro.batch.engine`)."""

from repro.batch.engine import (
    BatchResult,
    CostPath,
    batch_tally,
    enumerate_paths,
    scalar_tally,
    scale_tally_int,
)

__all__ = [
    "BatchResult",
    "CostPath",
    "batch_tally",
    "enumerate_paths",
    "scalar_tally",
    "scale_tally_int",
]
