"""Vectorized helpers shared by the per-method cost-path classifiers.

A classifier replicates the *control flow* of a traced scalar kernel over a
whole numpy array: it computes, for every element, which branches the scalar
trace would take, and packs those branch bits into one int64 key.  The value
computations are the same float32/integer semantics as the traced kernels,
so the helpers here mirror the :class:`~repro.isa.CycleCounter` conventions
exactly — including the awkward corners:

* ``ffloor``/``fround``/``f2fx`` map non-finite inputs to 0;
* a traced ``fcmp(a, b) >= 0`` is *not* ``a >= b`` on NaN: the three-way
  compare returns 0, so the scalar branch tests ``not (a < b)``;
* integer index arithmetic is done in float64 where the quantities are
  exact (any float32 scaled by a power of two), avoiding int64 overflow on
  extreme inputs.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

__all__ = [
    "pack_fields",
    "clamp_zone",
    "fround_index_vec",
    "ffloor_index_vec",
    "f2fx_exact_vec",
    "wrap32_vec",
    "raw_index_clip",
]

_F32 = np.float32

#: Magnitude bound below which float64 holds the scaled integers exactly.
_EXACT_F64 = 2.0 ** 53


def pack_fields(fields: Sequence[Tuple[Union[np.ndarray, int], int]]) -> np.ndarray:
    """Pack (value, width_bits) fields into one int64 key, first field
    highest.  Values must be non-negative and fit their declared width."""
    key = None
    for value, width in fields:
        v = np.asarray(value).astype(np.int64)
        key = v if key is None else (key << np.int64(width)) | v
    assert key is not None
    return key


def clamp_zone(idx: np.ndarray, hi: Union[int, np.ndarray]) -> np.ndarray:
    """Cost zone of ``FuzzyLUT._clamp_index``: 0 in-range, 1 below, 2 above.

    The three zones charge different tallies (below: one compare + branch;
    in-range: two compares; above: two compares + branch).
    """
    idx = np.asarray(idx)
    return np.where(idx < 0, 1, np.where(idx > hi, 2, 0)).astype(np.int64)


def fround_index_vec(v: np.ndarray) -> np.ndarray:
    """Twin of ``CycleCounter.fround`` kept in float64 (exact as an index).

    Rounds half away from zero; non-finite inputs map to 0.  The result is
    an integral float64, exact for any float32 input, so zone comparisons
    against table bounds never overflow.
    """
    v64 = np.asarray(v, dtype=_F32).astype(np.float64)
    out = np.where(v64 >= 0, np.floor(v64 + 0.5), np.ceil(v64 - 0.5))
    return np.where(np.isfinite(v64), out, 0.0)


def ffloor_index_vec(v: np.ndarray) -> np.ndarray:
    """Twin of ``CycleCounter.ffloor`` kept in float64 (exact as an index)."""
    v64 = np.asarray(v, dtype=_F32).astype(np.float64)
    return np.where(np.isfinite(v64), np.floor(v64), 0.0)


def f2fx_exact_vec(v: np.ndarray, frac_bits: int) -> np.ndarray:
    """Twin of ``CycleCounter.f2fx`` kept in float64.

    Scaling a float32 by ``2**frac_bits`` only shifts its exponent, so the
    float64 product — and therefore the rounded raw word — is exact for the
    whole float32 range (up to ~9e46 for s3.28, far below float64's 1e308).
    """
    scaled = np.asarray(v, dtype=_F32).astype(np.float64) * (1 << frac_bits)
    return np.where(np.isfinite(scaled), np.round(scaled), 0.0)


def wrap32_vec(raw: np.ndarray) -> np.ndarray:
    """Two's-complement wrap of int64 words at 32 bits (``QFormat.wrap``)."""
    raw = np.asarray(raw, dtype=np.int64)
    return ((raw + (1 << 31)) & ((1 << 32) - 1)) - (1 << 31)


def raw_index_clip(a_f: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split an exact float64 raw word into (int64 word, huge_pos, huge_neg).

    Words beyond +-2^53 cannot be cast to int64 exactly; they are clipped
    and flagged so callers can force the corresponding clamp zone (any such
    word is far outside every table this library builds).
    """
    huge_pos = a_f >= _EXACT_F64
    huge_neg = a_f <= -_EXACT_F64
    a_i = np.clip(a_f, -_EXACT_F64, _EXACT_F64).astype(np.int64)
    return a_i, huge_pos, huge_neg
