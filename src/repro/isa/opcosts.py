"""Per-operation instruction-slot costs for a UPMEM-like PIM core.

The UPMEM DPU natively executes 32-bit integer add/subtract, shifts, logic,
and compares in a single pipeline pass.  Everything else is emulated by the
runtime library as a multi-instruction sequence: 32-bit integer multiply and
divide are built from 8-bit ``mul_step`` instructions, and *all* floating-point
arithmetic is software (softfloat).  The costs below express each operation as
an equivalent number of pipeline instruction slots; at pipeline saturation
(>= 11 resident tasklets) one slot is one cycle, so these are also the cycle
counts behind the paper's Figure 5 methodology.

Calibration.  The defaults are fitted to the published UPMEM characterization
(PrIM, Gomez-Luna et al. 2021) and to the cycle counts TransPimLib reports:

* native integer ALU ops: 1 slot;
* emulated 32x32->32 multiply: ~32 slots; 32x32->64 (needed by s3.28
  fixed-point multiplies): ~76 slots;
* softfloat add ~100, multiply ~400, divide ~700 slots (PrIM reports ~0.9
  MOPS for fp32 multiply on a saturated 350 MHz DPU, i.e. ~400 cycles) -- the
  ~4x multiply-to-add ratio is what makes removing the float multiply (L-LUT
  vs M-LUT) such a large win;
* float<->fixed conversions ~90 slots each (normalize/align sequences), which
  is why the paper's fixed-point non-interpolated L-LUT does *not* beat its
  float counterpart (neither multiplies; the fixed version pays conversions);
* TransPimLib's bit-manipulation ``ldexp`` ~12 slots, the key to L-LUT's
  multiply-free address generation.

Absolute values matter less than the ordering; the ablation benchmarks vary
them to show which of the paper's conclusions are robust to miscalibration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["OpCosts", "UPMEM_COSTS", "IDEALIZED_COSTS", "OP_CATEGORY"]

#: Contract categories for the paper's Table 1 op budgets.  Maps counted-op
#: names (the keys of :attr:`repro.isa.counter.Tally.counts`) to the budget
#: category they charge in :mod:`repro.core.functions.budgets`; ops absent
#: here (adds, shifts, compares, conversions, branches) are uncontracted —
#: the paper's claims are about multiplies, divides, ldexp and table loads.
OP_CATEGORY = {
    "fmul": "fp_mul",
    "fdiv": "fp_div",
    "imul": "int_mul",
    "imul64": "int_mul",
    "idiv": "int_div",
    "idiv64": "int_div",
    "ldexp": "ldexp",
    "wram_read": "loads",
    "mram_read": "loads",
}


@dataclass(frozen=True)
class OpCosts:
    """Instruction-slot costs for each operation class of the PIM ISA.

    Instances are immutable; derive variants with :meth:`replace`.
    """

    # Native integer / register operations (single instruction).
    int_alu: int = 1           # add, sub, and, or, xor, shifts, compares, moves
    int_mul: int = 32          # emulated 32x32 -> 32 multiply
    int_mul64: int = 76        # emulated 32x32 -> 64 multiply (fixed-point)
    int_div: int = 56          # emulated long division
    int_div64: int = 112       # emulated 64/32-bit division (fixed-point)

    # Software floating point (softfloat sequences).
    fp_add: int = 100          # also subtract
    fp_mul: int = 400
    fp_div: int = 700
    fp_cmp: int = 30
    fp_neg: int = 2            # sign-bit flip
    fp_abs: int = 2            # sign-bit clear

    # Conversions.
    fp_to_int: int = 60        # truncating float32 -> int32
    int_to_fp: int = 60        # int32 -> float32
    fp_floor: int = 150        # floor to integer (convert + fixup)
    fp_round: int = 150        # round-to-nearest to integer
    float_to_fixed: int = 90   # float32 -> s*.* raw word (align by exponent)
    fixed_to_float: int = 90   # s*.* raw word -> float32 (normalize)

    # TransPimLib's software ldexp/frexp (bit manipulation, Section 3.2.2).
    ldexp: int = 12            # exponent-field add + reassembly + range checks
    frexp: int = 10            # exponent/mantissa split

    # Memory.
    wram_access: int = 1       # scratchpad load/store (single instruction)
    mram_dma_setup: int = 8    # issuing a DMA transaction (pipeline slots)
    mram_dma_per_8b: int = 4   # latency per 8-byte beat (hideable by threads)

    # Control flow.
    branch: int = 1

    def replace(self, **changes: int) -> "OpCosts":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def fixed_mul(self) -> int:
        """Cost of an s*.28-style fixed-point multiply: wide mul + shift."""
        return self.int_mul64 + self.int_alu

    @property
    def fixed_add(self) -> int:
        """Cost of a fixed-point add: a native integer add."""
        return self.int_alu


#: Default cost model, calibrated to UPMEM relative costs.
UPMEM_COSTS = OpCosts()

#: An idealized PIM core with hardware FP (for ablation): every op is 1 slot.
IDEALIZED_COSTS = OpCosts(
    int_alu=1, int_mul=1, int_mul64=1, int_div=1, int_div64=1,
    fp_add=1, fp_mul=1, fp_div=1, fp_cmp=1, fp_neg=1, fp_abs=1,
    fp_to_int=1, int_to_fp=1, fp_floor=1, fp_round=1,
    float_to_fixed=1, fixed_to_float=1,
    ldexp=1, frexp=1,
    wram_access=1, mram_dma_setup=1, mram_dma_per_8b=1,
    branch=1,
)
