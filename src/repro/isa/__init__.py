"""Abstract PIM instruction set: operation costs and the counting context."""

from repro.isa.counter import CycleCounter, Tally
from repro.isa.opcosts import IDEALIZED_COSTS, UPMEM_COSTS, OpCosts

__all__ = ["CycleCounter", "Tally", "OpCosts", "UPMEM_COSTS", "IDEALIZED_COSTS"]
