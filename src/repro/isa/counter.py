"""Cycle-counting execution context for PIM-side code.

Every TransPimLib method in this reproduction is written against the small
"PIM ISA" exposed by :class:`CycleCounter`.  Each ISA call does two things:

1. computes the result in exact 32-bit semantics (``np.float32`` for floats,
   Python ints for integer/fixed-point words), and
2. charges the operation's instruction-slot cost from :class:`~repro.isa.opcosts.OpCosts`.

This mirrors how the paper measures: the same kernel that produces the output
values is the one whose hardware cycle counter is read.  The tally separates
*pipeline slots* (which convert to cycles via the tasklet pipeline model in
:mod:`repro.pim.pipeline`) from *DMA latency* (which the fine-grained
multithreaded pipeline can hide when enough tasklets are resident — the
mechanism behind the paper's observation that MRAM-resident LUTs perform like
WRAM-resident ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.isa.opcosts import OpCosts, UPMEM_COSTS

__all__ = ["Tally", "CycleCounter"]

_F32 = np.float32

Float = Union[float, np.float32]


@dataclass
class Tally:
    """Accumulated execution statistics for a counted region."""

    slots: int = 0                 # weighted pipeline instruction slots
    dma_transactions: int = 0      # MRAM DMA transactions issued
    dma_bytes: int = 0             # bytes moved over the MRAM DMA engine
    dma_latency: int = 0           # cycles of (hideable) DMA latency
    counts: Dict[str, int] = field(default_factory=dict)

    def add(self, other: "Tally") -> None:
        """Accumulate another tally into this one."""
        self.slots += other.slots
        self.dma_transactions += other.dma_transactions
        self.dma_bytes += other.dma_bytes
        self.dma_latency += other.dma_latency
        for name, n in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + n

    def count(self, name: str) -> int:
        """Number of times operation ``name`` was executed."""
        return self.counts.get(name, 0)


class CycleCounter:
    """Computes values in 32-bit semantics while charging instruction costs.

    Float operands are coerced to ``np.float32`` on the way in and results are
    ``np.float32``, so rounding matches a 32-bit softfloat implementation.
    Integer operands are plain Python ints; 32-bit wrapping, where needed, is
    the responsibility of the fixed-point layer.
    """

    def __init__(self, costs: OpCosts = UPMEM_COSTS, trace_ops=None):
        self.costs = costs
        self.tally = Tally()
        #: Optional instruction trace: (name, slots, dma_cycles) per op,
        #: consumable by the cycle-accurate simulator (repro.pim.exec).
        self.trace_ops = trace_ops

    # ------------------------------------------------------------------
    # bookkeeping

    def _charge(self, name: str, slots: int, dma_cycles: int = 0) -> None:
        self.tally.slots += slots
        self.tally.counts[name] = self.tally.counts.get(name, 0) + 1
        if self.trace_ops is not None:
            self.trace_ops.append((name, slots, dma_cycles))

    def reset(self) -> Tally:
        """Return the current tally and start a fresh one."""
        done, self.tally = self.tally, Tally()
        return done

    @property
    def slots(self) -> int:
        """Total weighted pipeline slots charged so far."""
        return self.tally.slots

    # ------------------------------------------------------------------
    # native integer ALU

    def iadd(self, a: int, b: int) -> int:
        """Native integer add."""
        self._charge("iadd", self.costs.int_alu)
        return a + b

    def isub(self, a: int, b: int) -> int:
        """Native integer subtract."""
        self._charge("isub", self.costs.int_alu)
        return a - b

    def iand(self, a: int, b: int) -> int:
        """Native bitwise and."""
        self._charge("iand", self.costs.int_alu)
        return a & b

    def ior(self, a: int, b: int) -> int:
        """Native bitwise or."""
        self._charge("ior", self.costs.int_alu)
        return a | b

    def ixor(self, a: int, b: int) -> int:
        """Native bitwise xor."""
        self._charge("ixor", self.costs.int_alu)
        return a ^ b

    def shl(self, a: int, n: int) -> int:
        """Logical left shift."""
        self._charge("shl", self.costs.int_alu)
        return a << n

    def shr(self, a: int, n: int) -> int:
        """Arithmetic right shift (sign-preserving, like the DPU's ``asr``)."""
        self._charge("shr", self.costs.int_alu)
        return a >> n

    def icmp(self, a: int, b: int) -> int:
        """Three-way compare: -1, 0, or 1. One native instruction."""
        self._charge("icmp", self.costs.int_alu)
        return (a > b) - (a < b)

    def imul(self, a: int, b: int) -> int:
        """Emulated 32x32 -> 32 multiply."""
        self._charge("imul", self.costs.int_mul)
        return a * b

    def imul64(self, a: int, b: int) -> int:
        """32x32 -> 64-bit multiply (the emulated wide multiply fixed-point needs)."""
        self._charge("imul64", self.costs.int_mul64)
        return a * b

    def idiv(self, a: int, b: int) -> int:
        """Truncating integer division (C semantics: rounds toward zero)."""
        self._charge("idiv", self.costs.int_div)
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    def idiv64(self, a: int, b: int) -> int:
        """Truncating 64/32-bit division (the wide divide fixed-point needs)."""
        self._charge("idiv64", self.costs.int_div64)
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q

    # ------------------------------------------------------------------
    # software floating point (exact float32 semantics)

    def fadd(self, a: Float, b: Float) -> np.float32:
        """Softfloat add (exact float32 result)."""
        self._charge("fadd", self.costs.fp_add)
        return _F32(_F32(a) + _F32(b))

    def fsub(self, a: Float, b: Float) -> np.float32:
        """Softfloat subtract (exact float32 result)."""
        self._charge("fsub", self.costs.fp_add)
        return _F32(_F32(a) - _F32(b))

    def fmul(self, a: Float, b: Float) -> np.float32:
        """Softfloat multiply (exact float32 result)."""
        self._charge("fmul", self.costs.fp_mul)
        return _F32(_F32(a) * _F32(b))

    def fdiv(self, a: Float, b: Float) -> np.float32:
        """Softfloat divide (exact float32 result)."""
        self._charge("fdiv", self.costs.fp_div)
        return _F32(_F32(a) / _F32(b))

    def fcmp(self, a: Float, b: Float) -> int:
        """Three-way float compare: -1, 0, or 1."""
        self._charge("fcmp", self.costs.fp_cmp)
        fa, fb = _F32(a), _F32(b)
        return int(fa > fb) - int(fa < fb)

    def fneg(self, a: Float) -> np.float32:
        """Sign-bit flip."""
        self._charge("fneg", self.costs.fp_neg)
        return _F32(-_F32(a))

    def fabs(self, a: Float) -> np.float32:
        """Sign-bit clear."""
        self._charge("fabs", self.costs.fp_abs)
        return _F32(abs(_F32(a)))

    # ------------------------------------------------------------------
    # conversions

    def f2i(self, a: Float) -> int:
        """Truncate a float32 toward zero to an integer.

        Non-finite inputs return 0, mirroring the DPU convention of
        garbage-in/defined-word-out rather than trapping.
        """
        self._charge("f2i", self.costs.fp_to_int)
        v = _F32(a)
        if not np.isfinite(v):
            return 0
        return int(v)

    def i2f(self, a: int) -> np.float32:
        """int32 -> float32 conversion."""
        self._charge("i2f", self.costs.int_to_fp)
        return _F32(a)

    def ffloor(self, a: Float) -> int:
        """Floor a float32 to an integer (0 for non-finite inputs)."""
        self._charge("ffloor", self.costs.fp_floor)
        v = _F32(a)
        if not np.isfinite(v):
            return 0
        return int(math.floor(v))

    def fround(self, a: Float) -> int:
        """Round a float32 to the nearest integer (half away from zero;
        0 for non-finite inputs)."""
        self._charge("fround", self.costs.fp_round)
        f = float(_F32(a))
        if not math.isfinite(f):
            return 0
        return int(math.floor(f + 0.5)) if f >= 0 else int(math.ceil(f - 0.5))

    def f2fx(self, a: Float, frac_bits: int) -> int:
        """Convert float32 to a fixed-point raw word with ``frac_bits`` fraction.

        Rounds to nearest; the DPU sequence aligns the mantissa by the
        exponent difference.
        """
        self._charge("f2fx", self.costs.float_to_fixed)
        scaled = np.float64(_F32(a)) * (1 << frac_bits)
        if not np.isfinite(scaled):
            return 0  # garbage-in/defined-word-out, like the DPU sequence
        return int(np.round(scaled))

    def fx2f(self, raw: int, frac_bits: int) -> np.float32:
        """Convert a fixed-point raw word back to float32 (normalize + round)."""
        self._charge("fx2f", self.costs.fixed_to_float)
        return _F32(np.float64(raw) / (1 << frac_bits))

    # ------------------------------------------------------------------
    # TransPimLib bit-manipulation primitives

    def ldexp(self, a: Float, n: int) -> np.float32:
        """Compute ``a * 2**n`` via exponent-field arithmetic (Section 3.2.2)."""
        self._charge("ldexp", self.costs.ldexp)
        from repro.core.ldexp import ldexpf
        return ldexpf(a, n)

    def frexp(self, a: Float) -> Tuple[np.float32, int]:
        """Split into mantissa in [0.5, 1) and exponent, float32 semantics."""
        self._charge("frexp", self.costs.frexp)
        from repro.core.ldexp import frexpf
        return frexpf(a)

    def bitcast_f2i(self, a: Float) -> int:
        """Reinterpret float32 bits as uint32 (a register move: 1 slot)."""
        self._charge("bitcast", self.costs.int_alu)
        from repro.core.float_bits import float_to_bits
        return int(float_to_bits(a))

    def bitcast_i2f(self, bits: int) -> np.float32:
        """Reinterpret uint32 bits as float32 (a register move: 1 slot)."""
        self._charge("bitcast", self.costs.int_alu)
        from repro.core.float_bits import bits_to_float
        return _F32(bits_to_float(bits & 0xFFFFFFFF))

    # ------------------------------------------------------------------
    # memory

    def wram_read(self, table: Sequence, index: int):
        """Load one element from a scratchpad-resident table."""
        self._charge("wram_read", self.costs.wram_access)
        return table[index]

    def wram_write(self, table, index: int, value) -> None:
        """Store one element into a scratchpad-resident table."""
        self._charge("wram_write", self.costs.wram_access)
        table[index] = value

    def mram_read(self, table: Sequence, index: int, elem_bytes: int = 4):
        """Load one element from a DRAM-bank-resident table via DMA.

        The DMA setup occupies pipeline slots; the beat latency is tracked
        separately because the multithreaded pipeline hides it when enough
        tasklets are resident.
        """
        beats = max(1, (elem_bytes + 7) // 8)
        latency = beats * self.costs.mram_dma_per_8b
        self._charge("mram_read", self.costs.mram_dma_setup, latency)
        self.tally.dma_transactions += 1
        self.tally.dma_bytes += elem_bytes
        self.tally.dma_latency += latency
        return table[index]

    def branch(self) -> None:
        """Charge a taken-branch slot."""
        self._charge("branch", self.costs.branch)
