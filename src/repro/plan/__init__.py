"""Plan/execute split: compile-once ExecutionPlans and sharded dispatch.

The execution stack's host-side setup (table build, placement, classifier
binding, transfer schedule, SPMD split) compiles once into an
:class:`ExecutionPlan`; launches are then `execute(plan, inputs)` calls that
never rebuild or re-trace what a previous launch already paid for.

* :mod:`repro.plan.plan` — :class:`ExecutionPlan`, :class:`TransferSchedule`,
  :func:`compile_plan`; ``PIMSystem.run`` is a bit-identical wrapper over
  these.
* :mod:`repro.plan.cache` — :class:`PlanCache`, the LRU keyed off the
  table-geometry signature plus the full launch configuration, with a
  placement-sharing built-table pool.
* :mod:`repro.plan.dispatch` — :func:`execute_sharded`: inputs split across
  disjoint DPU groups with per-shard imbalance and optional double-buffered
  (overlapped) host<->PIM transfers.
* :mod:`repro.plan.schedule` — :func:`schedule_pipeline`: the general
  h2p/kernel/p2h pipeline timeline over any stream of launches or shards.
* :mod:`repro.plan.pool` — :class:`ShardPool`: shards executed on a
  ``multiprocessing`` worker pool, bit-identical to the inline path, with
  plans shipped once per pool through shared memory.
* :mod:`repro.plan.session` — :class:`PlanSession`: multi-kernel serving
  streams against one runtime's resident tables, pipelined via
  :meth:`PlanSession.launch_stream`.
"""

from repro.plan.cache import PlanCache, PlanKey, plan_signature, table_signature
from repro.plan.dispatch import (
    ShardedRunResult,
    ShardResult,
    execute_sharded,
    shard_ranges,
    shard_split,
)
from repro.plan.plan import ExecutionPlan, TransferSchedule, compile_plan
from repro.plan.pool import PlanShipment, ShardPool, ShardTask
from repro.plan.schedule import (
    PipelineSchedule,
    ScheduledItem,
    StageItem,
    schedule_pipeline,
)
from repro.plan.session import LaunchRecord, PlanSession, StreamResult

__all__ = [
    "ExecutionPlan", "TransferSchedule", "compile_plan",
    "PlanCache", "PlanKey", "plan_signature", "table_signature",
    "ShardResult", "ShardedRunResult", "shard_split", "shard_ranges",
    "execute_sharded",
    "StageItem", "ScheduledItem", "PipelineSchedule", "schedule_pipeline",
    "ShardPool", "PlanShipment", "ShardTask",
    "PlanSession", "LaunchRecord", "StreamResult",
]
