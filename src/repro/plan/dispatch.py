"""Sharded dispatch: one plan, many DPU groups, optionally overlapped.

Real UPMEM deployments reach peak throughput by splitting work across rank
groups and overlapping each group's host<->PIM transfers with other groups'
kernels ("UPMEM Unleashed", PAPERS.md).  This module models that on top of
compiled plans: :func:`execute_sharded` splits the input across ``n_shards``
disjoint DPU groups, launches the same :class:`~repro.plan.plan.ExecutionPlan`
on each group (sub-plans share the parent's path-tally cache, so tracing is
paid once), and assembles a timeline —

* ``overlap=False``: shards launch back to back, exactly like calling
  ``run()`` once per slice; the total is the bit-exact running sum of the
  per-shard totals.
* ``overlap=True``: double-buffered.  Scatters serialize on the host->PIM
  link, each shard's kernel starts as soon as its scatter lands (kernels of
  different groups run concurrently — disjoint cores), and gathers serialize
  on the PIM->host link:

      h2p_done[i] = h2p_done[i-1] + h2p[i]
      k_done[i]   = h2p_done[i] + launch[i] + kernel[i]
      p2h_done[i] = max(k_done[i], p2h_done[i-1]) + p2h[i]
      total       = p2h_done[last]

Per-shard ``shard`` spans carry the four phase times and the timeline
offsets, so the emitted trace reconciles bit for bit with ``total_seconds``
(asserted in ``tests/plan/test_dispatch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.system import PIMSystem, SystemRunResult
from repro.plan.plan import ExecutionPlan
from repro.plan.schedule import StageItem, schedule_pipeline

__all__ = ["ShardResult", "ShardedRunResult", "shard_split", "shard_ranges",
           "spawn_shard_rngs", "execute_sharded"]

_F32 = np.float32


def spawn_shard_rngs(
    rng: Optional[np.random.Generator], n_shards: int,
) -> List[Optional[np.random.Generator]]:
    """Independent per-shard generators derived from one parent seed.

    Handing the *same* generator to every shard couples them through shared
    state: each shard's draw depends on how many shards ran before it, so
    results change under reordering or a process pool.  Spawning child
    generators up front makes every shard reproducible from the single
    parent seed regardless of execution order — the property the
    determinism lint pass (``unthreaded-rng``) enforces statically.
    """
    if rng is None:
        return [None] * n_shards
    if hasattr(rng, "spawn"):  # numpy >= 1.25
        return list(rng.spawn(n_shards))
    seeds = rng.integers(0, 2**63 - 1, size=n_shards)
    return [np.random.default_rng(int(s)) for s in seeds]


def shard_split(n_elements: int, n_dpus: int, n_shards: int, *,
                topology=None) -> List[Tuple[int, int]]:
    """Even (elements, dpus) split of a launch over ``n_shards`` groups.

    Remainders go to the lowest-indexed shards, mirroring the SPMD
    round-up in :meth:`PIMSystem.elements_per_dpu`.

    With ``topology`` (a :class:`~repro.pim.topology.Topology` covering
    exactly ``n_dpus`` usable DPUs) the split is **rank-aligned**: shard
    boundaries come from :meth:`Topology.split_ranks`, so no shard's DPU
    group ever straddles a rank, and element counts follow each group's
    DPU share proportionally.  Rank-aligned groups are what let a shard's
    unbalanced transfers serialize per rank and the pool pin shards to
    their channel's workers.
    """
    if n_shards < 1:
        raise SimulationError("need at least one shard")
    if n_shards > n_dpus:
        raise SimulationError(
            f"{n_shards} shards over {n_dpus} DPUs: every shard needs "
            "its own DPU group")
    if n_shards > n_elements:
        raise SimulationError(
            f"{n_shards} shards over {n_elements} elements: every shard "
            "needs at least one element")
    if topology is not None:
        if topology.n_dpus != n_dpus:
            raise SimulationError(
                f"topology covers {topology.n_dpus} usable DPUs, "
                f"expected {n_dpus}")
        spans = topology.split_ranks(n_shards)
        dpus = [stop - start for start, stop in spans]
        # Elements proportional to each group's DPU share, by cumulative
        # boundaries so the counts always sum exactly to n_elements.
        bounds, acc = [0], 0
        for d in dpus:
            acc += d
            bounds.append(n_elements * acc // n_dpus)
        counts = [bounds[i + 1] - bounds[i] for i in range(n_shards)]
        if min(counts) == 0:
            # Degenerate proportionality (tiny inputs over skewed rank
            # groups): fall back to the even element split, keeping the
            # rank-aligned DPU groups.
            eq, er = divmod(n_elements, n_shards)
            counts = [eq + (1 if i < er else 0) for i in range(n_shards)]
        return list(zip(counts, dpus))
    eq, er = divmod(n_elements, n_shards)
    dq, dr = divmod(n_dpus, n_shards)
    return [(eq + (1 if i < er else 0), dq + (1 if i < dr else 0))
            for i in range(n_shards)]


def shard_ranges(split: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Half-open DPU index ranges of a contiguous shard allocation.

    Shard ``i`` occupies the DPUs directly after shard ``i-1``'s; the
    ranges feed :class:`~repro.plan.schedule.StageItem.dpu_range` so the
    pipeline scheduler knows the shards' kernels never contend.
    """
    ranges, offset = [], 0
    for _, dpus in split:
        ranges.append((offset, offset + dpus))
        offset += dpus
    return ranges


@dataclass
class ShardResult:
    """One DPU group's launch plus its position on the dispatch timeline."""

    index: int
    n_elements: int
    n_dpus: int
    result: SystemRunResult
    start_seconds: float    # when this shard's scatter begins
    finish_seconds: float   # when its gather completes


@dataclass
class ShardedRunResult:
    """Timing of a sharded (optionally overlapped) whole-system dispatch.

    Mirrors enough of :class:`SystemRunResult`'s surface (``total_seconds``,
    phase sums, ``per_dpu`` of the slowest shard) that workload result
    wrappers and the energy model can consume either shape.
    """

    n_elements: int
    n_shards: int
    overlap: bool
    tasklets: int
    shards: List[ShardResult]
    total_seconds: float

    @property
    def serial_seconds(self) -> float:
        """What the same shards would take launched strictly back to back."""
        total = 0.0
        for s in self.shards:
            total += s.result.total_seconds
        return total

    @property
    def overlap_saving_seconds(self) -> float:
        """Time the double-buffered timeline hides (0 when not overlapped)."""
        return self.serial_seconds - self.total_seconds

    # -- SystemRunResult-shaped conveniences ----------------------------

    @property
    def n_dpus_used(self) -> int:
        return sum(s.result.n_dpus_used for s in self.shards)

    @property
    def kernel_seconds(self) -> float:
        """The slowest shard's kernel time (groups run concurrently)."""
        return max(s.result.kernel_seconds for s in self.shards)

    @property
    def host_to_pim_seconds(self) -> float:
        return sum(s.result.host_to_pim_seconds for s in self.shards)

    @property
    def pim_to_host_seconds(self) -> float:
        return sum(s.result.pim_to_host_seconds for s in self.shards)

    @property
    def launch_seconds(self) -> float:
        return sum(s.result.launch_seconds for s in self.shards)

    @property
    def per_dpu(self):
        """Representative per-core result: the slowest shard's."""
        slowest = max(self.shards, key=lambda s: s.result.kernel_seconds)
        return slowest.result.per_dpu

    @property
    def compute_only_seconds(self) -> float:
        """Slowest shard's kernel plus its launch (Figure 1(c) view)."""
        slowest = max(self.shards, key=lambda s: s.result.kernel_seconds)
        return slowest.result.compute_only_seconds


def _shard_inputs(inputs: np.ndarray, counts: Sequence[int],
                  virtual_n: Optional[int]) -> List[Tuple[np.ndarray, int]]:
    """Per-shard (array, virtual_n) pairs.

    With ``virtual_n`` the materialized array is a distribution sample, so
    every shard reuses it whole and sizes itself virtually; otherwise the
    array is split contiguously.
    """
    if virtual_n is not None:
        return [(inputs, c) for c in counts]
    out, offset = [], 0
    for c in counts:
        out.append((inputs[offset:offset + c], None))
        offset += c
    return out


def _pooled_shard_runs(plan, split, pieces, imbalances, shard_rngs, *,
                       batch, workers, pool, start_method, timeout,
                       dpu_ranges=None, channels=None):
    """Run every shard on a worker pool; graft traces, merge metrics.

    Returns ``(handles, runs)`` in shard order — the same pair the inline
    loop produces, so timeline assembly downstream is path-agnostic.
    ``dpu_ranges``/``channels`` (rank-aligned dispatch only) give each
    shard its usable-DPU slice and home channel, which the pool uses for
    topology-faithful sub-systems and channel-affine worker routing.
    """
    from repro.obs.metrics import active_metrics
    from repro.obs.tracer import active_tracer
    from repro.plan import pool as _pool_mod

    tracer = active_tracer()
    registry = active_metrics()
    owned = pool is None
    shard_pool = pool if pool is not None else _pool_mod.ShardPool(
        workers if workers is not None else len(split),
        start_method=start_method, timeout=timeout,
    )
    specs = [
        (dpus_i, xs_i, vn_i, imbalances[i], shard_rngs[i])
        for i, ((_, dpus_i), (xs_i, vn_i)) in enumerate(zip(split, pieces))
    ]
    try:
        outcomes, _wall = shard_pool.run_shards(
            plan, specs, batch=batch,
            capture_trace=tracer is not None,
            capture_metrics=registry is not None,
            timeout=timeout,
            dpu_ranges=dpu_ranges,
            channels=channels,
        )
    finally:
        if owned:
            shard_pool.close()
    handles, runs = [], []
    for i, out in enumerate(outcomes):
        n_i, dpus_i = split[i]
        attrs = {}
        if channels is not None:
            attrs["channel"] = channels[i]
        if getattr(shard_pool, "pin", False):
            attrs["pinned"] = True
        with _span("shard", index=i, n_elements=n_i, n_dpus=dpus_i,
                   worker=out.worker_pid, **attrs) as ssp:
            if tracer is not None:
                for subtree in out.spans:
                    tracer.graft(subtree)
        handles.append(ssp)
        runs.append(out.result)
    if registry is not None:
        # Shard order, so merged counters land exactly like inline emits.
        for out in outcomes:
            if out.metrics is not None:
                registry.merge_snapshot(out.metrics)
    return handles, runs


def execute_sharded(
    plan: ExecutionPlan,
    inputs: Sequence[float],
    *,
    n_shards: int = 2,
    overlap: bool = False,
    virtual_n: Optional[int] = None,
    imbalance: Union[None, float, Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
    batch: bool = True,
    workers: Optional[int] = None,
    pool=None,
    start_method: Optional[str] = None,
    timeout: Optional[float] = None,
    rank_aligned: bool = False,
) -> ShardedRunResult:
    """Dispatch ``plan`` over ``n_shards`` disjoint DPU groups.

    ``imbalance`` may be a scalar (every shard's straggler factor) or a
    per-shard sequence of length ``n_shards``; ``None`` uses the plan's.
    All shard sub-plans share the parent plan's path-tally cache, so the
    scalar tracing cost of a cold plan is paid once, not per shard.

    A caller ``rng`` seeds the whole dispatch: it is split into independent
    per-shard child generators (:func:`spawn_shard_rngs`), so every shard's
    sample draw is reproducible from the single seed and independent of
    shard execution order — the property that lets ``workers``/``pool``
    lift the shard loop onto a ``multiprocessing`` pool
    (:mod:`repro.plan.pool`) with bit-identical results.

    ``workers > 1`` runs the shards on a throwaway pool of that many
    processes (``start_method`` picks fork/spawn/forkserver, ``timeout``
    bounds the dispatch in wall seconds); passing an existing
    :class:`~repro.plan.pool.ShardPool` as ``pool`` reuses warm workers and
    ships the plan only once across dispatches.  Either way the returned
    :class:`ShardedRunResult`, the ``dispatch.*`` spans and metrics, and
    every phase number reconcile bit for bit with the inline path.

    ``rank_aligned=True`` splits along the system topology's rank
    boundaries instead of evenly: no shard's DPU group straddles a rank,
    each shard's sub-system keeps its slice's true rank structure (so
    rank-parallel unbalanced transfers price correctly per shard), and
    pooled dispatch routes each shard to a worker by its home channel.
    """
    inputs = np.asarray(inputs, dtype=_F32)
    n = int(virtual_n if virtual_n is not None else inputs.shape[0])
    if n == 0 or inputs.shape[0] == 0:
        raise SimulationError("cannot dispatch over empty input")
    system = plan.system
    topo = system.config.topology if rank_aligned else None
    split = shard_split(n, system.config.n_dpus, n_shards, topology=topo)
    dpu_ranges = shard_ranges(split) if rank_aligned else None
    channels = [topo.channel_of_range(lo, hi) for lo, hi in dpu_ranges] \
        if rank_aligned else None
    if imbalance is None or isinstance(imbalance, (int, float)):
        imbalances = [imbalance] * n_shards
    else:
        imbalances = list(imbalance)
        if len(imbalances) != n_shards:
            raise SimulationError(
                f"got {len(imbalances)} imbalance factors for "
                f"{n_shards} shards")

    counts = [ne for ne, _ in split]
    pieces = _shard_inputs(inputs, counts, virtual_n)
    shard_rngs = spawn_shard_rngs(rng, n_shards)
    pooled = pool is not None or (workers is not None and workers > 1)

    shards: List[ShardResult] = []
    with _span("dispatch.run", n_shards=n_shards, overlap=overlap,
               n_elements=n) as dsp:
        if rank_aligned:
            dsp.set(rank_aligned=True)
        if pooled:
            dsp.set(pooled=True)
            handles, runs = _pooled_shard_runs(
                plan, split, pieces, imbalances, shard_rngs, batch=batch,
                workers=workers, pool=pool, start_method=start_method,
                timeout=timeout, dpu_ranges=dpu_ranges, channels=channels,
            )
        else:
            handles, runs = [], []
            for i, ((n_i, dpus_i), (xs_i, vn_i)) in enumerate(
                    zip(split, pieces)):
                if rank_aligned:
                    lo, hi = dpu_ranges[i]
                    sub = PIMSystem(system.config.subrange(lo, hi),
                                    system.costs)
                    attrs = {"channel": channels[i]}
                else:
                    sub = PIMSystem(replace(system.config, n_dpus=dpus_i),
                                    system.costs)
                    attrs = {}
                with _span("shard", index=i, n_elements=n_i,
                           n_dpus=dpus_i, **attrs) as ssp:
                    r = plan.for_system(sub).execute(
                        xs_i, virtual_n=vn_i, rng=shard_rngs[i],
                        batch=batch, imbalance=imbalances[i],
                        span_name="shard.execute",
                    )
                handles.append(ssp)
                runs.append(r)

        # Timeline assembly: pure arithmetic over the per-shard results,
        # shared by the inline and pooled paths so both reconcile
        # identically.  The overlapped timeline goes through the general
        # pipeline scheduler; disjoint shard ranges collapse it bit for
        # bit to the original double-buffered recurrence.
        if overlap:
            ranges = shard_ranges(split)
            sched = schedule_pipeline([
                StageItem(key=str(i), h2p=r.host_to_pim_seconds,
                          launch=r.launch_seconds, kernel=r.kernel_seconds,
                          p2h=r.pim_to_host_seconds, dpu_range=ranges[i])
                for i, r in enumerate(runs)
            ])
            offsets = [(s.start_seconds, s.finish_seconds)
                       for s in sched.items]
            total = sched.makespan
        else:
            offsets = []
            serial_done = 0.0
            for r in runs:
                nxt = serial_done + r.total_seconds
                offsets.append((serial_done, nxt))
                serial_done = nxt
            total = serial_done

        for i, (ssp, r) in enumerate(zip(handles, runs)):
            start, finish = offsets[i]
            ssp.set(sim_seconds=r.total_seconds,
                    host_to_pim=r.host_to_pim_seconds,
                    kernel=r.kernel_seconds,
                    pim_to_host=r.pim_to_host_seconds,
                    launch=r.launch_seconds,
                    start_seconds=start,
                    finish_seconds=finish)
            shards.append(ShardResult(
                index=i, n_elements=split[i][0], n_dpus=split[i][1],
                result=r, start_seconds=start, finish_seconds=finish,
            ))
        result = ShardedRunResult(
            n_elements=n, n_shards=n_shards, overlap=overlap,
            tasklets=plan.tasklets, shards=shards, total_seconds=total,
        )
        dsp.set(sim_seconds=total,
                serial_seconds=result.serial_seconds)
    _metrics.inc("dispatch.runs")
    _metrics.inc("dispatch.shards", n_shards)
    if rank_aligned:
        _metrics.inc("dispatch.rank_aligned")
    if pooled:
        _metrics.inc("dispatch.pool.dispatches")
    if overlap:
        _metrics.observe("dispatch.overlap_saving_seconds",
                         result.overlap_saving_seconds)
    return result
