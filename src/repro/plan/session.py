"""Serving sessions: many kernels, one set of resident tables.

A production deployment (ROADMAP north star) installs a handful of
transcendental functions once and then serves a stream of launches against
them — different functions, different batch sizes, interleaved.
:class:`PlanSession` models that call stream: it owns a
:class:`~repro.pim.host.PIMRuntime` (whose per-core WRAM/MRAM the installed
tables genuinely share) and a :class:`~repro.plan.cache.PlanCache`, so the
first launch of each function compiles its plan and every later launch —
including sharded/overlapped ones — is PlanCache-warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

from repro.core.method import Method
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.system import SystemRunResult

if TYPE_CHECKING:  # imported lazily at runtime (host imports this package)
    from repro.pim.host import InstalledFunction, PIMRuntime
from repro.plan.cache import PlanCache
from repro.plan.dispatch import ShardedRunResult, execute_sharded
from repro.plan.plan import TransferSchedule

__all__ = ["PlanSession", "LaunchRecord"]

_F32 = np.float32


@dataclass
class LaunchRecord:
    """One completed launch in a session's stream."""

    function: str
    n_elements: int
    shards: int
    overlap: bool
    simulated_seconds: float


@dataclass
class _FunctionStats:
    launches: int = 0
    elements: int = 0
    simulated_seconds: float = 0.0


class PlanSession:
    """A multi-kernel call stream over one runtime's resident tables."""

    def __init__(self, runtime: Optional["PIMRuntime"] = None,
                 plan_cache: Optional[PlanCache] = None,
                 tasklets: int = 16, sample_size: int = 64):
        from repro.pim.host import PIMRuntime

        self.runtime = runtime if runtime is not None else PIMRuntime()
        self.plans = plan_cache if plan_cache is not None else PlanCache()
        self.tasklets = tasklets
        self.sample_size = sample_size
        self.launches: List[LaunchRecord] = []
        self._stats: Dict[str, _FunctionStats] = {}

    # ------------------------------------------------------------------

    def install(self, method: Method) -> InstalledFunction:
        """Install a function (tables built and placed in every core)."""
        return self.runtime.install(method)

    @property
    def functions(self) -> List[str]:
        return self.runtime.functions

    def launch(
        self,
        name: str,
        inputs,
        *,
        shards: int = 1,
        overlap: bool = False,
        virtual_n: Optional[int] = None,
        transfers: Optional[TransferSchedule] = None,
        batch: bool = True,
    ) -> Union[SystemRunResult, ShardedRunResult]:
        """Launch installed function ``name`` over ``inputs``.

        ``shards``/``overlap`` route through the sharded dispatcher;
        plans (and their path-tally caches) persist across launches, so a
        steady-state stream never re-traces or rebuilds anything.
        """
        fn = self.runtime[name]
        with _span("session.launch", function=name, shards=shards) as sp:
            plan = self.plans.plan(
                self.runtime.system, fn.method, tasklets=self.tasklets,
                sample_size=self.sample_size, transfers=transfers,
            )
            if shards > 1:
                result = execute_sharded(
                    plan, inputs, n_shards=shards, overlap=overlap,
                    virtual_n=virtual_n, batch=batch,
                )
            else:
                result = plan.execute(
                    np.asarray(inputs, dtype=_F32), virtual_n=virtual_n,
                    batch=batch,
                )
            sp.set(sim_seconds=result.total_seconds,
                   n_elements=result.n_elements)
        record = LaunchRecord(
            function=name, n_elements=result.n_elements, shards=shards,
            overlap=overlap, simulated_seconds=result.total_seconds,
        )
        self.launches.append(record)
        stats = self._stats.setdefault(name, _FunctionStats())
        stats.launches += 1
        stats.elements += result.n_elements
        stats.simulated_seconds += result.total_seconds
        _metrics.inc("session.launches")
        _metrics.inc("session.elements", result.n_elements)
        return result

    # ------------------------------------------------------------------

    @property
    def total_simulated_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.launches)

    def summary(self) -> str:
        """Per-function launch statistics for the whole session."""
        from repro.analysis.report import format_table

        rows = [
            (name, s.launches, s.elements, f"{s.simulated_seconds:.6f}")
            for name, s in sorted(self._stats.items())
        ]
        cache = self.plans.stats()
        return (
            f"plan session: {len(self.launches)} launches, "
            f"{self.total_simulated_seconds:.6f} s simulated, "
            f"{cache['hits']}/{cache['hits'] + cache['misses']} "
            "plan-cache hits\n"
            + format_table(["function", "launches", "elements", "sim_s"],
                           rows)
        )
