"""Serving sessions: many kernels, one set of resident tables.

A production deployment (ROADMAP north star) installs a handful of
transcendental functions once and then serves a stream of launches against
them — different functions, different batch sizes, interleaved.
:class:`PlanSession` models that call stream: it owns a
:class:`~repro.pim.host.PIMRuntime` (whose per-core WRAM/MRAM the installed
tables genuinely share) and a :class:`~repro.plan.cache.PlanCache`, so the
first launch of each function compiles its plan and every later launch —
including sharded/overlapped ones — is PlanCache-warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from repro.core.method import Method
from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.system import SystemRunResult

if TYPE_CHECKING:  # imported lazily at runtime (host imports this package)
    from repro.pim.host import InstalledFunction, PIMRuntime
from repro.plan.cache import PlanCache
from repro.plan.dispatch import (ShardedRunResult, execute_sharded,
                                 shard_ranges, shard_split)
from repro.plan.plan import TransferSchedule
from repro.plan.schedule import PipelineSchedule, StageItem, schedule_pipeline

__all__ = ["PlanSession", "LaunchRecord", "StreamResult"]

_F32 = np.float32


@dataclass
class LaunchRecord:
    """One completed launch in a session's stream."""

    function: str
    n_elements: int
    shards: int
    overlap: bool
    simulated_seconds: float


@dataclass
class StreamResult:
    """A pipelined multi-launch stream's timeline and per-launch results.

    ``results`` holds each launch's own result (``SystemRunResult`` or
    ``ShardedRunResult``) exactly as a lone :meth:`PlanSession.launch`
    would have returned it; ``schedule`` is the interleaved
    h2p/kernel/p2h timeline of every (launch, shard) stage on the shared
    host links and DPU groups.
    """

    records: List[LaunchRecord]
    results: List[Union[SystemRunResult, ShardedRunResult]]
    schedule: PipelineSchedule

    @property
    def pipelined_seconds(self) -> float:
        """Simulated stream makespan with stages interleaved."""
        return self.schedule.makespan

    @property
    def serial_seconds(self) -> float:
        """What the same launches cost issued strictly back to back."""
        return self.schedule.serial_seconds

    @property
    def saving_seconds(self) -> float:
        """Simulated time the pipelining hides."""
        return self.schedule.saving_seconds


@dataclass
class _FunctionStats:
    launches: int = 0
    elements: int = 0
    simulated_seconds: float = 0.0


class PlanSession:
    """A multi-kernel call stream over one runtime's resident tables."""

    def __init__(self, runtime: Optional["PIMRuntime"] = None,
                 plan_cache: Optional[PlanCache] = None,
                 tasklets: int = 16, sample_size: int = 64):
        from repro.pim.host import PIMRuntime

        self.runtime = runtime if runtime is not None else PIMRuntime()
        self.plans = plan_cache if plan_cache is not None else PlanCache()
        self.tasklets = tasklets
        self.sample_size = sample_size
        self.launches: List[LaunchRecord] = []
        self._stats: Dict[str, _FunctionStats] = {}

    # ------------------------------------------------------------------

    def install(self, method: Method) -> InstalledFunction:
        """Install a function (tables built and placed in every core)."""
        return self.runtime.install(method)

    @property
    def functions(self) -> List[str]:
        return self.runtime.functions

    def launch(
        self,
        name: str,
        inputs,
        *,
        shards: int = 1,
        overlap: bool = False,
        virtual_n: Optional[int] = None,
        transfers: Optional[TransferSchedule] = None,
        batch: bool = True,
        workers: Optional[int] = None,
        pool=None,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        rank_aligned: bool = False,
    ) -> Union[SystemRunResult, ShardedRunResult]:
        """Launch installed function ``name`` over ``inputs``.

        ``shards``/``overlap`` route through the sharded dispatcher;
        plans (and their path-tally caches) persist across launches, so a
        steady-state stream never re-traces or rebuilds anything.
        ``workers``/``pool`` run the shards on a multiprocess pool
        (:mod:`repro.plan.pool`) with bit-identical results; a pool passed
        in survives the launch and keeps its warm workers.
        ``rank_aligned`` splits shards along the system topology's rank
        boundaries (see :func:`~repro.plan.dispatch.execute_sharded`).
        """
        fn = self.runtime[name]
        plan = self.plans.plan(
            self.runtime.system, fn.method, tasklets=self.tasklets,
            sample_size=self.sample_size, transfers=transfers,
        )
        return self.execute_plan(
            name, plan, inputs, shards=shards, overlap=overlap,
            virtual_n=virtual_n, batch=batch, workers=workers, pool=pool,
            start_method=start_method, timeout=timeout,
            rank_aligned=rank_aligned,
        )

    def execute_plan(
        self,
        label: str,
        plan,
        inputs,
        *,
        shards: int = 1,
        overlap: bool = False,
        virtual_n: Optional[int] = None,
        batch: bool = True,
        workers: Optional[int] = None,
        pool=None,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        rank_aligned: bool = False,
    ) -> Union[SystemRunResult, ShardedRunResult]:
        """Execute an already-compiled plan under this session's accounting.

        The dispatch half of :meth:`launch`, exposed so callers that obtain
        plans elsewhere — the serving front end compiles through its
        single-flight path before dispatching coalesced batches here — still
        land in the session's launch records, per-function stats, and
        ``session.*`` metrics.  ``label`` names the launch in those records.
        """
        with _span("session.launch", function=label, shards=shards) as sp:
            if shards > 1:
                result = execute_sharded(
                    plan, inputs, n_shards=shards, overlap=overlap,
                    virtual_n=virtual_n, batch=batch, workers=workers,
                    pool=pool, start_method=start_method, timeout=timeout,
                    rank_aligned=rank_aligned,
                )
            else:
                result = plan.execute(
                    np.asarray(inputs, dtype=_F32), virtual_n=virtual_n,
                    batch=batch,
                )
            sp.set(sim_seconds=result.total_seconds,
                   n_elements=result.n_elements)
        self._record(label, result, shards, overlap)
        return result

    def _record(self, name: str, result, shards: int,
                overlap: bool) -> LaunchRecord:
        record = LaunchRecord(
            function=name, n_elements=result.n_elements, shards=shards,
            overlap=overlap, simulated_seconds=result.total_seconds,
        )
        self.launches.append(record)
        stats = self._stats.setdefault(name, _FunctionStats())
        stats.launches += 1
        stats.elements += result.n_elements
        stats.simulated_seconds += result.total_seconds
        _metrics.inc("session.launches")
        _metrics.inc("session.elements", result.n_elements)
        return record

    def launch_stream(
        self,
        requests: Sequence[Tuple[str, Sequence[float]]],
        *,
        shards: int = 1,
        virtual_n: Optional[int] = None,
        transfers: Optional[TransferSchedule] = None,
        batch: bool = True,
        workers: Optional[int] = None,
        pool=None,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        rank_aligned: bool = False,
    ) -> StreamResult:
        """Run a stream of launches as one interleaved pipeline.

        ``requests`` is a sequence of ``(function_name, inputs)`` pairs.
        Each launch still runs exactly as :meth:`launch` would (same
        results, same records), but the stream's timeline interleaves the
        h2p/kernel/p2h stages of *every* launch — and, with ``shards >
        1``, of every shard of every launch — on the shared host links
        and DPU groups via :func:`~repro.plan.schedule.schedule_pipeline`:
        launch ``j+1``'s scatter overlaps launch ``j``'s kernel, kernels
        of overlapping DPU ranges serialize, gathers drain FIFO.

        ``workers``/``pool`` run each launch's shards on a multiprocess
        pool; with bare ``workers`` one pool spans the whole stream, so
        every distinct plan ships to the workers once.
        """
        requests = list(requests)
        if not requests:
            raise SimulationError("cannot pipeline an empty launch stream")
        system = self.runtime.system
        if shards > 1:
            if rank_aligned:
                # The dispatcher's rank-aligned DPU groups are input-size
                # independent, so the stream's stage ranges match every
                # launch's shard ranges exactly.
                ranges = system.config.topology.split_ranks(shards)
            else:
                ranges = shard_ranges(
                    shard_split(shards, system.config.n_dpus, shards))
        else:
            ranges = [None]  # whole system: every kernel stage conflicts
        stream_pool = pool
        owned = False
        if stream_pool is None and workers is not None and workers > 1:
            from repro.plan.pool import ShardPool
            stream_pool = ShardPool(workers, start_method=start_method,
                                    timeout=timeout)
            owned = True
        results: List[Union[SystemRunResult, ShardedRunResult]] = []
        records: List[LaunchRecord] = []
        items: List[StageItem] = []
        try:
            with _span("session.stream", launches=len(requests),
                       shards=shards) as sp:
                for j, (name, inputs) in enumerate(requests):
                    fn = self.runtime[name]
                    plan = self.plans.plan(
                        system, fn.method, tasklets=self.tasklets,
                        sample_size=self.sample_size, transfers=transfers,
                    )
                    if shards > 1:
                        result = execute_sharded(
                            plan, inputs, n_shards=shards, overlap=False,
                            virtual_n=virtual_n, batch=batch,
                            pool=stream_pool, timeout=timeout,
                            rank_aligned=rank_aligned,
                        )
                        for k, shard in enumerate(result.shards):
                            r = shard.result
                            items.append(StageItem(
                                key=f"{j}:{name}:{k}",
                                h2p=r.host_to_pim_seconds,
                                launch=r.launch_seconds,
                                kernel=r.kernel_seconds,
                                p2h=r.pim_to_host_seconds,
                                dpu_range=ranges[k],
                            ))
                    else:
                        result = plan.execute(
                            np.asarray(inputs, dtype=_F32),
                            virtual_n=virtual_n, batch=batch,
                        )
                        items.append(StageItem(
                            key=f"{j}:{name}",
                            h2p=result.host_to_pim_seconds,
                            launch=result.launch_seconds,
                            kernel=result.kernel_seconds,
                            p2h=result.pim_to_host_seconds,
                            dpu_range=None,
                        ))
                    results.append(result)
                    records.append(
                        self._record(name, result, shards, overlap=False))
                schedule = schedule_pipeline(items)
                sp.set(sim_seconds=schedule.makespan,
                       serial_seconds=schedule.serial_seconds,
                       saving_seconds=schedule.saving_seconds)
        finally:
            if owned:
                stream_pool.close()
        _metrics.inc("session.streams")
        _metrics.observe("session.stream_saving_seconds",
                         schedule.saving_seconds)
        return StreamResult(records=records, results=results,
                            schedule=schedule)

    # ------------------------------------------------------------------

    @property
    def total_simulated_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.launches)

    def summary(self) -> str:
        """Per-function launch statistics for the whole session."""
        from repro.analysis.report import format_table

        rows = [
            (name, s.launches, s.elements, f"{s.simulated_seconds:.6f}")
            for name, s in sorted(self._stats.items())
        ]
        cache = self.plans.stats()
        return (
            f"plan session: {len(self.launches)} launches, "
            f"{self.total_simulated_seconds:.6f} s simulated, "
            f"{cache['hits']}/{cache['hits'] + cache['misses']} "
            "plan-cache hits\n"
            + format_table(["function", "launches", "elements", "sim_s"],
                           rows)
        )
