"""Multiprocess shard execution: one plan, many worker processes.

This is ROADMAP item 3's wall-clock half.  :mod:`repro.plan.dispatch`
models a sharded launch; this module actually *runs* the shards in
parallel on a ``multiprocessing`` worker pool so a full-rank (2545-DPU)
simulation uses the host's cores instead of iterating shards in one
process.

The contract is bit-exactness: a pooled dispatch must return values,
slots, tallies, and span-reconciled timings identical to the inline path
(``tests/plan/test_pool.py`` holds both paths equal across the
``METHOD_SUPPORT`` matrix under both ``fork`` and ``spawn``).  That works
because each shard's execution is a pure function of (plan, shard system,
input slice, spawned rng child) — the property the PR 5 static gates
(parallel-safety pickle round-trips, per-shard rng threading, determinism
lint) established before this module existed.

Shipping protocol
-----------------
A plan crosses the process boundary **once per pool**, not once per shard:

* the plan graph is pickled with every large ``numpy`` array (table
  images, CORDIC angle tables...) extracted into a single
  ``multiprocessing.shared_memory`` segment — workers map the segment and
  reconstruct the arrays as zero-copy read-only views;
* each shard task then carries only a tiny :class:`PlanShipment`
  descriptor (segment name + array offsets) plus its input slice; the
  first task a worker sees for a given shipment unpickles and caches the
  plan, later tasks reuse it.

Failure discipline
------------------
A worker that raises ships a structured failure back; a worker that dies
or hangs is caught by the pool's broken-executor detection or the
dispatch ``timeout``.  Either way the parent raises a clean
:class:`repro.errors.PoolError` / :class:`~repro.errors.PoolTimeoutError`,
unlinks every shared-memory segment it created (``active_segments()`` is
the test hook proving no orphans), and never returns a half-aggregated
result.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import time
import weakref
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from multiprocessing import get_context, shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, PoolError, PoolTimeoutError
from repro.obs import metrics as _metrics
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracer import Span, Tracer, tracing

__all__ = ["PlanShipment", "ShardTask", "ShardOutcome", "ShardPool",
           "active_segments", "ship_plan", "load_shipment"]

#: Arrays at least this large leave the pickle stream for shared memory.
SHM_ARRAY_MIN_BYTES = 2048

#: Byte alignment of each array blob inside the segment.
_ALIGN = 64

#: Shared-memory segments this process created and has not yet unlinked.
#: Fault-injection tests assert this drains even on error paths.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}

_TOKENS = itertools.count()


def active_segments() -> List[str]:
    """Names of shared-memory segments currently owned by this process."""
    return sorted(_LIVE_SEGMENTS)


# ----------------------------------------------------------------------
# Shipping: plan -> (shared-memory segment, small descriptor)

@dataclass(frozen=True)
class _ArraySpec:
    """Where one extracted array lives inside the shipment segment."""

    offset: int
    dtype: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class PlanShipment:
    """Everything a worker needs to reconstruct a shipped plan.

    Small enough to ride along in every task; the heavy bytes (the plan
    pickle and the extracted arrays) live in the named segment.
    """

    token: str
    segment: str
    plan_bytes: int           # plan pickle occupies segment[0:plan_bytes]
    arrays: Tuple[_ArraySpec, ...]


class _ArrayExtractor(pickle.Pickler):
    """Pickler that spills large arrays out of the stream by reference."""

    def __init__(self, buffer: io.BytesIO):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self.arrays: List[np.ndarray] = []
        self._index: Dict[int, int] = {}

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, int]]:
        if isinstance(obj, np.ndarray) and obj.dtype != object \
                and obj.nbytes >= SHM_ARRAY_MIN_BYTES:
            key = id(obj)  # lint: allow(dedupe within one pickling pass, never persisted)
            if key not in self._index:
                self._index[key] = len(self.arrays)
                self.arrays.append(np.ascontiguousarray(obj))
            return ("repro-shm-array", self._index[key])
        return None


class _ArrayResolver(pickle.Unpickler):
    """Unpickler that resolves spilled arrays against mapped views."""

    def __init__(self, buffer: io.BytesIO, arrays: Sequence[np.ndarray]):
        super().__init__(buffer)
        self._arrays = arrays

    def persistent_load(self, pid: Tuple[str, int]) -> np.ndarray:
        tag, index = pid
        if tag != "repro-shm-array":
            raise pickle.UnpicklingError(f"unknown persistent id {tag!r}")
        return self._arrays[index]


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def ship_plan(plan) -> PlanShipment:
    """Serialize ``plan`` into a fresh shared-memory segment.

    The caller owns the segment and must eventually :func:`unlink_shipment`
    it (a :class:`ShardPool` does both).
    """
    buffer = io.BytesIO()
    extractor = _ArrayExtractor(buffer)
    try:
        extractor.dump(plan)
    except Exception as exc:
        raise PoolError(
            f"plan cannot be shipped to workers: {type(exc).__name__}: "
            f"{exc}") from exc
    plan_blob = buffer.getvalue()

    specs: List[_ArraySpec] = []
    offset = _aligned(len(plan_blob))
    for arr in extractor.arrays:
        specs.append(_ArraySpec(offset=offset, dtype=arr.dtype.str,
                                shape=tuple(arr.shape)))
        offset = _aligned(offset + arr.nbytes)

    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1)
                                     if offset else len(plan_blob) or 1)
    try:
        shm.buf[:len(plan_blob)] = plan_blob
        for spec, arr in zip(specs, extractor.arrays):
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                              offset=spec.offset)
            view[...] = arr
    except Exception:
        shm.close()
        shm.unlink()
        raise
    _LIVE_SEGMENTS[shm.name] = shm
    token = f"{os.getpid()}-{next(_TOKENS)}"
    return PlanShipment(token=token, segment=shm.name,
                        plan_bytes=len(plan_blob), arrays=tuple(specs))


def unlink_shipment(shipment: PlanShipment) -> None:
    """Release the shipment's segment (idempotent, owner side)."""
    shm = _LIVE_SEGMENTS.pop(shipment.segment, None)
    if shm is None:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


# ----------------------------------------------------------------------
# Worker side

#: Per-worker shipment cache: token -> (plan, mapped segment).
_WORKER_PLANS: Dict[str, Tuple[Any, shared_memory.SharedMemory]] = {}


def load_shipment(shipment: PlanShipment):
    """The shipped plan, unpickled once per process and cached.

    Attaching re-registers the segment with the (shared) resource
    tracker; that is a set-dedup no-op, and ownership — the unlink duty —
    stays with the shipping process, which is why nothing is unregistered
    here (an unregister would strip the owner's entry and make its later
    ``unlink`` warn).
    """
    cached = _WORKER_PLANS.get(shipment.token)
    if cached is not None:
        return cached[0]
    shm = shared_memory.SharedMemory(name=shipment.segment)
    arrays = []
    for spec in shipment.arrays:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=shm.buf, offset=spec.offset)
        view.flags.writeable = False  # tables are shared across workers
        arrays.append(view)
    resolver = _ArrayResolver(
        io.BytesIO(bytes(shm.buf[:shipment.plan_bytes])), arrays)
    plan = resolver.load()
    # Keep the mapping alive as long as the plan's arrays view it.
    _WORKER_PLANS[shipment.token] = (plan, shm)
    return plan


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order, shipped to a worker per dispatch."""

    shipment: PlanShipment
    index: int
    n_dpus: int
    inputs: np.ndarray
    virtual_n: Optional[int]
    imbalance: Optional[float]
    rng: Optional[np.random.Generator]
    batch: bool
    capture_trace: bool
    capture_metrics: bool
    #: Usable-DPU slice this shard owns (rank-aligned dispatch only).
    #: The worker carves its sub-system with
    #: :meth:`SystemConfig.subrange` so the slice keeps its true rank
    #: structure; ``None`` falls back to a flat ``n_dpus`` sub-system.
    dpu_range: Optional[Tuple[int, int]] = None


@dataclass
class ShardOutcome:
    """What a worker sends back for one completed shard."""

    index: int
    result: Any                       # SystemRunResult
    spans: List[Span]                 # the shard.execute subtree(s)
    metrics: Optional[Dict[str, Any]]  # MetricsRegistry.to_dict() snapshot
    worker_pid: int
    busy_seconds: float               # wall time the worker spent executing


@dataclass
class _ShardFailure:
    """A worker-side exception, marshalled as data (always picklable)."""

    index: int
    exc_type: str
    message: str


def _run_shard_task(task: ShardTask):
    """Worker entry point: execute one shard of the shipped plan."""
    from repro.pim.system import PIMSystem

    try:
        plan = load_shipment(task.shipment)
        if task.dpu_range is not None:
            cfg = plan.system.config.subrange(*task.dpu_range)
        else:
            cfg = replace(plan.system.config, n_dpus=task.n_dpus)
        sub = PIMSystem(cfg, plan.system.costs)
        tracer = Tracer() if task.capture_trace else None
        registry = MetricsRegistry() if task.capture_metrics else None
        t0 = time.perf_counter()
        with tracing(tracer) if tracer is not None else _nullcontext():
            with collecting(registry) if registry is not None \
                    else _nullcontext():
                result = plan.for_system(sub).execute(
                    task.inputs, virtual_n=task.virtual_n, rng=task.rng,
                    batch=task.batch, imbalance=task.imbalance,
                    span_name="shard.execute",
                )
        busy = time.perf_counter() - t0
        for root in (tracer.roots if tracer is not None else []):
            root.set(worker=os.getpid())
        return ShardOutcome(
            index=task.index, result=result,
            spans=tracer.roots if tracer is not None else [],
            metrics=registry.to_dict() if registry is not None else None,
            worker_pid=os.getpid(), busy_seconds=busy,
        )
    except Exception as exc:  # marshal any worker error as plain data
        return _ShardFailure(index=task.index,
                             exc_type=type(exc).__name__, message=str(exc))


class _nullcontext:
    """Tiny local nullcontext (keeps the worker function self-contained)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


def _pin_worker(cpus: Tuple[int, ...]) -> None:
    """Worker initializer: restrict this process to its group's CPUs.

    Models NUMA placement — each channel group's workers stay on one CPU
    block so the host-side halves of that channel's transfers keep their
    cache/memory locality.  Best-effort: platforms without
    ``sched_setaffinity`` (or with a shrunken cpuset) run unpinned.
    """
    if not cpus:
        return
    try:
        os.sched_setaffinity(0, cpus)
    except (AttributeError, OSError):  # pragma: no cover - platform-dependent
        pass


# ----------------------------------------------------------------------
# Parent side: the pool

class ShardPool:
    """A reusable multiprocess pool for sharded plan dispatch.

    Create one per serving process and pass it to
    :func:`~repro.plan.dispatch.execute_sharded` (or hand ``workers=`` and
    let the dispatcher manage a throwaway pool).  Plans are shipped once
    per pool; every dispatch against the same plan object reuses the
    worker-side caches.

    ``start_method`` picks the ``multiprocessing`` context (``"fork"``,
    ``"spawn"``, ``"forkserver"``; ``None`` uses the platform default).
    ``timeout`` is the per-dispatch default deadline in wall seconds —
    exceeded deadlines raise :class:`~repro.errors.PoolTimeoutError`.

    Passing ``topology`` makes the pool NUMA-aware: workers default to
    one per memory channel, they are partitioned into one executor group
    per channel, and rank-aligned dispatches route each shard to its home
    channel's group (``shard -> worker affinity by channel``).  ``pin``
    additionally restricts each group's workers to a contiguous block of
    the host's CPUs (``sched_setaffinity``), modeling socket locality.
    Without ``topology`` the pool is a single flat group, exactly as
    before.

    A dispatch error closes the pool: worker state is unknown after a
    crash, and leaving segments mapped would leak them.
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 timeout: Optional[float] = None, *,
                 topology=None, pin: bool = False):
        if workers is None:
            if topology is None:
                raise ConfigurationError(
                    "ShardPool needs workers >= 1 (or a topology to "
                    "default one worker per channel)")
            workers = topology.channels
        if workers < 1:
            raise ConfigurationError("ShardPool needs workers >= 1")
        self.workers = workers
        self.start_method = start_method
        self.timeout = timeout
        self.topology = topology
        self.pin = bool(pin)
        n_groups = 1 if topology is None else min(workers, topology.channels)
        ctx = get_context(start_method) if start_method else None
        cpus = self._host_cpus() if self.pin else ()
        wq, wr = divmod(workers, n_groups)
        self._executors: List[ProcessPoolExecutor] = []
        for g in range(n_groups):
            if self.pin and cpus:
                # Contiguous CPU blocks per group, remainders to the low
                # groups — the same convention as the shard splitter.
                cq, cr = divmod(len(cpus), n_groups)
                lo = g * cq + min(g, cr)
                block = tuple(cpus[lo:lo + cq + (1 if g < cr else 0)])
                init, initargs = _pin_worker, (block,)
            else:
                init, initargs = None, ()
            self._executors.append(ProcessPoolExecutor(
                max_workers=wq + (1 if g < wr else 0),
                mp_context=ctx,
                initializer=init, initargs=initargs,
            ))
        self._shipments: "weakref.WeakKeyDictionary[Any, PlanShipment]" \
            = weakref.WeakKeyDictionary()
        self._owned: List[PlanShipment] = []

    @staticmethod
    def _host_cpus() -> Tuple[int, ...]:
        """CPUs available to this process, in stable sorted order."""
        try:
            return tuple(sorted(os.sched_getaffinity(0)))
        except (AttributeError, OSError):  # pragma: no cover
            return tuple(range(os.cpu_count() or 1))

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return not self._executors

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, kill: bool = False) -> None:
        """Shut the workers down and unlink every shipped segment.

        ``kill=True`` (the error path) terminates worker processes
        outright instead of letting them drain: a hung or crashed worker
        must not outlive the dispatch that abandoned it.
        """
        executors, self._executors = self._executors, []
        for executor in executors:
            if kill:
                procs = list(getattr(executor, "_processes", {}).values())
                executor.shutdown(wait=False, cancel_futures=True)
                for proc in procs:
                    if proc.is_alive():
                        proc.terminate()
            else:
                executor.shutdown(wait=True, cancel_futures=True)
        for shipment in self._owned:
            unlink_shipment(shipment)
        self._owned.clear()
        self._shipments = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------

    def ship(self, plan) -> PlanShipment:
        """The plan's shipment, created on first use per pool."""
        shipment = self._shipments.get(plan)
        if shipment is None:
            shipment = ship_plan(plan)
            self._shipments[plan] = shipment
            self._owned.append(shipment)
            _metrics.inc("dispatch.pool.shipments")
        return shipment

    def run_shards(
        self,
        plan,
        specs: Sequence[Tuple[int, np.ndarray, Optional[int],
                              Optional[float],
                              Optional[np.random.Generator]]],
        *,
        batch: bool = True,
        capture_trace: bool = False,
        capture_metrics: bool = False,
        timeout: Optional[float] = None,
        dpu_ranges: Optional[Sequence[Tuple[int, int]]] = None,
        channels: Optional[Sequence[int]] = None,
    ) -> Tuple[List[ShardOutcome], float]:
        """Execute every (n_dpus, inputs, virtual_n, imbalance, rng) spec.

        Returns the outcomes in shard order plus the parent-side wall
        seconds of the whole fan-out (for the utilization gauge).  Raises
        :class:`PoolError` on any worker failure after cancelling the
        rest and closing the pool — no partial results ever escape.

        ``dpu_ranges`` gives each shard its usable-DPU slice (workers
        build topology-faithful sub-systems from it); ``channels`` gives
        each shard's home channel, routing it to that channel's executor
        group on a topology-aware pool.
        """
        if not self._executors:
            raise PoolError("ShardPool is closed")
        deadline = timeout if timeout is not None else self.timeout
        shipment = self.ship(plan)
        tasks = [
            ShardTask(shipment=shipment, index=i, n_dpus=n_dpus,
                      inputs=inputs, virtual_n=virtual_n,
                      imbalance=imbalance, rng=rng, batch=batch,
                      capture_trace=capture_trace,
                      capture_metrics=capture_metrics,
                      dpu_range=dpu_ranges[i] if dpu_ranges is not None
                      else None)
            for i, (n_dpus, inputs, virtual_n, imbalance, rng)
            in enumerate(specs)
        ]
        n_groups = len(self._executors)
        t0 = time.perf_counter()
        try:
            futs: List[Future] = [
                self._executors[
                    (channels[task.index] if channels is not None
                     else task.index) % n_groups
                ].submit(_run_shard_task, task)
                for task in tasks
            ]
        except BrokenExecutor as exc:
            self.close()
            raise PoolError(
                f"worker pool is broken: {type(exc).__name__}: {exc}"
            ) from exc
        outcomes: List[ShardOutcome] = []
        for i, fut in enumerate(futs):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - (time.perf_counter() - t0))
            try:
                got = fut.result(timeout=remaining)
            except FutureTimeoutError:
                self.close(kill=True)
                raise PoolTimeoutError(
                    f"shard {i} did not complete within {deadline:g}s "
                    "(worker hung or died mid-shard)", shard_index=i,
                ) from None
            except BrokenExecutor as exc:
                self.close(kill=True)
                raise PoolError(
                    f"worker running shard {i} died mid-shard: "
                    f"{type(exc).__name__}: {exc}", shard_index=i,
                ) from exc
            if isinstance(got, _ShardFailure):
                self.close(kill=True)
                raise PoolError(
                    f"shard {got.index} raised in its worker: "
                    f"{got.exc_type}: {got.message}",
                    shard_index=got.index,
                )
            outcomes.append(got)
        wall = time.perf_counter() - t0
        _metrics.inc("dispatch.pool.tasks", len(tasks))
        if self.pin:
            _metrics.inc("dispatch.pool.pinned", len(tasks))
        busy = sum(o.busy_seconds for o in outcomes)
        if wall > 0.0:
            _metrics.observe("dispatch.pool.worker_utilization",
                             min(1.0, busy / (wall * self.workers)))
        return outcomes, wall
