"""PlanCache: LRU of compiled ExecutionPlans plus a pooled table image.

Keys build on :func:`repro.core.tablecache.cache_signature` — the stable
digest of a method's table geometry — extended with everything else that
changes a launch's numbers: every primitive constructor knob (so CORDIC
``iterations`` or a polynomial ``degree`` can never collide), sub-methods of
composites (recursively), the reducer's ``assume_in_range``, the op-cost
table, and at the plan level the placement, system configuration, tasklet
count, sample size, transfer schedule, and imbalance.

Two tiers, because tables are placement-independent but tallies are not:

* the **method pool** keys off the placement-*excluded* signature and holds
  one built Method per table image — a WRAM plan and an MRAM plan of the
  same geometry share tables (and the ``memo`` of derived data such as the
  sweep's RMSE evaluation) without rebuilding;
* the **plan LRU** keys off the full launch configuration and holds the
  compiled plans themselves, each with its own path-tally cache.

Both tiers are bounded LRUs; hit/miss/evict counters surface through
``repro.obs.metrics`` (``plancache.*``) and as attributes for tests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.method import Method
from repro.errors import ConfigurationError
from repro.isa.opcosts import OpCosts
from repro.obs import metrics as _metrics
from repro.pim.config import SystemConfig
from repro.pim.system import PIMSystem
from repro.plan.plan import ExecutionPlan, TransferSchedule, compile_plan

__all__ = ["PlanCache", "PlanKey", "key_for", "plan_signature",
           "table_signature"]

_PRIMITIVE = (bool, int, float, str, np.floating, np.integer, np.bool_)


def _typed(value) -> Tuple[str, object]:
    """A primitive as a (type-tag, canonical value) pair.

    The tag keeps distinct types with equal string forms apart (``1`` vs
    ``"1"`` vs ``True``); floats canonicalize through ``hex()`` so the
    component is bit-exact and independent of repr formatting.
    """
    if isinstance(value, (bool, np.bool_)):
        return ("b", bool(value))
    if isinstance(value, (int, np.integer)):
        return ("i", int(value))
    if isinstance(value, (float, np.floating)):
        return ("f", float(value).hex())
    return ("s", str(value))


def _costs_parts(costs: OpCosts) -> Tuple[Tuple[str, Tuple[str, object]], ...]:
    """The op-cost table as sorted (field, typed value) pairs."""
    return tuple((f.name, _typed(getattr(costs, f.name)))
                 for f in sorted(fields(costs), key=lambda f: f.name))


def _method_parts(method: Method, include_placement: bool) -> tuple:
    """Every field that can change this method's numbers, as typed tuples.

    Recurses into sub-Methods (composites like DL-LUT and the tan quotient
    keep their knobs on their parts) and into the geometry record.  The
    structure is pure nested tuples of tagged primitives — no object reprs,
    which can churn across refactors or collide across distinct values —
    so its canonical encoding is a stable cache-key component (enforced by
    the ``cache-key`` lint pass, rule ``key-unstable-component``).
    """
    from repro.core.tablecache import cache_signature

    parts = [("table", ("s", cache_signature(method))),
             ("air", _typed(method.assume_in_range)),
             ("costs", _costs_parts(method.costs))]
    if include_placement:
        parts.append(("placement", ("s", str(method.placement))))
    for name, value in sorted(vars(method).items()):
        if name.startswith("_") or name == "placement":
            continue
        if isinstance(value, _PRIMITIVE):
            parts.append((name, _typed(value)))
        elif isinstance(value, Method):
            parts.append((name, _method_parts(value, include_placement)))
    return tuple(parts)


def _digest(parts: tuple) -> str:
    """Stable 24-hex digest of a nested typed-tuple structure.

    ``repr`` here is unambiguous: every leaf is a tagged primitive tuple,
    so equal structures encode equally and distinct ones cannot collide
    textually.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:24]


def table_signature(method: Method) -> str:
    """Placement-independent identity of a method's built table image."""
    digest = _digest(_method_parts(method, include_placement=False))
    return f"{method.method_name}-{method.spec.name}-{digest}"


def plan_signature(method: Method) -> str:
    """Full launch-relevant identity (table image + placement)."""
    digest = _digest(_method_parts(method, include_placement=True))
    return f"{method.method_name}-{method.spec.name}-{digest}"


@dataclass(frozen=True)
class PlanKey:
    """Everything that distinguishes one compiled launch from another."""

    table_key: str
    placement: str
    system: SystemConfig
    costs: OpCosts
    tasklets: int
    sample_size: int
    transfers: TransferSchedule
    imbalance: float
    #: Whether the plan routes launches through the array-compiled fused
    #: evaluator (:mod:`repro.batch.vec`).  Results are bit-identical
    #: either way, but the flag is observable plan behavior (metrics,
    #: describe, fallback path), so a vec-disabled lookup must never be
    #: served a vec-enabled plan.
    vec: bool = True
    #: Compact signature of the system's channel/DIMM/rank hierarchy
    #: (:meth:`Topology.signature`).  The ``system`` field already embeds
    #: the full topology by value; this surfaces it as its own covered
    #: component so serve-side request keys and coalescing stay aligned
    #: with plan-cache identity when only the hierarchy differs (same
    #: ``n_dpus``, different rank structure changes unbalanced timings).
    topology: str = ""


def key_for(system: PIMSystem, method: Method, *,
            tasklets: int = 16, sample_size: int = 64,
            transfers: Optional[TransferSchedule] = None,
            imbalance: float = 0.0, vec: bool = True) -> PlanKey:
    """The PlanKey a :meth:`PlanCache.plan` call with these arguments uses.

    Module-level so key producers that are not caches — the serving front
    end's normalized request keys (:mod:`repro.serve.keys`) — derive their
    identity through the exact same builder.
    """
    return PlanKey(
        table_key=table_signature(method),
        placement=method.placement,
        system=system.config,
        costs=system.costs,
        tasklets=tasklets,
        sample_size=sample_size,
        transfers=transfers if transfers is not None
        else TransferSchedule(),
        imbalance=imbalance,
        vec=vec,
        topology=system.config.topology.signature(),
    )


@dataclass
class _PoolEntry:
    """One built table image shared by every placement's plan."""

    method: Method
    memo: dict = field(default_factory=dict)


class PlanCache:
    """Bounded LRU of ExecutionPlans with a shared built-table pool."""

    def __init__(self, maxsize: int = 64,
                 method_pool_size: Optional[int] = None):
        if maxsize < 1:
            raise ConfigurationError("PlanCache needs maxsize >= 1")
        self.maxsize = maxsize
        self.method_pool_size = method_pool_size if method_pool_size \
            is not None else max(maxsize, 8)
        if self.method_pool_size < 1:
            raise ConfigurationError("PlanCache needs method_pool_size >= 1")
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._methods: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.table_hits = 0
        self.table_misses = 0
        self.table_evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    # ------------------------------------------------------------------

    def key_for(self, system: PIMSystem, method: Method, *,
                tasklets: int = 16, sample_size: int = 64,
                transfers: Optional[TransferSchedule] = None,
                imbalance: float = 0.0, vec: bool = True) -> PlanKey:
        """The PlanKey a :meth:`plan` call with these arguments would use."""
        return key_for(system, method, tasklets=tasklets,
                       sample_size=sample_size, transfers=transfers,
                       imbalance=imbalance, vec=vec)

    def plan(self, system: PIMSystem, method: Method, *,
             tasklets: int = 16, sample_size: int = 64,
             transfers: Optional[TransferSchedule] = None,
             imbalance: float = 0.0, vec: bool = True) -> ExecutionPlan:
        """The compiled plan for this launch configuration, cached.

        On a plan miss, the method pool is consulted first: an equivalent
        built table image (any placement) is reused via
        :meth:`~repro.core.method.Method.set_placement` instead of
        rebuilding; only a pool miss pays for table generation.
        ``method`` may be passed un-setup — compilation builds it (or
        skips the build entirely on a pool hit).
        """
        key = self.key_for(system, method, tasklets=tasklets,
                           sample_size=sample_size, transfers=transfers,
                           imbalance=imbalance, vec=vec)
        cached = self._plans.get(key)
        if cached is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            _metrics.inc("plancache.hits")
            return cached
        self.misses += 1
        _metrics.inc("plancache.misses")

        entry = self._methods.get(key.table_key)
        pooled_hit = entry is not None
        if entry is None:
            entry = _PoolEntry(method=method)
        else:
            self._methods.move_to_end(key.table_key)
        pooled = entry.method
        if pooled_hit and pooled.placement != key.placement:
            pooled.set_placement(key.placement)

        plan = compile_plan(
            system, pooled, tasklets=tasklets, sample_size=sample_size,
            transfers=key.transfers, imbalance=imbalance,
            signature=plan_signature(pooled), memo=entry.memo, vec=vec,
        )
        # Pool only after a successful compile: a failing table build must
        # not leave a half-built method answering future pool lookups.
        if pooled_hit:
            self.table_hits += 1
            _metrics.inc("plancache.table_hits")
        else:
            self.table_misses += 1
            _metrics.inc("plancache.table_misses")
            self._methods[key.table_key] = entry
        self._plans[key] = plan
        self._evict()
        return plan

    # ------------------------------------------------------------------

    def _evict(self) -> None:
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.evictions += 1
            _metrics.inc("plancache.evictions")
        while len(self._methods) > self.method_pool_size:
            self._methods.popitem(last=False)
            self.table_evictions += 1
            _metrics.inc("plancache.table_evictions")

    def clear(self) -> None:
        """Drop every cached plan and pooled table image."""
        self._plans.clear()
        self._methods.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (also mirrored in ``repro.obs.metrics``)."""
        return {
            "plans": len(self._plans),
            "methods": len(self._methods),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "table_evictions": self.table_evictions,
        }
