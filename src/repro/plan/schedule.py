"""General pipeline scheduler: h2p/kernel/p2h stages across launches.

The double-buffered shard timeline of PR 4 modeled one special case: the
shards of a single launch, each on its own DPU group.  "UPMEM Unleashed"
(PAPERS.md, arxiv 2510.15927) catalogs the general pattern real deployments
use — *any* stream of launches (different kernels, different shard counts)
keeps the host links and the compute groups all busy at once, subject to
three resource constraints:

* the host->PIM link is serial: scatters happen in submission order;
* a DPU group runs one kernel at a time: the kernel stage serializes
  between items whose DPU ranges overlap, and runs concurrently otherwise;
* the PIM->host link is serial: gathers happen in submission order.

:func:`schedule_pipeline` computes the resulting timeline for a sequence of
:class:`StageItem` entries::

    h2p_done[i]  = h2p_done[i-1] + h2p[i]
    k_start[i]   = max(h2p_done[i], k_done[j])   over j<i with overlapping
    k_done[i]    = k_start[i] + launch[i] + kernel[i]         DPU ranges
    p2h_done[i]  = max(k_done[i], p2h_done[i-1]) + p2h[i]
    makespan     = p2h_done[last]

When every item occupies a distinct DPU range (the sharded-dispatch case)
the ``k_start`` max is over nothing and the recurrence collapses **bit for
bit** to the PR 4 double-buffered timeline — the property
``tests/plan/test_schedule.py`` pins with exact arithmetic, and the
dispatcher relies on to keep its overlap totals unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["StageItem", "ScheduledItem", "PipelineSchedule",
           "schedule_pipeline"]


@dataclass(frozen=True)
class StageItem:
    """One launch's (or shard's) stage times entering the pipeline.

    ``dpu_range`` is the half-open [start, stop) interval of DPU indices
    the kernel stage occupies; items whose ranges overlap serialize on the
    compute resource.  ``None`` means "the whole system" and conflicts
    with everything.
    """

    key: str
    h2p: float
    launch: float
    kernel: float
    p2h: float
    dpu_range: Optional[Tuple[int, int]] = None

    @property
    def total(self) -> float:
        """Back-to-back time of this item alone (the serial contribution)."""
        return self.h2p + self.launch + self.kernel + self.p2h

    def conflicts(self, other: "StageItem") -> bool:
        """Whether the two items' kernel stages contend for DPUs."""
        if self.dpu_range is None or other.dpu_range is None:
            return True
        a, b = self.dpu_range, other.dpu_range
        return a[0] < b[1] and b[0] < a[1]


@dataclass
class ScheduledItem:
    """One item placed on the pipeline timeline (absolute offsets)."""

    item: StageItem
    h2p_start: float
    h2p_done: float
    kernel_start: float
    kernel_done: float
    p2h_start: float
    p2h_done: float

    @property
    def start_seconds(self) -> float:
        return self.h2p_start

    @property
    def finish_seconds(self) -> float:
        return self.p2h_done


@dataclass
class PipelineSchedule:
    """The full interleaved timeline of a launch stream."""

    items: List[ScheduledItem]
    makespan: float

    @property
    def serial_seconds(self) -> float:
        """What the same items cost launched strictly back to back."""
        total = 0.0
        for s in self.items:
            total += s.item.total
        return total

    @property
    def saving_seconds(self) -> float:
        """Time the interleaving hides relative to serial launches."""
        return self.serial_seconds - self.makespan


def schedule_pipeline(items: Sequence[StageItem]) -> PipelineSchedule:
    """Timeline for ``items`` under the three-resource pipeline model.

    Items are processed in submission order (the host issues scatters and
    gathers FIFO); only the kernel stage ever reorders against neighbours,
    and then only when their DPU ranges are disjoint.
    """
    if not items:
        raise SimulationError("cannot schedule an empty launch stream")
    for it in items:
        for name in ("h2p", "launch", "kernel", "p2h"):
            if getattr(it, name) < 0.0:
                raise SimulationError(
                    f"stage item {it.key!r} has negative {name} time")
    scheduled: List[ScheduledItem] = []
    h2p_done = 0.0
    p2h_done = 0.0
    for it in items:
        h2p_start = h2p_done
        h2p_done = h2p_done + it.h2p
        k_start = h2p_done
        for prev in scheduled:
            if it.conflicts(prev.item):
                k_start = max(k_start, prev.kernel_done)
        k_done = k_start + it.launch + it.kernel
        p2h_start = max(k_done, p2h_done)
        p2h_done = p2h_start + it.p2h
        scheduled.append(ScheduledItem(
            item=it, h2p_start=h2p_start, h2p_done=h2p_done,
            kernel_start=k_start, kernel_done=k_done,
            p2h_start=p2h_start, p2h_done=p2h_done,
        ))
    return PipelineSchedule(items=scheduled, makespan=p2h_done)
