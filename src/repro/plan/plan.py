"""Compile-once execution plans: the host-side setup made explicit.

The paper's Figure 1(c) deployment separates a one-time host-side setup
(table generation and placement) from many PIM-side launches.  An
:class:`ExecutionPlan` is that split made first-class in the simulator: it
is compiled once per (kernel, system configuration) and captures everything
*input-independent* about a launch —

* the table image and placement (the bound :class:`~repro.core.method.Method`
  after :meth:`~repro.core.method.Method.setup`),
* the bound batch cost-path classifier plus a **path-tally cache** that
  amortizes scalar tracing across launches (equal path key means
  bit-identical tally, the invariant the differential harness in
  ``tests/batch/`` enforces — so a cached tally is exact, not approximate),
* the transfer schedule (:class:`TransferSchedule`: bytes per element,
  whether transfers are modeled, whether they are balanced),
* the launch geometry (tasklets, sample size, imbalance) and the SPMD
  work split over the system's cores.

:meth:`ExecutionPlan.execute` then runs any number of input arrays through
the compiled launch.  :meth:`PIMSystem.run <repro.pim.system.PIMSystem.run>`
is a thin wrapper that compiles a throwaway plan per call — bit-identical to
the pre-plan monolith; the differential harness in ``tests/plan/`` holds the
two paths equal field for field across the whole ``METHOD_SUPPORT`` matrix.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.batch.vec import VecEvaluator, compile_vec
from repro.core.method import Method
from repro.errors import SimulationError
from repro.isa.counter import Tally
from repro.obs import metrics as _metrics
from repro.obs.tracer import span as _span
from repro.pim.dpu import DPU
from repro.pim.system import PIMSystem, SystemRunResult

__all__ = ["TransferSchedule", "ExecutionPlan", "compile_plan"]

_F32 = np.float32

#: Bound on each plan's launch-result memo (distinct input arrays kept).
_LAUNCH_MEMO_SIZE = 128


@dataclass(frozen=True)
class TransferSchedule:
    """Host<->PIM transfer shape of one launch, fixed at plan time.

    ``include_transfers=False`` models the in-PIM-pipeline deployment of
    Figure 1(c) where operands already live in the banks; ``balanced=False``
    models unequal per-bank buffers, which serialize at the single-bank
    bandwidth (Section 2.1 of the paper).  ``rank_parallel=True`` relaxes
    that serialization to rank granularity: unbalanced copies to distinct
    ranks proceed concurrently, so the serial time divides by the rank
    fan-out of the DPUs actually used.  It is opt-in — the default keeps
    the legacy whole-system serial model bit-identical.
    """

    bytes_in_per_element: int = 4
    bytes_out_per_element: int = 4
    include_transfers: bool = True
    balanced: bool = True
    rank_parallel: bool = False

    def transfer_ranks(self, config, n_dpus_used: int) -> Optional[int]:
        """Rank fan-out for this schedule's unbalanced copies, or None.

        None means the legacy whole-system serial model applies (balanced
        schedules and transfer-free plans never serialize, so rank
        awareness is moot for them).
        """
        if not self.rank_parallel or self.balanced \
                or not self.include_transfers:
            return None
        n_used = max(1, min(int(n_dpus_used), config.n_dpus))
        return config.topology.ranks_in_range(0, n_used)

    def scatter_seconds(self, config, n_elements: int,
                        ranks: Optional[int] = None) -> float:
        """Host->PIM time for ``n_elements`` under this schedule."""
        if not self.include_transfers:
            return 0.0
        return config.host_to_pim_seconds(
            n_elements * self.bytes_in_per_element, balanced=self.balanced,
            ranks=ranks)

    def gather_seconds(self, config, n_elements: int,
                       ranks: Optional[int] = None) -> float:
        """PIM->host time for ``n_elements`` under this schedule."""
        if not self.include_transfers:
            return 0.0
        return config.pim_to_host_seconds(
            n_elements * self.bytes_out_per_element, balanced=self.balanced,
            ranks=ranks)


class ExecutionPlan:
    """One compiled launch: kernel, tables, classifier, transfers, split.

    Construct via :func:`compile_plan`, :meth:`PIMSystem.plan`, or a
    :class:`~repro.plan.cache.PlanCache` (which additionally pools built
    tables across placements and makes recompilation free).  A plan is
    reusable and stateful only in caches: ``tally_cache`` grows with the
    distinct cost paths seen, ``memo`` holds caller-owned derived data
    (e.g. the sweep's RMSE evaluation), and ``executions`` counts launches.
    """

    def __init__(
        self,
        system: PIMSystem,
        kernel,
        *,
        method: Optional[Method] = None,
        tasklets: int = 16,
        sample_size: int = 64,
        transfers: Optional[TransferSchedule] = None,
        imbalance: float = 0.0,
        signature: Optional[str] = None,
        memo: Optional[dict] = None,
        vec: bool = True,
    ):
        self.system = system
        self.kernel = kernel
        self.method = method if method is not None \
            else DPU._batchable_method(kernel)
        #: Placement the tables are bound to (None for non-Method kernels).
        self.placement = getattr(self.method, "placement", None)
        self.tasklets = tasklets
        self.sample_size = sample_size
        self.transfers = transfers if transfers is not None \
            else TransferSchedule()
        self.imbalance = imbalance
        #: Stable identity under :class:`~repro.plan.cache.PlanCache`
        #: (None for ad-hoc plans).
        self.signature = signature
        #: Whether launches go through the array-compiled fused evaluator
        #: (:mod:`repro.batch.vec`).  Bit-identical either way — the
        #: evaluator only changes wall-clock — but it is a PlanKey field
        #: so a vec-disabled plan never serves a vec-enabled lookup.
        self.vec_enabled = bool(vec)
        #: Path key -> traced Tally; shared across launches (and across
        #: shard sub-plans), exact by the equal-key invariant.
        self.tally_cache: Dict[int, Tally] = {}
        #: Caller-owned derived-data memo; a PlanCache shares it between
        #: the WRAM and MRAM plans of one table image.
        self.memo: dict = {} if memo is None else memo
        #: Number of completed :meth:`execute` calls.
        self.executions = 0
        #: Input-hash -> SystemRunResult for deterministic launches (no
        #: caller rng).  Sampling is seeded per call, so an identical
        #: launch is bit-identical by construction; the memo skips the
        #: whole simulation, not just tracing.  Per-instance (never shared
        #: by :meth:`for_system` — the split differs across systems).
        self._launch_memo: "OrderedDict[tuple, SystemRunResult]" \
            = OrderedDict()

    # ------------------------------------------------------------------

    @property
    def table_bytes(self) -> int:
        """PIM memory the plan's tables occupy (0 for raw kernels)."""
        return self.method.table_bytes() if self.method is not None else 0

    def for_system(self, system: PIMSystem) -> "ExecutionPlan":
        """The same compiled launch retargeted to another system.

        The clone *shares* this plan's path-tally cache and memo — the
        kernel, costs, and placement are identical, so cached tallies stay
        exact; only the SPMD split and transfer times differ.  The sharded
        dispatcher uses this to run one plan over per-shard DPU groups.
        """
        clone = ExecutionPlan(
            system, self.kernel, method=self.method, tasklets=self.tasklets,
            sample_size=self.sample_size, transfers=self.transfers,
            imbalance=self.imbalance, signature=self.signature,
            memo=self.memo, vec=self.vec_enabled,
        )
        clone.tally_cache = self.tally_cache
        return clone

    def _vec_evaluator(self) -> Optional[VecEvaluator]:
        """The plan's compiled array evaluator, or None when disabled.

        Lives in ``memo`` — the dict a :class:`~repro.plan.cache.PlanCache`
        shares between every placement's plan of one table image — because
        the evaluator's memoized ``(values, keys, unique)`` triples are
        placement-independent: a WRAM and an MRAM plan re-running the same
        batch share the array passes and only re-derive per-path tallies
        through their own ``tally_cache``.
        """
        if not self.vec_enabled or self.method is None:
            return None
        evaluator = self.memo.get("vec_evaluator")
        if evaluator is None or evaluator.method is not self.method:
            evaluator = compile_vec(self.method)
            self.memo["vec_evaluator"] = evaluator
        return evaluator

    def values(self, x: np.ndarray) -> np.ndarray:
        """Bit-exact float32 evaluation (the accuracy path; Methods only).

        Served from the fused evaluator's memo when the plan has one —
        repeated accuracy sweeps over the same inputs (including the same
        table image at the other placement) skip the array passes.  The
        result may be a read-only view of the memoized array.
        """
        if self.method is None:
            raise SimulationError(
                "plan wraps a raw kernel; values() needs a Method")
        self._bind_placement()
        x = np.asarray(x, dtype=_F32)
        evaluator = self._vec_evaluator()
        if evaluator is not None:
            fused = evaluator.values(x.ravel())
            if fused is not None:
                return fused.reshape(x.shape)
        return self.method.evaluate_vec(x)

    def _bind_placement(self) -> None:
        """Repoint shared tables at this plan's placement before tracing.

        A PlanCache pools one built Method between its WRAM and MRAM plans;
        set_placement only retargets traced load costs, so flipping it per
        launch is free and keeps every plan's tallies placement-faithful.
        """
        if self.method is not None and self.placement is not None \
                and self.method.placement != self.placement:
            self.method.set_placement(self.placement)

    # ------------------------------------------------------------------

    def execute(
        self,
        inputs: Sequence[float],
        *,
        virtual_n: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        batch: bool = True,
        imbalance: Optional[float] = None,
        span_name: str = "plan.execute",
    ) -> SystemRunResult:
        """Launch the compiled plan over ``inputs``.

        Per-call knobs mirror :meth:`PIMSystem.run`: ``virtual_n`` treats
        ``inputs`` as a sample standing in for that many elements, ``rng``
        seeds the trace-sample draw, ``batch=False`` forces per-element
        scalar tracing, and ``imbalance`` overrides the plan's straggler
        factor for this launch only.  Everything else — transfer schedule,
        tasklets, sample size — was fixed at compile time.

        Launches without a caller ``rng`` are fully deterministic (the
        sample draw is seeded per call), so their results are memoized by
        input content: re-launching the same array returns the cached
        :class:`SystemRunResult` without re-simulating.  Passing ``rng``
        bypasses the memo.
        """
        imb = self.imbalance if imbalance is None else imbalance
        if imb < 0:
            raise SimulationError("imbalance must be non-negative")
        self._bind_placement()
        inputs = np.asarray(inputs, dtype=_F32)
        n = int(virtual_n if virtual_n is not None else inputs.shape[0])
        if n == 0 or inputs.shape[0] == 0:
            raise SimulationError("cannot run a system kernel over empty input")

        memo_key = None
        if rng is None:
            digest = hashlib.blake2b(inputs.tobytes(),
                                     digest_size=16).digest()
            memo_key = (digest, inputs.shape, virtual_n, imb, batch)
            cached = self._launch_memo.get(memo_key)
            if cached is not None:
                self._launch_memo.move_to_end(memo_key)
                self.executions += 1
                _metrics.inc("plan.executions")
                _metrics.inc("plan.launch_memo.hits")
                with _span(span_name, n_elements=n, tasklets=self.tasklets,
                           n_dpus_used=cached.n_dpus_used,
                           cached=True) as run_sp:
                    run_sp.set(sim_seconds=cached.total_seconds)
                return cached

        system = self.system
        config = system.config
        sched = self.transfers
        per_core = system.elements_per_dpu(n)
        n_used = min(config.n_dpus, -(-n // per_core))
        ranks = sched.transfer_ranks(config, n_used)
        if ranks is not None:
            _metrics.observe("topology.transfer_rank_parallelism", ranks)

        with _span(span_name, n_elements=n, tasklets=self.tasklets,
                   n_dpus_used=n_used) as run_sp:
            with _span("host_to_pim") as h2p_sp:
                h2p = sched.scatter_seconds(config, n, ranks=ranks)
                h2p_sp.set(sim_seconds=h2p,
                           bytes=n * sched.bytes_in_per_element
                           if sched.include_transfers else 0)

            # The representative core traces a sample drawn from the full
            # input distribution but runs its per-core share of elements.
            with _span("kernel") as k_sp:
                core_result = system.dpu.run_kernel(
                    self.kernel,
                    inputs,
                    tasklets=self.tasklets,
                    sample_size=self.sample_size,
                    bytes_in_per_element=sched.bytes_in_per_element,
                    bytes_out_per_element=sched.bytes_out_per_element,
                    rng=rng,
                    virtual_n=n,
                    batch=batch,
                    tally_cache=self.tally_cache if batch else None,
                    vec=self._vec_evaluator() if batch else None,
                )
                share = per_core / n * (1.0 + imb)
                kernel_seconds = core_result.seconds * share
                k_sp.set(sim_seconds=kernel_seconds,
                         cycles=core_result.cycles * share,
                         per_dpu_cycles=core_result.cycles,
                         slots=core_result.total_tally.slots)

            with _span("pim_to_host") as p2h_sp:
                p2h = sched.gather_seconds(config, n, ranks=ranks)
                p2h_sp.set(sim_seconds=p2h,
                           bytes=n * sched.bytes_out_per_element
                           if sched.include_transfers else 0)

            with _span("launch") as l_sp:
                launch = config.launch_overhead_s
                l_sp.set(sim_seconds=launch)

            result = SystemRunResult(
                n_elements=n,
                n_dpus_used=n_used,
                tasklets=self.tasklets,
                kernel_seconds=kernel_seconds,
                host_to_pim_seconds=h2p,
                pim_to_host_seconds=p2h,
                launch_seconds=launch,
                per_dpu=core_result,
                imbalance=imb,
                virtual_n=virtual_n,
                include_transfers=sched.include_transfers,
                balanced_transfers=sched.balanced,
            )
            run_sp.set(sim_seconds=result.total_seconds)
        self.executions += 1
        _metrics.inc("plan.executions")
        if memo_key is not None:
            _metrics.inc("plan.launch_memo.misses")
            self._launch_memo[memo_key] = result
            while len(self._launch_memo) > _LAUNCH_MEMO_SIZE:
                self._launch_memo.popitem(last=False)
        return result

    # ------------------------------------------------------------------

    def describe(self, n_elements: Optional[int] = None,
                 shards: int = 1) -> str:
        """Human-readable plan report (powers ``repro plan``)."""
        from repro.analysis.report import format_table

        m = self.method
        head = "execution plan"
        if m is not None:
            head += f" {m.method_name}:{m.spec.name}"
        if self.signature is not None:
            head += f"  [{self.signature}]"
        cfg = self.system.config
        sched = self.transfers
        rows = [
            ("kernel", "raw callable" if m is None else "Method.evaluate"),
            ("placement", "-" if self.placement is None
             else self.placement.upper()),
            ("table bytes", self.table_bytes),
            ("system", f"{cfg.n_dpus} DPUs x {self.tasklets} tasklets"),
            ("topology", cfg.topology.signature()
             + (" (rank-parallel transfers)" if sched.rank_parallel
                else "")),
            ("sample size", self.sample_size),
            ("imbalance", self.imbalance),
            ("transfers",
             f"in {sched.bytes_in_per_element} B/elem, "
             f"out {sched.bytes_out_per_element} B/elem, "
             f"{'balanced' if sched.balanced else 'serialized'}"
             if sched.include_transfers else "none (operands resident)"),
            ("vec evaluator", "enabled" if self.vec_enabled and m is not None
             else "disabled"),
            ("cached cost paths", len(self.tally_cache)),
            ("executions", self.executions),
        ]
        text = head + "\n" + format_table(["field", "value"], rows)
        if n_elements is not None:
            from repro.plan.dispatch import shard_split
            split = shard_split(n_elements, cfg.n_dpus, shards)
            srows = [(i, ne, nd, -(-ne // max(nd, 1)))
                     for i, (ne, nd) in enumerate(split)]
            text += ("\n\nshard split "
                     f"(n={n_elements}, shards={shards})\n"
                     + format_table(
                         ["shard", "elements", "dpus", "elems/dpu"], srows))
        return text


def compile_plan(
    system: PIMSystem,
    target,
    *,
    tasklets: int = 16,
    sample_size: int = 64,
    transfers: Optional[TransferSchedule] = None,
    imbalance: float = 0.0,
    signature: Optional[str] = None,
    memo: Optional[dict] = None,
    vec: bool = True,
) -> ExecutionPlan:
    """Compile ``target`` (a Method or a raw kernel) into an ExecutionPlan.

    For a Method, host-side setup runs here if it has not already — this is
    the one-time table build of Figure 1(c); the returned plan then launches
    without ever rebuilding.  Raw kernels compile to an unclassified plan
    (scalar-traced, uncacheable by signature) so every existing workload
    kernel still fits the same pipeline.
    """
    if isinstance(target, Method):
        method, kernel = target, target.evaluate
    else:
        method, kernel = DPU._batchable_method(target), target
    with _span("plan.compile") as sp:
        if method is not None and not method._ready:
            with _span("plan.table_build") as build_sp:
                method.setup()
                build_sp.set(table_bytes=method.table_bytes(),
                             entries=method.host_entries())
        plan = ExecutionPlan(
            system, kernel, method=method, tasklets=tasklets,
            sample_size=sample_size, transfers=transfers,
            imbalance=imbalance, signature=signature, memo=memo, vec=vec,
        )
        sp.set(table_bytes=plan.table_bytes,
               placement=plan.placement or "-",
               classified=method is not None)
        _metrics.inc("plan.compiles")
    return plan
