"""Q-format descriptors for signed fixed-point numbers.

The paper's fixed-point CORDIC/L-LUT variants use an s3.28 format: 1 sign bit,
3 integer bits (enough for values up to 2*pi), and 28 fractional bits in a
32-bit word (Section 3.1).  :class:`QFormat` captures such a layout and the
conversions between raw integer words and real values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QFormat", "Q3_28", "Q15_16", "Q1_30"]


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement fixed-point format ``s<int_bits>.<frac_bits>``.

    The word width is ``1 + int_bits + frac_bits`` and must fit in 32 bits,
    matching the DPU's native register width.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ConfigurationError("Q-format bit counts must be non-negative")
        if self.word_bits > 32:
            raise ConfigurationError(
                f"Q-format s{self.int_bits}.{self.frac_bits} needs "
                f"{self.word_bits} bits; the PIM word is 32 bits"
            )

    # ------------------------------------------------------------------
    # layout

    @property
    def word_bits(self) -> int:
        """Total width including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """The value of one integer unit: ``2**frac_bits``."""
        return 1 << self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment, ``2**-frac_bits``."""
        return 1.0 / self.scale

    @property
    def max_raw(self) -> int:
        """Largest raw word (two's complement positive limit)."""
        return (1 << (self.word_bits - 1)) - 1

    @property
    def min_raw(self) -> int:
        """Smallest raw word (two's complement negative limit)."""
        return -(1 << (self.word_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw / self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable real value."""
        return self.min_raw / self.scale

    def __str__(self) -> str:
        return f"s{self.int_bits}.{self.frac_bits}"

    # ------------------------------------------------------------------
    # conversions

    def from_float(
        self, value: Union[float, np.ndarray], saturate: bool = True
    ) -> Union[int, np.ndarray]:
        """Quantize real value(s) to raw word(s), rounding to nearest.

        With ``saturate=True`` (the default, matching the library's host-side
        table generation) out-of-range values clamp to the format limits;
        otherwise they wrap in two's complement like DPU integer arithmetic.
        """
        scaled = np.round(np.asarray(value, dtype=np.float64) * self.scale)
        # Values beyond int64 would overflow the cast below; clamp first.
        scaled = np.clip(scaled, -(2.0 ** 62), 2.0 ** 62)
        raw = scaled.astype(np.int64)
        if saturate:
            raw = np.clip(raw, self.min_raw, self.max_raw)
        else:
            raw = np.asarray(self.wrap(raw))
        if raw.ndim == 0:
            return int(raw)
        return raw

    def to_float(self, raw: Union[int, np.ndarray]) -> Union[float, np.ndarray]:
        """Convert raw word(s) back to real value(s) (float64, exact)."""
        value = np.asarray(raw, dtype=np.float64) / self.scale
        if value.ndim == 0:
            return float(value)
        return value

    def wrap(self, raw: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
        """Reduce raw word(s) into the format's two's-complement range."""
        modulus = 1 << self.word_bits
        half = 1 << (self.word_bits - 1)
        wrapped = (np.asarray(raw, dtype=np.int64) + half) % modulus - half
        if wrapped.ndim == 0:
            return int(wrapped)
        return wrapped

    def saturate(self, raw: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
        """Clamp raw word(s) to the representable range."""
        clamped = np.clip(np.asarray(raw, dtype=np.int64), self.min_raw, self.max_raw)
        if clamped.ndim == 0:
            return int(clamped)
        return clamped

    def representable(self, value: float) -> bool:
        """True when ``value`` lies within the format's range."""
        return self.min_value <= value <= self.max_value


#: The paper's format: 1 sign + 3 integer bits (covers 2*pi) + 28 fraction bits.
Q3_28 = QFormat(int_bits=3, frac_bits=28)

#: A wider-range format useful for exp/log intermediate values.
Q15_16 = QFormat(int_bits=15, frac_bits=16)

#: A high-precision format for values in (-2, 2), e.g. CORDIC vectors.
Q1_30 = QFormat(int_bits=1, frac_bits=30)
