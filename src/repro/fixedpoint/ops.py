"""Counted and vectorized arithmetic on fixed-point raw words.

Scalar functions take a :class:`~repro.isa.CycleCounter` and charge DPU-native
costs: fixed-point add/subtract/shift are single integer instructions, and a
fixed-point multiply is an integer multiply plus a renormalizing shift.  This
is exactly why the paper's fixed-point interpolated L-LUT doubles the
performance of its floating-point counterpart — the one multiply in the
interpolation becomes ~3x cheaper.

Vectorized twins (suffix ``_vec``) operate on int64 numpy arrays of raw words
and apply two's-complement wrapping at the format width, so they are bit-exact
with 32-bit DPU arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.isa.counter import CycleCounter

__all__ = [
    "fx_add",
    "fx_sub",
    "fx_mul",
    "fx_div",
    "fx_neg",
    "fx_shift",
    "fx_round_index",
    "fx_frac",
    "fx_add_vec",
    "fx_sub_vec",
    "fx_mul_vec",
    "fx_div_vec",
]


def fx_add(ctx: CycleCounter, fmt: QFormat, a: int, b: int) -> int:
    """Fixed-point add: one native integer add, wrapping at the word width."""
    return fmt.wrap(ctx.iadd(a, b))


def fx_sub(ctx: CycleCounter, fmt: QFormat, a: int, b: int) -> int:
    """Fixed-point subtract: one native integer subtract."""
    return fmt.wrap(ctx.isub(a, b))


def fx_neg(ctx: CycleCounter, fmt: QFormat, a: int) -> int:
    """Fixed-point negate: one native integer subtract from zero."""
    return fmt.wrap(ctx.isub(0, a))


def fx_mul(ctx: CycleCounter, fmt: QFormat, a: int, b: int) -> int:
    """Fixed-point multiply: emulated integer multiply + renormalizing shift.

    The full product carries ``2*frac_bits`` fraction bits and exceeds 32 bits
    for formats like s3.28, so the emulated wide (32x32 -> 64) multiply is
    charged.  Shifting right by ``frac_bits`` (arithmetic) restores the
    format; rounding is truncation toward negative infinity, matching a bare
    ``asr`` on the DPU.
    """
    wide = ctx.imul64(a, b)
    return fmt.wrap(ctx.shr(wide, fmt.frac_bits))


def fx_div(ctx: CycleCounter, fmt: QFormat, a: int, b: int) -> int:
    """Fixed-point divide: widen the dividend, then emulated wide division.

    ``(a << frac_bits) / b`` restores the format; truncates toward zero like
    the DPU's emulated divide.
    """
    wide = ctx.shl(a, fmt.frac_bits)
    return fmt.wrap(ctx.idiv64(wide, b))


def fx_shift(ctx: CycleCounter, fmt: QFormat, a: int, n: int) -> int:  # lint: const(n)
    """Multiply/divide by ``2**n`` via a single shift (n may be negative)."""
    if n >= 0:
        return fmt.wrap(ctx.shl(a, n))
    return fmt.wrap(ctx.shr(a, -n))


def fx_round_index(ctx: CycleCounter, fmt: QFormat, a: int,
                   index_shift: int) -> int:  # lint: const(index_shift)
    """Round a fixed-point word to an integer index: ``round(a * 2**-shift)``.

    Used by fixed-point L-LUT address generation: add half an LSB of the
    target granularity, then arithmetic-shift right.  Two native instructions.
    """
    half = 1 << (index_shift - 1) if index_shift > 0 else 0
    biased = ctx.iadd(a, half)
    return ctx.shr(biased, index_shift)


def fx_frac(ctx: CycleCounter, fmt: QFormat, a: int,
            index_shift: int) -> int:  # lint: const(index_shift)
    """Extract the sub-index fraction bits of ``a`` below ``index_shift``.

    Returns a raw word still scaled by ``2**frac_bits`` after renormalization,
    i.e. the interpolation weight Delta in [0, 1).  Two native instructions
    (mask + shift).
    """
    mask = (1 << index_shift) - 1
    frac = ctx.iand(a, mask)
    return fx_shift(ctx, fmt, frac, fmt.frac_bits - index_shift)


# ----------------------------------------------------------------------
# vectorized twins (raw words as int64 arrays, wrapped at the word width)


def fx_add_vec(fmt: QFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized fixed-point add on raw words."""
    return fmt.wrap(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64))


def fx_sub_vec(fmt: QFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized fixed-point subtract on raw words."""
    return fmt.wrap(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))


def fx_mul_vec(fmt: QFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized fixed-point multiply on raw words (truncating shift)."""
    wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return fmt.wrap(wide >> fmt.frac_bits)


def fx_div_vec(fmt: QFormat, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized fixed-point divide on raw words.

    Bit-identical to :func:`fx_div`: the dividend widens by ``frac_bits``,
    the quotient truncates toward zero (the DPU's emulated divide), and the
    result wraps at the word width.  A zero anywhere in ``b`` raises
    ``ZeroDivisionError``, exactly like the scalar path — the array twins
    never silently substitute a value where the counted op would trap.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if np.any(b == 0):
        raise ZeroDivisionError("fixed-point division by zero")
    wide = a << fmt.frac_bits
    quot = np.abs(wide) // np.abs(b)
    return fmt.wrap(np.where((wide < 0) != (b < 0), -quot, quot))
