"""Signed fixed-point arithmetic (the paper's s3.28 format and friends)."""

from repro.fixedpoint.array import FxArray

from repro.fixedpoint.ops import (
    fx_add,
    fx_add_vec,
    fx_div,
    fx_div_vec,
    fx_frac,
    fx_mul,
    fx_mul_vec,
    fx_neg,
    fx_round_index,
    fx_shift,
    fx_sub,
    fx_sub_vec,
)
from repro.fixedpoint.qformat import Q1_30, Q3_28, Q15_16, QFormat

__all__ = [
    "FxArray",
    "QFormat",
    "Q3_28",
    "Q15_16",
    "Q1_30",
    "fx_add",
    "fx_sub",
    "fx_mul",
    "fx_div",
    "fx_neg",
    "fx_shift",
    "fx_round_index",
    "fx_frac",
    "fx_add_vec",
    "fx_sub_vec",
    "fx_mul_vec",
    "fx_div_vec",
]
