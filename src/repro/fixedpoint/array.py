"""FxArray: an ergonomic vectorized fixed-point array type.

The counted scalar ops (:mod:`repro.fixedpoint.ops`) are what PIM kernels
use; host-side table generation, test oracles, and fully fixed pipelines
benefit from an array type with natural operators.  ``FxArray`` wraps raw
int64 words plus a :class:`~repro.fixedpoint.qformat.QFormat` and implements
two's-complement-exact arithmetic: every operator applies ``fmt.wrap``
to its result explicitly, so each intermediate — not just the stored
word — reduces into the format's range exactly like a 32-bit DPU register.
The operators are bit-identical to the counted ``fx_*`` ops and their
``_vec`` twins at every word-width boundary (the hypothesis differential
suite in ``tests/fixedpoint/`` samples the full raw range), and division
by zero raises ``ZeroDivisionError`` exactly like the scalar ``fx_div``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fixedpoint.qformat import Q3_28, QFormat

__all__ = ["FxArray"]

Number = Union[int, float]


class FxArray:
    """A fixed-point array with numpy-style operators, wrapping like a DPU."""

    __slots__ = ("fmt", "raw")

    def __init__(self, raw: np.ndarray, fmt: QFormat = Q3_28):
        self.fmt = fmt
        self.raw = np.asarray(fmt.wrap(np.asarray(raw, dtype=np.int64)),
                              dtype=np.int64)

    # ------------------------------------------------------------------
    # construction / conversion

    @classmethod
    def from_float(cls, values, fmt: QFormat = Q3_28,
                   saturate: bool = True) -> "FxArray":
        """Quantize real values (round-to-nearest; saturating by default)."""
        raw = fmt.from_float(np.asarray(values, dtype=np.float64),
                             saturate=saturate)
        return cls(np.asarray(raw, dtype=np.int64), fmt)

    def to_float(self) -> np.ndarray:
        """Exact real values as float64."""
        return np.asarray(self.fmt.to_float(self.raw))

    def to_float32(self) -> np.ndarray:
        """Values rounded to float32 (the PIM output conversion)."""
        return self.to_float().astype(np.float32)

    # ------------------------------------------------------------------

    @property
    def shape(self):
        return self.raw.shape

    def __len__(self) -> int:
        return len(self.raw)

    def __repr__(self) -> str:
        return f"FxArray({self.fmt}, {self.to_float()!r})"

    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, FxArray):
            if other.fmt != self.fmt:
                raise ConfigurationError(
                    f"format mismatch: {self.fmt} vs {other.fmt}"
                )
            return other.raw
        if isinstance(other, (int, float, np.floating, np.integer)):
            return np.asarray(self.fmt.from_float(float(other)),
                              dtype=np.int64)
        raise ConfigurationError(f"cannot combine FxArray with {type(other)}")

    # ------------------------------------------------------------------
    # arithmetic (two's-complement wrapping, like DPU registers)
    #
    # Every operator wraps its result at the format's word width before
    # construction, mirroring fx_add/fx_sub/fx_mul/fx_div and the _vec
    # twins bit for bit — including at the s3.28 domain limits, where an
    # unwrapped intermediate would diverge from a 32-bit register.

    def _wrapped(self, raw: np.ndarray) -> "FxArray":
        return FxArray(np.asarray(self.fmt.wrap(raw), dtype=np.int64),
                       self.fmt)

    def __add__(self, other) -> "FxArray":
        return self._wrapped(self.raw + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other) -> "FxArray":
        return self._wrapped(self.raw - self._coerce(other))

    def __rsub__(self, other) -> "FxArray":
        return self._wrapped(self._coerce(other) - self.raw)

    def __neg__(self) -> "FxArray":
        return self._wrapped(-self.raw)

    def __mul__(self, other) -> "FxArray":
        wide = self.raw * self._coerce(other)
        return self._wrapped(wide >> self.fmt.frac_bits)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "FxArray":
        # Widened dividend, truncation toward zero, wrap — fx_div exactly.
        # Division by zero raises like the scalar op; mapping it to any
        # value would silently diverge from the traced kernel.
        divisor = self._coerce(other)
        if np.any(divisor == 0):
            raise ZeroDivisionError("fixed-point division by zero")
        wide = self.raw << self.fmt.frac_bits
        quot = np.abs(wide) // np.abs(divisor)
        return self._wrapped(np.where((wide < 0) != (divisor < 0),
                                      -quot, quot))

    def __lshift__(self, n: int) -> "FxArray":
        return self._wrapped(self.raw << n)

    def __rshift__(self, n: int) -> "FxArray":
        return self._wrapped(self.raw >> n)

    # ------------------------------------------------------------------
    # comparisons (on raw words: exact)

    def __eq__(self, other) -> np.ndarray:  # type: ignore[override]
        return self.raw == self._coerce(other)

    def __lt__(self, other) -> np.ndarray:
        return self.raw < self._coerce(other)

    def __le__(self, other) -> np.ndarray:
        return self.raw <= self._coerce(other)

    def __gt__(self, other) -> np.ndarray:
        return self.raw > self._coerce(other)

    def __ge__(self, other) -> np.ndarray:
        return self.raw >= self._coerce(other)

    # ------------------------------------------------------------------

    def abs(self) -> "FxArray":
        """Elementwise absolute value."""
        return FxArray(np.abs(self.raw), self.fmt)

    def clip(self, lo: Number, hi: Number) -> "FxArray":
        """Clamp values into [lo, hi] (given as reals)."""
        lo_raw = self.fmt.from_float(float(lo))
        hi_raw = self.fmt.from_float(float(hi))
        return FxArray(np.clip(self.raw, lo_raw, hi_raw), self.fmt)

    def __getitem__(self, idx) -> "FxArray":
        return FxArray(np.atleast_1d(self.raw[idx]), self.fmt)
