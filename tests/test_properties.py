"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole library, regardless of method or
parameter choice: geometric consistency of address generation, preservation
of function symmetries and bounds through the methods, and structural
invariants of the simulator.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_method
from repro.core.functions.registry import get_function
from repro.core.lut.llut import _LLUTGeometry
from repro.core.range_reduction import PeriodicReducer
from repro.fixedpoint import Q3_28
from repro.isa.counter import CycleCounter
from repro.pim.exec import Instr, simulate

_F32 = np.float32


class TestLLUTGeometryProperties:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=0, max_value=18))
    def test_grid_points_map_to_their_own_index(self, n):
        """a(a_inv(i)) == i for every representable grid point."""
        spec = get_function("sin")
        geom = _LLUTGeometry(spec, n, None)
        idx = np.arange(min(geom.entries, 256))
        points = geom.a_inv(idx).astype(_F32)
        t = (points + geom.c).astype(_F32)
        got = (t.view(np.uint32).astype(np.int64)) & ((1 << 22) - 1)
        np.testing.assert_array_equal(got, idx)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=0, max_value=16),
           lo=st.floats(min_value=-4.0, max_value=3.0),
           width=st.floats(min_value=0.5, max_value=4.0))
    def test_entry_count_covers_interval(self, n, lo, width):
        spec = get_function("sin")
        geom = _LLUTGeometry(spec, n, (lo, lo + width))
        # The last real entry's preimage reaches past hi.
        assert geom.a_inv(np.array([geom.entries - 1]))[0] >= lo + width

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=0, max_value=16))
    def test_origin_on_grid(self, n):
        spec = get_function("exp")
        geom = _LLUTGeometry(spec, n, (-1.3, 0.7))
        assert geom.p == math.floor(-1.3 * 2.0 ** n) / 2.0 ** n
        assert _F32(geom.p) == geom.p  # exactly representable


class TestMethodInvariants:
    @settings(max_examples=30, deadline=None)
    @given(x=st.floats(min_value=-50.0, max_value=50.0, width=32))
    def test_sine_odd_symmetry_exact(self, x):
        """The odd-symmetry reduction makes f(-x) == -f(x) bit-exact."""
        m = make_method("tanh", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        ctx = CycleCounter()
        pos = m.evaluate(ctx, abs(x))
        neg = m.evaluate(ctx, -abs(x))
        assert neg == _F32(-pos) or (pos == 0 and neg == 0)

    @settings(max_examples=20, deadline=None)
    @given(x=st.floats(min_value=-30.0, max_value=30.0, width=32))
    def test_sigmoid_complement_exact(self, x):
        m = make_method("sigmoid", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        ctx = CycleCounter()
        a = float(m.evaluate(ctx, x))
        b = float(m.evaluate(ctx, -x))
        assert a + b == pytest.approx(1.0, abs=1e-6)

    def test_sigmoid_bounds(self, rng):
        m = make_method("sigmoid", "llut_i", density_log2=10,
                        assume_in_range=False).setup()
        xs = rng.uniform(-100, 100, 4096).astype(_F32)
        out = m.evaluate_vec(xs)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_tanh_bounds(self, rng):
        m = make_method("tanh", "dlut_i", mant_bits=8,
                        assume_in_range=False).setup()
        xs = rng.uniform(-100, 100, 4096).astype(_F32)
        out = m.evaluate_vec(xs)
        assert out.min() >= -1.0 - 1e-6 and out.max() <= 1.0 + 1e-6

    def test_monotone_function_stays_monotone_noninterp(self):
        """Nearest-entry tables of monotone functions remain monotone."""
        m = make_method("tanh", "llut", density_log2=10,
                        assume_in_range=True).setup()
        xs = np.linspace(0, 7.9, 4096, dtype=_F32)
        out = m.evaluate_vec(xs)
        assert np.all(np.diff(out) >= 0)

    @settings(max_examples=25, deadline=None)
    @given(x=st.floats(min_value=0.0, max_value=6.28125, width=32))
    def test_cost_data_independence_lut(self, x):
        """LUT cost must not depend on the input value (no timing channel)."""
        m = make_method("sin", "llut", density_log2=10).setup()
        base = m.element_tally(1.0).slots
        assert m.element_tally(float(x)).slots == base


class TestReducerProperties:
    @settings(max_examples=40, deadline=None)
    @given(x=st.floats(min_value=-1e4, max_value=1e4, width=32))
    def test_periodic_idempotent(self, x):
        r = PeriodicReducer(2 * math.pi)
        ctx = CycleCounter()
        once, _ = r.reduce(ctx, _F32(x))
        twice, _ = r.reduce(ctx, once)
        assert float(twice) == pytest.approx(float(once), abs=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(raw=st.integers(min_value=-2**40, max_value=2**40))
    def test_qformat_wrap_periodic(self, raw):
        modulus = 1 << Q3_28.word_bits
        assert Q3_28.wrap(raw) == Q3_28.wrap(raw + modulus)
        assert Q3_28.wrap(raw) == Q3_28.wrap(raw - modulus)


class TestSimulatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(slots=st.lists(st.integers(min_value=1, max_value=40),
                          min_size=1, max_size=6),
           tasklets=st.integers(min_value=1, max_value=12))
    def test_issued_equals_total_units(self, slots, tasklets):
        prog = [Instr(slots=s) for s in slots]
        res = simulate([list(prog) for _ in range(tasklets)])
        assert res.issued == sum(slots) * tasklets

    @settings(max_examples=25, deadline=None)
    @given(slots=st.lists(st.integers(min_value=1, max_value=40),
                          min_size=1, max_size=6),
           tasklets=st.integers(min_value=1, max_value=12))
    def test_cycles_bounded_below_by_units(self, slots, tasklets):
        prog = [Instr(slots=s) for s in slots]
        res = simulate([list(prog) for _ in range(tasklets)])
        assert res.cycles >= sum(slots) * tasklets / 11
        assert res.utilization <= 1.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(slots=st.integers(min_value=5, max_value=60))
    def test_more_tasklets_never_slower_per_element(self, slots):
        prog = [Instr(slots=slots)]
        per = []
        for t in (1, 4, 11):
            res = simulate([list(prog) for _ in range(t)])
            per.append(res.cycles / t)
        assert per[0] >= per[1] >= per[2]
