"""Differential harness: the batched path engine vs per-element tracing.

The headline guarantee of :mod:`repro.batch` is *bit-exactness*: for every
registered (function, method) pair, the batched aggregate
``sum(path_tally * path_count)`` equals the field-by-field sum of per-element
scalar tallies, and the per-element slots arrays match exactly.  Sampling
error is zero by construction, so every assertion here is ``==``, never
``approx``.

A fast subset — one (function, method) per method family and per classifier
implementation — runs in tier-1.  The full 500+-configuration matrix over
``METHOD_SUPPORT`` is ``slow``-marked and runs in CI's dedicated
differential step.
"""

import numpy as np
import pytest

from repro.analysis.sweep import default_inputs
from repro.api import make_method
from repro.batch import batch_tally, scalar_tally
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT
from repro.errors import ConfigurationError

_F32 = np.float32

#: Adversarial inputs appended to every random batch: domain endpoints,
#: signed zeros, subnormals, non-finites, and near-overflow magnitudes.
#: (Values beyond float32 range fold to +/-inf on the cast, which is the
#: point — the classifier must agree with the scalar trace there too.)
_EDGE_RAW = (0.0, -0.0, 1e-40, -1e-40, float("nan"), float("inf"),
             float("-inf"), 3.5e38, -3.5e38)


def _edge_inputs(function: str, in_range: bool) -> np.ndarray:
    spec = get_function(function)
    lo, hi = spec.natural_range if in_range else spec.bench_domain
    edges = [lo, hi, float(np.nextafter(_F32(hi), _F32(lo))), (lo + hi) / 2.0]
    edges.extend(_EDGE_RAW)
    return np.array(edges, dtype=_F32)


def _inputs_for(function: str, in_range: bool, n: int,
                seed: int = 7) -> np.ndarray:
    xs = default_inputs(function, n=n, seed=seed, in_natural_range=in_range)
    return np.concatenate([xs, _edge_inputs(function, in_range)])


# Methods are reused across the in-range/full-domain variants of one test
# and between the fast and slow suites; tables are placement- and
# input-independent, so caching builds is safe.
_METHOD_CACHE = {}


def _get_method(function: str, method: str, assume_in_range: bool):
    key = (function, method, assume_in_range)
    if key not in _METHOD_CACHE:
        m = make_method(function, method, assume_in_range=assume_in_range)
        planned = m.planned_table_bytes()
        m.setup()
        if planned is not None:
            # Pre-build size prediction must match the built table exactly
            # (the sweep uses it to skip oversized WRAM builds).
            assert planned == m.table_bytes(), (
                f"{method}/{function}: planned_table_bytes {planned} != "
                f"built {m.table_bytes()}"
            )
        _METHOD_CACHE[key] = m
    return _METHOD_CACHE[key]


def _assert_bit_identical(method_name: str, function: str,
                          assume_in_range: bool, n: int) -> None:
    m = _get_method(function, method_name, assume_in_range)
    xs = _inputs_for(function, assume_in_range, n)

    b = batch_tally(m, xs)
    s = scalar_tally(m, xs)

    assert b.batched, (
        f"{method_name}/{function} fell back to the scalar loop — "
        "classify_paths returned None for standard inputs"
    )
    assert b.n == s.n == xs.size
    # Aggregate Tally, field by field — all exact integers.
    assert b.tally.slots == s.tally.slots
    assert b.tally.dma_transactions == s.tally.dma_transactions
    assert b.tally.dma_bytes == s.tally.dma_bytes
    assert b.tally.dma_latency == s.tally.dma_latency
    assert b.tally.counts == s.tally.counts
    # Per-element slots arrays match exactly, element for element.
    np.testing.assert_array_equal(b.slots, s.slots)
    # Path bookkeeping is self-consistent.
    assert sum(p.count for p in b.paths) == xs.size
    assert b.tally.slots == sum(p.tally.slots * p.count for p in b.paths)


# ----------------------------------------------------------------------
# Fast tier-1 subset: every method family and every classifier
# implementation (reducers, CORDIC modes, composites) at least once.

FAST_PAIRS = [
    ("sin", "mlut"),
    ("sin", "mlut_i"),
    ("sin", "llut"),
    ("sin", "llut_i"),
    ("sin", "llut_fx"),
    ("sin", "llut_i_fx"),
    ("exp", "slut_i"),
    ("tanh", "dlut"),
    ("tanh", "dlut_i"),
    ("tanh", "dllut"),
    ("tanh", "dllut_i"),
    ("gelu", "dlut_i"),       # GeluViaTanh-adjacent direct table
    ("tan", "llut_i"),        # TanQuotientLUT composite
    ("sin", "cordic"),        # circular rotation
    ("tan", "cordic"),        # circular rotation + quadrant parity
    ("atan", "cordic"),       # circular vectoring (float recurrence)
    ("exp", "cordic"),        # hyperbolic rotation
    ("log", "cordic"),        # hyperbolic vectoring
    ("tanh", "cordic"),       # hyperbolic rotation + exp residual split
    ("sin", "cordic_lut"),    # hybrid circular
    ("tanh", "cordic_lut"),   # hybrid hyperbolic
    ("sin", "cordic_fx"),     # fixed-point rotation
    ("cos", "poly"),
]


@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("function,method", FAST_PAIRS,
                         ids=[f"{m}-{f}" for f, m in FAST_PAIRS])
def test_differential_fast(function, method, in_range):
    _assert_bit_identical(method, function, in_range, n=160)


# ----------------------------------------------------------------------
# Full matrix: every (method, function) in METHOD_SUPPORT, both range
# assumptions.  Slow-marked; CI runs it as its own step.

FULL_MATRIX = [
    (method, function)
    for method, functions in sorted(METHOD_SUPPORT.items())
    for function in sorted(functions)
]


@pytest.mark.slow
@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("method,function", FULL_MATRIX,
                         ids=[f"{m}-{f}" for m, f in FULL_MATRIX])
def test_differential_full_matrix(method, function, in_range):
    try:
        _get_method(function, method, in_range)
    except ConfigurationError as exc:
        pytest.skip(f"unsupported configuration: {exc}")
    _assert_bit_identical(method, function, in_range, n=96)


# ----------------------------------------------------------------------
# The engine's contract details.

def test_scalar_fallback_for_unclassifiable_kernels():
    """A method without core_path_vec must fall back, bit-identically."""

    m = make_method("sin", "llut_i", density_log2=8).setup()
    xs = _inputs_for("sin", True, 64)
    forced = batch_tally(m, xs, batch=False)
    auto = batch_tally(m, xs)
    assert not forced.batched and auto.batched
    assert forced.tally.slots == auto.tally.slots
    assert forced.tally.counts == auto.tally.counts
    np.testing.assert_array_equal(forced.slots, auto.slots)


def test_empty_batch_is_empty_result():
    """An empty input is a valid boundary split: zero cost, no paths."""
    m = make_method("sin", "llut_i", density_log2=8).setup()
    r = batch_tally(m, np.empty(0, dtype=_F32))
    assert r.n == 0 and r.batched
    assert r.tally.slots == 0 and r.tally.counts == {}
    assert r.slots.size == 0 and r.slots.dtype == np.int64
    assert r.paths == []


def test_cost_paths_api():
    """Method.cost_paths exposes the enumerated paths directly."""
    m = make_method("sin", "llut_i", density_log2=8,
                    assume_in_range=False).setup()
    xs = _inputs_for("sin", False, 128)
    paths = m.cost_paths(xs)
    assert paths is not None and len(paths) >= 1
    assert sum(p.count for p in paths) == xs.size
    # Representatives really take the path they represent.
    for p in paths:
        solo = scalar_tally(m, np.array([p.representative], dtype=_F32))
        assert solo.tally.slots == p.tally.slots
        assert solo.tally.counts == p.tally.counts
