"""Per-path tally memo: cache-cold launches of known paths skip re-tracing.

The per-placement memo in :class:`~repro.batch.vec.VecEvaluator` persists
the placement-specific ``{path key -> Tally}`` mapping across plans: it
pre-seeds a brand-new plan's cold ``tally_cache`` with paths already
traced for that placement, and when no external cache is attached at all
(cache-cold launch) it serves as the cache directly.  Correctness is
anchored by the differential suite — these tests pin the *reuse*
semantics: what gets prefilled, what gets harvested, what survives
pickling, and that reuse changes no numbers.
"""

import pickle

import numpy as np

from repro.api import make_method
from repro.batch import batch_tally, compile_vec
from repro.batch.vec import VecEvaluator
from repro.obs.metrics import MetricsRegistry, collecting

_F32 = np.float32


def _method(function="tanh", method="dlut", **kwargs):
    return make_method(function, method, **kwargs).setup()


def _inputs(n, seed, lo=-6.0, hi=6.0):
    return np.random.default_rng(seed).uniform(lo, hi, n).astype(_F32)


class TestFusedDLUTModes:
    def test_dlut_family_classifies_into_fused_kernels(self):
        assert compile_vec(_method("tanh", "dlut")).mode == "dlut"
        assert compile_vec(_method("gelu", "dlut_i")).mode == "dlut_i"
        # The composite DL-LUT routes through its own sub-methods; it must
        # NOT be captured by the direct-table kernels.
        assert compile_vec(_method("tanh", "dllut")).mode == "generic"

    def test_fused_dlut_values_bit_identical(self):
        for fn, meth in [("tanh", "dlut"), ("gelu", "dlut_i")]:
            m = _method(fn, meth)
            xs = _inputs(256, seed=3)
            fused = compile_vec(m).run(xs, tally_cache={})
            assert fused.values.tobytes() == m.evaluate_vec(xs).tobytes()
            ref = batch_tally(m, xs)
            assert fused.batch.tally.counts == ref.tally.counts
            assert fused.batch.tally.slots == ref.tally.slots


class TestTallyMemo:
    def test_cold_external_cache_is_prefilled_from_memo(self):
        ev = compile_vec(_method())
        xs = _inputs(128, seed=1)
        warm_cache = {}
        ev.run(xs, tally_cache=warm_cache)          # traces + harvests
        assert ev._tally_memo["mram"]               # harvested paths
        n_paths = len(ev._tally_memo["mram"])
        assert len(warm_cache) == n_paths

        cold_cache = {}                             # a brand-new plan
        registry = MetricsRegistry()
        with collecting(registry):
            # Different values, same path population -> pure memo serve.
            ev.run(_inputs(128, seed=2), tally_cache=cold_cache)
        assert len(cold_cache) == n_paths
        assert registry.value("batch.vec.tally_memo.hits") == n_paths

    def test_cache_cold_launch_uses_memo_directly(self):
        ev = compile_vec(_method())
        first = ev.run(_inputs(96, seed=5))          # no cache attached
        stored = len(ev._tally_memo["mram"])
        assert stored > 0

        registry = MetricsRegistry()
        with collecting(registry):
            second = ev.run(_inputs(96, seed=6))
        assert registry.value("batch.vec.tally_memo.hits") == stored
        # Reuse changes no numbers: per-path tallies are input-independent.
        assert first.batch.tally.counts.keys() \
            == second.batch.tally.counts.keys()

    def test_harvest_counts_only_new_paths(self):
        ev = compile_vec(_method("gelu", "dlut_i"))
        registry = MetricsRegistry()
        with collecting(registry):
            ev.run(_inputs(200, seed=7), tally_cache={})
        stores = registry.value("batch.vec.tally_memo.stores")
        assert stores == len(ev._tally_memo["mram"])

        registry = MetricsRegistry()
        with collecting(registry):
            ev.run(_inputs(200, seed=8), tally_cache={})
        assert registry.value("batch.vec.tally_memo.stores", 0) == 0

    def test_memo_is_per_placement(self):
        mram = compile_vec(_method(placement="mram"))
        wram = compile_vec(_method(placement="wram"))
        xs = _inputs(64, seed=9)
        mram.run(xs, tally_cache={})
        wram.run(xs, tally_cache={})
        assert set(mram._tally_memo) == {"mram"}
        assert set(wram._tally_memo) == {"wram"}
        # Placement changes traced load costs; memoized tallies differ.
        k = next(iter(mram._tally_memo["mram"]))
        if k in wram._tally_memo["wram"]:
            assert mram._tally_memo["mram"][k].counts \
                != wram._tally_memo["wram"][k].counts

    def test_memo_reuse_is_bit_identical_to_fresh_trace(self):
        m = _method()
        warm = compile_vec(m)
        warm.run(_inputs(128, seed=10), tally_cache={})   # populate memo
        xs = _inputs(128, seed=11)
        served = warm.run(xs, tally_cache={})             # memo-assisted
        fresh = compile_vec(m).run(xs, tally_cache={})    # full re-trace
        assert served.batch.tally.counts == fresh.batch.tally.counts
        assert served.batch.tally.slots == fresh.batch.tally.slots
        np.testing.assert_array_equal(served.batch.slots, fresh.batch.slots)
        assert served.values.tobytes() == fresh.values.tobytes()

    def test_memo_cap_bounds_growth(self, monkeypatch):
        ev = compile_vec(_method())
        monkeypatch.setattr(VecEvaluator, "TALLY_MEMO_CAP", 1)
        ev.run(_inputs(256, seed=12), tally_cache={})
        assert len(ev._tally_memo["mram"]) <= 1

    def test_pickle_drops_the_tally_memo(self):
        ev = compile_vec(_method())
        ev.run(_inputs(64, seed=13), tally_cache={})
        assert ev._tally_memo["mram"]
        clone = pickle.loads(pickle.dumps(ev))
        assert clone._tally_memo == {}
        # And the clone still works from scratch.
        assert clone.run(_inputs(64, seed=13), tally_cache={}) is not None
