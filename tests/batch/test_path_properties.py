"""Property-based tests (hypothesis) for cost-path classification.

``Method.classify_paths`` is a pure, elementwise function of the input
array.  That single fact implies a family of structural invariants which
hypothesis can probe far more widely than the fixed differential matrix:

* **partition** — every element receives exactly one key, so path counts
  sum to the array length;
* **permutation stability** — shuffling the inputs permutes the keys the
  same way (classification has no cross-element state);
* **concatenation stability** — classifying ``a ++ b`` equals classifying
  ``a`` and ``b`` separately and concatenating;
* **scalar-branch agreement** — equal key implies the scalar trace charges
  a bit-identical tally (the defining contract), probed on adversarial
  float32s including signed zeros, subnormals, and domain endpoints.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_method
from repro.batch import batch_tally, scalar_tally
from repro.core.functions.registry import get_function

_F32 = np.float32

#: Representative classifiers: one per implementation family, full-domain
#: (reducer active) so the combined reducer+core key is exercised.
_CONFIGS = [
    ("sin", "llut_i", {"density_log2": 8}),
    ("tanh", "dlut_i", {"mant_bits": 6}),
    ("exp", "slut_i", {"target_rmse": 1e-5}),
    ("sin", "cordic", {"iterations": 16}),
    ("tanh", "cordic", {"iterations": 16}),
    ("atan", "cordic", {"iterations": 16}),
]

_METHODS = {}


def _method(function, name, params):
    key = (function, name)
    if key not in _METHODS:
        _METHODS[key] = make_method(
            function, name, assume_in_range=False, **params).setup()
    return _METHODS[key]


def _domain_floats(function):
    """float32s over the bench domain, plus the nastiest specials."""
    lo, hi = get_function(function).bench_domain
    # Snap the bounds to float32 (hypothesis requires exactly representable
    # endpoints for width=32 draws).
    lo, hi = float(_F32(lo)), float(_F32(hi))
    finite = st.floats(min_value=lo, max_value=hi,
                       width=32, allow_nan=False)
    specials = st.sampled_from(
        [0.0, -0.0, 1e-40, -1e-40, float(lo), float(hi),
         float(np.nextafter(_F32(hi), _F32(lo))),
         float(np.nextafter(_F32(lo), _F32(hi)))])
    return st.one_of(finite, specials)


def _arrays(function, min_size=1, max_size=48):
    return st.lists(_domain_floats(function), min_size=min_size,
                    max_size=max_size).map(
        lambda vals: np.array(vals, dtype=_F32))


@pytest.mark.parametrize("function,name,params", _CONFIGS,
                         ids=[f"{n}-{f}" for f, n, _ in _CONFIGS])
class TestClassificationStructure:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_partitions_every_input(self, function, name, params, data):
        m = _method(function, name, params)
        xs = data.draw(_arrays(function))
        keys = m.classify_paths(xs)
        assert keys is not None
        assert keys.shape == xs.shape
        paths = m.cost_paths(xs)
        assert sum(p.count for p in paths) == xs.size
        assert len({p.key for p in paths}) == len(paths)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_stable_under_permutation(self, function, name, params, data):
        m = _method(function, name, params)
        xs = data.draw(_arrays(function, min_size=2))
        perm = data.draw(st.permutations(range(xs.size))).copy()
        keys = m.classify_paths(xs)
        np.testing.assert_array_equal(m.classify_paths(xs[perm]), keys[perm])
        # The aggregate tally is permutation-invariant too.
        a, b = batch_tally(m, xs), batch_tally(m, xs[perm])
        assert a.tally.slots == b.tally.slots
        assert a.tally.counts == b.tally.counts

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_stable_under_concatenation(self, function, name, params, data):
        m = _method(function, name, params)
        xs = data.draw(_arrays(function))
        ys = data.draw(_arrays(function))
        joint = m.classify_paths(np.concatenate([xs, ys]))
        np.testing.assert_array_equal(
            joint,
            np.concatenate([m.classify_paths(xs), m.classify_paths(ys)]))

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_equal_key_implies_equal_scalar_tally(self, function, name,
                                                  params, data):
        """The defining contract, on random adversarial float32s."""
        m = _method(function, name, params)
        xs = data.draw(_arrays(function, min_size=2, max_size=24))
        b = batch_tally(m, xs)
        s = scalar_tally(m, xs)
        assert b.tally.slots == s.tally.slots
        assert b.tally.counts == s.tally.counts
        np.testing.assert_array_equal(b.slots, s.slots)


@settings(max_examples=30, deadline=None)
@given(x=st.floats(width=32, allow_nan=True, allow_infinity=True))
def test_single_element_batch_equals_element_tally(x):
    """A 1-element batch is exactly element_tally, for ANY float32."""
    m = _method("sin", "llut_i", {"density_log2": 8})
    xs = np.array([x], dtype=_F32)
    res = batch_tally(m, xs)
    expected = m.element_tally(float(xs[0]))
    assert res.tally.slots == expected.slots
    assert res.tally.counts == expected.counts
    assert res.slots[0] == expected.slots


class TestEmptyBatch:
    """Sharded dispatch can hand an engine zero elements; that is a valid
    boundary, not an error, and both engines agree on its shape."""

    def test_batch_tally_empty_input(self):
        m = make_method("sin", "llut_i", density_log2=8).setup()
        r = batch_tally(m, np.empty(0, dtype=np.float32))
        assert r.n == 0 and r.batched
        assert r.tally.slots == 0 and r.tally.counts == {}
        assert r.slots.size == 0 and r.slots.dtype == np.int64
        assert r.paths == []

    def test_scalar_tally_empty_input(self):
        m = make_method("sin", "llut_i", density_log2=8).setup()
        r = scalar_tally(m, np.empty(0, dtype=np.float32))
        assert r.n == 0
        assert r.tally.slots == 0
        assert r.slots.size == 0
