"""Differential harness: the fused array evaluators vs the unfused paths.

:mod:`repro.batch.vec` promises that one fused structure-of-arrays pass is
bit-identical to ``Method.evaluate_vec`` (values) plus
:func:`~repro.batch.batch_tally` (aggregate, per-element slots, path list)
for every classifiable method.  Values are compared at the *bit* level —
NaN payloads and signed zeros included — because the fused kernels
replicate the unfused expressions rather than approximating them.

A fast subset mirrors ``test_differential.FAST_PAIRS`` in tier-1; the full
``METHOD_SUPPORT`` matrix is ``slow``-marked and runs in CI's differential
step.
"""

import pickle

import numpy as np
import pytest

from repro.api import make_method
from repro.batch import batch_tally, compile_vec, scalar_tally, vec_run
from repro.core.functions.support import METHOD_SUPPORT
from repro.errors import ConfigurationError
from tests.batch.test_differential import (
    FAST_PAIRS,
    FULL_MATRIX,
    _get_method,
    _inputs_for,
)

_F32 = np.float32


def _assert_bits_equal(a: np.ndarray, b: np.ndarray, msg: str) -> None:
    """Exact bit-pattern equality (NaN payloads, signed zeros and all)."""
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype, f"{msg}: dtype {a.dtype} != {b.dtype}"
    assert a.shape == b.shape, f"{msg}: shape {a.shape} != {b.shape}"
    np.testing.assert_array_equal(
        np.ascontiguousarray(a).view(np.uint8),
        np.ascontiguousarray(b).view(np.uint8),
        err_msg=msg,
    )


def _assert_vec_identical(method_name: str, function: str,
                          assume_in_range: bool, n: int) -> None:
    m = _get_method(function, method_name, assume_in_range)
    xs = _inputs_for(function, assume_in_range, n)

    evaluator = compile_vec(m)
    try:
        ref_values = m.evaluate_vec(xs)
    except Exception as exc:
        # Pre-existing upstream limitation: some value paths (e.g. the
        # hybrid hyperbolic table rotation) raise on non-finite lanes even
        # though the classifier handles them.  The fused evaluator must
        # reproduce the same failure, not paper over it.
        with pytest.raises(type(exc)):
            evaluator.run(xs, tally_cache={})
        return
    fused = evaluator.run(xs, tally_cache={})
    ref_batch = batch_tally(m, xs)

    assert fused is not None, (
        f"{method_name}/{function} abstained in the fused evaluator but "
        "classifies in the traced engine"
    )
    _assert_bits_equal(fused.values, ref_values,
                       f"{method_name}/{function} values")
    b, r = fused.batch, ref_batch
    assert b.n == r.n == xs.size
    assert b.batched and r.batched
    assert b.tally.slots == r.tally.slots
    assert b.tally.dma_transactions == r.tally.dma_transactions
    assert b.tally.dma_bytes == r.tally.dma_bytes
    assert b.tally.dma_latency == r.tally.dma_latency
    assert b.tally.counts == r.tally.counts
    np.testing.assert_array_equal(b.slots, r.slots)
    assert [(p.key, p.count, p.tally.slots) for p in b.paths] == \
        [(p.key, p.count, p.tally.slots) for p in r.paths]


# ----------------------------------------------------------------------
# Fast tier-1 subset (same coverage axes as the traced-engine harness).

@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("function,method", FAST_PAIRS,
                         ids=[f"{m}-{f}" for f, m in FAST_PAIRS])
def test_vec_differential_fast(function, method, in_range):
    _assert_vec_identical(method, function, in_range, n=160)


# ----------------------------------------------------------------------
# Full matrix, slow-marked: every (method, function) in METHOD_SUPPORT.

@pytest.mark.slow
@pytest.mark.parametrize("in_range", [True, False],
                         ids=["natural", "full_domain"])
@pytest.mark.parametrize("method,function", FULL_MATRIX,
                         ids=[f"{m}-{f}" for m, f in FULL_MATRIX])
def test_vec_differential_full_matrix(method, function, in_range):
    try:
        _get_method(function, method, in_range)
    except ConfigurationError as exc:
        pytest.skip(f"unsupported configuration: {exc}")
    _assert_vec_identical(method, function, in_range, n=96)


def test_full_matrix_covers_method_support():
    """The slow matrix really spans every registered method family."""
    assert {m for m, _ in FULL_MATRIX} == set(METHOD_SUPPORT)


# ----------------------------------------------------------------------
# Evaluator contract details.

def test_memo_serves_repeat_batches():
    m = _get_method("sin", "llut_i_fx", True)
    xs = _inputs_for("sin", True, 128)
    ev = compile_vec(m)
    first = ev.run(xs)
    second = ev.run(xs)
    # Identity, not just equality: the second run is the memoized triple.
    assert second.values is first.values
    assert len(ev._memo) == 1
    assert not first.values.flags.writeable
    assert first.batch.tally.counts == second.batch.tally.counts
    np.testing.assert_array_equal(first.batch.slots, second.batch.slots)


def test_memo_is_bounded_lru():
    m = _get_method("sin", "llut_i", True)
    ev = compile_vec(m, memo_size=2)
    for seed in range(4):
        ev.run(_inputs_for("sin", True, 32, seed=seed))
    assert len(ev._memo) == 2


def test_values_skips_aggregation():
    m = _get_method("sin", "llut_i", True)
    xs = _inputs_for("sin", True, 64)
    ev = compile_vec(m)
    vals = ev.values(xs)
    _assert_bits_equal(vals, m.evaluate_vec(xs), "values()")
    # values() populated the memo; a later run() reuses the same triple.
    assert ev.run(xs).values is ev.values(xs)


def test_empty_batch_is_empty_result():
    m = _get_method("sin", "llut_i", True)
    r = compile_vec(m).run(np.empty(0, dtype=_F32))
    assert r.batch.n == 0 and r.batch.batched
    assert r.batch.tally.slots == 0 and r.batch.paths == []
    assert r.values.size == 0 and r.values.dtype == _F32
    assert r.batch.slots.size == 0 and r.batch.slots.dtype == np.int64


def test_abstain_falls_back_bit_identically():
    """CORDIC abstains beyond the fx_mul overflow bound; vec_run degrades
    to the traced engine (here: the scalar loop) without changing numbers."""
    m = _get_method("sin", "cordic", True)
    xs = np.array([1.0e6, 0.5, -3.0], dtype=_F32)
    ev = compile_vec(m)
    assert ev.run(xs) is None
    assert ev.values(xs) is None
    values, batch = vec_run(m, xs, evaluator=ev)
    ref = scalar_tally(m, xs)
    assert not batch.batched
    _assert_bits_equal(values, m.evaluate_vec(xs), "fallback values")
    assert batch.tally.slots == ref.tally.slots
    assert batch.tally.counts == ref.tally.counts
    np.testing.assert_array_equal(batch.slots, ref.slots)
    # The abstain itself is memoized — no array passes on repeat calls.
    assert len(ev._memo) == 1


def test_vec_run_uses_evaluator_when_classifiable():
    m = _get_method("sin", "llut_fx", True)
    xs = _inputs_for("sin", True, 96)
    values, batch = vec_run(m, xs)
    _assert_bits_equal(values, m.evaluate_vec(xs), "vec_run values")
    ref = batch_tally(m, xs)
    assert batch.batched
    assert batch.tally.slots == ref.tally.slots
    assert batch.tally.counts == ref.tally.counts


def test_evaluator_pickles_without_memo():
    """Plans ship to worker pools; the evaluator must pickle cleanly and
    drop its memo (pure locality, rebuilt on the worker)."""
    m = make_method("sin", "llut_i", density_log2=8).setup()
    ev = compile_vec(m)
    xs = np.linspace(0.0, 1.0, 64, dtype=_F32)
    ev.run(xs)
    assert len(ev._memo) == 1
    clone = pickle.loads(pickle.dumps(ev))
    assert clone.mode == ev.mode
    assert len(clone._memo) == 0
    r = clone.run(xs)
    _assert_bits_equal(r.values, ev.run(xs).values, "pickled clone values")


def test_mlut_family_uses_fused_kernels():
    """The M-LUT family dispatches onto its dedicated fused kernels, not
    the generic per-stage fallback."""
    assert compile_vec(_get_method("sin", "mlut", False)).mode == "mlut"
    assert compile_vec(_get_method("sin", "mlut_i", False)).mode == "mlut_i"


def test_tally_cache_shared_with_traced_engine():
    """Vec and traced launches share one tally cache without divergence."""
    m = _get_method("sin", "cordic", False)
    xs = _inputs_for("sin", False, 128)
    cache: dict = {}
    traced = batch_tally(m, xs, tally_cache=cache)
    fused = compile_vec(m).run(xs, tally_cache=cache)
    assert fused.batch.tally.slots == traced.tally.slots
    assert fused.batch.tally.counts == traced.tally.counts
    # Every fused path key was already cached by the traced run.
    assert {p.key for p in fused.batch.paths} <= set(cache)
