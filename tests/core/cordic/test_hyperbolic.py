"""Tests for hyperbolic-mode CORDIC (exp, sinh, cosh, tanh, log, sqrt)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.cordic.hyperbolic import ROTATION_BOUND
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _cordic(function, iterations=28, assume_in_range=False, **kw):
    return make_method(function, "cordic", iterations=iterations,
                       assume_in_range=assume_in_range, **kw).setup()


class TestExp:
    def test_core_range_values(self):
        m = _cordic("exp", assume_in_range=True)
        ctx = CycleCounter()
        for x in [0.0, 0.1, 0.35, 0.69]:
            assert float(m.evaluate(ctx, x)) == pytest.approx(
                math.exp(x), rel=3e-6
            )

    def test_full_range_with_extension(self, rng):
        m = _cordic("exp")
        xs = rng.uniform(-10, 10, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("exp").reference, xs)
        assert rep.mean_ulp_error < 8

    def test_negative_arguments(self):
        m = _cordic("exp")
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, -3.0)) == pytest.approx(math.exp(-3), rel=1e-5)


class TestLog:
    def test_mantissa_range_values(self):
        m = _cordic("log", assume_in_range=True)
        ctx = CycleCounter()
        for x in [1.0, 1.2, 1.7, 1.99]:
            assert float(m.evaluate(ctx, x)) == pytest.approx(
                math.log(x), abs=3e-7
            )

    def test_full_range(self, rng):
        m = _cordic("log")
        xs = rng.uniform(0.01, 100, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("log").reference, xs)
        assert rep.rmse < 1e-6

    def test_log_of_one_is_zero(self):
        m = _cordic("log")
        ctx = CycleCounter()
        assert abs(float(m.evaluate(ctx, 1.0))) < 1e-7


class TestSqrt:
    def test_perfect_squares(self):
        m = _cordic("sqrt")
        ctx = CycleCounter()
        for x in [1.0, 4.0, 9.0, 0.25, 100.0]:
            assert float(m.evaluate(ctx, x)) == pytest.approx(
                math.sqrt(x), rel=3e-6
            )

    def test_full_range(self, rng):
        m = _cordic("sqrt")
        xs = rng.uniform(0.01, 100, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("sqrt").reference, xs)
        assert rep.mean_ulp_error < 8


class TestSinhCoshTanh:
    def test_small_argument_rotation_path(self):
        for name, ref in [("sinh", math.sinh), ("cosh", math.cosh),
                          ("tanh", math.tanh)]:
            m = _cordic(name)
            ctx = CycleCounter()
            for x in [0.0, 0.3, 0.9, 1.1]:
                assert float(m.evaluate(ctx, x)) == pytest.approx(
                    ref(x), abs=5e-6
                ), (name, x)

    def test_large_argument_exp_identity_path(self):
        for name, ref in [("sinh", math.sinh), ("cosh", math.cosh),
                          ("tanh", math.tanh)]:
            m = _cordic(name)
            ctx = CycleCounter()
            for x in [1.5, 2.5, 3.9]:
                assert float(m.evaluate(ctx, x)) == pytest.approx(
                    ref(x), rel=2e-5
                ), (name, x)

    def test_negative_arguments_via_symmetry(self):
        m = _cordic("tanh")
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, -0.7)) == pytest.approx(
            math.tanh(-0.7), abs=1e-6
        )
        assert float(m.evaluate(ctx, -3.0)) == pytest.approx(
            math.tanh(-3.0), abs=1e-5
        )

    def test_large_path_costs_more(self):
        m = _cordic("tanh")
        small = m.element_tally(0.5).slots
        large = m.element_tally(3.0).slots
        assert large > small  # exp identity adds a divide and the split

    def test_rotation_bound_is_schedule_sum(self):
        from repro.core.cordic.tables import hyperbolic_schedule
        total = sum(math.atanh(2.0 ** -i) for i in hyperbolic_schedule(60))
        assert ROTATION_BOUND <= total


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("function", ["exp", "log", "sqrt", "sinh",
                                          "cosh", "tanh"])
    def test_bit_exact(self, function, rng):
        spec = get_function(function)
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, 48).astype(_F32)
        m = _cordic(function, 22)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))


class TestValidation:
    def test_unsupported_function(self):
        with pytest.raises(Exception):
            make_method("gelu", "cordic")

    def test_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            make_method("exp", "cordic", iterations=0)
