"""Tests for CORDIC tables, gains, schedules, and the paper's Table 1."""

import math

import numpy as np
import pytest

from repro.core.cordic.tables import (
    CIRCULAR_ANGLE_FRAC_BITS,
    TABLE1,
    circular_angle_table,
    circular_gain,
    hyperbolic_angle_table,
    hyperbolic_gain,
    hyperbolic_schedule,
)
from repro.errors import ConfigurationError


class TestCircularTables:
    def test_first_angle_is_45_degrees(self):
        table = circular_angle_table(4)
        # atan(1) = pi/4 = 0.5 quarter-turns.
        assert table[0] == round(0.5 * (1 << CIRCULAR_ANGLE_FRAC_BITS))

    def test_angles_decrease(self):
        table = circular_angle_table(24)
        assert all(a > b for a, b in zip(table, table[1:]))

    def test_angles_roughly_halve(self):
        table = circular_angle_table(24).astype(float)
        ratios = table[4:] / table[3:-1]
        assert np.allclose(ratios, 0.5, atol=0.02)

    def test_angle_sum_exceeds_quadrant(self):
        # Convergence over [0, 1) quarter-turns requires the total rotation
        # capability to exceed 1.
        table = circular_angle_table(24)
        assert table.sum() > (1 << CIRCULAR_ANGLE_FRAC_BITS)

    def test_gain_value(self):
        # K = prod 1/sqrt(1+2^-2i) -> ~0.60725 for many iterations.
        assert circular_gain(30) == pytest.approx(0.6072529350088813, rel=1e-9)

    def test_gain_with_start(self):
        assert circular_gain(10, start=2) == pytest.approx(
            np.prod([1 / math.sqrt(1 + 4.0 ** -i) for i in range(2, 12)])
        )

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            circular_angle_table(0)


class TestHyperbolicSchedule:
    def test_starts_at_one(self):
        assert hyperbolic_schedule(3) == [1, 2, 3]

    def test_repeats_four(self):
        sched = hyperbolic_schedule(6)
        assert sched == [1, 2, 3, 4, 4, 5]

    def test_repeats_thirteen(self):
        sched = hyperbolic_schedule(20)
        assert sched.count(4) == 2
        assert sched.count(13) == 2

    def test_length(self):
        for n in (1, 5, 17, 40):
            assert len(hyperbolic_schedule(n)) == n

    def test_convergence_range(self):
        # sum of atanh(2^-i) over the repeated schedule ~ 1.118.
        sched = hyperbolic_schedule(40)
        total = sum(math.atanh(2.0 ** -i) for i in sched)
        assert total > 1.11

    def test_angle_table_follows_schedule(self):
        sched = hyperbolic_schedule(8)
        table = hyperbolic_angle_table(sched)
        assert table[3] == table[4]  # the repeated i=4 step

    def test_gain_below_one(self):
        assert 0 < hyperbolic_gain(hyperbolic_schedule(20)) < 1


class TestTable1:
    """Verify the identities behind the paper's Table 1."""

    @pytest.mark.parametrize("row", TABLE1, ids=lambda r: r.mode)
    def test_matrix_determinant_matches_stretch(self, row):
        # |det M_i| = k_i^2 for circular/hyperbolic, 1 for linear.
        for i in range(0, 6):
            det = abs(np.linalg.det(row.matrix(i, +1)))
            assert det == pytest.approx(row.stretch(i) ** 2, rel=1e-12)

    def test_circular_matrix_rotates_by_angle(self):
        row = TABLE1[0]
        for i in range(0, 5):
            m = row.matrix(i, +1) / row.stretch(i)
            angle = math.atan2(m[1, 0], m[0, 0])
            assert angle == pytest.approx(row.angle(i), rel=1e-12)

    def test_hyperbolic_matrix_is_hyperbolic_rotation(self):
        row = TABLE1[1]
        for i in range(1, 5):
            m = row.matrix(i, +1) / row.stretch(i)
            # cosh(phi) on the diagonal, sinh(phi) off it.
            phi = row.angle(i)
            assert m[0, 0] == pytest.approx(math.cosh(phi), rel=1e-12)
            assert m[0, 1] == pytest.approx(math.sinh(phi), rel=1e-12)

    def test_linear_mode_has_unit_stretch(self):
        row = TABLE1[2]
        assert all(row.stretch(i) == 1.0 for i in range(8))

    def test_function_coverage(self):
        circular, hyperbolic, linear = TABLE1
        assert "sin" in circular.functions
        assert "exp" in hyperbolic.functions
        assert "sqrt" in hyperbolic.functions
        assert "division" in linear.functions
