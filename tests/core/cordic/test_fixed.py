"""Tests for the fully fixed-point circular CORDIC extension."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError, UnsupportedFunctionError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _fx(function="sin", iterations=28, **kw):
    kw.setdefault("assume_in_range", True)
    return make_method(function, "cordic_fx", iterations=iterations,
                       **kw).setup()


class TestAccuracy:
    def test_sin_known_angles(self):
        m = _fx("sin")
        ctx = CycleCounter()
        for angle in [0.0, 0.5, math.pi / 2, 2.5, 4.0, 6.0]:
            assert float(m.evaluate(ctx, angle)) == pytest.approx(
                math.sin(angle), abs=5e-8
            ), angle

    def test_cos_known_angles(self):
        m = _fx("cos")
        ctx = CycleCounter()
        for angle in [0.0, 1.0, 3.0, 5.0]:
            assert float(m.evaluate(ctx, angle)) == pytest.approx(
                math.cos(angle), abs=5e-8
            ), angle

    def test_reaches_fixed_point_floor(self, sine_inputs):
        """Rounding shifts keep the error a random walk: ~1e-8 RMSE."""
        m = _fx("sin", iterations=30)
        rep = measure(m.evaluate_vec, get_function("sin").reference,
                      sine_inputs)
        assert rep.rmse < 3e-8

    def test_beats_float_cordic_accuracy(self, sine_inputs):
        """Float CORDIC accumulates float32 rounding; fixed does not."""
        ref = get_function("sin").reference
        e_float = measure(
            make_method("sin", "cordic", iterations=30,
                        assume_in_range=True).setup().evaluate_vec,
            ref, sine_inputs).rmse
        e_fixed = measure(_fx("sin", 30).evaluate_vec, ref, sine_inputs).rmse
        assert e_fixed < e_float


class TestCostStructure:
    def test_no_float_arithmetic_in_rotation(self):
        m = _fx("sin")
        tally = m.element_tally(1.0)
        assert tally.count("fadd") == 0
        assert tally.count("fsub") == 0
        assert tally.count("fmul") == 0
        assert tally.count("ldexp") == 0

    def test_much_cheaper_than_float_cordic(self, sine_inputs):
        fixed = _fx("sin", 28)
        fl = make_method("sin", "cordic", iterations=28,
                         assume_in_range=True).setup()
        assert fixed.mean_slots(sine_inputs[:8]) < \
            0.2 * fl.mean_slots(sine_inputs[:8])

    def test_cost_linear_in_iterations(self, sine_inputs):
        a = _fx("sin", 12).mean_slots(sine_inputs[:8])
        b = _fx("sin", 24).mean_slots(sine_inputs[:8])
        c = _fx("sin", 36).mean_slots(sine_inputs[:8]) if False else None
        assert b > a


class TestValidation:
    def test_tan_rejected(self):
        with pytest.raises((UnsupportedFunctionError, ConfigurationError)):
            make_method("tan", "cordic_fx")

    def test_range_extension(self):
        m = make_method("sin", "cordic_fx", iterations=28,
                        assume_in_range=False).setup()
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, 100.0)) == pytest.approx(
            math.sin(100.0), abs=1e-4
        )


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("function", ["sin", "cos"])
    def test_bit_exact(self, function, sine_inputs):
        m = _fx(function, 20)
        ctx = CycleCounter()
        sample = sine_inputs[:48]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample],
                          dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))
