"""Tests for circular-vectoring CORDIC (arctangent)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _atan(iterations=28, **kw):
    kw.setdefault("assume_in_range", False)
    return make_method("atan", "cordic", iterations=iterations, **kw).setup()


class TestAccuracy:
    def test_known_values(self):
        m = _atan()
        ctx = CycleCounter()
        for x in [0.0, 0.5, 1.0, 2.0, 10.0, 1000.0]:
            assert float(m.evaluate(ctx, x)) == pytest.approx(
                math.atan(x), abs=3e-7
            ), x

    def test_negative_values(self):
        m = _atan()
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, -3.0)) == pytest.approx(
            math.atan(-3.0), abs=3e-7
        )

    def test_full_domain_sweep(self, rng):
        m = _atan()
        xs = rng.uniform(-50, 50, 2048).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("atan").reference, xs)
        assert rep.rmse < 1e-7

    def test_saturates_toward_half_pi(self):
        m = _atan()
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, 1e6)) == pytest.approx(
            math.pi / 2, abs=1e-5
        )

    def test_error_shrinks_with_iterations(self, rng):
        xs = rng.uniform(-10, 10, 1024).astype(_F32)
        ref = get_function("atan").reference
        e_lo = measure(_atan(10).evaluate_vec, ref, xs).rmse
        e_hi = measure(_atan(20).evaluate_vec, ref, xs).rmse
        assert e_hi < e_lo / 100


class TestCostStructure:
    def test_no_float_divide(self):
        """Vectoring handles any magnitude; no reciprocal reduction needed."""
        m = _atan()
        tally = m.element_tally(25.0)
        assert tally.count("fdiv") == 0

    def test_lut_method_pays_the_divide(self):
        lut = make_method("atan", "llut_i", density_log2=12,
                          assume_in_range=False).setup()
        assert lut.element_tally(25.0).count("fdiv") == 1
        assert lut.element_tally(0.5).count("fdiv") == 0

    def test_only_atan_accepted(self):
        from repro.core.cordic.vectoring import CordicArctan
        with pytest.raises(ConfigurationError):
            CordicArctan(get_function("sin"))


class TestScalarVectorAgreement:
    def test_bit_exact(self, rng):
        m = _atan(20)
        xs = rng.uniform(-40, 40, 64).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
