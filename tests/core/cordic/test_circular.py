"""Tests for circular-mode CORDIC (sin, cos, tan)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter
from repro.isa.opcosts import UPMEM_COSTS

_F32 = np.float32


def _cordic(function="sin", iterations=24, **kw):
    kw.setdefault("assume_in_range", True)
    return make_method(function, "cordic", iterations=iterations, **kw).setup()


class TestAccuracy:
    def test_known_angles(self):
        m = _cordic("sin", 28)
        ctx = CycleCounter()
        for angle in [0.0, math.pi / 6, math.pi / 4, math.pi / 2, math.pi,
                      3 * math.pi / 2, 5.5]:
            got = float(m.evaluate(ctx, angle))
            assert got == pytest.approx(math.sin(angle), abs=2e-6), angle

    def test_cos_known_angles(self):
        m = _cordic("cos", 28)
        ctx = CycleCounter()
        for angle in [0.0, 1.0, math.pi / 2, 4.0, 6.0]:
            got = float(m.evaluate(ctx, angle))
            assert got == pytest.approx(math.cos(angle), abs=2e-6), angle

    def test_tan_known_angles(self):
        m = _cordic("tan", 28)
        ctx = CycleCounter()
        for angle in [0.1, 1.0, 2.0, 4.0, 5.9]:
            got = float(m.evaluate(ctx, angle))
            assert got == pytest.approx(math.tan(angle), rel=2e-4), angle

    def test_error_shrinks_with_iterations(self, sine_inputs):
        spec = get_function("sin")
        errors = []
        for n in (6, 10, 14, 18):
            m = _cordic("sin", n)
            rep = measure(m.evaluate_vec, spec.reference, sine_inputs)
            errors.append(rep.rmse)
        # Roughly exponential: each +4 iterations gains ~16x.
        assert errors[0] > 8 * errors[1] > 8 * errors[2] / 8 > errors[3]
        assert errors[3] < 1e-4

    def test_reaches_high_accuracy(self, sine_inputs):
        spec = get_function("sin")
        m = _cordic("sin", 30)
        rep = measure(m.evaluate_vec, spec.reference, sine_inputs)
        assert rep.rmse < 2e-7

    def test_quadrant_signs(self):
        m = _cordic("sin", 24)
        ctx = CycleCounter()
        assert float(m.evaluate(ctx, 1.0)) > 0          # Q0
        assert float(m.evaluate(ctx, 2.0)) > 0          # Q1
        assert float(m.evaluate(ctx, 4.0)) < 0          # Q2
        assert float(m.evaluate(ctx, 5.5)) < 0          # Q3


class TestCost:
    def test_cost_linear_in_iterations(self, sine_inputs):
        slots = []
        for n in (8, 16, 24):
            m = _cordic("sin", n)
            slots.append(m.mean_slots(sine_inputs[:8]))
        step1 = slots[1] - slots[0]
        step2 = slots[2] - slots[1]
        assert step1 == pytest.approx(step2, rel=0.01)
        assert step1 > 0

    def test_tan_costs_more_than_sin(self, sine_inputs):
        sin_m = _cordic("sin", 24)
        tan_m = _cordic("tan", 24)
        assert tan_m.mean_slots(sine_inputs[:8]) > \
            sin_m.mean_slots(sine_inputs[:8]) + 0.9 * UPMEM_COSTS.fp_div

    def test_exactly_one_fixed_multiply(self):
        # The quadrant split is a single fixed-point multiply by 2/pi.
        m = _cordic("sin", 16)
        tally = m.element_tally(1.234)
        assert tally.count("imul64") == 1
        assert tally.count("fmul") == 0  # no float multiplies at all


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("function", ["sin", "cos", "tan"])
    def test_bit_exact(self, function, sine_inputs):
        m = _cordic(function, 20)
        ctx = CycleCounter()
        sample = sine_inputs[:48]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample],
                          dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))


class TestValidation:
    def test_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "cordic", iterations=0)

    def test_range_extension_handles_large_angles(self):
        m = make_method("sin", "cordic", iterations=24,
                        assume_in_range=False).setup()
        ctx = CycleCounter()
        for angle in [-10.0, 100.0, 12345.5]:
            got = float(m.evaluate(ctx, angle))
            # float32 argument folding loses some precision at 12345.5.
            assert got == pytest.approx(math.sin(angle), abs=5e-3), angle

    def test_memory_is_iterations_plus_constants(self):
        m = _cordic("sin", 24)
        assert m.table_bytes() == 24 * 4 + 8
