"""Tests for composite methods (GELU via the tanh approximation)."""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.composite import GeluViaTanh
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _composite(**kw):
    tanh = make_method("tanh", "dlut_i", mant_bits=8, assume_in_range=True)
    kw.setdefault("assume_in_range", False)
    return GeluViaTanh(tanh, **kw).setup()


class TestAccuracy:
    def test_tracks_reference_to_approximation_error(self, rng):
        m = _composite()
        xs = rng.uniform(-8, 8, 2048).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("gelu").reference, xs)
        # The tanh approximation itself caps accuracy around 1e-3 peak.
        assert rep.rmse < 2e-3
        assert rep.max_abs_error < 5e-3

    def test_approximation_floor_not_method_floor(self, rng):
        """A *better* tanh does not rescue the composite: the formula's own
        error dominates — the key contrast with direct tabulation."""
        xs = rng.uniform(-8, 8, 2048).astype(_F32)
        ref = get_function("gelu").reference
        coarse = _composite()
        fine_tanh = make_method("tanh", "llut_i", density_log2=14,
                                assume_in_range=True)
        fine = GeluViaTanh(fine_tanh, assume_in_range=False).setup()
        e_coarse = measure(coarse.evaluate_vec, ref, xs).rmse
        e_fine = measure(fine.evaluate_vec, ref, xs).rmse
        assert e_fine > e_coarse / 10  # no order-of-magnitude gain

    def test_direct_table_beats_composite_both_ways(self, rng):
        """The benchmark's claim, asserted: direct D-LUT gelu is faster AND
        more accurate than the composite on a PIM core."""
        xs = rng.uniform(-8, 8, 1024).astype(_F32)
        ref = get_function("gelu").reference
        composite = _composite()
        direct = make_method("gelu", "dlut_i", mant_bits=8,
                             assume_in_range=False).setup()
        assert measure(direct.evaluate_vec, ref, xs).rmse < \
            measure(composite.evaluate_vec, ref, xs).rmse / 100
        assert direct.mean_slots(xs[:16]) < 0.5 * composite.mean_slots(xs[:16])

    def test_negative_inputs_via_symmetry(self):
        m = _composite()
        ctx = CycleCounter()
        ref = get_function("gelu").ref_scalar(-1.3)
        assert float(m.evaluate(ctx, -1.3)) == pytest.approx(ref, abs=3e-3)


class TestStructure:
    def test_requires_tanh_method(self):
        sin = make_method("sin", "llut_i", density_log2=8)
        with pytest.raises(ConfigurationError):
            GeluViaTanh(sin)

    def test_cost_includes_surrounding_multiplies(self):
        m = _composite()
        tally = m.element_tally(1.0)
        assert tally.count("fmul") >= 5

    def test_memory_is_the_tanh_table(self):
        m = _composite()
        assert m.table_bytes() == m.tanh_method.table_bytes()

    def test_scalar_vector_agreement(self, rng):
        m = _composite()
        xs = rng.uniform(-8, 8, 48).astype(_F32)
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
