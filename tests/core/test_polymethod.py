"""Tests for the minimax-polynomial method (the 'poly' baseline)."""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError, UnsupportedFunctionError
from repro.isa.counter import CycleCounter

_F32 = np.float32


class TestAccuracy:
    def test_error_shrinks_with_degree(self, sine_inputs):
        spec = get_function("sin")
        errs = []
        for d in (6, 10, 14):
            m = make_method("sin", "poly", degree=d).setup()
            errs.append(measure(m.evaluate_vec, spec.reference,
                                sine_inputs).rmse)
        assert errs[0] > 50 * errs[1]
        assert errs[2] <= errs[1]

    def test_float32_coefficient_floor(self, sine_inputs):
        """Even with the normalized domain, float32 coefficient rounding
        floors the evaluation well above the float64 fit error — tables do
        not have this failure mode (entries round independently)."""
        spec = get_function("sin")
        m = make_method("sin", "poly", degree=16).setup()
        assert m.fit_error < 1e-9
        rep = measure(m.evaluate_vec, spec.reference, sine_inputs)
        assert rep.rmse > 20 * m.fit_error

    def test_exp_with_range_extension(self, rng):
        spec = get_function("exp")
        xs = rng.uniform(-10, 10, 1024).astype(_F32)
        m = make_method("exp", "poly", degree=8,
                        assume_in_range=False).setup()
        rep = measure(m.evaluate_vec, spec.reference, xs)
        assert rep.mean_ulp_error < 8


class TestCostStructure:
    def test_one_mul_add_per_degree(self):
        m = make_method("sin", "poly", degree=9).setup()
        tally = m.element_tally(1.0)
        # degree multiplies in Horner plus one for the domain normalization.
        assert tally.count("fmul") == 10
        assert tally.count("fadd") == 9
        assert tally.count("fsub") == 1

    def test_cycles_grow_with_accuracy_like_cordic(self, sine_inputs):
        lo = make_method("sin", "poly", degree=6).setup()
        hi = make_method("sin", "poly", degree=14).setup()
        assert hi.mean_slots(sine_inputs[:8]) > \
            2 * lo.mean_slots(sine_inputs[:8])

    def test_tiny_memory_footprint(self):
        m = make_method("sin", "poly", degree=10).setup()
        assert m.table_bytes() == 44

    def test_lut_beats_poly_at_matched_accuracy(self, sine_inputs):
        """Section 4.2.1's comparison, through the method interface: at
        poly's best accuracy the interpolated L-LUT is both more accurate
        and several times cheaper."""
        spec = get_function("sin")
        poly = make_method("sin", "poly", degree=12).setup()
        lut = make_method("sin", "llut_i", density_log2=11).setup()
        e_poly = measure(poly.evaluate_vec, spec.reference, sine_inputs).rmse
        e_lut = measure(lut.evaluate_vec, spec.reference, sine_inputs).rmse
        assert e_lut < e_poly
        assert lut.mean_slots(sine_inputs[:8]) < \
            0.3 * poly.mean_slots(sine_inputs[:8])


class TestValidation:
    def test_tan_rejected(self):
        with pytest.raises(UnsupportedFunctionError):
            make_method("tan", "poly", degree=10)

    def test_degree_bounds(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "poly", degree=-1)
        with pytest.raises(ConfigurationError):
            make_method("sin", "poly", degree=30)

    def test_fit_error_before_setup_raises(self):
        m = make_method("sin", "poly", degree=8)
        with pytest.raises(ConfigurationError):
            m.fit_error


class TestScalarVectorAgreement:
    def test_bit_exact(self, sine_inputs):
        m = make_method("sin", "poly", degree=10).setup()
        ctx = CycleCounter()
        sample = sine_inputs[:48]
        scalar = np.array([m.evaluate(ctx, float(x)) for x in sample],
                          dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))
