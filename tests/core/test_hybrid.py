"""Tests for the CORDIC+LUT combined method (Section 3.3.2)."""

import math

import numpy as np
import pytest

from repro.api import make_method
from repro.core.accuracy import measure
from repro.core.functions.registry import get_function
from repro.errors import ConfigurationError, UnsupportedFunctionError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _hybrid(function="sin", iterations=24, lut_bits=6, **kw):
    kw.setdefault("assume_in_range", True)
    return make_method(function, "cordic_lut", iterations=iterations,
                       lut_bits=lut_bits, **kw).setup()


def _cordic(function="sin", iterations=24, **kw):
    kw.setdefault("assume_in_range", True)
    return make_method(function, "cordic", iterations=iterations, **kw).setup()


class TestSpeedupOverPureCordic:
    def test_fewer_slots_than_cordic_at_same_accuracy(self, sine_inputs):
        spec = get_function("sin")
        cordic = _cordic(iterations=24)
        hybrid = _hybrid(iterations=24, lut_bits=8)
        e_c = measure(cordic.evaluate_vec, spec.reference, sine_inputs).rmse
        e_h = measure(hybrid.evaluate_vec, spec.reference, sine_inputs).rmse
        # Matched accuracy (same final iteration index)...
        assert e_h == pytest.approx(e_c, rel=1.0)
        # ...at materially fewer cycles (the skipped iterations).
        assert hybrid.mean_slots(sine_inputs[:8]) < \
            0.8 * cordic.mean_slots(sine_inputs[:8])

    def test_larger_lut_skips_more(self, sine_inputs):
        small = _hybrid(iterations=24, lut_bits=4)
        large = _hybrid(iterations=24, lut_bits=10)
        assert large.mean_slots(sine_inputs[:8]) < \
            small.mean_slots(sine_inputs[:8])


class TestAccuracy:
    def test_sine_values(self):
        m = _hybrid(iterations=28, lut_bits=6)
        ctx = CycleCounter()
        for angle in [0.0, 0.7, 2.2, 3.9, 5.8]:
            assert float(m.evaluate(ctx, angle)) == pytest.approx(
                math.sin(angle), abs=3e-6
            ), angle

    def test_exp_hybrid(self, rng):
        m = make_method("exp", "cordic_lut", iterations=28, lut_bits=6,
                        assume_in_range=False).setup()
        xs = rng.uniform(-10, 10, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("exp").reference, xs)
        assert rep.mean_ulp_error < 8

    def test_tanh_hybrid(self, rng):
        m = make_method("tanh", "cordic_lut", iterations=28, lut_bits=6,
                        assume_in_range=False).setup()
        xs = rng.uniform(-8, 8, 512).astype(_F32)
        rep = measure(m.evaluate_vec, get_function("tanh").reference, xs)
        assert rep.rmse < 1e-6


class TestSetupAndMemory:
    def test_memory_independent_of_iterations(self):
        # This is what keeps CORDIC+LUT setup flat in Figure 6.
        a = _hybrid(iterations=16, lut_bits=8)
        b = _hybrid(iterations=32, lut_bits=8)
        assert abs(a.table_bytes() - b.table_bytes()) <= 16 * 4

    def test_memory_grows_with_lut_bits(self):
        a = _hybrid(iterations=24, lut_bits=4)
        b = _hybrid(iterations=24, lut_bits=8)
        assert b.table_bytes() > a.table_bytes()

    def test_more_memory_than_pure_cordic(self):
        assert _hybrid().table_bytes() > _cordic().table_bytes()


class TestValidation:
    def test_vectoring_functions_rejected(self):
        for fn in ("log", "sqrt"):
            with pytest.raises((UnsupportedFunctionError, ConfigurationError)):
                make_method(fn, "cordic_lut")

    def test_lut_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            make_method("sin", "cordic_lut", iterations=8, lut_bits=8)
        with pytest.raises(ConfigurationError):
            make_method("sin", "cordic_lut", iterations=8, lut_bits=0)


class TestScalarVectorAgreement:
    @pytest.mark.parametrize("function", ["sin", "cos", "exp", "tanh"])
    def test_bit_exact(self, function, rng):
        spec = get_function(function)
        lo, hi = spec.bench_domain
        xs = rng.uniform(lo, hi, 48).astype(_F32)
        m = make_method(function, "cordic_lut", iterations=20, lut_bits=5,
                        assume_in_range=False).setup()
        ctx = CycleCounter()
        scalar = np.array([m.evaluate(ctx, float(x)) for x in xs], dtype=_F32)
        np.testing.assert_array_equal(scalar, m.evaluate_vec(xs))
