"""Tests for the high-level make_method API, including a full matrix sweep."""

import numpy as np
import pytest

from repro.api import ALL_METHOD_NAMES, make_method
from repro.core.accuracy import measure
from repro.core.cordic.circular import CordicCircular
from repro.core.cordic.hyperbolic import CordicHyperbolic
from repro.core.functions.registry import get_function
from repro.core.functions.support import METHOD_SUPPORT
from repro.core.hybrid import HybridCircular, HybridHyperbolic
from repro.core.lut.llut import LLUTInterpolated
from repro.errors import UnsupportedFunctionError

_F32 = np.float32

#: Precision parameters giving each method a fair mid-range configuration.
_MID_PARAMS = {
    "cordic": {"iterations": 24},
    "cordic_fx": {"iterations": 24},
    "poly": {"degree": 14},
    "slut_i": {"target_rmse": 1e-6, "seg_bits": 4},
    "cordic_lut": {"iterations": 24, "lut_bits": 6},
    "mlut": {"size": 1 << 16},
    "mlut_i": {"size": (1 << 12) + 1},
    "llut": {"density_log2": 14},
    "llut_i": {"density_log2": 12},
    "llut_fx": {"density_log2": 14},
    "llut_i_fx": {"density_log2": 12},
    "dlut": {"mant_bits": 10},
    "dlut_i": {"mant_bits": 8},
    "dllut": {"mant_bits": 10},
    "dllut_i": {"mant_bits": 8},
}

#: Accuracy expectations by variant kind (RMSE normalized by output scale).
_RMSE_BOUND = {False: 3e-3, True: 1e-4}  # non-interp looser than interp


class TestDispatch:
    def test_trig_cordic_class(self):
        assert isinstance(make_method("sin", "cordic"), CordicCircular)

    def test_hyperbolic_cordic_class(self):
        assert isinstance(make_method("exp", "cordic"), CordicHyperbolic)

    def test_hybrid_classes(self):
        assert isinstance(make_method("cos", "cordic_lut"), HybridCircular)
        assert isinstance(make_method("tanh", "cordic_lut"), HybridHyperbolic)

    def test_lut_class(self):
        assert isinstance(make_method("sin", "llut_i"), LLUTInterpolated)

    def test_unsupported_pair_raises(self):
        with pytest.raises(UnsupportedFunctionError):
            make_method("sin", "dlut")

    def test_all_method_names_constant(self):
        assert set(ALL_METHOD_NAMES) == set(METHOD_SUPPORT)


def _matrix_pairs():
    for method, funcs in METHOD_SUPPORT.items():
        for fn in sorted(funcs):
            yield method, fn


@pytest.mark.parametrize("method,function", list(_matrix_pairs()))
def test_every_supported_pair_works(method, function, rng):
    """Table 2, executed: every supported pair instantiates, sets up,
    evaluates over the bench domain, and achieves sane accuracy."""
    spec = get_function(function)
    lo, hi = spec.bench_domain
    xs = rng.uniform(lo, hi, 512).astype(_F32)
    m = make_method(function, method, assume_in_range=False,
                    **_MID_PARAMS[method]).setup()
    rep = measure(m.evaluate_vec, spec.reference, xs)
    # Normalize by the output magnitude so exp's huge values don't dominate.
    scale = max(1.0, float(np.max(np.abs(spec.reference(
        xs.astype(np.float64))))))
    bound = _RMSE_BOUND[getattr(m, "interpolated", False)
                        or method in ("cordic", "cordic_lut", "cordic_fx")]
    assert rep.rmse / scale < bound, (method, function, rep)

    # Traced scalar path agrees with the vectorized path bit-exactly.
    from repro.isa.counter import CycleCounter
    ctx = CycleCounter()
    sample = xs[:16]
    scalar = np.array([m.evaluate(ctx, float(x)) for x in sample], dtype=_F32)
    np.testing.assert_array_equal(scalar, m.evaluate_vec(sample))
