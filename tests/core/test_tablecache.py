"""Tests for the host-side table cache."""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.tablecache import TableCache, cache_signature
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter


@pytest.fixture
def cache(tmp_path):
    return TableCache(tmp_path / "tables")


class TestSignature:
    def test_stable_across_instances(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=10)
        assert cache_signature(a) == cache_signature(b)

    def test_differs_by_density(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=12)
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_function(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("cos", "llut_i", density_log2=10)
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_interval(self):
        a = make_method("exp", "llut_i", density_log2=10,
                        interval=(-1.0, 0.0))
        b = make_method("exp", "llut_i", density_log2=10,
                        interval=(-2.0, 0.0))
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_method(self):
        a = make_method("sin", "llut", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=10)
        assert cache_signature(a) != cache_signature(b)


class TestRoundtrip:
    def test_store_and_load_bit_identical(self, cache):
        original = make_method("sin", "llut_i", density_log2=10).setup()
        cache.store(original)

        fresh = make_method("sin", "llut_i", density_log2=10)
        assert cache.load_into(fresh)
        np.testing.assert_array_equal(fresh._table, original._table)

    def test_loaded_method_evaluates(self, cache, sine_inputs):
        cache.store(make_method("sin", "llut_i", density_log2=10).setup())
        fresh = make_method("sin", "llut_i", density_log2=10)
        cache.load_into(fresh)
        out = fresh.evaluate_vec(sine_inputs)
        np.testing.assert_allclose(out, np.sin(sine_inputs), atol=1e-5)

    def test_loaded_scalar_path_works(self, cache):
        cache.store(make_method("sin", "llut", density_log2=10).setup())
        fresh = make_method("sin", "llut", density_log2=10)
        cache.load_into(fresh)
        assert abs(float(fresh.evaluate(CycleCounter(), 1.0))
                   - np.sin(1.0)) < 1e-3

    def test_miss_returns_false(self, cache):
        assert not cache.load_into(make_method("sin", "llut", density_log2=9))

    def test_fixed_point_tables_roundtrip(self, cache):
        original = make_method("sin", "llut_i_fx", density_log2=10).setup()
        cache.store(original)
        fresh = make_method("sin", "llut_i_fx", density_log2=10)
        assert cache.load_into(fresh)
        assert fresh._table.dtype == original._table.dtype
        np.testing.assert_array_equal(fresh._table, original._table)


class TestSetupHelper:
    def test_setup_builds_then_hits(self, cache):
        m1 = cache.setup(make_method("sin", "llut_i", density_log2=9))
        assert cache.contains(make_method("sin", "llut_i", density_log2=9))
        m2 = cache.setup(make_method("sin", "llut_i", density_log2=9))
        np.testing.assert_array_equal(m1._table, m2._table)

    def test_clear(self, cache):
        cache.setup(make_method("sin", "llut", density_log2=9))
        cache.setup(make_method("cos", "llut", density_log2=9))
        assert cache.clear() == 2
        assert not cache.contains(make_method("sin", "llut", density_log2=9))


def _built(function, density=9):
    return make_method(function, "llut_i", density_log2=density).setup()


class TestSizeBound:
    def test_unbounded_by_default(self, cache):
        for fn in ("sin", "cos", "exp", "log"):
            cache.store(_built(fn))
        assert len(cache) == 4 and cache.evictions == 0

    def test_store_evicts_lru(self, tmp_path):
        one = TableCache(tmp_path / "probe")
        size = one.store(_built("sin")).stat().st_size
        cache = TableCache(tmp_path / "tables", max_bytes=2 * size)
        cache.store(_built("sin"))
        cache.store(_built("cos"))
        assert cache.evictions == 0
        cache.store(_built("exp"))  # evicts sin, the oldest
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.total_bytes <= cache.max_bytes
        assert not cache.contains(make_method("sin", "llut_i", density_log2=9))
        assert cache.contains(make_method("cos", "llut_i", density_log2=9))

    def test_load_refreshes_recency(self, tmp_path):
        one = TableCache(tmp_path / "probe")
        size = one.store(_built("sin")).stat().st_size
        cache = TableCache(tmp_path / "tables", max_bytes=2 * size)
        cache.store(_built("sin"))
        cache.store(_built("cos"))
        # Touch sin: cos becomes the LRU entry.
        assert cache.load_into(make_method("sin", "llut_i", density_log2=9))
        cache.store(_built("exp"))
        assert cache.contains(make_method("sin", "llut_i", density_log2=9))
        assert not cache.contains(make_method("cos", "llut_i", density_log2=9))

    def test_oversized_store_keeps_itself(self, tmp_path):
        cache = TableCache(tmp_path / "tables", max_bytes=1)
        cache.store(_built("sin"))
        cache.store(_built("cos"))
        # The bound can't hold either table, but the entry just stored is
        # never evicted — only older ones go.
        assert len(cache) == 1
        assert cache.contains(make_method("cos", "llut_i", density_log2=9))

    def test_counters_and_metrics(self, tmp_path):
        from repro.obs.metrics import collecting

        one = TableCache(tmp_path / "probe")
        size = one.store(_built("sin")).stat().st_size
        cache = TableCache(tmp_path / "tables", max_bytes=2 * size)
        with collecting() as reg:
            cache.store(_built("sin"))
            cache.store(_built("cos"))
            cache.store(_built("exp"))
        assert cache.stores == 3 and cache.evictions == 1
        assert reg.value("tablecache.stores") == 3
        assert reg.value("tablecache.evictions") == 1
        assert reg.gauge("tablecache.bytes").last == cache.total_bytes

    def test_reopened_cache_applies_bound_to_old_files(self, tmp_path):
        unbounded = TableCache(tmp_path / "tables")
        unbounded.store(_built("sin"))
        unbounded.store(_built("cos"))
        size = unbounded.total_bytes
        reopened = TableCache(tmp_path / "tables", max_bytes=size)
        assert len(reopened) == 2  # pre-existing files were adopted
        reopened.store(_built("exp"))  # overflow: oldest pre-existing goes
        assert reopened.evictions >= 1
        assert reopened.total_bytes <= size

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            TableCache(tmp_path / "tables", max_bytes=0)

    def test_clear_resets_lru(self, tmp_path):
        cache = TableCache(tmp_path / "tables", max_bytes=1 << 30)
        cache.store(_built("sin"))
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.total_bytes == 0


class TestRejections:
    def test_cordic_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="not a table method"):
            cache.contains(make_method("sin", "cordic", iterations=16))

    def test_composite_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="composite"):
            cache.contains(make_method("tanh", "dllut_i", mant_bits=8))

    def test_tan_quotient_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="composite"):
            cache.contains(make_method("tan", "llut_i", density_log2=10))

    def test_store_before_setup_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="set up"):
            cache.store(make_method("sin", "llut", density_log2=9))
