"""Tests for the host-side table cache."""

import numpy as np
import pytest

from repro.api import make_method
from repro.core.tablecache import TableCache, cache_signature
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter


@pytest.fixture
def cache(tmp_path):
    return TableCache(tmp_path / "tables")


class TestSignature:
    def test_stable_across_instances(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=10)
        assert cache_signature(a) == cache_signature(b)

    def test_differs_by_density(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=12)
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_function(self):
        a = make_method("sin", "llut_i", density_log2=10)
        b = make_method("cos", "llut_i", density_log2=10)
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_interval(self):
        a = make_method("exp", "llut_i", density_log2=10,
                        interval=(-1.0, 0.0))
        b = make_method("exp", "llut_i", density_log2=10,
                        interval=(-2.0, 0.0))
        assert cache_signature(a) != cache_signature(b)

    def test_differs_by_method(self):
        a = make_method("sin", "llut", density_log2=10)
        b = make_method("sin", "llut_i", density_log2=10)
        assert cache_signature(a) != cache_signature(b)


class TestRoundtrip:
    def test_store_and_load_bit_identical(self, cache):
        original = make_method("sin", "llut_i", density_log2=10).setup()
        cache.store(original)

        fresh = make_method("sin", "llut_i", density_log2=10)
        assert cache.load_into(fresh)
        np.testing.assert_array_equal(fresh._table, original._table)

    def test_loaded_method_evaluates(self, cache, sine_inputs):
        cache.store(make_method("sin", "llut_i", density_log2=10).setup())
        fresh = make_method("sin", "llut_i", density_log2=10)
        cache.load_into(fresh)
        out = fresh.evaluate_vec(sine_inputs)
        np.testing.assert_allclose(out, np.sin(sine_inputs), atol=1e-5)

    def test_loaded_scalar_path_works(self, cache):
        cache.store(make_method("sin", "llut", density_log2=10).setup())
        fresh = make_method("sin", "llut", density_log2=10)
        cache.load_into(fresh)
        assert abs(float(fresh.evaluate(CycleCounter(), 1.0))
                   - np.sin(1.0)) < 1e-3

    def test_miss_returns_false(self, cache):
        assert not cache.load_into(make_method("sin", "llut", density_log2=9))

    def test_fixed_point_tables_roundtrip(self, cache):
        original = make_method("sin", "llut_i_fx", density_log2=10).setup()
        cache.store(original)
        fresh = make_method("sin", "llut_i_fx", density_log2=10)
        assert cache.load_into(fresh)
        assert fresh._table.dtype == original._table.dtype
        np.testing.assert_array_equal(fresh._table, original._table)


class TestSetupHelper:
    def test_setup_builds_then_hits(self, cache):
        m1 = cache.setup(make_method("sin", "llut_i", density_log2=9))
        assert cache.contains(make_method("sin", "llut_i", density_log2=9))
        m2 = cache.setup(make_method("sin", "llut_i", density_log2=9))
        np.testing.assert_array_equal(m1._table, m2._table)

    def test_clear(self, cache):
        cache.setup(make_method("sin", "llut", density_log2=9))
        cache.setup(make_method("cos", "llut", density_log2=9))
        assert cache.clear() == 2
        assert not cache.contains(make_method("sin", "llut", density_log2=9))


class TestRejections:
    def test_cordic_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="not a table method"):
            cache.contains(make_method("sin", "cordic", iterations=16))

    def test_composite_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="composite"):
            cache.contains(make_method("tanh", "dllut_i", mant_bits=8))

    def test_tan_quotient_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="composite"):
            cache.contains(make_method("tan", "llut_i", density_log2=10))

    def test_store_before_setup_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="set up"):
            cache.store(make_method("sin", "llut", density_log2=9))
