"""Tests for the function registry and reference implementations."""

import math

import numpy as np
import pytest

from repro.core.functions.registry import FUNCTIONS, TWO_PI, get_function, reference
from repro.errors import ConfigurationError


class TestReferences:
    @pytest.mark.parametrize("name,fn", [
        ("sin", math.sin), ("cos", math.cos), ("tan", math.tan),
        ("sinh", math.sinh), ("cosh", math.cosh), ("tanh", math.tanh),
        ("exp", math.exp), ("log", math.log), ("sqrt", math.sqrt),
    ])
    def test_elementary_match_math(self, name, fn):
        xs = np.array([0.3, 0.9, 1.4])
        np.testing.assert_allclose(
            reference(name, xs), [fn(x) for x in xs], rtol=1e-14
        )

    def test_gelu_at_zero_and_symmetry(self):
        assert reference("gelu", np.array([0.0]))[0] == 0.0
        x = 1.3
        g_pos, g_neg = reference("gelu", np.array([x, -x]))
        assert g_neg == pytest.approx(g_pos - x, abs=1e-14)

    def test_sigmoid_midpoint(self):
        assert reference("sigmoid", np.array([0.0]))[0] == 0.5

    def test_cndf_values(self):
        out = reference("cndf", np.array([0.0, 1.959964]))
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(0.975, abs=1e-4)

    def test_ref_scalar(self):
        assert get_function("sin").ref_scalar(math.pi / 2) == pytest.approx(1.0)


class TestSpecConsistency:
    def test_all_functions_registered(self):
        # 12 paper functions + 11 extensions (see support matrix docstring).
        assert len(FUNCTIONS) == 23

    def test_names_match_keys(self):
        for key, spec in FUNCTIONS.items():
            assert spec.name == key

    def test_natural_ranges_valid(self):
        for spec in FUNCTIONS.values():
            lo, hi = spec.natural_range
            assert hi > lo, spec.name

    def test_periodic_functions_have_period(self):
        for spec in FUNCTIONS.values():
            if spec.extension == "periodic":
                assert spec.period == pytest.approx(TWO_PI)

    def test_trig_natural_range_is_one_period(self):
        spec = FUNCTIONS["sin"]
        lo, hi = spec.natural_range
        assert hi - lo == pytest.approx(spec.period)

    def test_exp_natural_range_is_ln2(self):
        lo, hi = FUNCTIONS["exp"].natural_range
        assert (lo, hi) == (0.0, pytest.approx(math.log(2)))

    def test_odd_flags(self):
        assert FUNCTIONS["sin"].odd
        assert not FUNCTIONS["cos"].odd
        assert FUNCTIONS["tanh"].odd

    def test_unknown_function_raises_helpfully(self):
        with pytest.raises(ConfigurationError, match="known functions"):
            get_function("arctanh")
