"""Tests for the Table 2 support matrix."""

import pytest

from repro.core.functions.registry import FUNCTIONS
from repro.core.functions.support import (
    BASE_METHODS,
    METHOD_SUPPORT,
    check_support,
    supported_functions,
    supported_methods,
    supports,
)
from repro.errors import UnsupportedFunctionError


class TestMatrixContents:
    def test_eight_base_methods(self):
        assert len(BASE_METHODS) == 8

    def test_cordic_covers_table1_functions(self):
        for fn in ("sin", "cos", "tan", "sinh", "cosh", "tanh", "exp",
                   "log", "sqrt"):
            assert supports("cordic", fn)

    def test_cordic_excludes_erf_family(self):
        for fn in ("gelu", "sigmoid", "cndf"):
            assert not supports("cordic", fn)

    def test_generic_luts_cover_everything(self):
        for method in ("mlut", "mlut_i", "llut", "llut_i"):
            assert set(supported_functions(method)) == set(FUNCTIONS)

    def test_dlut_excludes_periodic(self):
        for fn in ("sin", "cos", "tan"):
            assert not supports("dlut", fn)
            assert not supports("dllut", fn)

    def test_fixed_llut_excludes_out_of_format(self):
        for fn in ("tan", "sinh", "cosh", "sigmoid"):
            assert not supports("llut_fx", fn)
        assert supports("llut_fx", "sin")
        assert supports("llut_i_fx", "gelu")

    def test_cordic_lut_excludes_vectoring(self):
        assert not supports("cordic_lut", "log")
        assert not supports("cordic_lut", "sqrt")
        assert supports("cordic_lut", "exp")

    def test_every_function_has_several_methods(self):
        for fn in FUNCTIONS:
            assert len(supported_methods(fn)) >= 4, fn

    def test_matrix_consistency(self):
        # supported_methods and supported_functions agree with supports().
        for method, funcs in METHOD_SUPPORT.items():
            for fn in funcs:
                assert method in supported_methods(fn)
                assert fn in supported_functions(method)


class TestCheckSupport:
    def test_ok_pair_passes(self):
        check_support("llut_i", "sin")

    def test_bad_pair_raises(self):
        with pytest.raises(UnsupportedFunctionError) as e:
            check_support("dlut", "sin")
        assert e.value.function == "sin"
        assert e.value.method == "dlut"

    def test_unknown_method_raises(self):
        with pytest.raises(UnsupportedFunctionError, match="unknown method"):
            check_support("taylor", "sin")

    def test_supports_unknown_method_false(self):
        assert not supports("nope", "sin")
