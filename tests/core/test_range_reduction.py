"""Tests for range reduction/extension (Section 2.2.3, Figure 8)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.functions.registry import FUNCTIONS, get_function
from repro.core.range_reduction import (
    ExpSplitReducer,
    IdentityReducer,
    LogSplitReducer,
    OddSymmetricReducer,
    PeriodicReducer,
    SqrtSplitReducer,
    make_reducer,
)
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter

_F32 = np.float32


def _trace(reducer, x):
    ctx = CycleCounter()
    u, state = reducer.reduce(ctx, _F32(x))
    return u, state, ctx


class TestIdentity:
    def test_passthrough(self, ctx):
        r = IdentityReducer()
        u, state = r.reduce(ctx, _F32(1.5))
        assert u == _F32(1.5)
        assert r.reconstruct(ctx, u, state) == _F32(1.5)
        assert ctx.slots == 0


class TestPeriodic:
    def test_folds_into_period(self):
        r = PeriodicReducer(2 * math.pi)
        for x in [-100.0, -1.0, 0.0, 3.0, 7.0, 1000.0]:
            u, _, _ = _trace(r, x)
            assert 0.0 <= float(u) < 2 * math.pi

    def test_preserves_value_mod_period(self):
        r = PeriodicReducer(2 * math.pi)
        u, _, _ = _trace(r, 10.0)
        assert math.sin(float(u)) == pytest.approx(math.sin(10.0), abs=1e-5)

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicReducer(0.0)

    def test_charges_two_multiplies(self):
        r = PeriodicReducer(2 * math.pi)
        _, _, ctx = _trace(r, 100.0)
        assert ctx.tally.count("fmul") == 2

    @given(st.floats(min_value=-1e4, max_value=1e4))
    def test_vec_matches_scalar(self, x):
        r = PeriodicReducer(2 * math.pi)
        u, _, _ = _trace(r, x)
        uv, _ = r.reduce_vec(np.array([x], dtype=_F32))
        assert uv[0] == u


class TestExpSplit:
    def test_residual_range(self):
        r = ExpSplitReducer()
        for x in [-20.0, -1.0, 0.0, 0.5, 3.0, 20.0]:
            f, k, _ = _trace(r, x)
            assert 0.0 <= float(f) < math.log(2) + 1e-6

    def test_identity_reconstruction(self):
        r = ExpSplitReducer()
        ctx = CycleCounter()
        for x in [-5.0, -0.3, 0.0, 1.0, 9.9]:
            f, k = r.reduce(ctx, _F32(x))
            rebuilt = r.reconstruct(ctx, _F32(math.exp(float(f))), k)
            assert float(rebuilt) == pytest.approx(math.exp(x), rel=1e-5)

    @given(st.floats(min_value=-50, max_value=50))
    def test_vec_matches_scalar(self, x):
        r = ExpSplitReducer()
        f, k, _ = _trace(r, x)
        fv, kv = r.reduce_vec(np.array([x], dtype=_F32))
        assert fv[0] == f and kv[0] == k


class TestLogSplit:
    def test_mantissa_range(self):
        r = LogSplitReducer()
        for x in [1e-6, 0.1, 1.0, 7.0, 1e6]:
            m, e, _ = _trace(r, x)
            assert 1.0 <= float(m) < 2.0

    def test_identity_reconstruction(self):
        r = LogSplitReducer()
        ctx = CycleCounter()
        for x in [0.01, 0.9, 1.0, 123.0]:
            m, e = r.reduce(ctx, _F32(x))
            rebuilt = r.reconstruct(ctx, _F32(math.log(float(m))), e)
            assert float(rebuilt) == pytest.approx(math.log(x), abs=1e-5)


class TestSqrtSplit:
    def test_mantissa_range(self):
        r = SqrtSplitReducer()
        for x in [1e-6, 0.3, 1.0, 2.0, 1e6]:
            m, e, _ = _trace(r, x)
            assert 0.5 <= float(m) < 2.0

    def test_identity_reconstruction(self):
        r = SqrtSplitReducer()
        ctx = CycleCounter()
        for x in [0.01, 0.9, 1.0, 123.0, 3e5]:
            m, e = r.reduce(ctx, _F32(x))
            rebuilt = r.reconstruct(ctx, _F32(math.sqrt(float(m))), e)
            assert float(rebuilt) == pytest.approx(math.sqrt(x), rel=1e-6)

    def test_no_float_arithmetic(self):
        # The paper's cheapest reduction: frexp + integer ops only.
        r = SqrtSplitReducer()
        _, _, ctx = _trace(r, 42.0)
        assert ctx.tally.count("fmul") == 0
        assert ctx.tally.count("fadd") == 0
        assert ctx.tally.count("fdiv") == 0

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_vec_matches_scalar(self, x):
        r = SqrtSplitReducer()
        m, e, _ = _trace(r, x)
        mv, ev = r.reduce_vec(np.array([x], dtype=_F32))
        assert mv[0] == m and ev[0] == e


class TestOddSymmetric:
    @pytest.mark.parametrize("kind,fn,expected", [
        ("odd", math.tanh, lambda y, x: -y),
        ("even", math.cosh, lambda y, x: y),
        ("complement", None, lambda y, x: 1.0 - y),
    ])
    def test_reconstruction_kinds(self, kind, fn, expected):
        r = OddSymmetricReducer(kind)
        ctx = CycleCounter()
        u, state = r.reduce(ctx, _F32(-2.0))
        assert u == _F32(2.0)
        out = r.reconstruct(ctx, _F32(0.75), state)
        assert float(out) == pytest.approx(expected(0.75, -2.0), abs=1e-6)

    def test_gelu_identity(self):
        # gelu(-x) = gelu(x) - x must hold through the reducer.
        from scipy.special import erf
        def gelu(v):
            return v * 0.5 * (1 + erf(v / math.sqrt(2)))

        r = OddSymmetricReducer("gelu")
        ctx = CycleCounter()
        x = -1.25
        u, state = r.reduce(ctx, _F32(x))
        out = r.reconstruct(ctx, _F32(gelu(float(u))), state)
        assert float(out) == pytest.approx(gelu(x), abs=1e-6)

    def test_positive_passthrough(self):
        r = OddSymmetricReducer("odd")
        ctx = CycleCounter()
        u, state = r.reduce(ctx, _F32(2.0))
        assert r.reconstruct(ctx, _F32(0.9), state) == _F32(0.9)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            OddSymmetricReducer("weird")

    def test_vec_matches_scalar(self, rng):
        r = OddSymmetricReducer("complement")
        xs = rng.uniform(-4, 4, 64).astype(_F32)
        ys = rng.uniform(0, 1, 64).astype(_F32)
        uv, sv = r.reduce_vec(xs)
        outv = r.reconstruct_vec(ys, sv)
        ctx = CycleCounter()
        for i in range(64):
            u, s = r.reduce(ctx, xs[i])
            assert uv[i] == u
            assert outv[i] == r.reconstruct(ctx, ys[i], s)


class TestFactory:
    def test_assume_in_range_gives_identity(self):
        spec = get_function("sin")
        assert isinstance(make_reducer(spec, assume_in_range=True), IdentityReducer)

    def test_every_function_has_a_reducer(self):
        for spec in FUNCTIONS.values():
            r = make_reducer(spec, assume_in_range=False)
            assert r is not None

    @pytest.mark.parametrize("name,cls", [
        ("sin", PeriodicReducer),
        ("exp", ExpSplitReducer),
        ("log", LogSplitReducer),
        ("sqrt", SqrtSplitReducer),
        ("tanh", OddSymmetricReducer),
    ])
    def test_mapping(self, name, cls):
        assert isinstance(make_reducer(get_function(name)), cls)


class TestFig8CostOrdering:
    def test_sqrt_is_cheapest_trig_most_expensive(self):
        # The qualitative content of Figure 8.
        costs = {}
        for name in ("sin", "exp", "log", "sqrt"):
            r = make_reducer(get_function(name))
            ctx = CycleCounter()
            u, state = r.reduce(ctx, _F32(9.7))
            r.reconstruct(ctx, u, state)
            costs[name] = ctx.slots
        assert costs["sqrt"] < costs["log"] < costs["exp"]
        assert costs["sqrt"] < costs["sin"]
