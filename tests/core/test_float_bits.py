"""Tests for float32 bit-level tools."""


import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import float_bits as fb


class TestScalarRoundtrip:
    def test_bits_of_one(self):
        assert fb.float_to_bits(1.0) == 0x3F800000

    def test_bits_of_negative_two(self):
        assert fb.float_to_bits(-2.0) == 0xC0000000

    def test_roundtrip_simple(self):
        for v in [0.0, 1.0, -1.5, 3.14159, 1e-38, 1e38]:
            assert fb.bits_to_float(fb.float_to_bits(v)) == np.float32(v)

    @given(st.floats(width=32, allow_nan=False))
    def test_roundtrip_property(self, x):
        assert fb.bits_to_float(fb.float_to_bits(x)) == np.float32(x)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_bits_roundtrip_property(self, bits):
        value = fb.bits_to_float(bits)
        if not np.isnan(value):
            assert fb.float_to_bits(value) == bits


class TestFields:
    def test_sign_bit(self):
        assert fb.sign_bit(1.0) == 0
        assert fb.sign_bit(-1.0) == 1
        assert fb.sign_bit(-0.0) == 1

    def test_exponent_field_of_one(self):
        assert fb.exponent_field(1.0) == fb.EXP_BIAS

    def test_exponent_field_of_two(self):
        assert fb.exponent_field(2.0) == fb.EXP_BIAS + 1

    def test_unbiased_exponent(self):
        assert fb.unbiased_exponent(1.0) == 0
        assert fb.unbiased_exponent(8.0) == 3
        assert fb.unbiased_exponent(0.25) == -2

    def test_unbiased_exponent_subnormal_convention(self):
        assert fb.unbiased_exponent(1e-41) == 1 - fb.EXP_BIAS

    def test_mantissa_field_of_one_point_five(self):
        assert fb.mantissa_field(1.5) == 1 << (fb.MANT_BITS - 1)

    def test_compose_float(self):
        val = fb.compose_float(0, fb.EXP_BIAS, 1 << (fb.MANT_BITS - 1))
        assert val == np.float32(1.5)

    @given(st.floats(width=32, allow_nan=False, allow_infinity=False,
                     allow_subnormal=False))
    def test_decompose_compose_property(self, x):
        s = fb.sign_bit(x)
        e = fb.exponent_field(x)
        m = fb.mantissa_field(x)
        assert fb.compose_float(s, e, m) == np.float32(x)


class TestSubnormalAndUlp:
    def test_is_subnormal(self):
        assert fb.is_subnormal(1e-41)
        assert not fb.is_subnormal(1e-37)
        assert not fb.is_subnormal(0.0)

    def test_ulp_spacing_at_one(self):
        assert fb.ulp_spacing(1.0) == np.float32(2.0 ** -23)

    def test_ulp_spacing_vectorized(self):
        arr = np.array([1.0, 2.0, 4.0], dtype=np.float32)
        out = fb.ulp_spacing(arr)
        assert out[1] == 2 * out[0]
        assert out[2] == 4 * out[0]


class TestVectorized:
    def test_vector_matches_scalar(self, rng):
        xs = rng.uniform(-100, 100, 256).astype(np.float32)
        bits = fb.float_to_bits(xs)
        for i, x in enumerate(xs):
            assert int(bits[i]) == fb.float_to_bits(float(x))

    def test_exponent_field_vectorized(self):
        xs = np.array([1.0, 2.0, 0.5], dtype=np.float32)
        np.testing.assert_array_equal(
            fb.exponent_field(xs), [127, 128, 126]
        )
