"""Tests for the memory sizing helpers."""

import pytest

from repro.api import make_method
from repro.core.memory_model import (
    cordic_bytes,
    dlut_bytes,
    functions_per_wram,
    lut_bytes,
    lut_entries,
    max_density_for_budget,
    max_size_for_budget,
)
from repro.errors import ConfigurationError


class TestForwardSizing:
    def test_lut_entries_matches_real_method(self):
        m = make_method("sin", "llut", density_log2=10).setup()
        assert lut_entries("sin", 10) == m.entries

    def test_lut_bytes_matches_real_method(self):
        m = make_method("exp", "llut_i", density_log2=12).setup()
        assert lut_bytes("exp", 12) == m.table_bytes()

    def test_custom_interval(self):
        assert lut_entries("exp", 4, interval=(0.0, 2.0)) == 2 * 16 + 2

    def test_cordic_bytes_matches_method(self):
        m = make_method("sin", "cordic", iterations=24).setup()
        assert cordic_bytes(24) == m.table_bytes()

    def test_dlut_bytes_matches_method(self):
        m = make_method("tanh", "dlut", mant_bits=8, e_min=-14).setup()
        assert dlut_bytes(8, -14, 3) == m.table_bytes()

    def test_doubling_density_doubles_bytes(self):
        assert lut_bytes("sin", 15) == pytest.approx(
            2 * lut_bytes("sin", 14), rel=0.01
        )


class TestInverseSizing:
    def test_max_density_fits(self):
        budget = 64 * 1024
        n = max_density_for_budget("sin", budget)
        assert lut_bytes("sin", n) <= budget
        assert lut_bytes("sin", n + 1) > budget

    def test_max_density_real_method_fits_wram(self):
        from repro.pim.memory import MemoryRegion
        n = max_density_for_budget("sin", 48 * 1024)
        m = make_method("sin", "llut", density_log2=n)
        m.setup(MemoryRegion("WRAM", 48 * 1024))  # must not raise

    def test_impossible_budget_raises(self):
        with pytest.raises(ConfigurationError):
            max_density_for_budget("sin", 8)

    def test_max_size_for_budget(self):
        assert max_size_for_budget(4096) == 1024

    def test_functions_per_wram(self):
        per_one = lut_bytes("sin", 10)
        assert functions_per_wram("sin", 10) == (48 * 1024) // per_one
