"""Tests for the host setup-time model (Figure 6)."""

import pytest

from repro.api import make_method
from repro.core.setup_model import SetupTimeModel, setup_seconds


class TestModel:
    def test_overhead_floor(self):
        model = SetupTimeModel()
        assert model.seconds(0, 0) == model.call_overhead_s

    def test_linear_in_entries(self):
        model = SetupTimeModel(call_overhead_s=0, copy_bandwidth=1e18)
        assert model.seconds(2000, 0) == pytest.approx(2 * model.seconds(1000, 0))

    def test_copy_component(self):
        model = SetupTimeModel(call_overhead_s=0, per_entry_s=0,
                               copy_bandwidth=1e6)
        assert model.seconds(0, 1000) == pytest.approx(1e-3)


class TestFigure6Structure:
    def test_cordic_setup_flat(self):
        """CORDIC setup barely moves with accuracy (Key Takeaway 2)."""
        t_low = setup_seconds(make_method("sin", "cordic", iterations=8).setup())
        t_high = setup_seconds(make_method("sin", "cordic", iterations=32).setup())
        assert t_high < 1.2 * t_low

    def test_lut_setup_grows_with_density(self):
        t_small = setup_seconds(
            make_method("sin", "llut", density_log2=10).setup())
        t_big = setup_seconds(
            make_method("sin", "llut", density_log2=18).setup())
        assert t_big > 5 * t_small

    def test_cordic_lut_between(self):
        """CORDIC+LUT: above CORDIC, flat in iterations."""
        cordic = setup_seconds(make_method("sin", "cordic", iterations=24).setup())
        hyb_a = setup_seconds(make_method(
            "sin", "cordic_lut", iterations=16, lut_bits=8).setup())
        hyb_b = setup_seconds(make_method(
            "sin", "cordic_lut", iterations=32, lut_bits=8).setup())
        assert hyb_a > cordic
        assert hyb_b < 1.2 * hyb_a

    def test_cordic_cheaper_than_accurate_lut(self):
        """The premise of the ~40-operation amortization argument."""
        cordic = setup_seconds(make_method("sin", "cordic", iterations=30).setup())
        llut = setup_seconds(make_method("sin", "llut_i", density_log2=13).setup())
        assert cordic < llut
