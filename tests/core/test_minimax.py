"""Tests for the Remez minimax fitter."""

import math

import numpy as np
import pytest

from repro.core.minimax import horner, horner_vec, remez
from repro.errors import ConfigurationError
from repro.isa.counter import CycleCounter


class TestRemezBasics:
    def test_exact_for_polynomials(self):
        # Fitting x^2 with degree 2 must be (near) exact.
        fit = remez(lambda x: x * x, 2, (0.0, 1.0))
        assert fit.max_error < 1e-12
        np.testing.assert_allclose(fit.coefficients, [0, 0, 1], atol=1e-10)

    def test_degree_zero_is_midrange(self):
        # Best constant for x on [0,1] is 0.5 with error 0.5.
        fit = remez(lambda x: x, 0, (0.0, 1.0))
        assert fit.coefficients[0] == pytest.approx(0.5, abs=1e-6)
        assert fit.max_error == pytest.approx(0.5, rel=1e-3)

    def test_exp_error_shrinks_with_degree(self):
        errs = [remez(np.exp, d, (0.0, math.log(2))).max_error
                for d in (2, 4, 6)]
        assert errs[0] > 30 * errs[1] > 30 * errs[2] / 30
        assert errs[2] < 1e-7

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            remez(np.exp, -1, (0.0, 1.0))
        with pytest.raises(ConfigurationError):
            remez(np.exp, 3, (1.0, 1.0))


class TestMinimaxVsTaylor:
    def test_minimax_beats_taylor_at_same_degree(self):
        """The reason minimax matters: fewer terms per accuracy bit."""
        degree = 5
        lo, hi = 0.0, math.log(2)
        fit = remez(np.exp, degree, (lo, hi))
        grid = np.linspace(lo, hi, 2000)
        taylor = sum(grid ** k / math.factorial(k)
                     for k in range(degree + 1))
        taylor_err = np.max(np.abs(taylor - np.exp(grid)))
        assert fit.max_error < taylor_err / 5

    def test_equioscillation(self):
        """The fitted error touches +-E alternately (minimax certificate)."""
        fit = remez(np.sin, 5, (0.0, math.pi / 2))
        grid = np.linspace(0.0, math.pi / 2, 8000)
        err = fit(grid) - np.sin(grid)
        peak = np.abs(err).max()
        # At least degree+2 near-peak alternations.
        near_peak = np.abs(np.abs(err) - peak) < 0.15 * peak
        signs = np.sign(err[near_peak])
        alternations = int(np.sum(np.diff(signs) != 0))
        assert alternations >= 5


class TestHornerEvaluation:
    def test_traced_matches_vectorized(self):
        fit = remez(np.exp, 6, (0.0, 0.7))
        coeffs = fit.coefficients_f32_desc()
        ctx = CycleCounter()
        xs = np.linspace(0, 0.7, 16).astype(np.float32)
        scalar = np.array([horner(ctx, coeffs, x) for x in xs],
                          dtype=np.float32)
        np.testing.assert_array_equal(scalar, horner_vec(coeffs, xs))

    def test_cost_one_mul_add_per_term(self):
        fit = remez(np.exp, 6, (0.0, 0.7))
        coeffs = fit.coefficients_f32_desc()
        ctx = CycleCounter()
        horner(ctx, coeffs, np.float32(0.3))
        assert ctx.tally.count("fmul") == 6
        assert ctx.tally.count("fadd") == 6

    def test_float32_evaluation_accuracy(self):
        fit = remez(np.exp, 8, (0.0, 0.7))
        coeffs = fit.coefficients_f32_desc()
        xs = np.linspace(0, 0.7, 512).astype(np.float32)
        out = horner_vec(coeffs, xs).astype(np.float64)
        assert np.max(np.abs(out - np.exp(xs.astype(np.float64)))) < 1e-6
